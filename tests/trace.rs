//! Run-trace telemetry: determinism across worker counts, JSONL
//! round-tripping, zero-cost when disabled, and summary consistency.

use hpcadvisor_core::prelude::*;
use hpcadvisor_core::Trace;
use std::time::Instant;

const SEED: u64 = 42;

/// Runs the 36-scenario OpenFOAM sweep on spot capacity with the
/// fault plan the eviction tests use, tracing enabled.
fn traced_spot_run(workers: usize) -> CollectReport {
    let config = UserConfig::example_openfoam();
    let mut session = Session::create(config, SEED).unwrap();
    session
        .provider()
        .lock()
        .set_fault_plan(cloudsim::FaultPlan::none().seed(13).evict_pressure(0.35));
    session
        .collect_with(
            &CollectPlan::new()
                .workers(workers)
                .capacity(Capacity::Spot)
                .trace(true),
        )
        .unwrap()
}

#[test]
fn trace_bytes_identical_for_any_worker_count() {
    let serial = traced_spot_run(1);
    assert!(serial.stats.evictions > 0, "sweep should see evictions");
    let serial_jsonl = serial.trace.as_ref().unwrap().to_jsonl();
    assert!(serial_jsonl.starts_with("{\"version\": 1}\n"));
    for workers in [4usize, 8] {
        let report = traced_spot_run(workers);
        let jsonl = report.trace.as_ref().unwrap().to_jsonl();
        assert_eq!(
            jsonl, serial_jsonl,
            "trace bytes with {workers} workers differ from the serial run"
        );
        // The dataset itself must also stay identical, traced or not.
        assert_eq!(report.dataset.to_json(), serial.dataset.to_json());
    }
}

#[test]
fn trace_jsonl_roundtrip_is_byte_identical() {
    let report = traced_spot_run(4);
    let jsonl = report.trace.as_ref().unwrap().to_jsonl();
    let parsed = Trace::from_jsonl(&jsonl).unwrap();
    assert_eq!(
        parsed.events.len(),
        report.trace.as_ref().unwrap().events.len()
    );
    assert_eq!(
        parsed.to_jsonl(),
        jsonl,
        "emit → parse → re-emit must not change bytes"
    );
}

#[test]
fn tracing_does_not_change_untraced_results() {
    let traced = traced_spot_run(4);
    let config = UserConfig::example_openfoam();
    let mut session = Session::create(config, SEED).unwrap();
    session
        .provider()
        .lock()
        .set_fault_plan(cloudsim::FaultPlan::none().seed(13).evict_pressure(0.35));
    let untraced = session
        .collect_with(&CollectPlan::new().workers(4).capacity(Capacity::Spot))
        .unwrap();
    assert!(untraced.trace.is_none());
    assert_eq!(untraced.dataset.to_json(), traced.dataset.to_json());
}

#[test]
fn telemetry_off_emits_zero_events_with_no_measurable_overhead() {
    // With tracing off (the default), the provider must buffer nothing and
    // the report must carry no trace.
    let config = UserConfig::example_openfoam();
    let mut session = Session::create(config, SEED).unwrap();
    let start = Instant::now();
    let report = session
        .collect_with(&CollectPlan::new().workers(4))
        .unwrap();
    let off_secs = start.elapsed().as_secs_f64();
    assert!(report.trace.is_none());
    assert!(report.trace_summary().is_none());
    assert!(
        session.provider().lock().drain_trace().is_empty(),
        "disabled provider must not buffer trace events"
    );

    // Generous sanity bound, not a benchmark: the disabled path is a few
    // branch checks, so it must stay within the same order of magnitude as
    // the traced run (CI boxes are noisy; the strict numbers live in the
    // bench-baseline job).
    let config = UserConfig::example_openfoam();
    let mut session = Session::create(config, SEED).unwrap();
    let start = Instant::now();
    let traced = session
        .collect_with(&CollectPlan::new().workers(4).trace(true))
        .unwrap();
    let on_secs = start.elapsed().as_secs_f64();
    assert!(traced.trace.is_some());
    assert!(
        off_secs <= on_secs * 10.0 + 1.0,
        "telemetry-off run took {off_secs:.3}s vs traced {on_secs:.3}s"
    );
}

#[test]
fn trace_summary_matches_report_stats() {
    let report = traced_spot_run(4);
    let summary = report.trace_summary().unwrap();
    assert_eq!(summary.completed as usize, report.stats.completed);
    assert_eq!(summary.failed as usize, report.stats.failed);
    assert_eq!(summary.skipped as usize, report.stats.skipped);
    assert_eq!(summary.timed_out as usize, report.stats.timed_out);
    assert_eq!(summary.evictions, u64::from(report.stats.evictions));
    assert_eq!(summary.cache_hits as usize, report.stats.cache_hits);
    assert!(summary.provisions > 0);
    assert!(summary.tasks > 0);
    assert!(summary.boot_secs.count > 0);
    let text = summary.render_text();
    assert!(text.contains("events"));
}
