//! Property tests over the full stack: random (small) configurations must
//! collect cleanly, persist losslessly, and keep the Pareto-front
//! invariants.

use hpcadvisor::prelude::*;
use proptest::prelude::*;

fn arb_config() -> impl Strategy<Value = UserConfig> {
    let sku = prop_oneof![
        Just("Standard_HB120rs_v3"),
        Just("Standard_HB120rs_v2"),
        Just("Standard_HC44rs"),
        Just("Standard_F72s_v2"),
    ];
    let app_inputs = prop_oneof![
        (4u32..14).prop_map(|b| ("lammps", vec![("BOXFACTOR".to_string(), b.to_string())])),
        (8u32..24).prop_map(|x| { ("openfoam", vec![("mesh".to_string(), format!("{x} 8 8"))]) }),
        (100_000u64..2_000_000)
            .prop_map(|a| ("gromacs", vec![("atoms".to_string(), a.to_string())])),
        (4_000u64..40_000).prop_map(|n| ("matmul", vec![("n".to_string(), n.to_string())])),
    ];
    (
        proptest::collection::vec(sku, 1..3),
        proptest::collection::vec(1u32..9, 1..3),
        app_inputs,
        1u64..1000,
        prop_oneof![Just(50u32), Just(100u32)],
    )
        .prop_map(|(mut skus, mut nnodes, (app, inputs), seed, ppr)| {
            skus.dedup();
            nnodes.sort_unstable();
            nnodes.dedup();
            let mut c = UserConfig::from_yaml(&format!(
                "subscription: mysubscription\nrgprefix: prop\nappsetupurl: https://example.com/scripts/{app}.sh\nappname: {app}\nregion: southcentralus\nskus:\n- placeholder\nnnodes: [1]\n",
            ))
            .unwrap();
            c.skus = skus.iter().map(|s| s.to_string()).collect();
            c.nnodes = nnodes;
            c.ppr = ppr;
            c.appinputs = inputs.into_iter().map(|(k, v)| (k, vec![v])).collect();
            c.tags = vec![("seed".into(), seed.to_string())];
            (c, seed)
        })
        .prop_map(|(c, _)| c)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any small configuration collects without panicking, every scenario
    /// reaches a terminal state, and the dataset round-trips through JSON.
    #[test]
    fn random_configs_collect_cleanly(config in arb_config(), seed in 1u64..500) {
        let mut session = Session::create(config.clone(), seed).unwrap();
        let ds = session.collect().unwrap();
        prop_assert_eq!(ds.len(), config.scenario_count());
        for s in session.scenarios() {
            prop_assert!(s.status != ScenarioStatus::Pending);
        }
        // Completed rows have positive time and cost consistent with the
        // price × nodes × time formula.
        for p in ds.completed() {
            prop_assert!(p.exec_time_secs > 0.0);
            prop_assert!(p.cost_dollars > 0.0);
        }
        // JSON round-trip.
        let back = Dataset::from_json(&ds.to_json()).unwrap();
        prop_assert_eq!(&back, &ds);
        // Pareto-front invariants on whatever completed.
        let advice = Advice::from_dataset(&ds, &DataFilter::all());
        for a in &advice.rows {
            for b in &advice.rows {
                let dominates = a.cost_dollars <= b.cost_dollars
                    && a.exec_time_secs <= b.exec_time_secs
                    && (a.cost_dollars < b.cost_dollars || a.exec_time_secs < b.exec_time_secs);
                prop_assert!(
                    !dominates || std::ptr::eq(a, b),
                    "front rows dominate each other"
                );
            }
        }
    }

    /// Collection is a pure function of (config, seed).
    #[test]
    fn collection_is_deterministic(config in arb_config(), seed in 1u64..500) {
        let run = || {
            let mut s = Session::create(config.clone(), seed).unwrap();
            s.collect().unwrap().to_json()
        };
        prop_assert_eq!(run(), run());
    }

    /// Under a random probabilistic fault plan the sweep never panics or
    /// aborts, every scenario still reaches a terminal state, and the
    /// outcome counts partition the grid.
    #[test]
    fn random_fault_plans_never_abort_the_sweep(
        config in arb_config(),
        seed in 1u64..500,
        fault_seed in 0u64..1000,
        p_task in 0.0f64..0.4,
        p_alloc in 0.0f64..0.4,
    ) {
        use hpcadvisor::cloudsim::{FaultPlan, Operation};
        let mut session = Session::create(config.clone(), seed).unwrap();
        session.provider().lock().set_fault_plan(
            FaultPlan::none()
                .seed(fault_seed)
                .fail_probabilistic(Operation::RunTask, p_task)
                .fail_probabilistic(Operation::AllocateNodes, p_alloc),
        );
        let report = session.collect_with(&CollectPlan::new()).unwrap();
        let total = config.scenario_count();
        prop_assert_eq!(report.outcomes.len(), total);
        prop_assert_eq!(
            report.stats.completed + report.stats.failed + report.stats.skipped,
            total,
            "terminal statuses partition the grid"
        );
        for s in session.scenarios() {
            prop_assert!(s.status != ScenarioStatus::Pending);
        }
        // Attempts are bounded by the default policy's maximum.
        for o in &report.outcomes {
            prop_assert!(o.attempts <= 3, "attempts {} on {:?}", o.attempts, o.scenario_id);
        }
    }
}
