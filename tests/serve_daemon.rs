//! Socket-level tests of `hpcadvisor serve`: one daemon, NDJSON frames
//! over TCP, two concurrent tenants, cross-tenant dedup, and streamed
//! per-scenario progress.

use hpcadvisor::cli::serve::{serve_on, ServeOptions};
use hpcadvisor::core::cache::SharedScenarioCache;
use hpcadvisor::formats::wire::Frame;
use hpcadvisor::formats::{OrderedMap, Value};
use hpcadvisor::prelude::*;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};

const YAML: &str = r#"
subscription: mysubscription
skus:
- Standard_HC44rs
- Standard_HB120rs_v3
rgprefix: daemont
appsetupurl: https://example.com/scripts/lammps.sh
nnodes: [1, 2, 4]
appname: lammps
region: southcentralus
ppr: 100
appinputs:
  BOXFACTOR: "8"
"#;

/// Everything one `collect` conversation returned.
struct Reply {
    progress_kinds: Vec<String>,
    dataset_json: String,
    cache_hits: i64,
    cache_misses: i64,
    cost_dollars: f64,
}

fn collect_frame(id: i64, tenant: &str, workers: i64) -> Frame {
    let mut body = OrderedMap::new();
    body.insert("tenant", Value::str(tenant));
    body.insert("config_yaml", Value::str(YAML));
    body.insert("seed", Value::Int(42));
    body.insert("workers", Value::Int(workers));
    Frame::new(id, "collect", Value::Map(body))
}

fn send(stream: &mut TcpStream, frame: &Frame) {
    stream.write_all(frame.encode().as_bytes()).unwrap();
    stream.write_all(b"\n").unwrap();
    stream.flush().unwrap();
}

/// Runs one collect conversation against the daemon and parses the reply.
fn run_collect(addr: std::net::SocketAddr, tenant: &str, workers: i64) -> Reply {
    let mut stream = TcpStream::connect(addr).unwrap();
    send(&mut stream, &collect_frame(7, tenant, workers));
    let reader = BufReader::new(stream.try_clone().unwrap());
    let mut progress_kinds = Vec::new();
    for line in reader.lines() {
        let frame = Frame::decode(&line.unwrap()).unwrap();
        assert_eq!(frame.id, 7, "responses echo the request id");
        match frame.kind.as_str() {
            "progress" => {
                let map = frame.body.as_map().expect("progress body is the event");
                progress_kinds.push(map.get("kind").and_then(Value::as_str).unwrap().to_string());
            }
            "result" => {
                let map = frame.body.as_map().unwrap();
                assert_eq!(
                    map.get("tenant").and_then(Value::as_str),
                    Some(tenant),
                    "result names the tenant"
                );
                let stats = map.get("stats").and_then(Value::as_map).unwrap();
                return Reply {
                    progress_kinds,
                    dataset_json: map
                        .get("dataset_json")
                        .and_then(Value::as_str)
                        .unwrap()
                        .to_string(),
                    cache_hits: stats.get("cache_hits").and_then(Value::as_int).unwrap(),
                    cache_misses: stats.get("cache_misses").and_then(Value::as_int).unwrap(),
                    cost_dollars: map.get("cost_dollars").and_then(Value::as_f64).unwrap(),
                };
            }
            "error" => panic!(
                "daemon error: {:?}",
                frame.body.as_map().and_then(|m| m.get("message")).cloned()
            ),
            other => panic!("unexpected frame kind '{other}'"),
        }
    }
    panic!("daemon closed the connection without a result");
}

#[test]
fn one_daemon_two_concurrent_tenants_then_an_all_hits_rerun() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let daemon = std::thread::spawn(move || {
        let mut log = Vec::new();
        serve_on(
            listener,
            ServeOptions {
                service_workers: 2,
                cache: SharedScenarioCache::in_memory(),
                max_requests: Some(3),
                ..ServeOptions::default()
            },
            &mut log,
        )
        .unwrap();
        String::from_utf8(log).unwrap()
    });

    // A ping on its own connection answers pong (liveness probe).
    {
        let mut stream = TcpStream::connect(addr).unwrap();
        send(&mut stream, &Frame::new(1, "ping", Value::Null));
        let mut line = String::new();
        BufReader::new(&stream).read_line(&mut line).unwrap();
        assert_eq!(Frame::decode(line.trim()).unwrap().kind, "pong");
    }

    // Two tenants, same grid, truly concurrent connections.
    let alice = std::thread::spawn(move || run_collect(addr, "alice", 2));
    let bob = std::thread::spawn(move || run_collect(addr, "bob", 1));
    let alice = alice.join().unwrap();
    let bob = bob.join().unwrap();

    // Byte-identical to a standalone CLI-style run of the same config.
    let mut session = Session::create(UserConfig::from_yaml(YAML).unwrap(), 42).unwrap();
    let standalone = session
        .collect_with(&CollectPlan::new())
        .unwrap()
        .dataset
        .to_json();
    assert_eq!(alice.dataset_json, standalone);
    assert_eq!(bob.dataset_json, standalone);

    // Progress streamed per scenario for both tenants. The two jobs
    // usually overlap and each executes all 6 scenarios, but the shared
    // cache makes a benign alternative legal: if the scheduler happens to
    // finish one job before the other's cache consult, the later tenant
    // streams 6 cache_hit frames instead of start/end pairs. Either way
    // every scenario must be accounted for in the progress stream.
    for reply in [&alice, &bob] {
        let count = |kind: &str| reply.progress_kinds.iter().filter(|k| *k == kind).count();
        let starts = count("scenario_start");
        assert_eq!(starts, count("scenario_end"), "{:?}", reply.progress_kinds);
        assert_eq!(starts + count("cache_hit"), 6, "{:?}", reply.progress_kinds);
    }
    // The cache starts empty and inserts land only at a job's merge
    // barrier, so whichever job consulted first executed the full grid.
    assert!(
        alice.cache_hits == 0 || bob.cache_hits == 0,
        "at least one tenant ran cold: alice {} hits, bob {} hits",
        alice.cache_hits,
        bob.cache_hits
    );

    // Third, identical request: everything alice/bob computed is shared,
    // so it answers entirely from the daemon's cache and provisions
    // nothing. (This also trips --max-requests, stopping the daemon.)
    let carol = run_collect(addr, "carol", 1);
    assert_eq!(carol.cache_hits, 6, "cross-tenant dedup: all hits");
    assert_eq!(carol.cache_misses, 0);
    assert_eq!(carol.cost_dollars, 0.0);
    assert_eq!(carol.dataset_json, standalone);

    let log = daemon.join().unwrap();
    assert!(log.contains("serving on "), "{log}");
    assert!(log.contains("served 3 requests; shut down"), "{log}");
}
