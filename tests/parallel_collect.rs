//! The parallel scenario executor: determinism and failure isolation.
//!
//! The paper's Algorithm 1 keeps one pool per VM type, so the per-SKU
//! slices of the Listing-1 grid are independent. `CollectPlan` shards the
//! grid by VM type and runs shards on worker threads; the merged dataset
//! must be byte-identical to the serial `Session::collect()` result, and a
//! quota failure in one shard must not abort sibling shards.

use hpcadvisor_core::prelude::*;

const SEED: u64 = 42;

/// Serial baseline: the legacy API on the full Listing-1 grid (3 SKUs ×
/// 6 node counts × 2 inputs = 36 scenarios).
fn serial_json() -> String {
    let mut session = Session::create(UserConfig::example_openfoam(), SEED).unwrap();
    session.collect().unwrap().to_json()
}

#[test]
fn parallel_collect_is_byte_identical_to_serial() {
    let serial = serial_json();
    for workers in [1usize, 2, 8] {
        let mut session = Session::create(UserConfig::example_openfoam(), SEED).unwrap();
        let report = session
            .collect_with(&CollectPlan::new().workers(workers))
            .unwrap();
        assert_eq!(report.stats.executed, 36);
        assert_eq!(report.stats.failed, 0);
        assert_eq!(
            report.dataset.to_json(),
            serial,
            "dataset with {workers} workers differs from serial"
        );
        assert!(
            session
                .scenarios()
                .iter()
                .all(|s| s.status == ScenarioStatus::Completed),
            "statuses written back ({workers} workers)"
        );
    }
}

#[test]
fn parallel_collect_merges_shard_filesystems() {
    let files_after = |workers: usize| -> Vec<String> {
        let mut session = Session::create(UserConfig::example_openfoam(), SEED).unwrap();
        if workers <= 1 {
            session.collect().unwrap();
        } else {
            session
                .collect_with(&CollectPlan::new().workers(workers))
                .unwrap();
        }
        let vfs = session.shared_vfs();
        let vfs = vfs.lock();
        vfs.list("/").iter().map(|p| p.to_string()).collect()
    };
    let serial = files_after(1);
    assert!(!serial.is_empty(), "serial run left artifacts");
    // Every shard's task directories landed back on the shared filesystem.
    assert_eq!(files_after(4), serial);
}

#[test]
fn quota_failure_in_one_shard_leaves_siblings_untouched() {
    // Unrestricted run for comparison of the surviving SKUs' rows.
    let unrestricted = {
        let mut session = Session::create(UserConfig::example_openfoam(), SEED).unwrap();
        session.collect().unwrap()
    };

    let mut session = Session::create(UserConfig::example_openfoam(), SEED).unwrap();
    // Cap the HC family below 2 nodes (2 × 44 = 88 cores): the HC shard's
    // 1-node scenarios fit, everything larger fails on quota.
    session.provider().lock().quota_mut().set_limit("HC", 50);
    let report = session
        .collect_with(&CollectPlan::new().workers(4))
        .unwrap();

    assert_eq!(report.stats.executed, 36, "every scenario was visited");
    assert_eq!(
        report.stats.failed, 0,
        "quota exhaustion degrades, not fails"
    );
    assert!(report.stats.skipped > 0, "quota skips surfaced");
    for outcome in &report.outcomes {
        if outcome.sku.contains("HC44rs") && outcome.nnodes > 1 {
            assert_eq!(outcome.status, ScenarioStatus::Skipped, "{outcome:?}");
            let reason = outcome.fail_reason.as_deref().unwrap_or("");
            assert!(reason.contains("quota"), "reason: {reason}");
        } else {
            assert_eq!(
                outcome.status,
                ScenarioStatus::Completed,
                "sibling shard affected: {outcome:?}"
            );
        }
    }
    // The surviving SKUs' rows match the unrestricted run exactly.
    for point in &report.dataset.points {
        if point.sku.contains("HC44rs") {
            continue;
        }
        let baseline = unrestricted
            .points
            .iter()
            .find(|p| p.scenario_id == point.scenario_id)
            .unwrap();
        assert_eq!(
            format!("{point:?}"),
            format!("{baseline:?}"),
            "row {} changed under sibling quota pressure",
            point.scenario_id
        );
    }
}

#[test]
fn spot_evictions_replay_identically_across_worker_counts() {
    // A seeded spot sweep under real eviction pressure: every worker count
    // must see the same evictions (the roll is keyed by pool name, not by
    // scheduling order) and requeue/escalate its way to a 100% complete,
    // byte-identical dataset.
    let run = |workers: usize| {
        let mut session = Session::create(UserConfig::example_openfoam(), SEED).unwrap();
        session
            .provider()
            .lock()
            .set_fault_plan(cloudsim::FaultPlan::none().seed(13).evict_pressure(0.35));
        let report = session
            .collect_with(&CollectPlan::new().workers(workers).capacity(Capacity::Spot))
            .unwrap();
        let per_scenario: Vec<(u32, u32, u32)> = report
            .outcomes
            .iter()
            .map(|o| (o.scenario_id, o.attempts, o.evictions))
            .collect();
        (report, per_scenario)
    };
    let (serial, serial_outcomes) = run(1);
    assert_eq!(
        serial.stats.completed, 36,
        "the sweep completes under pressure: {:?}",
        serial.stats
    );
    assert_eq!(serial.stats.failed, 0);
    assert!(
        serial.stats.evictions > 0,
        "a 35% eviction rate actually fired: {:?}",
        serial.stats
    );
    for workers in [4usize, 8] {
        let (parallel, parallel_outcomes) = run(workers);
        assert_eq!(
            parallel.dataset.to_json(),
            serial.dataset.to_json(),
            "spot dataset with {workers} workers differs from serial"
        );
        assert_eq!(
            parallel_outcomes, serial_outcomes,
            "per-scenario attempts/evictions differ under {workers} workers"
        );
        assert_eq!(parallel.stats.evictions, serial.stats.evictions);
    }
    // Spot rows carry the capacity dimension and their eviction counts.
    assert!(serial
        .dataset
        .points
        .iter()
        .all(|p| p.capacity == Capacity::Spot));
    assert!(serial
        .dataset
        .points
        .iter()
        .any(|p| p.metrics.iter().any(|(k, _)| k == "EVICTIONS")));
}

#[test]
fn report_carries_billing_and_stats() {
    let mut session = Session::create(UserConfig::example_openfoam(), SEED).unwrap();
    let report = session
        .collect_with(&CollectPlan::new().workers(4))
        .unwrap();
    assert_eq!(report.stats.shards, 3, "one shard per SKU");
    assert!(report.stats.workers >= 2 && report.stats.workers <= 4);
    assert!(report.stats.wall_secs >= 0.0);
    // One billing summary per SKU pool, totalling the session's spend.
    assert_eq!(report.billing.len(), 3);
    let billed: f64 = report.billing.iter().map(|b| b.cost).sum();
    assert!((billed - session.total_cloud_cost()).abs() < 1e-9);
    let text = report.render_text();
    assert!(text.contains("collected 36 scenarios: 36 completed, 0 failed"));
    assert!(text.contains("pool "));
}
