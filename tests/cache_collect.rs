//! Incremental collection through the content-addressed scenario cache:
//! a warm run must be byte-identical to a cold run, provision nothing,
//! and survive cache-file damage by degrading to a cold run.

use hpcadvisor::core::cache::{CachePolicy, ScenarioCache};
use hpcadvisor::prelude::*;
use std::path::PathBuf;

fn config() -> UserConfig {
    UserConfig::from_yaml(
        r#"
subscription: mysubscription
skus:
- Standard_HC44rs
- Standard_HB120rs_v3
rgprefix: cachetest
appsetupurl: https://example.com/scripts/lammps.sh
nnodes: [1, 2, 4]
appname: lammps
region: southcentralus
ppr: 100
appinputs:
  BOXFACTOR: "8"
"#,
    )
    .unwrap()
}

fn cache_path(tag: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!(
        "hpcadvisor-itest-{tag}-{}.json",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    path
}

fn session_with_cache(config: UserConfig, path: &PathBuf) -> Session {
    Session::builder(config)
        .seed(42)
        .cache(ScenarioCache::open(path))
        .build()
        .unwrap()
}

#[test]
fn warm_rerun_is_byte_identical_and_provisions_nothing() {
    let path = cache_path("warm");

    // Cold run: populates the cache file.
    let mut cold = session_with_cache(config(), &path);
    let cold_report = cold.collect_with(&CollectPlan::new()).unwrap();
    assert_eq!(cold_report.stats.executed, 6);
    assert_eq!(cold_report.stats.cache_hits, 0);
    assert_eq!(cold_report.stats.cache_misses, 6);
    assert!(cold.total_cloud_cost() > 0.0, "cold run provisions pools");
    let cold_json = cold_report.dataset.to_json();
    assert!(path.exists(), "cache persisted");

    // Warm run in a brand new session/deployment over the same cache file.
    let mut warm = session_with_cache(config(), &path);
    let warm_report = warm.collect_with(&CollectPlan::new()).unwrap();
    assert_eq!(warm_report.stats.cache_hits, 6);
    assert_eq!(warm_report.stats.cache_misses, 0);
    assert_eq!(warm_report.stats.executed, 0);
    assert_eq!(warm_report.stats.completed, 6);
    assert!(warm_report.outcomes.iter().all(|o| o.cached));
    assert!(warm_report.outcomes.iter().all(|o| o.shard.is_none()));

    // Zero provisioning: no pool was ever created, so nothing was billed.
    assert!(warm_report.billing.is_empty(), "no pools on a warm run");
    assert_eq!(warm.total_cloud_cost(), 0.0, "warm run costs nothing");

    // Byte-identical dataset, and statuses written back.
    assert_eq!(warm_report.dataset.to_json(), cold_json);
    assert!(warm
        .scenarios()
        .iter()
        .all(|s| s.status == ScenarioStatus::Completed));
    assert!(warm_report.render_text().contains("6 hits"));

    let _ = std::fs::remove_file(&path);
}

#[test]
fn parallel_warm_run_matches_serial_cold_run() {
    let path = cache_path("parallel");
    let serial_cold = {
        let mut s = Session::create(config(), 42).unwrap();
        s.collect().unwrap().to_json()
    };
    // Populate the cache with a parallel cold run...
    let mut s = session_with_cache(config(), &path);
    let report = s.collect_with(&CollectPlan::new().workers(4)).unwrap();
    assert_eq!(report.dataset.to_json(), serial_cold);
    // ...then a parallel warm run serves everything id-ordered from cache.
    let mut warm = session_with_cache(config(), &path);
    let report = warm.collect_with(&CollectPlan::new().workers(4)).unwrap();
    assert_eq!(report.stats.cache_hits, 6);
    assert_eq!(report.dataset.to_json(), serial_cold);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn corrupted_cache_file_degrades_to_a_cold_run() {
    let path = cache_path("corrupt");
    std::fs::write(&path, "{\"version\": 1, \"entries\": {\"tru").unwrap();
    let cold_json = {
        let mut s = Session::create(config(), 42).unwrap();
        s.collect().unwrap().to_json()
    };
    let mut s = session_with_cache(config(), &path);
    assert!(s.cache().recovered(), "damage detected, not fatal");
    let report = s.collect_with(&CollectPlan::new()).unwrap();
    assert_eq!(report.stats.cache_hits, 0);
    assert_eq!(report.stats.executed, 6);
    assert_eq!(report.dataset.to_json(), cold_json);
    // The rewritten cache file is healthy again and serves a warm run.
    let mut warm = session_with_cache(config(), &path);
    assert!(!warm.cache().recovered());
    let report = warm.collect_with(&CollectPlan::new()).unwrap();
    assert_eq!(report.stats.cache_hits, 6);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn changed_fingerprint_inputs_invalidate_automatically() {
    let path = cache_path("invalidate");
    let mut s = session_with_cache(config(), &path);
    s.collect_with(&CollectPlan::new()).unwrap();

    // Same config, different experiment seed: every fingerprint moves.
    let mut other_seed = session_with_cache(config(), &path);
    let report = other_seed
        .collect_with(&CollectPlan::new().experiment_seed(43))
        .unwrap();
    assert_eq!(report.stats.cache_hits, 0, "seed is fingerprinted");
    assert_eq!(report.stats.executed, 6);

    // A widened node grid keeps the overlapping points warm even though
    // scenario ids shift: only the new node counts run.
    let mut wide_config = config();
    wide_config.nnodes = vec![1, 2, 4, 8];
    let mut widened = session_with_cache(wide_config, &path);
    let report = widened.collect_with(&CollectPlan::new()).unwrap();
    assert_eq!(report.stats.cache_hits, 6, "old grid points reused");
    assert_eq!(report.stats.executed, 2, "only the two new 8-node points");
    let ids: Vec<u32> = report
        .dataset
        .points
        .iter()
        .map(|p| p.scenario_id)
        .collect();
    let mut sorted = ids.clone();
    sorted.sort_unstable();
    assert_eq!(ids, sorted, "merged id-ordered");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn read_only_and_off_policies() {
    let path = cache_path("policies");

    // ReadOnly on an empty cache: runs cold, writes nothing.
    let mut s = session_with_cache(config(), &path);
    let report = s
        .collect_with(&CollectPlan::new().cache(CachePolicy::ReadOnly))
        .unwrap();
    assert_eq!(report.stats.executed, 6);
    assert!(!path.exists(), "read-only never persists");

    // Populate, then Off: the warm file is ignored entirely.
    let mut s = session_with_cache(config(), &path);
    s.collect_with(&CollectPlan::new()).unwrap();
    assert!(path.exists());
    let mut off = session_with_cache(config(), &path);
    let report = off
        .collect_with(&CollectPlan::new().cache(CachePolicy::Off))
        .unwrap();
    assert_eq!(report.stats.cache_hits, 0);
    assert_eq!(report.stats.cache_misses, 0);
    assert_eq!(report.stats.executed, 6);

    // ReadOnly on the warm file: full hits, and the file is untouched
    // (compared as raw bytes — the store is a binary record log).
    let before = std::fs::read(&path).unwrap();
    let mut ro = session_with_cache(config(), &path);
    let report = ro
        .collect_with(&CollectPlan::new().cache(CachePolicy::ReadOnly))
        .unwrap();
    assert_eq!(report.stats.cache_hits, 6);
    assert_eq!(std::fs::read(&path).unwrap(), before);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn serial_collect_consults_the_cache_too() {
    let path = cache_path("serial");
    let mut s = session_with_cache(config(), &path);
    let cold = s.collect().unwrap();
    assert_eq!(cold.len(), 6);

    let mut warm = session_with_cache(config(), &path);
    let ds = warm.collect().unwrap();
    assert_eq!(ds.to_json(), cold.to_json());
    assert_eq!(warm.total_cloud_cost(), 0.0, "legacy path also warm");
    let _ = std::fs::remove_file(&path);
}
