//! E4–E8: the paper's Figures 2–6 — series shapes and renderability.

use hpcadvisor::core::metrics;
use hpcadvisor::core::plot;
use hpcadvisor::prelude::*;

const SEED: u64 = 7;

fn lammps_dataset() -> Dataset {
    let mut session = Session::create(UserConfig::example_lammps(), SEED).unwrap();
    session.collect().unwrap()
}

#[test]
fn fig2_time_vs_nodes_series_shape() {
    let ds = lammps_dataset();
    let series = metrics::time_vs_nodes(&ds, &DataFilter::all());
    assert_eq!(series.len(), 3, "three SKU series like the paper's Fig. 2");
    for s in &series {
        // Monotonically decreasing with node count for this workload.
        for w in s.points.windows(2) {
            assert!(w[1].1 < w[0].1, "{}: {:?}", s.sku, s.points);
        }
    }
    // The 44-core SKU sits above the 120-core ones at every node count.
    let hc = series.iter().find(|s| s.sku == "hc44rs").unwrap();
    let v3 = series.iter().find(|s| s.sku == "hb120rs_v3").unwrap();
    for (n, t_hc) in &hc.points {
        if let Some((_, t_v3)) = v3.points.iter().find(|(m, _)| m == n) {
            assert!(t_hc > t_v3, "at {n} nodes: HC {t_hc} vs v3 {t_v3}");
        }
    }
}

#[test]
fn fig3_time_vs_cost_tradeoff() {
    let ds = lammps_dataset();
    let series = metrics::time_vs_cost(&ds, &DataFilter::all());
    let v3 = series.iter().find(|s| s.sku == "hb120rs_v3").unwrap();
    // Within one SKU, faster runs cost more (the fundamental trade-off the
    // advisor exists for).
    let fastest = v3.points.iter().min_by(|a, b| a.1.total_cmp(&b.1)).unwrap();
    let cheapest = v3.points.iter().min_by(|a, b| a.0.total_cmp(&b.0)).unwrap();
    assert!(
        fastest.0 > cheapest.0,
        "fastest {fastest:?} vs cheapest {cheapest:?}"
    );
    assert!(fastest.1 < cheapest.1);
}

#[test]
fn fig4_speedup_near_linear_for_lammps() {
    let ds = lammps_dataset();
    let series = metrics::speedup(&ds, &DataFilter::all());
    let v3 = series.iter().find(|s| s.sku == "hb120rs_v3").unwrap();
    // Baseline anchors at its own node count.
    let (base_n, base_su) = v3.points[0];
    assert!((base_su - base_n).abs() < 1e-9);
    // At 16 nodes, speedup is substantial but sub-ideal.
    let (_, su16) = *v3.points.last().unwrap();
    assert!(su16 > 8.0 && su16 < 16.0, "speedup(16) = {su16:.1}");
}

#[test]
fn fig5_superlinear_efficiency_region() {
    // The paper's Fig. 5 shows efficiency > 1. A moderate box (×8 ⇒ 16M
    // atoms, ~10 GB) drops into HBv3's 1.5 GiB V-Cache around 8 nodes:
    // superlinear in the mid-range, before Amdahl losses win again.
    let mut config = UserConfig::example_lammps();
    config.skus = vec!["Standard_HB120rs_v3".into(), "Standard_HB120rs_v2".into()];
    // 2,000 steps ⇒ minutes-long runs, so startup noise cannot mask the
    // per-step superlinearity (real benchmarking practice, same reason).
    config.appinputs = vec![
        ("BOXFACTOR".into(), vec!["8".into()]),
        ("steps".into(), vec!["2000".into()]),
    ];
    config.nnodes = vec![1, 2, 4, 8, 16];
    let mut session = Session::create(config, SEED).unwrap();
    let ds = session.collect().unwrap();
    let series = metrics::efficiency(&ds, &DataFilter::all());
    let v3 = series.iter().find(|s| s.sku == "hb120rs_v3").unwrap();
    let max_eff = v3.points.iter().map(|(_, e)| *e).fold(0.0, f64::max);
    assert!(
        max_eff > 1.0,
        "HBv3 efficiency never exceeded 1: {:?}",
        v3.points
    );
    // Efficiency at the baseline is exactly 1.
    assert!((v3.points[0].1 - 1.0).abs() < 1e-9);
}

#[test]
fn fig6_pareto_chart_renders_with_front() {
    let ds = lammps_dataset();
    let chart = plot::pareto_chart(&ds, &DataFilter::all());
    let svg = chart.to_svg(800, 500);
    assert!(svg.contains("pareto front"));
    assert!(svg.contains("<path"), "front drawn as a step line");
    assert!(svg.contains("<circle"), "scenario scatter present");
    // ASCII + CSV backends also work on the same chart.
    assert!(chart.to_ascii(70, 18).contains("pareto front"));
    assert!(chart.to_csv().lines().count() > 10);
}

#[test]
fn all_figures_write_svg_files() {
    let ds = lammps_dataset();
    let dir = std::env::temp_dir().join(format!("hpcadvisor-figs-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    for (name, chart) in plot::all_charts(&ds, &DataFilter::all()) {
        let path = dir.join(format!("{name}.svg"));
        std::fs::write(&path, chart.to_svg(800, 500)).unwrap();
        let written = std::fs::read_to_string(&path).unwrap();
        assert!(written.starts_with("<svg"), "{name}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}
