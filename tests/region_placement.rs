//! Multi-region placement end to end: a region outage mid-grid fails over
//! deterministically (byte-identical under any worker count), a killed run
//! resumes to the same placements, an abandoned region is never billed,
//! and when every candidate region is down the grid degrades to journaled
//! SLA skips instead of failures.

use cloudsim::{FaultMode, FaultPlan, RegionFault};
use hpcadvisor_core::prelude::*;
use std::path::PathBuf;

const SEED: u64 = 42;
const PRIMARY: &str = "southcentralus";
const FALLBACK: &str = "westeurope";

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hpcadvisor-region-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A two-region grid: every `(SKU, nnodes)` point is pinned once to the
/// primary region and once to the fallback, in failover order.
fn multi_region_config() -> UserConfig {
    UserConfig::from_yaml(&format!(
        r#"
subscription: mysubscription
skus:
- Standard_HC44rs
- Standard_HB120rs_v3
rgprefix: regiontest
appsetupurl: https://example.com/scripts/lammps.sh
nnodes: [1, 2, 4]
appname: lammps
region: {PRIMARY}
regions:
- {PRIMARY}
- {FALLBACK}
ppr: 100
appinputs:
  BOXFACTOR: "8"
"#
    ))
    .unwrap()
}

/// The chaos plan: the primary region's control plane rejects every
/// allocation; every other region stays healthy.
fn primary_outage() -> FaultPlan {
    FaultPlan::none().fail_region_named(PRIMARY, RegionFault::Outage, FaultMode::Always)
}

#[test]
fn primary_outage_fails_over_byte_identically_across_worker_counts() {
    let run = |workers: usize| {
        let mut session = Session::create(multi_region_config(), SEED).unwrap();
        session.provider().lock().set_fault_plan(primary_outage());
        let report = session
            .collect_with(&CollectPlan::new().workers(workers))
            .unwrap();
        let outcomes: Vec<(u32, u32, u32)> = report
            .outcomes
            .iter()
            .map(|o| (o.scenario_id, o.attempts, o.failovers))
            .collect();
        (report.dataset.to_json(), outcomes, report.stats.clone())
    };
    let (serial, serial_outcomes, stats) = run(1);
    let (four, four_outcomes, _) = run(4);
    let (eight, eight_outcomes, _) = run(8);
    assert_eq!(serial, four, "dataset identical under 4-way sharding");
    assert_eq!(serial, eight, "dataset identical under 8-way sharding");
    assert_eq!(serial_outcomes, four_outcomes);
    assert_eq!(serial_outcomes, eight_outcomes);

    // 100% completion through failover: the 6 primary-pinned scenarios
    // rerouted, the 6 fallback-pinned ones never noticed.
    assert_eq!(stats.completed, 12, "{stats:?}");
    assert_eq!(stats.failed, 0);
    assert_eq!(stats.skipped, 0);
    // Escalation: after 2 faults a `(SKU, region)` is marked down, so only
    // the first two primary-pinned scenarios per SKU pay a live failover —
    // the rest route straight to the fallback without touching the outage.
    assert_eq!(stats.failovers, 4, "{stats:?}");
    // Every row the advisor reasons over actually ran in the fallback.
    let dataset: Vec<&str> = serial.lines().collect();
    assert!(!dataset.is_empty());
    assert!(
        serial
            .matches(&format!("\"region\": \"{FALLBACK}\""))
            .count()
            == 12,
        "all 12 rows placed in {FALLBACK}:\n{serial}"
    );
    assert!(!serial.contains(&format!("\"region\": \"{PRIMARY}\"")));
}

#[test]
fn kill_and_resume_replays_the_same_placements() {
    let dir = tempdir("resume");
    let journal_path = dir.join("run-journal.jsonl");
    let config = multi_region_config();

    // Uninterrupted reference run under the same outage.
    let baseline = {
        let mut session = Session::create(config.clone(), SEED).unwrap();
        session.provider().lock().set_fault_plan(primary_outage());
        session
            .collect_with(&CollectPlan::new())
            .unwrap()
            .dataset
            .to_json()
    };

    // "Crashed" run: half the grid lands in the journal, then the process
    // dies.
    let mut session = Session::builder(config.clone())
        .seed(SEED)
        .journal(RunJournal::open_fresh(&journal_path))
        .build()
        .unwrap();
    session.provider().lock().set_fault_plan(primary_outage());
    let half: Vec<u32> = session.scenarios().iter().take(6).map(|s| s.id).collect();
    let report = session
        .collect_with(&CollectPlan::new().subset(half))
        .unwrap();
    assert_eq!(report.stats.executed, 6);
    drop(session);

    // Resume under the same outage: journaled scenarios replay their
    // placement without touching the cloud, the remainder fails over
    // exactly as the uninterrupted run did.
    let mut resumed = Session::resume(config, SEED, RunJournal::open(&journal_path)).unwrap();
    resumed.provider().lock().set_fault_plan(primary_outage());
    let report = resumed.collect_with(&CollectPlan::new()).unwrap();
    assert_eq!(report.stats.journal_replayed, 6);
    assert_eq!(report.stats.executed, 6, "only the remainder executed");
    assert_eq!(report.dataset.to_json(), baseline, "placements replayed");
    for outcome in &report.outcomes {
        if outcome.replayed {
            assert_eq!(outcome.attempts, 0, "replays never touch the cloud");
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn failover_never_bills_the_abandoned_region() {
    let mut session = Session::create(multi_region_config(), SEED).unwrap();
    session.provider().lock().set_fault_plan(primary_outage());
    // The landing zone may have billed home-region spend during deployment;
    // failover must not add to it.
    let primary_before = session.provider().lock().billing().cost_for_region(PRIMARY);
    let report = session.collect_with(&CollectPlan::new()).unwrap();
    assert_eq!(report.stats.completed, 12);

    let provider = session.provider();
    let mut provider = provider.lock();
    let primary_after = provider.billing().cost_for_region(PRIMARY);
    assert_eq!(
        primary_after, primary_before,
        "the abandoned region billed nothing during collection"
    );
    assert!(
        provider.billing().cost_for_region(FALLBACK) > 0.0,
        "the fallback region carried the whole grid"
    );
    // The outage rejected allocations before quota was granted, so the
    // abandoned region's pool holds no leaked cores either.
    for family in ["HC", "HBv3"] {
        assert_eq!(
            provider.quota_mut_in(PRIMARY).unwrap().used(family),
            0,
            "no quota leaked in {PRIMARY} for {family}"
        );
    }
}

#[test]
fn forced_outage_chaos_run_reports_placement_in_advice() {
    let mut session = Session::create(multi_region_config(), SEED).unwrap();
    session.provider().lock().set_fault_plan(primary_outage());
    let report = session.collect_with(&CollectPlan::new()).unwrap();
    assert_eq!(report.stats.completed, 12, "{:?}", report.stats);

    let advice = Advice::from_dataset(&report.dataset, &DataFilter::all());
    let text = advice.render_text();
    // Rows carry their placed region, and the placement summary reports the
    // per-region completion picture.
    assert!(text.contains(&format!("@{FALLBACK}")), "{text}");
    assert!(text.contains(&format!("placement {FALLBACK}:")), "{text}");
    assert!(text.contains("12/12 completed"), "{text}");
}

#[test]
fn all_regions_down_degrades_to_journaled_sla_skips() {
    let dir = tempdir("sla");
    let journal_path = dir.join("run-journal.jsonl");
    let config = multi_region_config();
    let outage_everywhere =
        || FaultPlan::none().fail_region(RegionFault::Outage, FaultMode::Always);

    let mut session = Session::builder(config.clone())
        .seed(SEED)
        .journal(RunJournal::open_fresh(&journal_path))
        .build()
        .unwrap();
    session
        .provider()
        .lock()
        .set_fault_plan(outage_everywhere());
    let report = session.collect_with(&CollectPlan::new()).unwrap();
    assert_eq!(report.stats.completed, 0);
    assert_eq!(report.stats.failed, 0, "degradation, not failure");
    assert_eq!(report.stats.skipped, 12, "{:?}", report.stats);
    for outcome in &report.outcomes {
        assert_eq!(outcome.status, ScenarioStatus::Skipped, "{outcome:?}");
        let reason = outcome.fail_reason.as_deref().unwrap_or("");
        assert!(
            reason.contains("no region satisfies placement SLA"),
            "typed skip reason: {reason}"
        );
    }
    // Placement exhaustion is a deliberate verdict: every skip is journaled.
    let journal = RunJournal::open(&journal_path);
    assert_eq!(journal.len(), 12);
    drop(session);

    // Resume honors the verdicts even with the fault plan lifted: nothing
    // re-runs until the operator asks for it with `rerun_failed`.
    let mut resumed = Session::resume(config, SEED, RunJournal::open(&journal_path)).unwrap();
    let report = resumed.collect_with(&CollectPlan::new()).unwrap();
    assert_eq!(report.stats.journal_replayed, 12);
    assert_eq!(report.stats.executed, 0);
    assert_eq!(report.stats.skipped, 12);
    drop(resumed);

    let mut rerun =
        Session::resume(multi_region_config(), SEED, RunJournal::open(&journal_path)).unwrap();
    let report = rerun
        .collect_with(&CollectPlan::new().rerun_failed(true))
        .unwrap();
    assert_eq!(
        report.stats.completed, 12,
        "healthy regions: grid completes"
    );
    assert_eq!(report.stats.skipped, 0);
    let _ = std::fs::remove_dir_all(&dir);
}
