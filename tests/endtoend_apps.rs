//! End-to-end deploy → collect → advise for every modelled application,
//! exercising each bundled script, each log-scraping pipeline and each
//! performance model through the full stack.

use hpcadvisor::prelude::*;

fn config_for(app: &str, inputs: &[(&str, &str)]) -> UserConfig {
    let mut input_yaml = String::new();
    for (k, v) in inputs {
        input_yaml.push_str(&format!("  {k}: \"{v}\"\n"));
    }
    UserConfig::from_yaml(&format!(
        r#"
subscription: mysubscription
skus:
- Standard_HB120rs_v3
rgprefix: e2e{app}
appsetupurl: https://example.com/scripts/{app}.sh
nnodes: [1, 2, 4]
appname: {app}
region: southcentralus
ppr: 100
appinputs:
{input_yaml}
"#
    ))
    .unwrap()
}

fn run_app(app: &str, inputs: &[(&str, &str)]) -> (Dataset, Advice) {
    let mut session = Session::create(config_for(app, inputs), 7).unwrap();
    let ds = session.collect().unwrap();
    let advice = Advice::from_dataset(&ds, &DataFilter::all());
    (ds, advice)
}

#[test]
fn lammps_end_to_end() {
    let (ds, advice) = run_app("lammps", &[("BOXFACTOR", "8")]);
    assert_eq!(ds.completed().len(), 3);
    assert!(!advice.rows.is_empty());
    assert!(ds.points[0].metric("LAMMPSATOMS").is_some());
}

#[test]
fn openfoam_end_to_end() {
    let (ds, advice) = run_app("openfoam", &[("mesh", "20 8 8")]);
    assert_eq!(ds.completed().len(), 3);
    assert!(!advice.rows.is_empty());
    assert!(ds.points[0].metric("OFCELLS").is_some());
}

#[test]
fn wrf_end_to_end() {
    let (ds, advice) = run_app("wrf", &[("resolution_km", "12"), ("hours", "3")]);
    assert_eq!(ds.completed().len(), 3);
    assert!(!advice.rows.is_empty());
    assert!(ds.points[0].metric("WRFSTEPS").is_some());
}

#[test]
fn gromacs_end_to_end() {
    let (ds, advice) = run_app("gromacs", &[("atoms", "1000000"), ("steps", "5000")]);
    assert_eq!(ds.completed().len(), 3);
    assert!(!advice.rows.is_empty());
    assert!(ds.points[0].metric("GMXNSPERDAY").is_some());
}

#[test]
fn namd_end_to_end() {
    let (ds, advice) = run_app("namd", &[("atoms", "1066628"), ("steps", "500")]);
    assert_eq!(ds.completed().len(), 3);
    assert!(!advice.rows.is_empty());
}

#[test]
fn matmul_end_to_end() {
    let (ds, advice) = run_app("matmul", &[("n", "40000")]);
    assert_eq!(ds.completed().len(), 3);
    assert!(!advice.rows.is_empty());
    assert!(ds.points[0].metric("GFLOPS").is_some());
}

#[test]
fn every_completed_point_has_infra_metrics() {
    for (app, inputs) in [
        ("lammps", vec![("BOXFACTOR", "8")]),
        ("gromacs", vec![("atoms", "500000")]),
    ] {
        let (ds, _) = run_app(app, &inputs);
        for p in ds.completed() {
            for key in ["cpu", "membw", "net", "bottleneck"] {
                assert!(p.infra_metric(key).is_some(), "{app} missing infra '{key}'");
            }
            let cpu: f64 = p.infra_metric("cpu").unwrap().parse().unwrap();
            assert!((0.0..=1.0).contains(&cpu));
        }
    }
}

#[test]
fn multi_input_sweep_produces_distinct_series() {
    let config = config_for("lammps", &[]);
    let mut config = config;
    config.appinputs = vec![("BOXFACTOR".into(), vec!["6".into(), "10".into()])];
    let mut session = Session::create(config, 7).unwrap();
    let ds = session.collect().unwrap();
    assert_eq!(ds.completed().len(), 6);
    let small = DataFilter::parse("BOXFACTOR=6").unwrap();
    let large = DataFilter::parse("BOXFACTOR=10").unwrap();
    let t_small = ds
        .filter(&small)
        .iter()
        .map(|p| p.exec_time_secs)
        .sum::<f64>();
    let t_large = ds
        .filter(&large)
        .iter()
        .map(|p| p.exec_time_secs)
        .sum::<f64>();
    assert!(t_large > 2.0 * t_small, "bigger input must cost more");
}
