//! The multi-tenant advisor service: concurrent tenants must see exactly
//! what standalone runs see (byte-identical datasets), identical scenarios
//! must be simulated once across tenants (observable in the cache
//! counters), quota violations must be typed errors, and shutdown must
//! drain admitted jobs.

use hpcadvisor::core::cache::SharedScenarioCache;
use hpcadvisor::prelude::*;
use std::sync::Arc;

fn lammps_yaml(rgprefix: &str, nnodes: &str) -> String {
    format!(
        r#"
subscription: mysubscription
skus:
- Standard_HC44rs
- Standard_HB120rs_v3
rgprefix: {rgprefix}
appsetupurl: https://example.com/scripts/lammps.sh
nnodes: {nnodes}
appname: lammps
region: southcentralus
ppr: 100
appinputs:
  BOXFACTOR: "8"
"#
    )
}

fn config(rgprefix: &str, nnodes: &str) -> UserConfig {
    UserConfig::from_yaml(&lammps_yaml(rgprefix, nnodes)).unwrap()
}

/// What a standalone (no daemon) run of the same config/seed produces.
fn standalone_json(config: UserConfig, seed: u64) -> String {
    let mut session = Session::create(config, seed).unwrap();
    let report = session.collect_with(&CollectPlan::new()).unwrap();
    report.dataset.to_json()
}

#[test]
fn concurrent_tenants_match_serial_cli_runs_byte_for_byte() {
    // Three tenants with different grids, submitted concurrently through
    // one service; each must get exactly the bytes a standalone run of
    // its own config produces. Distinct seeds keep the grids from
    // dedup'ing against each other here — dedup has its own test below.
    let tenants: Vec<(&str, UserConfig, u64)> = vec![
        ("alice", config("svca", "[1, 2, 4]"), 11),
        ("bob", config("svcb", "[1, 2]"), 22),
        ("carol", config("svcc", "[2, 4]"), 33),
    ];
    let service = AdvisorService::start(ServiceConfig {
        workers: 3,
        ..ServiceConfig::default()
    });
    let handles: Vec<_> = tenants
        .iter()
        .map(|(tenant, config, seed)| {
            let mut request = AdviceRequest::new(*tenant, config.clone(), *seed);
            request.workers = 2;
            service.submit(request).unwrap()
        })
        .collect();
    let outcomes: Vec<_> = handles.into_iter().map(|h| h.wait().unwrap()).collect();
    service.shutdown();
    for ((tenant, config, seed), outcome) in tenants.iter().zip(&outcomes) {
        assert_eq!(outcome.tenant, *tenant);
        assert_eq!(
            outcome.dataset_json,
            standalone_json(config.clone(), *seed),
            "daemon dataset for '{tenant}' differs from the standalone run"
        );
    }
}

#[test]
fn identical_scenarios_dedup_across_tenants() {
    // Two tenants ask the exact same question: the second request answers
    // entirely from the shared cache — zero executions, zero new cost —
    // and still returns byte-identical data.
    let service = AdvisorService::start(ServiceConfig {
        workers: 1, // serialize so the first run populates the cache
        ..ServiceConfig::default()
    });
    let ask = |tenant: &str| {
        service
            .submit(AdviceRequest::new(tenant, config("dedup", "[1, 2, 4]"), 42))
            .unwrap()
    };
    let first = ask("alice").wait().unwrap();
    assert_eq!(first.stats.cache_hits, 0);
    assert_eq!(first.stats.cache_misses, 6);
    assert_eq!(first.stats.executed, 6);
    assert!(first.run_cost_dollars > 0.0, "cold run provisions pools");

    let second = ask("bob").wait().unwrap();
    assert_eq!(second.stats.cache_hits, 6, "all-hits: alice already paid");
    assert_eq!(second.stats.executed, 0);
    assert_eq!(
        second.run_cost_dollars, 0.0,
        "a deduped run provisions nothing"
    );
    assert_eq!(second.dataset_json, first.dataset_json);
    assert!(service.tenant_spend("bob") == 0.0);
    assert!(service.tenant_spend("alice") > 0.0);
    service.shutdown();
}

#[test]
fn over_quota_tenant_is_rejected_with_a_typed_error() {
    // max_inflight 1: the second submit while the first is queued/running
    // must be a typed refusal, not a panic — and other tenants are
    // unaffected.
    let service = AdvisorService::start(ServiceConfig {
        workers: 1,
        policy: TenantPolicy {
            max_inflight: 1,
            ..TenantPolicy::default()
        },
        ..ServiceConfig::default()
    });
    let first = service
        .submit(AdviceRequest::new(
            "greedy",
            config("quota", "[1, 2, 4]"),
            1,
        ))
        .unwrap();
    let err = service
        .submit(AdviceRequest::new("greedy", config("quota", "[1]"), 1))
        .unwrap_err();
    assert!(
        matches!(
            err,
            ServiceError::OverQuota { ref tenant, inflight: 1, limit: 1 } if tenant == "greedy"
        ),
        "{err:?}"
    );
    // A different tenant still gets in.
    let other = service
        .submit(AdviceRequest::new("patient", config("quota2", "[1]"), 1))
        .unwrap();
    assert!(first.wait().is_ok());
    assert!(other.wait().is_ok());
    // The slot freed once the job finished.
    let again = service
        .submit(AdviceRequest::new("greedy", config("quota", "[1]"), 2))
        .unwrap();
    assert!(again.wait().is_ok());
    service.shutdown();
}

#[test]
fn budget_and_grid_quotas_reject_typed() {
    let service = AdvisorService::start(ServiceConfig {
        workers: 1,
        policy: TenantPolicy {
            budget_dollars: Some(0.000001),
            max_scenarios: Some(4),
            ..TenantPolicy::default()
        },
        ..ServiceConfig::default()
    });
    // Grid ceiling: 3 nodes × 2 SKUs = 6 scenarios > 4.
    let err = service
        .submit(AdviceRequest::new("t", config("grid", "[1, 2, 4]"), 1))
        .unwrap_err();
    assert!(
        matches!(
            err,
            ServiceError::GridTooLarge {
                scenarios: 6,
                limit: 4,
                ..
            }
        ),
        "{err:?}"
    );
    // First small job fits the budget check (spend is 0 up front) ...
    let outcome = service
        .submit(AdviceRequest::new("t", config("bdg", "[1]"), 1))
        .unwrap()
        .wait()
        .unwrap();
    assert!(outcome.run_cost_dollars > 0.000001);
    // ... and exhausts it for the next one.
    let err = service
        .submit(AdviceRequest::new("t", config("bdg", "[2]"), 1))
        .unwrap_err();
    assert!(
        matches!(err, ServiceError::BudgetExhausted { budget, .. } if budget == 0.000001),
        "{err:?}"
    );
    service.shutdown();
}

#[test]
fn shutdown_drains_every_admitted_job() {
    // One worker, several queued jobs: shutdown must let every admitted
    // job finish — clients still get their terminal events afterwards.
    let service = AdvisorService::start(ServiceConfig {
        workers: 1,
        ..ServiceConfig::default()
    });
    let handles: Vec<_> = (0..4)
        .map(|i| {
            service
                .submit(AdviceRequest::new("t", config("drain", "[1, 2]"), i + 1))
                .unwrap()
        })
        .collect();
    service.shutdown();
    for handle in handles {
        let outcome = handle.wait().expect("admitted job drained, not dropped");
        assert_eq!(outcome.stats.completed, 4);
    }
}

#[test]
fn full_queue_pushes_back_with_a_typed_error() {
    // Queue bound 1, one busy worker: a burst of submissions must hit the
    // typed QueueFull refusal instead of blocking or panicking.
    let service = AdvisorService::start(ServiceConfig {
        workers: 1,
        queue_capacity: 1,
        policy: TenantPolicy {
            max_inflight: usize::MAX,
            ..TenantPolicy::default()
        },
        ..ServiceConfig::default()
    });
    let mut handles = Vec::new();
    let mut saw_full = false;
    for i in 0..200 {
        match service.submit(AdviceRequest::new("burst", config("full", "[1]"), i + 1)) {
            Ok(h) => handles.push(h),
            Err(ServiceError::QueueFull { capacity: 1 }) => {
                saw_full = true;
                break;
            }
            Err(e) => panic!("unexpected refusal: {e:?}"),
        }
    }
    assert!(saw_full, "a bound-1 queue must push back under a burst");
    // Everything admitted before the refusal still completes.
    for handle in handles {
        assert!(handle.wait().is_ok());
    }
    service.shutdown();
}

#[test]
fn progress_events_stream_per_scenario() {
    let service = AdvisorService::start(ServiceConfig::default());
    let handle = service
        .submit(AdviceRequest::new("t", config("prog", "[1, 2, 4]"), 7))
        .unwrap();
    let mut starts = 0;
    let mut ends = 0;
    let mut finished = false;
    for event in handle.events().iter() {
        match event {
            JobEvent::Progress(ev) => match ev.kind.as_str() {
                "scenario_start" => starts += 1,
                "scenario_end" => ends += 1,
                _ => {}
            },
            JobEvent::Finished(_) => {
                finished = true;
                break;
            }
            JobEvent::Failed(m) => panic!("{m}"),
        }
    }
    assert!(finished);
    assert_eq!(starts, 6, "one scenario_start per scenario");
    assert_eq!(ends, 6, "one scenario_end per scenario");
    service.shutdown();
}

#[test]
fn shared_cache_survives_the_service_and_feeds_sessions() {
    // A cache handle outlives the service: a later plain SessionBuilder
    // run over the same handle sees the daemon's results.
    let cache = SharedScenarioCache::in_memory();
    let service = AdvisorService::start(ServiceConfig {
        cache: cache.clone(),
        ..ServiceConfig::default()
    });
    service
        .submit(AdviceRequest::new("t", config("handoff", "[1, 2]"), 42))
        .unwrap()
        .wait()
        .unwrap();
    service.shutdown();
    assert_eq!(cache.len(), 4);
    let mut session = Session::builder(config("handoff", "[1, 2]"))
        .seed(42)
        .shared_cache(cache)
        .build()
        .unwrap();
    let report = session.collect_with(&CollectPlan::new()).unwrap();
    assert_eq!(report.stats.cache_hits, 4, "warm from the daemon's work");
}

#[test]
fn session_progress_tap_works_without_a_service() {
    // The builder's progress tap is usable directly (the daemon is just
    // one consumer): count scenario events through an EventBus.
    use hpcadvisor::telemetry::EventBus;
    let bus = Arc::new(EventBus::new());
    let events = bus.subscribe();
    let mut session = Session::builder(config("tap", "[1, 2]"))
        .seed(42)
        .progress(bus)
        .build()
        .unwrap();
    session
        .collect_with(&CollectPlan::new().workers(2))
        .unwrap();
    let kinds: Vec<String> = events.try_iter().map(|ev| ev.kind).collect();
    assert_eq!(
        kinds.iter().filter(|k| *k == "scenario_end").count(),
        4,
        "{kinds:?}"
    );
}
