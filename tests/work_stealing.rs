//! The chunked work-stealing scheduler at scale: a hot-SKU-skew grid whose
//! hot SKU splits into multiple chunks must produce byte-identical
//! datasets, traces, and journals across 1/4/8 workers — including under
//! spot-eviction and fault pressure — and a run killed mid-steal must
//! resume from the journal to the uninterrupted result.

use cloudsim::{Capacity, FaultPlan, Operation};
use hpcadvisor_core::collect::DEFAULT_CHUNK_SIZE;
use hpcadvisor_core::prelude::*;
use std::path::PathBuf;

const SEED: u64 = 42;

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hpcadvisor-steal-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A grid big enough to chunk: 3 SKUs × 4 node counts × 12 mesh sizes =
/// 48 scenarios per SKU, above the 32-scenario chunk size. Mesh
/// dimensions stay in the bundled examples' range so scenarios complete.
fn wide_config() -> UserConfig {
    let mut config = UserConfig::example_openfoam();
    config.nnodes = vec![1, 2, 3, 4];
    config.appinputs = vec![(
        "mesh".into(),
        (52..=63).map(|x| format!("{x} 16 16")).collect(),
    )];
    config
}

/// A hot-SKU-skew subset: every scenario of the first SKU (48 — two
/// chunks) plus a 4-scenario tail of each remaining SKU. One SKU carries
/// ~86% of the work, the regime where per-SKU shards serialize.
fn hot_subset(session: &Session) -> Vec<u32> {
    let scenarios = session.scenarios();
    let hot = scenarios[0].sku.clone();
    assert!(
        scenarios.iter().filter(|s| s.sku == hot).count() > DEFAULT_CHUNK_SIZE,
        "the hot SKU must not fit in one chunk"
    );
    let mut ids: Vec<u32> = scenarios
        .iter()
        .filter(|s| s.sku == hot)
        .map(|s| s.id)
        .collect();
    let mut cold: Vec<String> = scenarios
        .iter()
        .filter(|s| s.sku != hot)
        .map(|s| s.sku.clone())
        .collect();
    cold.dedup();
    for sku in cold {
        ids.extend(
            scenarios
                .iter()
                .filter(|s| s.sku == sku)
                .take(4)
                .map(|s| s.id),
        );
    }
    ids
}

#[test]
fn hot_sku_skew_is_byte_identical_across_worker_counts() {
    let dir = tempdir("skew");
    let run = |workers: usize| {
        let journal_path = dir.join(format!("journal-{workers}.jsonl"));
        let mut session = Session::builder(wide_config())
            .seed(SEED)
            .journal(RunJournal::open_fresh(&journal_path))
            .build()
            .unwrap();
        session.provider().lock().set_fault_plan(
            FaultPlan::none()
                .seed(13)
                .evict_pressure(0.25)
                .fail_probabilistic(Operation::AllocateNodes, 0.2),
        );
        let ids = hot_subset(&session);
        let total = ids.len();
        let report = session
            .collect_with(
                &CollectPlan::new()
                    .workers(workers)
                    .subset(ids)
                    .capacity(Capacity::Spot)
                    .trace(true),
            )
            .unwrap();
        assert_eq!(report.stats.executed, total, "{workers} workers");
        assert!(
            report.stats.completed > total / 2,
            "most of the grid completes under pressure: {:?}",
            report.stats
        );
        let trace = report.trace.as_ref().unwrap().to_jsonl();
        // The journal appends in completion order, which legitimately
        // varies with scheduling; its *contents* must not.
        let mut journal: Vec<String> = std::fs::read_to_string(&journal_path)
            .unwrap()
            .lines()
            .map(str::to_string)
            .collect();
        journal.sort();
        let outcomes: Vec<(u32, u32, u32)> = report
            .outcomes
            .iter()
            .map(|o| (o.scenario_id, o.attempts, o.evictions))
            .collect();
        let chunks_traced = report.trace_summary().unwrap().chunks;
        (
            report.dataset.to_json(),
            trace,
            journal,
            outcomes,
            report.stats.clone(),
            chunks_traced,
        )
    };

    let (dataset, trace, journal, outcomes, stats, chunks_traced) = run(1);
    assert!(
        stats.shards > 3,
        "the hot SKU split into multiple chunks: {stats:?}"
    );
    assert_eq!(
        chunks_traced, stats.shards,
        "trace summary reports the worker-invariant chunk count"
    );
    assert!(
        stats.evictions > 0,
        "spot pressure actually fired: {stats:?}"
    );
    for workers in [4usize, 8] {
        let (d, t, j, o, s, c) = run(workers);
        assert_eq!(d, dataset, "dataset differs with {workers} workers");
        assert_eq!(t, trace, "trace differs with {workers} workers");
        assert_eq!(j, journal, "journal differs with {workers} workers");
        assert_eq!(o, outcomes, "outcomes differ with {workers} workers");
        assert_eq!(s.shards, stats.shards, "chunk count is worker-invariant");
        assert_eq!(c, chunks_traced);
        assert_eq!(
            s.worker_loads.iter().map(|w| w.scenarios).sum::<usize>(),
            s.executed,
            "per-worker loads account for every scenario"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn kill_and_resume_mid_steal_matches_the_uninterrupted_run() {
    let dir = tempdir("resume");
    let journal_path = dir.join("run-journal.jsonl");
    let config = wide_config();
    // Total spot pressure with default escalation: every scenario is
    // evicted a fixed number of times then escalates to dedicated —
    // deterministic regardless of which chunk executes it.
    let pressure = || FaultPlan::none().seed(5).evict_pressure(1.0);

    // Uninterrupted reference run over the skewed subset.
    let (baseline, full_ids) = {
        let mut session = Session::create(config.clone(), SEED).unwrap();
        session.provider().lock().set_fault_plan(pressure());
        let ids = hot_subset(&session);
        let report = session
            .collect_with(
                &CollectPlan::new()
                    .workers(4)
                    .subset(ids.clone())
                    .capacity(Capacity::Spot),
            )
            .unwrap();
        assert_eq!(report.stats.executed, ids.len());
        assert_eq!(
            report.stats.completed,
            ids.len(),
            "escalation completes the grid: {:?}",
            report.stats
        );
        (report.dataset.to_json(), ids)
    };

    // "Crashed" run: the journal absorbs a prefix that ends mid-chunk of
    // the hot SKU (40 of 56 — past the 32-scenario chunk boundary), then
    // the process dies while the remainder is still being stolen.
    let mut session = Session::builder(config.clone())
        .seed(SEED)
        .journal(RunJournal::open_fresh(&journal_path))
        .build()
        .unwrap();
    session.provider().lock().set_fault_plan(pressure());
    let prefix: Vec<u32> = full_ids[..40].to_vec();
    let report = session
        .collect_with(
            &CollectPlan::new()
                .workers(4)
                .subset(prefix)
                .capacity(Capacity::Spot),
        )
        .unwrap();
    assert_eq!(report.stats.executed, 40);
    drop(session); // the crash

    // Resume: the journaled 40 replay without touching the cloud, the
    // remaining 16 execute, and the merged dataset is byte-identical.
    let mut resumed = Session::resume(config, SEED, RunJournal::open(&journal_path)).unwrap();
    resumed.provider().lock().set_fault_plan(pressure());
    let report = resumed
        .collect_with(
            &CollectPlan::new()
                .workers(8)
                .subset(full_ids)
                .capacity(Capacity::Spot),
        )
        .unwrap();
    assert_eq!(report.stats.journal_replayed, 40);
    assert_eq!(report.stats.executed, 16, "only the remainder executed");
    assert_eq!(report.dataset.to_json(), baseline);
    for outcome in &report.outcomes {
        if outcome.replayed {
            assert_eq!(outcome.attempts, 0, "replays never touch the cloud");
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}
