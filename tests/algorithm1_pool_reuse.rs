//! E3: Algorithm 1's pool management — one pool per VM type, reused and
//! grown across that type's scenarios, torn down when the type changes.

use hpcadvisor::prelude::*;

fn two_sku_config() -> UserConfig {
    UserConfig::from_yaml(
        r#"
subscription: mysubscription
skus:
- Standard_HC44rs
- Standard_HB120rs_v3
rgprefix: alg1
appsetupurl: https://example.com/scripts/lammps.sh
nnodes: [1, 2, 4]
appname: lammps
region: southcentralus
ppr: 100
appinputs:
  BOXFACTOR: "8"
"#,
    )
    .unwrap()
}

#[test]
fn one_pool_per_vm_type_grown_not_recreated() {
    let mut session = Session::create(two_sku_config(), 7).unwrap();
    let ds = session.collect().unwrap();
    assert_eq!(ds.len(), 6);
    assert!(ds
        .points
        .iter()
        .all(|p| p.status == ScenarioStatus::Completed));

    let provider = session.provider();
    let provider = provider.lock();
    let spans = provider.billing().records();
    // Per SKU: resizes 1→2→4 close three spans (the final teardown closes
    // the last). Two SKUs ⇒ exactly six usage spans, in SKU-major order.
    assert_eq!(spans.len(), 6, "{spans:#?}");
    let skus: Vec<&str> = spans.iter().map(|r| r.sku.as_str()).collect();
    assert_eq!(
        skus,
        vec![
            "Standard_HC44rs",
            "Standard_HC44rs",
            "Standard_HC44rs",
            "Standard_HB120rs_v3",
            "Standard_HB120rs_v3",
            "Standard_HB120rs_v3"
        ]
    );
    let nodes: Vec<u32> = spans.iter().map(|r| r.nodes).collect();
    assert_eq!(nodes, vec![1, 2, 4, 1, 2, 4], "pool grows within a SKU");

    // Spans never overlap in time and never run backwards (Algorithm 1 is
    // sequential).
    for w in spans.windows(2) {
        assert!(w[1].start >= w[0].end, "overlapping pools: {w:#?}");
    }
}

#[test]
fn setup_task_runs_once_per_pool() {
    let mut session = Session::create(two_sku_config(), 7).unwrap();
    session.collect().unwrap();
    // The shared FS holds exactly one downloaded input per app dir, created
    // by the first setup; later scenarios of the same SKU reused it.
    let vfs = session.shared_vfs();
    let vfs = vfs.lock();
    assert!(vfs.exists("/share/alg1001/apps/lammps/in.lj.txt"));
    // Six task dirs (one per scenario), each with its own patched input.
    let tasks: Vec<&str> = vfs
        .list("/share/alg1001/apps/lammps")
        .into_iter()
        .filter(|p| p.ends_with("/in.lj.txt") && p.contains("/task-"))
        .collect();
    assert_eq!(tasks.len(), 6, "{tasks:?}");
}

#[test]
fn quota_failure_fails_scenarios_but_not_the_sweep() {
    let config = two_sku_config();
    let mut manager =
        hpcadvisor::core::deployment::DeploymentManager::new("mysubscription", "southcentralus", 7)
            .unwrap();
    let rg = manager.create(&config).unwrap();
    // Cap HC quota below 2 nodes (88 cores): 1-node runs fit, 2+ fail.
    manager.provider().lock().quota_mut().set_limit("HC", 50);
    let mut collector = hpcadvisor::core::Collector::new(
        manager.provider(),
        &rg,
        config.clone(),
        hpcadvisor::core::CollectorOptions::default(),
    )
    .unwrap();
    let mut scenarios = hpcadvisor::core::scenario::generate_scenarios(
        &config,
        &hpcadvisor::cloudsim::SkuCatalog::azure_hpc(),
    )
    .unwrap();
    let ds = collector.collect(&mut scenarios).unwrap();
    // HC44rs: 1 node ok; 2 and 4 nodes degrade to Skipped on quota
    // exhaustion (not Failed — nothing executed); HBv3 unaffected.
    let hc_skipped: Vec<&DataPoint> = ds
        .points
        .iter()
        .filter(|p| p.sku.contains("HC44rs") && p.status == ScenarioStatus::Skipped)
        .collect();
    assert_eq!(hc_skipped.len(), 2, "{ds:#?}");
    for p in &hc_skipped {
        assert!(p.metric("SKIPREASON").unwrap().contains("quota"), "{p:#?}");
    }
    assert!(
        ds.points.iter().all(|p| p.status != ScenarioStatus::Failed),
        "quota exhaustion is a skip, not a failure"
    );
    let v3_ok = ds
        .points
        .iter()
        .filter(|p| p.sku.contains("HB120rs_v3") && p.status == ScenarioStatus::Completed)
        .count();
    assert_eq!(v3_ok, 3);
    // Skipped scenarios re-run on a later collect; with quota restored they
    // complete.
    assert_eq!(
        scenarios
            .iter()
            .filter(|s| s.status == ScenarioStatus::Skipped)
            .count(),
        2
    );
}

#[test]
fn injected_task_failure_marks_nth_scenario_per_pool() {
    use hpcadvisor::cloudsim::{FaultPlan, Operation};
    let config = two_sku_config();
    let mut manager =
        hpcadvisor::core::deployment::DeploymentManager::new("mysubscription", "southcentralus", 7)
            .unwrap();
    let rg = manager.create(&config).unwrap();
    manager
        .provider()
        .lock()
        .set_fault_plan(FaultPlan::none().fail_nth(Operation::RunTask, 3));
    // Retries disabled: a one-shot injected fault must surface as a
    // failure (the default policy would absorb it — see below).
    let mut collector = hpcadvisor::core::Collector::new(
        manager.provider(),
        &rg,
        config.clone(),
        hpcadvisor::core::CollectorOptions::builder()
            .retry(hpcadvisor::core::RetryPolicy::none())
            .build(),
    )
    .unwrap();
    let mut scenarios = hpcadvisor::core::scenario::generate_scenarios(
        &config,
        &hpcadvisor::cloudsim::SkuCatalog::azure_hpc(),
    )
    .unwrap();
    let ds = collector.collect(&mut scenarios).unwrap();
    let failed: Vec<u32> = ds
        .points
        .iter()
        .filter(|p| p.status == ScenarioStatus::Failed)
        .map(|p| p.scenario_id)
        .collect();
    // Fault counters are scoped per pool (so serial and sharded runs see
    // identical sequences): invocation #3 — the third compute task after
    // the setup task — fails once in each SKU's pool.
    assert_eq!(failed, vec![3, 6], "third compute task of each pool");
    assert_eq!(ds.points.len(), 6, "all scenarios still attempted");
}

#[test]
fn default_retry_absorbs_one_shot_task_fault() {
    use hpcadvisor::cloudsim::{FaultPlan, Operation};
    let config = two_sku_config();
    let mut manager =
        hpcadvisor::core::deployment::DeploymentManager::new("mysubscription", "southcentralus", 7)
            .unwrap();
    let rg = manager.create(&config).unwrap();
    manager
        .provider()
        .lock()
        .set_fault_plan(FaultPlan::none().fail_nth(Operation::RunTask, 3));
    let mut collector = hpcadvisor::core::Collector::new(
        manager.provider(),
        &rg,
        config.clone(),
        hpcadvisor::core::CollectorOptions::default(),
    )
    .unwrap();
    let mut scenarios = hpcadvisor::core::scenario::generate_scenarios(
        &config,
        &hpcadvisor::cloudsim::SkuCatalog::azure_hpc(),
    )
    .unwrap();
    let ds = collector.collect(&mut scenarios).unwrap();
    assert!(
        ds.points
            .iter()
            .all(|p| p.status == ScenarioStatus::Completed),
        "the transient fault was retried away: {ds:#?}"
    );
    assert_eq!(ds.points.len(), 6);
}
