//! Fault-tolerant collection end to end: injected control-plane faults are
//! retried to a byte-identical dataset, probabilistic fault plans replay
//! identically under any worker count, and an interrupted run resumes from
//! the crash-safe journal without re-executing finished scenarios.

use cloudsim::{FaultPlan, Operation};
use hpcadvisor_core::prelude::*;
use std::path::PathBuf;

const SEED: u64 = 42;

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hpcadvisor-ft-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The fault-free reference dataset for the full Listing-1 grid.
fn fault_free_json() -> String {
    let mut session = Session::create(UserConfig::example_openfoam(), SEED).unwrap();
    session
        .collect_with(&CollectPlan::new())
        .unwrap()
        .dataset
        .to_json()
}

#[test]
fn allocation_faults_are_retried_to_a_byte_identical_dataset() {
    let baseline = fault_free_json();
    let mut session = Session::create(UserConfig::example_openfoam(), SEED).unwrap();
    // The first AllocateNodes attempt of every SKU pool fails transiently.
    session
        .provider()
        .lock()
        .set_fault_plan(FaultPlan::none().fail_nth(Operation::AllocateNodes, 0));
    let report = session.collect_with(&CollectPlan::new()).unwrap();
    assert_eq!(report.stats.failed, 0, "retries absorbed every fault");
    assert_eq!(report.stats.skipped, 0);
    assert!(
        report.stats.retried >= 3,
        "the first resize of each SKU pool needed a second attempt: {:?}",
        report.stats
    );
    assert!(
        report.stats.backoff_secs > 0.0,
        "backoff was waited through"
    );
    // Retries and backoff only advance the billing clock; the dataset the
    // advisor reasons over is identical to the fault-free run.
    assert_eq!(report.dataset.to_json(), baseline);
}

#[test]
fn probabilistic_faults_replay_identically_across_worker_counts() {
    let run = |workers: usize| {
        let mut session = Session::create(UserConfig::example_openfoam(), SEED).unwrap();
        session.provider().lock().set_fault_plan(
            FaultPlan::none()
                .seed(7)
                .fail_probabilistic(Operation::RunTask, 0.2)
                .fail_probabilistic(Operation::AllocateNodes, 0.2),
        );
        let report = session
            .collect_with(&CollectPlan::new().workers(workers))
            .unwrap();
        let attempts: Vec<(u32, u32)> = report
            .outcomes
            .iter()
            .map(|o| (o.scenario_id, o.attempts))
            .collect();
        (report.dataset.to_json(), attempts)
    };
    let (serial, serial_attempts) = run(1);
    let (parallel, parallel_attempts) = run(4);
    assert_eq!(serial, parallel, "dataset identical under sharding");
    assert_eq!(
        serial_attempts, parallel_attempts,
        "per-scenario attempt counts identical under sharding"
    );
    assert!(
        serial_attempts.iter().any(|(_, a)| *a > 1),
        "a 20% fault rate actually fired somewhere: {serial_attempts:?}"
    );
}

#[test]
fn resume_replays_the_journal_and_matches_the_uninterrupted_run() {
    let dir = tempdir("resume");
    let journal_path = dir.join("run-journal.jsonl");
    let baseline = fault_free_json();

    // "Interrupted" run: only the first half of the grid lands in the
    // journal before the process dies.
    let config = UserConfig::example_openfoam();
    let mut session = Session::builder(config.clone())
        .seed(SEED)
        .journal(RunJournal::open_fresh(&journal_path))
        .build()
        .unwrap();
    let half: Vec<u32> = session.scenarios().iter().take(18).map(|s| s.id).collect();
    let report = session
        .collect_with(&CollectPlan::new().subset(half))
        .unwrap();
    assert_eq!(report.stats.executed, 18);
    drop(session); // the crash

    // Resume: finished scenarios replay from the journal, only the
    // remainder executes, and the merged dataset is byte-identical.
    let mut resumed = Session::resume(config, SEED, RunJournal::open(&journal_path)).unwrap();
    let report = resumed.collect_with(&CollectPlan::new()).unwrap();
    assert_eq!(report.stats.journal_replayed, 18);
    assert_eq!(report.stats.executed, 18, "only the remainder executed");
    assert_eq!(report.stats.failed, 0);
    assert_eq!(report.dataset.to_json(), baseline);
    for outcome in &report.outcomes {
        if outcome.replayed {
            assert_eq!(outcome.attempts, 0, "replays never touch the cloud");
        }
    }
    // The journal now holds the whole grid and reads back clean.
    let reopened = RunJournal::open(&journal_path);
    assert_eq!(reopened.len(), 36);
    assert!(!reopened.recovered());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_journal_tail_is_salvaged_on_resume() {
    let dir = tempdir("torn");
    let journal_path = dir.join("run-journal.jsonl");
    let config = UserConfig::example_lammps_small(); // 3 scenarios
    let baseline = {
        let mut session = Session::create(config.clone(), SEED).unwrap();
        session
            .collect_with(&CollectPlan::new())
            .unwrap()
            .dataset
            .to_json()
    };

    let mut session = Session::builder(config.clone())
        .seed(SEED)
        .journal(RunJournal::open_fresh(&journal_path))
        .build()
        .unwrap();
    session.collect_with(&CollectPlan::new()).unwrap();
    drop(session);

    // Tear the tail, as a crash mid-append would: the last line is cut
    // short and must be dropped, not trusted.
    let bytes = std::fs::read(&journal_path).unwrap();
    std::fs::write(&journal_path, &bytes[..bytes.len() - 10]).unwrap();
    let journal = RunJournal::open(&journal_path);
    assert!(journal.recovered(), "the torn tail was detected");
    assert_eq!(journal.len(), 2, "the damaged last entry was dropped");

    let mut resumed = Session::resume(config, SEED, journal).unwrap();
    let report = resumed.collect_with(&CollectPlan::new()).unwrap();
    assert_eq!(report.stats.journal_replayed, 2);
    assert_eq!(report.stats.executed, 1, "only the lost scenario re-ran");
    assert_eq!(report.dataset.to_json(), baseline);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn mid_task_node_death_is_retried_to_a_byte_identical_dataset() {
    let baseline = fault_free_json();
    let mut session = Session::create(UserConfig::example_openfoam(), SEED).unwrap();
    // Nodes die *while tasks run* — a different failure window than the
    // allocation faults above: the doomed attempt consumes its runtime and
    // bills its node-hours before the retry fires.
    session.provider().lock().set_fault_plan(
        FaultPlan::none()
            .seed(7)
            .fail_probabilistic(Operation::NodeDeath, 0.1),
    );
    let report = session.collect_with(&CollectPlan::new()).unwrap();
    assert_eq!(
        report.stats.failed, 0,
        "mid-task deaths absorbed: {:?}",
        report.stats
    );
    assert_eq!(report.stats.skipped, 0);
    assert!(
        report.stats.retried > 0,
        "a 10% death rate actually fired somewhere: {:?}",
        report.stats
    );
    // Lost attempts only burn simulated money and time; the dataset the
    // advisor reasons over is identical to the fault-free run.
    assert_eq!(report.dataset.to_json(), baseline);
}

#[test]
fn budget_breaker_skips_are_journaled_and_survive_resume() {
    let dir = tempdir("budget");
    let journal_path = dir.join("run-journal.jsonl");
    let config = UserConfig::example_openfoam();

    // A budget that covers roughly the first SKU pool: billed spend crosses
    // the line when that pool is released, and the breaker drops the rest.
    let mut session = Session::builder(config.clone())
        .seed(SEED)
        .journal(RunJournal::open_fresh(&journal_path))
        .build()
        .unwrap();
    let report = session
        .collect_with(&CollectPlan::new().budget_dollars(0.05))
        .unwrap();
    assert!(report.stats.completed > 0, "work ran before the breaker");
    assert!(
        report.stats.skipped > 0,
        "the breaker fired: {:?}",
        report.stats
    );
    let completed = report.stats.completed;
    let skipped = report.stats.skipped;
    for outcome in &report.outcomes {
        if outcome.status == ScenarioStatus::Skipped {
            let reason = outcome.fail_reason.as_deref().unwrap_or("");
            assert!(reason.contains("budget exceeded"), "reason: {reason}");
        }
    }
    // Budget skips are journaled (unlike quota skips): the whole grid has a
    // verdict on disk.
    let journal = RunJournal::open(&journal_path);
    assert_eq!(journal.len(), 36);
    drop(session);

    // Resume honors the stop: every verdict replays, nothing re-runs and
    // nothing is re-billed — even without the budget flag.
    let mut resumed =
        Session::resume(config.clone(), SEED, RunJournal::open(&journal_path)).unwrap();
    let report = resumed.collect_with(&CollectPlan::new()).unwrap();
    assert_eq!(report.stats.journal_replayed, 36);
    assert_eq!(report.stats.executed, 0, "resume honors the budget stop");
    assert_eq!(report.stats.completed, completed);
    assert_eq!(report.stats.skipped, skipped);
    assert_eq!(
        resumed.total_cloud_cost(),
        0.0,
        "replays never touch the cloud"
    );
    drop(resumed);

    // `rerun_failed` is the explicit escape hatch: the journaled skips are
    // re-executed, and with the budget lifted the grid completes.
    let mut rerun = Session::resume(config, SEED, RunJournal::open(&journal_path)).unwrap();
    let report = rerun
        .collect_with(&CollectPlan::new().rerun_failed(true))
        .unwrap();
    assert_eq!(report.stats.journal_replayed, completed);
    assert_eq!(
        report.stats.executed, skipped,
        "the skipped remainder re-ran"
    );
    assert_eq!(report.stats.completed, 36);
    assert_eq!(report.stats.skipped, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn deadline_times_out_thrashing_scenarios_and_resume_honors_it() {
    let dir = tempdir("deadline");
    let journal_path = dir.join("run-journal.jsonl");
    let config = UserConfig::example_lammps_small(); // 3 scenarios

    // Total spot pressure with escalation disabled: every compute attempt
    // is evicted, so without a deadline the scenarios would thrash forever.
    let mut session = Session::builder(config.clone())
        .seed(SEED)
        .journal(RunJournal::open_fresh(&journal_path))
        .build()
        .unwrap();
    session
        .provider()
        .lock()
        .set_fault_plan(FaultPlan::none().seed(5).evict_pressure(1.0));
    let report = session
        .collect_with(
            &CollectPlan::new()
                .capacity(Capacity::Spot)
                .escalate_after(u32::MAX)
                .deadline_secs(1.0),
        )
        .unwrap();
    assert_eq!(report.stats.timed_out, 3, "{:?}", report.stats);
    assert_eq!(report.stats.completed, 0);
    assert!(report.stats.evictions >= 3, "{:?}", report.stats);
    for outcome in &report.outcomes {
        assert_eq!(outcome.status, ScenarioStatus::TimedOut, "{outcome:?}");
        let reason = outcome.fail_reason.as_deref().unwrap_or("");
        assert!(reason.contains("deadline exceeded"), "reason: {reason}");
    }
    // Timed-out scenarios count against the advice's partial-grid note.
    let advice = Advice::from_dataset(&report.dataset, &DataFilter::all());
    assert_eq!(advice.skipped_scenarios, 3);
    drop(session);

    // The TimedOut verdicts replay from the journal: resuming in the same
    // capacity mode does not burn another deadline's worth of evicted
    // attempts. (The fingerprint folds the capacity class, so a spot-run
    // journal only matches a spot-mode resume.)
    let mut resumed = Session::resume(config, SEED, RunJournal::open(&journal_path)).unwrap();
    let report = resumed
        .collect_with(&CollectPlan::new().capacity(Capacity::Spot))
        .unwrap();
    assert_eq!(report.stats.journal_replayed, 3);
    assert_eq!(report.stats.executed, 0);
    assert_eq!(report.stats.timed_out, 3);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn quota_exhaustion_skips_gracefully_and_annotates_advice() {
    let mut session = Session::create(UserConfig::example_openfoam(), SEED).unwrap();
    // Cap the HC family below 2 nodes (2 × 44 = 88 cores).
    session.provider().lock().quota_mut().set_limit("HC", 50);
    let report = session.collect_with(&CollectPlan::new()).unwrap();
    assert_eq!(report.stats.failed, 0, "quota is degradation, not failure");
    assert!(report.stats.skipped > 0);
    let advice = Advice::from_dataset(&report.dataset, &DataFilter::all());
    assert_eq!(advice.skipped_scenarios, report.stats.skipped);
    assert!(
        advice.render_text().contains("partial grid"),
        "advice flags the partial grid:\n{}",
        advice.render_text()
    );
}
