//! Chaos harness for the daemon: a fault-injecting TCP proxy between the
//! real `request` client and the real `serve` daemon, plus direct
//! adversarial connections and a fabricated-crash recovery drill.
//!
//! What is proven here:
//!
//! * the client survives injected disconnects, mid-frame cuts and stalls
//!   through bounded-backoff retries on the same idempotent request key,
//!   and still receives the byte-identical dataset;
//! * garbage bytes, version-skewed frames, unknown kinds and oversized
//!   lines each earn a *typed* error frame and never take the daemon down;
//! * idle connections are reaped and over-limit connections are shed, both
//!   with typed, retry-hinted refusals;
//! * a daemon "killed" mid-grid (its post-crash disk state fabricated from
//!   a partial per-job run journal and an admitted-but-not-done service
//!   journal) recovers on restart: tenant spend is restored, only the
//!   interrupted remainder is billed, and a resubmission is served from
//!   cache byte-identically at $0.

use hpcadvisor::cli::args::Args;
use hpcadvisor::cli::serve::{request_cmd, serve_cmd, serve_on, ServeOptions};
use hpcadvisor::cli::state::WorkDir;
use hpcadvisor::core::cache::{CachePolicy, SharedScenarioCache};
use hpcadvisor::core::service_state::{PendingJob, ServiceJournal, ServiceRecord};
use hpcadvisor::core::{
    AdviceRequest, AdvisorService, RunJournal, ServiceConfig, ServiceError, TenantPolicy,
};
use hpcadvisor::formats::wire::{ErrorCode, Frame, MAX_FRAME_BYTES};
use hpcadvisor::formats::{OrderedMap, Value};
use hpcadvisor::prelude::*;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::time::Duration;

const YAML: &str = r#"
subscription: mysubscription
skus:
- Standard_HC44rs
- Standard_HB120rs_v3
rgprefix: chaos
appsetupurl: https://example.com/scripts/lammps.sh
nnodes: [1, 2, 4]
appname: lammps
region: southcentralus
ppr: 100
appinputs:
  BOXFACTOR: "8"
"#;

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hpcadvisor-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn args(pairs: &[(&str, &str)]) -> Args {
    Args {
        positional: Vec::new(),
        options: pairs
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect(),
    }
}

/// The dataset bytes a standalone run of `YAML` under seed 42 produces —
/// the ground truth every daemon answer must match.
fn standalone_dataset() -> String {
    let mut session = Session::create(UserConfig::from_yaml(YAML).unwrap(), 42).unwrap();
    session
        .collect_with(&CollectPlan::new())
        .unwrap()
        .dataset
        .to_json()
}

fn send(stream: &mut TcpStream, frame: &Frame) {
    stream.write_all(frame.encode().as_bytes()).unwrap();
    stream.write_all(b"\n").unwrap();
    stream.flush().unwrap();
}

fn read_frame(reader: &mut BufReader<TcpStream>) -> Frame {
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    Frame::decode(line.trim_end_matches(['\r', '\n'])).unwrap()
}

/// Starts a daemon on an ephemeral port; returns its address and the
/// thread producing its log.
fn spawn_daemon(opts: ServeOptions) -> (SocketAddr, std::thread::JoinHandle<String>) {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let handle = std::thread::spawn(move || {
        let mut log = Vec::new();
        serve_on(listener, opts, &mut log).unwrap();
        String::from_utf8(log).unwrap()
    });
    // The listener is already bound, so connects queue in the backlog
    // until the accept loop comes up — no readiness polling needed.
    (addr, handle)
}

/// Asks a daemon to shut down gracefully via the client's --shutdown path.
fn stop_daemon(addr: SocketAddr, workdir: &WorkDir) {
    let mut out = Vec::new();
    request_cmd(
        &args(&[("connect", &addr.to_string()), ("shutdown", "")]),
        workdir,
        &mut out,
    )
    .unwrap();
}

/// One injected fault, applied to the daemon→client direction of one
/// proxied connection.
#[derive(Clone, Copy)]
enum Fault {
    /// Forward everything faithfully.
    Pass,
    /// Forward this many daemon bytes, then cut both directions — the
    /// client sees a mid-frame EOF.
    CutAfter(usize),
    /// Forward nothing; hold the connection dead for this long, then cut —
    /// the client's read deadline fires first.
    StallMs(u64),
}

/// A fault-injecting TCP proxy: connection `i` suffers `plan[i]`
/// (connections beyond the plan pass through).
fn chaos_proxy(upstream: SocketAddr, plan: Vec<Fault>) -> SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    std::thread::spawn(move || {
        for (i, conn) in listener.incoming().enumerate() {
            let Ok(client) = conn else { break };
            let fault = plan.get(i).copied().unwrap_or(Fault::Pass);
            std::thread::spawn(move || proxy_one(client, upstream, fault));
        }
    });
    addr
}

fn proxy_one(client: TcpStream, upstream: SocketAddr, fault: Fault) {
    if let Fault::StallMs(ms) = fault {
        // Never even dial the daemon: the request goes nowhere and the
        // client's own deadline must rescue it.
        std::thread::sleep(Duration::from_millis(ms));
        let _ = client.shutdown(Shutdown::Both);
        return;
    }
    let Ok(server) = TcpStream::connect(upstream) else {
        return;
    };
    // Client→daemon: faithful pump.
    {
        let (mut from, mut to) = (client.try_clone().unwrap(), server.try_clone().unwrap());
        std::thread::spawn(move || {
            let mut buf = [0u8; 8192];
            while let Ok(n) = from.read(&mut buf) {
                if n == 0 || to.write_all(&buf[..n]).is_err() {
                    break;
                }
            }
            let _ = to.shutdown(Shutdown::Write);
        });
    }
    // Daemon→client: the faulted direction.
    let mut budget = match fault {
        Fault::CutAfter(n) => n,
        _ => usize::MAX,
    };
    let (mut from, mut to) = (server, client);
    let mut buf = [0u8; 8192];
    while let Ok(n) = from.read(&mut buf) {
        if n == 0 {
            break;
        }
        let take = n.min(budget);
        if to.write_all(&buf[..take]).is_err() {
            break;
        }
        budget -= take;
        if budget == 0 {
            break;
        }
    }
    let _ = to.shutdown(Shutdown::Both);
    let _ = from.shutdown(Shutdown::Both);
}

/// The tentpole client-side proof: ≥3 injected disconnects/stalls, one
/// idempotent request key, bounded backoff, byte-identical result.
#[test]
fn client_survives_disconnects_and_stalls_with_retries() {
    let dir = tempdir("client-retries");
    let workdir = WorkDir::open(&dir).unwrap();
    let config_path = dir.join("config.yaml");
    std::fs::write(&config_path, YAML).unwrap();

    let (daemon_addr, daemon) = spawn_daemon(ServeOptions {
        service_workers: 2,
        cache: SharedScenarioCache::in_memory(),
        ..ServeOptions::default()
    });
    // Attempts 1-2 are cut mid-stream, attempt 3 stalls past the client's
    // 1s deadline, attempt 4 goes through.
    let proxy_addr = chaos_proxy(
        daemon_addr,
        vec![
            Fault::CutAfter(200),
            Fault::CutAfter(450),
            Fault::StallMs(1600),
            Fault::Pass,
        ],
    );

    let mut out = Vec::new();
    request_cmd(
        &args(&[
            ("connect", &proxy_addr.to_string()),
            ("config", config_path.to_str().unwrap()),
            ("tenant", "acme"),
            ("timeout", "1"),
            ("retries", "8"),
            ("request-key", "chaos-drill"),
            ("out", dir.join("dataset.json").to_str().unwrap()),
        ]),
        &workdir,
        &mut out,
    )
    .unwrap();
    let log = String::from_utf8(out).unwrap();

    let retries = log.matches("retrying in").count();
    assert!(retries >= 3, "expected ≥3 retries, log:\n{log}");
    assert!(log.contains("collected 6 completed"), "{log}");
    assert!(
        std::fs::read_to_string(dir.join("dataset.json")).unwrap() == standalone_dataset(),
        "retried request still yields the standalone dataset bytes"
    );

    stop_daemon(daemon_addr, &workdir);
    let daemon_log = daemon.join().unwrap();
    assert!(daemon_log.contains("serving on "), "{daemon_log}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Adversarial bytes straight at the daemon: every abuse earns a typed
/// error frame and the daemon keeps serving.
#[test]
fn adversarial_frames_get_typed_errors_and_daemon_survives() {
    let dir = tempdir("adversarial");
    let workdir = WorkDir::open(&dir).unwrap();
    let (addr, daemon) = spawn_daemon(ServeOptions {
        cache: SharedScenarioCache::in_memory(),
        ..ServeOptions::default()
    });

    // One connection, a parade of abuse; the conversation survives it all.
    {
        let mut stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());

        stream.write_all(b"utter garbage\n").unwrap();
        let e = read_frame(&mut reader);
        assert_eq!(e.error_code(), Some(ErrorCode::BadFrame), "{e:?}");

        stream
            .write_all(b"{\"v\": 9, \"id\": 3, \"kind\": \"ping\", \"body\": null}\n")
            .unwrap();
        let e = read_frame(&mut reader);
        assert_eq!(e.error_code(), Some(ErrorCode::BadFrame));
        assert!(e.error_message().unwrap().contains("wire version 9"));

        send(&mut stream, &Frame::new(5, "dance", Value::Null));
        let e = read_frame(&mut reader);
        assert_eq!(e.error_code(), Some(ErrorCode::UnknownKind));
        assert_eq!(e.id, 5, "typed refusal echoes the request id");

        let mut body = OrderedMap::new();
        body.insert("tenant", Value::str("acme"));
        send(&mut stream, &Frame::new(6, "collect", Value::Map(body)));
        let e = read_frame(&mut reader);
        assert_eq!(e.error_code(), Some(ErrorCode::BadRequest));
        assert!(e.error_message().unwrap().contains("config_yaml"));

        // The same connection still answers pings after all that.
        send(&mut stream, &Frame::new(7, "ping", Value::Null));
        assert_eq!(read_frame(&mut reader).kind, "pong");
    }

    // An endless line is refused without buffering it whole.
    {
        let stream = TcpStream::connect(addr).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        let chunk = vec![b'x'; 1 << 20];
        for _ in 0..17 {
            if writer.write_all(&chunk).is_err() {
                break; // The daemon already slammed the door: fine.
            }
        }
        let mut line = String::new();
        if reader.read_line(&mut line).is_ok() && line.ends_with('\n') {
            let frame = Frame::decode(line.trim_end()).unwrap();
            assert_eq!(frame.error_code(), Some(ErrorCode::BadFrame));
            let message = frame.error_message().unwrap();
            assert!(
                message.contains(&MAX_FRAME_BYTES.to_string()),
                "refusal names the limit: {message}"
            );
        }
    }

    // The daemon is still alive and still serves real work.
    {
        let mut stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        send(&mut stream, &Frame::new(9, "ping", Value::Null));
        assert_eq!(read_frame(&mut reader).kind, "pong");
    }

    stop_daemon(addr, &workdir);
    daemon.join().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

/// A connection that never sends a frame is reaped at the I/O deadline
/// with a typed `idle_timeout` error.
#[test]
fn idle_connections_are_reaped_with_a_typed_error() {
    let dir = tempdir("idle");
    let workdir = WorkDir::open(&dir).unwrap();
    let (addr, daemon) = spawn_daemon(ServeOptions {
        cache: SharedScenarioCache::in_memory(),
        io_timeout: Duration::from_millis(250),
        ..ServeOptions::default()
    });

    let stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    let frame = Frame::decode(line.trim_end()).unwrap();
    assert_eq!(
        frame.error_code(),
        Some(ErrorCode::IdleTimeout),
        "{frame:?}"
    );
    // After the reap frame the daemon closes: next read is EOF.
    line.clear();
    assert_eq!(reader.read_line(&mut line).unwrap(), 0);

    stop_daemon(addr, &workdir);
    daemon.join().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Connections beyond --max-conns are shed with `overloaded` plus a
/// retry-after hint instead of hanging in the accept backlog.
#[test]
fn overload_is_shed_with_a_retry_hint() {
    let dir = tempdir("overload");
    let workdir = WorkDir::open(&dir).unwrap();
    let (addr, daemon) = spawn_daemon(ServeOptions {
        cache: SharedScenarioCache::in_memory(),
        max_conns: 1,
        io_timeout: Duration::from_secs(5),
        ..ServeOptions::default()
    });

    // First connection occupies the only slot (a ping proves it is live
    // and registered before the second connection arrives).
    let mut first = TcpStream::connect(addr).unwrap();
    let mut first_reader = BufReader::new(first.try_clone().unwrap());
    send(&mut first, &Frame::new(1, "ping", Value::Null));
    assert_eq!(read_frame(&mut first_reader).kind, "pong");

    let second = TcpStream::connect(addr).unwrap();
    let mut reader = BufReader::new(second);
    let frame = read_frame(&mut reader);
    assert_eq!(frame.error_code(), Some(ErrorCode::Overloaded), "{frame:?}");
    assert_eq!(frame.retry_after_ms(), Some(500), "shed carries a hint");
    assert!(ErrorCode::Overloaded.retryable());

    drop(first);
    drop(first_reader);
    // Give the daemon a beat to notice the slot freed, then stop it.
    std::thread::sleep(Duration::from_millis(400));
    stop_daemon(addr, &workdir);
    daemon.join().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

/// While a request waits behind a busy worker, the daemon heartbeats so
/// the client's read deadline never fires during someone else's compute.
#[test]
fn queued_requests_receive_heartbeats() {
    let dir = tempdir("heartbeat");
    let workdir = WorkDir::open(&dir).unwrap();
    let (addr, daemon) = spawn_daemon(ServeOptions {
        service_workers: 1,
        cache: SharedScenarioCache::in_memory(),
        io_timeout: Duration::from_millis(60),
        ..ServeOptions::default()
    });

    let big_yaml = YAML.replace(
        "nnodes: [1, 2, 4]",
        "nnodes: [1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16]",
    );
    let collect = |id: i64, yaml: &str| {
        let mut body = OrderedMap::new();
        body.insert("tenant", Value::str("acme"));
        body.insert("config_yaml", Value::str(yaml));
        body.insert("seed", Value::Int(42));
        Frame::new(id, "collect", Value::Map(body))
    };

    // Three connections stack distinct big grids on the single worker,
    // keeping it busy for several heartbeat intervals (each grid simulates
    // in ~30ms of wall clock; the heartbeat interval is io_timeout/2 =
    // 30ms). The grids must differ, or the shared cache would answer the
    // second and third instantly.
    let mut busy: Vec<TcpStream> = Vec::new();
    for i in 0..3 {
        let mut conn = TcpStream::connect(addr).unwrap();
        let distinct = big_yaml.replace("BOXFACTOR: \"8\"", &format!("BOXFACTOR: \"{i}1\""));
        send(&mut conn, &collect(i + 1, &distinct));
        busy.push(conn);
    }
    std::thread::sleep(Duration::from_millis(15));

    // The next connection queues behind them and should hear heartbeats.
    let mut waiting = TcpStream::connect(addr).unwrap();
    let mut reader = BufReader::new(waiting.try_clone().unwrap());
    send(&mut waiting, &collect(9, YAML));
    let mut heartbeats = 0;
    loop {
        let frame = read_frame(&mut reader);
        match frame.kind.as_str() {
            "hb" => heartbeats += 1,
            "result" => break,
            "progress" => {}
            other => panic!("unexpected frame '{other}': {frame:?}"),
        }
    }
    assert!(heartbeats >= 1, "no heartbeat while queued");

    // Drain the busy conversations so their connections close cleanly.
    for conn in &busy {
        let mut busy_reader = BufReader::new(conn.try_clone().unwrap());
        loop {
            let frame = read_frame(&mut busy_reader);
            if frame.kind == "result" {
                break;
            }
        }
    }
    drop(busy);
    drop(waiting);
    stop_daemon(addr, &workdir);
    daemon.join().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

/// 64-bit FNV-1a — must match the service's per-job journal file naming.
fn fnv64(text: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in text.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The tentpole recovery proof, with the crash state fabricated on disk
/// exactly as a SIGKILLed daemon leaves it: a service journal holding
/// prior spend plus an admitted-but-not-done job, and that job's partial
/// run journal covering two-thirds of the grid. The restarted service
/// must replay the job, bill only the remainder, and serve an identical
/// resubmission from cache for free.
#[test]
fn fabricated_crash_state_recovers_without_double_billing() {
    let dir = tempdir("recovery");
    let state_dir = dir.join("service");
    std::fs::create_dir_all(state_dir.join("jobs")).unwrap();
    let cache_path = dir.join("cache.json");
    let config = UserConfig::from_yaml(YAML).unwrap();
    let ground_truth = standalone_dataset();

    // Ground truth for what the full grid costs when simulated cold.
    let full_cost = {
        let mut session = Session::create(config.clone(), 42).unwrap();
        session.collect_with(&CollectPlan::new()).unwrap();
        session.total_cloud_cost()
    };
    assert!(full_cost > 0.0);

    // --- Fabricate the post-crash disk state. ---
    // 1. The interrupted job's run journal: run the full grid journaled,
    //    then truncate the file to its header plus the first 4 scenario
    //    records — the exact bytes a SIGKILL mid-grid leaves behind.
    let job_journal = state_dir
        .join("jobs")
        .join(format!("job-{:016x}.jsonl", fnv64("drill")));
    {
        let mut session = Session::builder(config.clone())
            .seed(42)
            .shared_cache(SharedScenarioCache::in_memory())
            .journal(RunJournal::open(&job_journal))
            .build()
            .unwrap();
        session.collect_with(&CollectPlan::new()).unwrap();
        let full = std::fs::read_to_string(&job_journal).unwrap();
        let prefix: Vec<&str> = full.lines().take(5).collect();
        std::fs::write(&job_journal, format!("{}\n", prefix.join("\n"))).unwrap();
    }
    assert!(job_journal.exists(), "partial run journal fabricated");

    // 2. The service journal: prior spend, then the admission with no done.
    {
        let mut journal = ServiceJournal::open(state_dir.join("service-journal.jsonl"));
        journal.append(ServiceRecord::Spend {
            tenant: "acme".into(),
            dollars: 1.25,
        });
        journal.append(ServiceRecord::Admitted(PendingJob {
            key: "drill".into(),
            tenant: "acme".into(),
            seed: 42,
            workers: 1,
            config_yaml: config.to_yaml(),
            regions: Vec::new(),
            cache_policy: Some(CachePolicy::ReadWrite),
        }));
    }

    // --- "Restart" the daemon's engine on the same state directory. ---
    let service = AdvisorService::start(ServiceConfig {
        workers: 1,
        state_dir: Some(state_dir.clone()),
        cache: SharedScenarioCache::open(&cache_path),
        ..ServiceConfig::default()
    });
    assert_eq!(service.recovered_jobs(), 1, "the admission was replayed");
    assert_eq!(service.await_recovery(), 1, "and served to completion");

    // Billing: prior spend survived, and the recovered job charged only
    // the two scenarios the journal did not cover.
    let spend = service.tenant_spend("acme");
    assert!(spend > 1.25, "remainder was billed: {spend}");
    assert!(
        spend < 1.25 + full_cost,
        "replayed scenarios were NOT re-billed: {spend} vs full {full_cost}"
    );
    assert!(!job_journal.exists(), "job journal cleaned up at done");

    // Resubmitting the same key now answers entirely from cache: byte-
    // identical dataset, zero new dollars.
    let outcome = service
        .submit(AdviceRequest::new("acme", config.clone(), 42).with_key("drill"))
        .unwrap()
        .wait()
        .unwrap();
    assert_eq!(outcome.stats.cache_hits, 6, "all hits after recovery");
    assert_eq!(outcome.stats.cache_misses, 0);
    assert_eq!(outcome.run_cost_dollars, 0.0);
    assert_eq!(outcome.dataset_json, ground_truth, "byte-identical");
    let spend_after = service.tenant_spend("acme");
    assert!(
        (spend_after - spend).abs() < 1e-12,
        "resubmission cost nothing: {spend_after} vs {spend}"
    );
    service.shutdown();

    // A second restart finds a quiet journal: nothing pending, spend kept.
    let service = AdvisorService::start(ServiceConfig {
        workers: 1,
        state_dir: Some(state_dir),
        cache: SharedScenarioCache::open(&cache_path),
        ..ServiceConfig::default()
    });
    assert_eq!(service.recovered_jobs(), 0);
    assert!((service.tenant_spend("acme") - spend).abs() < 1e-9);
    service.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Forced shutdown abandons queued work to the journal; the next start
/// replays it. (The kill-9 variant of this drill runs in CI against the
/// real binary.)
#[test]
fn forced_shutdown_keeps_queued_jobs_replayable() {
    let dir = tempdir("force");
    let state_dir = dir.join("service");
    let config = UserConfig::from_yaml(YAML).unwrap();

    let service = AdvisorService::start(ServiceConfig {
        workers: 1,
        state_dir: Some(state_dir.clone()),
        cache: SharedScenarioCache::open(dir.join("cache.json")),
        policy: TenantPolicy {
            max_inflight: 8,
            ..TenantPolicy::default()
        },
        ..ServiceConfig::default()
    });
    // Several jobs so that at least the tail is still queued when the axe
    // falls, no matter how fast the single worker is.
    let handles: Vec<_> = (0..4)
        .map(|i| {
            service
                .submit(AdviceRequest::new("acme", config.clone(), 42).with_key(format!("f{i}")))
                .unwrap()
        })
        .collect();
    service.shutdown_now();
    let mut outcomes = Vec::new();
    for handle in handles {
        outcomes.push(handle.wait());
    }
    let aborted = outcomes
        .iter()
        .filter(|o| matches!(o, Err(ServiceError::JobFailed(m)) if m.contains("shutting down")))
        .count();
    assert!(
        aborted >= 1,
        "forced shutdown failed queued jobs: {outcomes:?}"
    );

    // Restart: every non-finished admission is replayed and completes.
    let service = AdvisorService::start(ServiceConfig {
        workers: 1,
        state_dir: Some(state_dir),
        cache: SharedScenarioCache::open(dir.join("cache.json")),
        ..ServiceConfig::default()
    });
    assert!(
        service.recovered_jobs() >= aborted,
        "abandoned jobs replayed"
    );
    assert_eq!(service.await_recovery(), service.recovered_jobs());
    service.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Satellite 1: --io-timeout and the client's --timeout/--retries are
/// validated like --deadline/--budget — negative, zero, non-finite and
/// non-numeric values are rejected up front with a clear message.
#[test]
fn io_timeout_and_client_flags_are_validated() {
    let dir = tempdir("flags");
    let workdir = WorkDir::open(&dir).unwrap();
    let config_path = dir.join("config.yaml");
    std::fs::write(&config_path, YAML).unwrap();

    for bad in ["-1", "0", "nan", "inf", "-0.5", "soon"] {
        let mut out = Vec::new();
        let err = serve_cmd(&args(&[("io-timeout", bad)]), &workdir, &mut out).unwrap_err();
        assert!(
            err.to_string().contains("io-timeout"),
            "bad value '{bad}' must name the flag: {err}"
        );
    }
    for bad in ["-2", "0", "inf"] {
        let mut out = Vec::new();
        let err = request_cmd(
            &args(&[
                ("connect", "127.0.0.1:1"),
                ("config", config_path.to_str().unwrap()),
                ("timeout", bad),
            ]),
            &workdir,
            &mut out,
        )
        .unwrap_err();
        assert!(err.to_string().contains("timeout"), "{err}");
    }
    let mut out = Vec::new();
    let err = request_cmd(
        &args(&[
            ("connect", "127.0.0.1:1"),
            ("config", config_path.to_str().unwrap()),
            ("retries", "many"),
        ]),
        &workdir,
        &mut out,
    )
    .unwrap_err();
    assert!(err.to_string().contains("retries"), "{err}");
    let _ = std::fs::remove_dir_all(&dir);
}
