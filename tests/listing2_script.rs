//! E2: the paper's Listing 2 — the LAMMPS setup/run bash script — executed
//! essentially verbatim by the `taskshell` interpreter against the
//! simulated environment, with Table I's environment variables injected.

use hpcadvisor::core::appscript::LAMMPS_SCRIPT;
use hpcadvisor::taskshell::{ExecutionEnv, Interpreter, UrlStore, Vfs};
use std::sync::Arc;

fn interpreter() -> Interpreter {
    let sku = hpcadvisor::cloudsim::SkuCatalog::azure_hpc()
        .get("Standard_HB120rs_v3")
        .unwrap()
        .clone();
    Interpreter::new(
        ExecutionEnv {
            sku,
            registry: Arc::new(hpcadvisor::appmodel::AppRegistry::standard()),
            experiment_seed: 7,
        },
        Vfs::new(),
        UrlStore::with_known_inputs(),
    )
}

/// Injects the paper's Table I environment for a 16 × 120 run.
fn set_table1_env(interp: &mut Interpreter, nnodes: u32, ppn: u32) {
    interp.set_var("NNODES", &nnodes.to_string());
    interp.set_var("PPN", &ppn.to_string());
    interp.set_var("SKU", "Standard_HB120rs_v3");
    interp.set_var("VMTYPE", "Standard_HB120rs_v3");
    let hosts: Vec<String> = (0..nnodes).map(|i| format!("node-{i:04}:{ppn}")).collect();
    interp.set_var("HOSTLIST_PPN", &hosts.join(","));
    interp.set_var("TASKRUN_DIR", interp.cwd().to_string().as_str());
}

#[test]
fn setup_downloads_then_caches() {
    let mut interp = interpreter();
    interp.set_cwd("/apps/lammps");
    interp.load_script(LAMMPS_SCRIPT).unwrap();

    let out = interp.call_function("hpcadvisor_setup").unwrap();
    assert_eq!(out.exit_code, 0, "{}", out.stdout);
    assert!(interp.vfs().exists("/apps/lammps/in.lj.txt"));
    // Second call takes the `if [[ -f in.lj.txt ]]` early-exit path.
    let out = interp.call_function("hpcadvisor_setup").unwrap();
    assert!(out.stdout.contains("Data already exists"));
}

#[test]
fn run_patches_input_executes_and_exports_metrics() {
    let mut interp = interpreter();
    // Setup in the app dir, run in a task dir beneath it (the `cp ../…`).
    interp.set_cwd("/apps/lammps");
    interp.load_script(LAMMPS_SCRIPT).unwrap();
    interp.call_function("hpcadvisor_setup").unwrap();

    interp.set_cwd("/apps/lammps/task-1");
    interp.set_var("BOXFACTOR", "30");
    set_table1_env(&mut interp, 16, 120);
    let out = interp.call_function("hpcadvisor_run").unwrap();
    assert_eq!(out.exit_code, 0, "{}", out.stdout);

    // The sed commands rewrote all three box indices in the local copy.
    let patched = interp.vfs().read("/apps/lammps/task-1/in.lj.txt").unwrap();
    assert!(patched.contains("variable x index 30"));
    assert!(patched.contains("variable y index 30"));
    assert!(patched.contains("variable z index 30"));
    // The pristine master copy is untouched.
    let master = interp.vfs().read("/apps/lammps/in.lj.txt").unwrap();
    assert!(master.contains("variable\tx index 1"));

    // The HPCADVISORVAR lines came out of the log-scrape pipeline
    // (cat | grep Loop | awk '{print $N}').
    assert!(out.stdout.contains("Simulation completed successfully."));
    let exectime_line = out
        .stdout
        .lines()
        .find(|l| l.starts_with("HPCADVISORVAR APPEXECTIME="))
        .expect("APPEXECTIME exported");
    let secs: f64 = exectime_line
        .split('=')
        .nth(1)
        .unwrap()
        .parse()
        .expect("numeric exec time");
    // 16 × HB120rs_v3 at box ×30 lands near the paper's 36 s.
    assert!((25.0..60.0).contains(&secs), "exec time {secs}");
    assert!(out.stdout.contains("HPCADVISORVAR LAMMPSATOMS=864000000"));
    assert!(out.stdout.contains("HPCADVISORVAR LAMMPSSTEPS=100"));

    // Virtual time: EESSI init + module load + wget + run ≈ the app time
    // plus tens of seconds of setup.
    assert!(out.elapsed.as_secs_f64() > secs);
}

#[test]
fn failed_simulation_takes_error_branch() {
    let mut interp = interpreter();
    interp.set_cwd("/apps/lammps");
    interp.load_script(LAMMPS_SCRIPT).unwrap();
    interp.call_function("hpcadvisor_setup").unwrap();
    interp.set_cwd("/apps/lammps/task-oom");
    // Box ×50 = 4 billion atoms: OOM on one node.
    interp.set_var("BOXFACTOR", "50");
    set_table1_env(&mut interp, 1, 120);
    interp.set_var("HOSTLIST_PPN", "node-0000:120");
    let out = interp.call_function("hpcadvisor_run").unwrap();
    assert_eq!(out.exit_code, 1, "{}", out.stdout);
    assert!(out
        .stdout
        .contains("Simulation did not complete successfully."));
    assert!(!out.stdout.contains("HPCADVISORVAR"));
}
