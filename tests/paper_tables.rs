//! E9/E10: the paper's advice tables (Listings 3 and 4) reproduced
//! end-to-end — config → deployment → Algorithm 1 → Pareto front.

use hpcadvisor::prelude::*;

/// Canonical experiment seed used across the repo's paper artifacts.
const SEED: u64 = 7;

#[test]
fn listing4_lammps_front() {
    // 3 SKUs × 6 node counts × LJ ×30 (E10).
    let mut session = Session::create(UserConfig::example_lammps(), SEED).unwrap();
    let ds = session.collect().unwrap();
    let advice = Advice::from_dataset(&ds, &DataFilter::all());

    // Paper Listing 4: four rows, all HB120rs_v3, at 16/8/4/3 nodes,
    // fastest-first with cost decreasing down the table.
    assert_eq!(advice.rows.len(), 4, "{}", advice.render_text());
    assert!(advice.rows.iter().all(|r| r.sku == "hb120rs_v3"));
    let nodes: Vec<u32> = advice.rows.iter().map(|r| r.nodes).collect();
    assert_eq!(nodes, vec![16, 8, 4, 3]);
    for w in advice.rows.windows(2) {
        assert!(w[0].exec_time_secs < w[1].exec_time_secs);
        assert!(w[0].cost_dollars > w[1].cost_dollars);
    }
    // Quantitative shape: paper 36/69/132/173 s and $0.576/0.552/0.528/0.519.
    let paper = [(36.0, 0.576), (69.0, 0.552), (132.0, 0.528), (173.0, 0.519)];
    for (row, (pt, pc)) in advice.rows.iter().zip(paper) {
        let t_ratio = row.exec_time_secs / pt;
        let c_ratio = row.cost_dollars / pc;
        assert!(
            (0.75..1.25).contains(&t_ratio),
            "time {} vs paper {pt}",
            row.exec_time_secs
        );
        assert!(
            (0.75..1.25).contains(&c_ratio),
            "cost {} vs paper {pc}",
            row.cost_dollars
        );
    }
}

#[test]
fn listing4_low_node_runs_fail_or_lose() {
    // The paper's front starts at 3 nodes: 1 node cannot hold 864M atoms
    // and 2 nodes is memory-pressured off the front.
    let mut session = Session::create(UserConfig::example_lammps(), SEED).unwrap();
    let ds = session.collect().unwrap();
    let one_node_v3 = ds
        .points
        .iter()
        .find(|p| p.nnodes == 1 && p.sku.contains("v3"))
        .unwrap();
    assert_eq!(
        one_node_v3.status,
        ScenarioStatus::Failed,
        "1 node must OOM"
    );
    let advice = Advice::from_dataset(&ds, &DataFilter::all());
    assert!(!advice.rows.iter().any(|r| r.nodes < 3));
}

#[test]
fn listing3_openfoam_front() {
    // motorBike @ 8M cells (E9).
    let mut session = Session::create(UserConfig::example_openfoam_motorbike(), SEED).unwrap();
    let ds = session.collect().unwrap();
    let advice = Advice::from_dataset(&ds, &DataFilter::all());
    assert!(advice.rows.len() >= 4, "{}", advice.render_text());

    // Paper's four rows (16/8/4/3 nodes at 34/38/48/59 s): our front must
    // contain matching configurations at matching times/costs. The paper's
    // 8-node row is HB120rs_v2 — a run-to-run-noise artifact the physical
    // model resolves in favour of v3 (same price, bigger cache); accept
    // either SKU at 8 nodes.
    let paper = [
        (16u32, 34.0, 0.544),
        (8, 38.0, 0.304),
        (4, 48.0, 0.192),
        (3, 59.0, 0.177),
    ];
    for (nodes, pt, pc) in paper {
        let row = advice
            .rows
            .iter()
            .find(|r| r.nodes == nodes)
            .unwrap_or_else(|| panic!("no {nodes}-node row in front:\n{}", advice.render_text()));
        assert!(
            row.sku == "hb120rs_v3" || row.sku == "hb120rs_v2",
            "{nodes}-node row is {}",
            row.sku
        );
        let t_ratio = row.exec_time_secs / pt;
        let c_ratio = row.cost_dollars / pc;
        assert!(
            (0.7..1.3).contains(&t_ratio),
            "{nodes}n time {} vs {pt}",
            row.exec_time_secs
        );
        assert!(
            (0.7..1.3).contains(&c_ratio),
            "{nodes}n cost {} vs {pc}",
            row.cost_dollars
        );
    }
    // HC44rs never reaches the OpenFOAM front (memory-starved Xeon).
    assert!(!advice.rows.iter().any(|r| r.sku == "hc44rs"));
}

#[test]
fn openfoam_scaling_flatter_than_lammps() {
    // The cross-application contrast that motivates per-app advice: from 3
    // to 16 nodes LAMMPS gains ~4.3×, OpenFOAM only ~1.7× (paper numbers).
    let speedup_3_to_16 = |config: UserConfig| {
        let mut s = Session::create(config, SEED).unwrap();
        let ds = s.collect().unwrap();
        let t = |n: u32| {
            ds.points
                .iter()
                .find(|p| p.nnodes == n && p.sku.contains("v3"))
                .map(|p| p.exec_time_secs)
                .unwrap()
        };
        t(3) / t(16)
    };
    let lammps = speedup_3_to_16(UserConfig::example_lammps());
    let openfoam = speedup_3_to_16(UserConfig::example_openfoam_motorbike());
    assert!(lammps > 3.5, "LAMMPS 3→16 speedup {lammps:.2}");
    assert!(openfoam < 2.2, "OpenFOAM 3→16 speedup {openfoam:.2}");
}

#[test]
fn sort_by_cost_option() {
    // "the tool has the option to have the data sorted by cost as well".
    use hpcadvisor::prelude::AdviceSort;
    let mut session = Session::create(UserConfig::example_lammps(), SEED).unwrap();
    let ds = session.collect().unwrap();
    let by_cost = Advice::from_dataset_sorted(&ds, &DataFilter::all(), AdviceSort::ByCost);
    for w in by_cost.rows.windows(2) {
        assert!(w[0].cost_dollars <= w[1].cost_dollars);
    }
    assert_eq!(
        by_cost.rows.last().unwrap().nodes,
        16,
        "fastest is costliest"
    );
}
