//! Derived metrics: the series behind the paper's four plot families.

use crate::dataset::{DataFilter, DataPoint, Dataset};

/// A per-SKU series of `(x, y)` points.
#[derive(Debug, Clone, PartialEq)]
pub struct SkuSeries {
    /// Short SKU name (legend label).
    pub sku: String,
    /// Points sorted by x.
    pub points: Vec<(f64, f64)>,
}

fn mean_exec_time(points: &[&DataPoint]) -> f64 {
    if points.is_empty() {
        return f64::NAN;
    }
    points.iter().map(|p| p.exec_time_secs).sum::<f64>() / points.len() as f64
}

/// Groups filter-matching points by SKU — and, when the filtered data spans
/// more than one appinput combination, by `(SKU, inputs)` so sweeps over
/// different problem sizes never merge into one zigzag series. Maps each
/// point through `f`.
fn series_by_sku<F>(ds: &Dataset, filter: &DataFilter, f: F) -> Vec<SkuSeries>
where
    F: Fn(&DataPoint) -> (f64, f64),
{
    let multi_input = ds.input_keys(filter).len() > 1;
    let mut out: Vec<SkuSeries> = Vec::new();
    for p in ds.filter(filter) {
        let (x, y) = f(p);
        if !x.is_finite() || !y.is_finite() {
            continue;
        }
        let label = if multi_input {
            format!("{} [{}]", p.sku_short(), p.input_key())
        } else {
            p.sku_short()
        };
        match out.iter_mut().find(|s| s.sku == label) {
            Some(s) => s.points.push((x, y)),
            None => out.push(SkuSeries {
                sku: label,
                points: vec![(x, y)],
            }),
        }
    }
    for s in &mut out {
        s.points.sort_by(|a, b| a.0.total_cmp(&b.0));
    }
    out
}

/// Plot 1 — Execution Time vs. Number of Nodes (paper Fig. 2).
pub fn time_vs_nodes(ds: &Dataset, filter: &DataFilter) -> Vec<SkuSeries> {
    series_by_sku(ds, filter, |p| (p.nnodes as f64, p.exec_time_secs))
}

/// Plot 2 — Execution Time vs. Cost (paper Fig. 3).
pub fn time_vs_cost(ds: &Dataset, filter: &DataFilter) -> Vec<SkuSeries> {
    series_by_sku(ds, filter, |p| (p.cost_dollars, p.exec_time_secs))
}

/// Plot 3 — Speed-up vs. Number of Nodes (paper Fig. 4): how much faster
/// the multi-node execution is compared to the single-node one (or, when no
/// 1-node run exists, the smallest node count measured for that SKU).
pub fn speedup(ds: &Dataset, filter: &DataFilter) -> Vec<SkuSeries> {
    let time_series = time_vs_nodes(ds, filter);
    time_series
        .into_iter()
        .filter_map(|s| {
            // Average duplicates per node count first.
            let mut averaged: Vec<(f64, f64)> = Vec::new();
            for (x, y) in &s.points {
                match averaged.iter_mut().find(|(ax, _)| ax == x) {
                    Some((_, ay)) => *ay = (*ay + *y) / 2.0,
                    None => averaged.push((*x, *y)),
                }
            }
            // speedup(n) = T(base)/T(n) · base_nodes: with a 1-node baseline
            // this is exactly T(1)/T(n); with a larger smallest measurement
            // the baseline is assumed linear up to base_nodes, so the
            // baseline point sits at speedup = base_nodes.
            let (base_nodes, base_time) = *averaged.first()?;
            let points = averaged
                .iter()
                .map(|(n, t)| (*n, base_time / t * base_nodes))
                .collect();
            Some(SkuSeries { sku: s.sku, points })
        })
        .collect()
}

/// Plot 4 — Efficiency vs. Number of Nodes (paper Fig. 5): speed-up divided
/// by the node-count ratio. Values above 1 are superlinear (the paper
/// explicitly observes such a region).
pub fn efficiency(ds: &Dataset, filter: &DataFilter) -> Vec<SkuSeries> {
    speedup(ds, filter)
        .into_iter()
        .map(|s| SkuSeries {
            points: s.points.iter().map(|(n, su)| (*n, su / n)).collect(),
            sku: s.sku,
        })
        .collect()
}

/// Mean execution time across filter-matching rows (used by samplers).
pub fn mean_time(ds: &Dataset, filter: &DataFilter) -> f64 {
    mean_exec_time(&ds.filter(filter))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::point;

    /// A dataset shaped like the paper's Listing 4 LAMMPS table.
    fn listing4_dataset() -> Dataset {
        let mut ds = Dataset::new();
        for (n, t, c) in [
            (3u32, 173.0, 0.519),
            (4, 132.0, 0.528),
            (8, 69.0, 0.552),
            (16, 36.0, 0.576),
        ] {
            ds.push(point(n, "lammps", "Standard_HB120rs_v3", n, 120, t, c));
        }
        for (n, t, c) in [
            (3u32, 260.0, 0.68),
            (4, 200.0, 0.70),
            (8, 105.0, 0.74),
            (16, 55.0, 0.77),
        ] {
            ds.push(point(100 + n, "lammps", "Standard_HC44rs", n, 44, t, c));
        }
        ds
    }

    #[test]
    fn time_vs_nodes_series() {
        let ds = listing4_dataset();
        let series = time_vs_nodes(&ds, &DataFilter::all());
        assert_eq!(series.len(), 2);
        let v3 = series.iter().find(|s| s.sku == "hb120rs_v3").unwrap();
        assert_eq!(
            v3.points,
            vec![(3.0, 173.0), (4.0, 132.0), (8.0, 69.0), (16.0, 36.0)]
        );
    }

    #[test]
    fn time_vs_cost_series() {
        let ds = listing4_dataset();
        let series = time_vs_cost(&ds, &DataFilter::all());
        let v3 = series.iter().find(|s| s.sku == "hb120rs_v3").unwrap();
        assert!((v3.points[0].0 - 0.519).abs() < 1e-9);
        assert!((v3.points[0].1 - 173.0).abs() < 1e-9);
    }

    #[test]
    fn speedup_uses_smallest_node_count_as_baseline() {
        let ds = listing4_dataset();
        let series = speedup(&ds, &DataFilter::all());
        let v3 = series.iter().find(|s| s.sku == "hb120rs_v3").unwrap();
        // Baseline is 3 nodes: speedup(3) = 3 (plotted against the 1-node
        // ideal), speedup(16) = 3 × 173/36 ≈ 14.4.
        assert!((v3.points[0].1 - 3.0).abs() < 1e-9);
        let s16 = v3.points.last().unwrap().1;
        assert!((s16 - 3.0 * 173.0 / 36.0).abs() < 1e-9, "s16 {s16}");
    }

    #[test]
    fn efficiency_is_speedup_over_nodes() {
        let ds = listing4_dataset();
        let series = efficiency(&ds, &DataFilter::all());
        let v3 = series.iter().find(|s| s.sku == "hb120rs_v3").unwrap();
        assert!(
            (v3.points[0].1 - 1.0).abs() < 1e-9,
            "baseline efficiency is 1"
        );
        let e16 = v3.points.last().unwrap().1;
        assert!((e16 - (3.0 * 173.0 / 36.0) / 16.0).abs() < 1e-9);
        assert!(e16 < 1.0, "sublinear here");
    }

    #[test]
    fn superlinear_efficiency_detectable() {
        // T(1)=100, T(2)=40 ⇒ speedup 2.5, efficiency 1.25.
        let mut ds = Dataset::new();
        ds.push(point(1, "app", "S", 1, 8, 100.0, 1.0));
        ds.push(point(2, "app", "S", 2, 8, 40.0, 0.8));
        let eff = efficiency(&ds, &DataFilter::all());
        assert!((eff[0].points[1].1 - 1.25).abs() < 1e-9);
    }

    #[test]
    fn multi_input_sweeps_get_separate_series() {
        let mut ds = Dataset::new();
        for (id, n, t, input) in [
            (1u32, 2u32, 100.0, "16"),
            (2, 4, 55.0, "16"),
            (3, 2, 300.0, "24"),
            (4, 4, 160.0, "24"),
        ] {
            let mut p = point(id, "lammps", "Standard_HB120rs_v3", n, 120, t, 0.1);
            p.appinputs = vec![("BOXFACTOR".into(), input.into())];
            ds.push(p);
        }
        let series = time_vs_nodes(&ds, &DataFilter::all());
        assert_eq!(series.len(), 2, "one series per input combo: {series:?}");
        assert!(series.iter().any(|s| s.sku.contains("BOXFACTOR=16")));
        // Each series is monotone (no zigzag from merged sweeps).
        for s in &series {
            for w in s.points.windows(2) {
                assert!(w[1].1 < w[0].1, "{s:?}");
            }
        }
        // Filtering to one input drops the label decoration.
        let f = DataFilter::parse("BOXFACTOR=16").unwrap();
        let series = time_vs_nodes(&ds, &f);
        assert_eq!(series.len(), 1);
        assert_eq!(series[0].sku, "hb120rs_v3");
    }

    #[test]
    fn empty_filter_result() {
        let ds = listing4_dataset();
        let f = DataFilter {
            appname: Some("wrf".into()),
            ..DataFilter::all()
        };
        assert!(time_vs_nodes(&ds, &f).is_empty());
        assert!(mean_time(&ds, &f).is_nan());
    }
}
