//! Pareto-front computation over (cost, execution time).
//!
//! "The Pareto front represents the solutions that are Pareto efficient,
//! i.e. a set of solutions that are non-dominated relative to each other
//! but are superior to the rest of solutions in the search space." — paper,
//! Section III-E. Both objectives are minimized.

/// True if `a` dominates `b`: no worse in both objectives, strictly better
/// in at least one.
pub fn dominates(a: (f64, f64), b: (f64, f64)) -> bool {
    a.0 <= b.0 && a.1 <= b.1 && (a.0 < b.0 || a.1 < b.1)
}

/// Returns the indices of the Pareto-efficient points among `(cost, time)`
/// pairs, sorted by cost ascending (time therefore descends along the
/// front).
pub fn pareto_front(points: &[(f64, f64)]) -> Vec<usize> {
    let mut indices: Vec<usize> = (0..points.len())
        .filter(|&i| points[i].0.is_finite() && points[i].1.is_finite())
        .collect();
    // Sort by cost, then time; sweep keeping strictly improving time.
    indices.sort_by(|&a, &b| {
        points[a]
            .0
            .total_cmp(&points[b].0)
            .then(points[a].1.total_cmp(&points[b].1))
    });
    let mut front = Vec::new();
    let mut best_time = f64::INFINITY;
    for &i in &indices {
        let (_, t) = points[i];
        if t < best_time {
            // Equal-cost duplicates: only the first (fastest) survives, and
            // equal-time higher-cost points are dominated.
            front.push(i);
            best_time = t;
        }
    }
    front
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dominance_relation() {
        assert!(dominates((1.0, 1.0), (2.0, 2.0)));
        assert!(dominates((1.0, 2.0), (1.0, 3.0)));
        assert!(
            !dominates((1.0, 2.0), (2.0, 1.0)),
            "trade-off: no dominance"
        );
        assert!(
            !dominates((1.0, 1.0), (1.0, 1.0)),
            "equal points don't dominate"
        );
    }

    #[test]
    fn simple_front() {
        // Listing 4-like: all four rows are on the front (cost ↑, time ↓).
        let pts = vec![(0.519, 173.0), (0.528, 132.0), (0.552, 69.0), (0.576, 36.0)];
        let front = pareto_front(&pts);
        assert_eq!(front, vec![0, 1, 2, 3]);
    }

    #[test]
    fn dominated_points_excluded() {
        let pts = vec![
            (0.5, 100.0), // on front
            (0.6, 120.0), // dominated by 0 (costlier and slower)
            (0.7, 50.0),  // on front
            (0.7, 60.0),  // dominated by 2 (same cost, slower)
            (0.4, 200.0), // on front (cheapest)
        ];
        let front = pareto_front(&pts);
        assert_eq!(front, vec![4, 0, 2]);
    }

    #[test]
    fn single_point_and_empty() {
        assert_eq!(pareto_front(&[(1.0, 1.0)]), vec![0]);
        assert!(pareto_front(&[]).is_empty());
        // Non-finite points are ignored.
        assert_eq!(pareto_front(&[(f64::NAN, 1.0), (1.0, 1.0)]), vec![1]);
    }

    #[test]
    fn front_invariants_hold() {
        // Deterministic pseudo-random cloud of points.
        let mut pts = Vec::new();
        let mut x = 123456789u64;
        for _ in 0..200 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let a = (x >> 33) as f64 / 2.0f64.powi(31);
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let b = (x >> 33) as f64 / 2.0f64.powi(31);
            pts.push((a, b));
        }
        let front = pareto_front(&pts);
        assert!(!front.is_empty());
        // (1) Front members are mutually non-dominated.
        for &i in &front {
            for &j in &front {
                if i != j {
                    assert!(!dominates(pts[i], pts[j]), "{i} dominates {j}");
                }
            }
        }
        // (2) Every non-front point is dominated by some front member.
        for k in 0..pts.len() {
            if !front.contains(&k) {
                assert!(
                    front.iter().any(|&i| dominates(pts[i], pts[k])),
                    "point {k} is not dominated but missing from front"
                );
            }
        }
    }
}
