//! The main user configuration file (paper Listing 1).

use crate::error::ToolError;
use hpcadvisor_formats::{yaml, Value};

/// Parsed main configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct UserConfig {
    /// Cloud subscription ID or name.
    pub subscription: String,
    /// VM types (SKUs) to test.
    pub skus: Vec<String>,
    /// Prefix for resource-group names.
    pub rgprefix: String,
    /// URL of the application setup/run script.
    pub appsetupurl: String,
    /// Node counts to test.
    pub nnodes: Vec<u32>,
    /// Application name (selects the bundled script/model family).
    pub appname: String,
    /// Tags copied into every result row.
    pub tags: Vec<(String, String)>,
    /// Region to provision in.
    pub region: String,
    /// Candidate placement regions for the scenario grid. Empty (the
    /// default) keeps the legacy single-region behavior: everything runs in
    /// `region`. Non-empty, the grid is multiplied by these regions and
    /// their order is the failover order when a region faults mid-run.
    pub regions: Vec<String>,
    /// Whether to create a jumpbox VM.
    pub createjumpbox: bool,
    /// Percentage of each node's cores to use as processes-per-node.
    pub ppr: u32,
    /// Application input sweep: parameter → values.
    pub appinputs: Vec<(String, Vec<String>)>,
    /// Existing resource group containing a VPN (optional).
    pub vpnrg: Option<String>,
    /// Existing VNet name for the VPN (optional).
    pub vpnvnet: Option<String>,
    /// Whether to peer with the VPN VNet.
    pub peervpn: bool,
}

/// Emits one scalar for [`UserConfig::to_yaml`], quoting whenever the bare
/// spelling would re-parse as something other than the original string
/// (numbers, booleans, null, flow sequences, comments, key separators).
/// The in-tree YAML reader strips quotes without escape processing, so a
/// string containing a double quote is single-quoted instead.
fn yaml_scalar(s: &str) -> String {
    let needs_quotes = s.is_empty()
        || !matches!(yaml::parse(&format!("k: {s}")).ok().and_then(|d| d.get("k").cloned()),
            Some(Value::Str(back)) if back == s);
    if !needs_quotes {
        return s.to_string();
    }
    if s.contains('"') {
        format!("'{s}'")
    } else {
        format!("\"{s}\"")
    }
}

fn req_str(doc: &Value, key: &str) -> Result<String, ToolError> {
    match doc.get(key) {
        Some(Value::Str(s)) => Ok(s.clone()),
        Some(Value::Int(i)) => Ok(i.to_string()),
        Some(other) => Err(ToolError::Config(format!(
            "field '{key}' must be a string, got {other:?}"
        ))),
        None => Err(ToolError::Config(format!("missing required field '{key}'"))),
    }
}

fn str_list(doc: &Value, key: &str) -> Result<Vec<String>, ToolError> {
    match doc.get(key) {
        Some(Value::Seq(items)) => items
            .iter()
            .map(|v| match v {
                Value::Str(s) => Ok(s.clone()),
                Value::Int(i) => Ok(i.to_string()),
                other => Err(ToolError::Config(format!(
                    "field '{key}' has non-string element {other:?}"
                ))),
            })
            .collect(),
        Some(Value::Str(s)) => Ok(vec![s.clone()]),
        Some(other) => Err(ToolError::Config(format!(
            "field '{key}' must be a list, got {other:?}"
        ))),
        None => Err(ToolError::Config(format!("missing required field '{key}'"))),
    }
}

impl UserConfig {
    /// Parses a Listing-1-style YAML document.
    pub fn from_yaml(text: &str) -> Result<Self, ToolError> {
        let doc = yaml::parse(text)?;
        if doc.as_map().is_none() {
            return Err(ToolError::Config("configuration must be a mapping".into()));
        }

        let nnodes: Vec<u32> = match doc.get("nnodes") {
            Some(Value::Seq(items)) => items
                .iter()
                .map(|v| {
                    v.as_int()
                        .filter(|n| *n > 0 && *n <= 10_000)
                        .map(|n| n as u32)
                        .ok_or_else(|| {
                            ToolError::Config(format!("nnodes element {v:?} must be 1..=10000"))
                        })
                })
                .collect::<Result<_, _>>()?,
            Some(Value::Int(n)) if *n > 0 => vec![*n as u32],
            _ => return Err(ToolError::Config("missing or invalid 'nnodes' list".into())),
        };
        if nnodes.is_empty() {
            return Err(ToolError::Config("'nnodes' list is empty".into()));
        }

        let skus = str_list(&doc, "skus")?;
        if skus.is_empty() {
            return Err(ToolError::Config("'skus' list is empty".into()));
        }

        let ppr = match doc.get("ppr") {
            None => 100,
            Some(v) => {
                let p = v
                    .as_int()
                    .filter(|p| (1..=100).contains(p))
                    .ok_or_else(|| ToolError::Config("'ppr' must be 1..=100".into()))?;
                p as u32
            }
        };

        let tags = match doc.get("tags") {
            None => Vec::new(),
            Some(Value::Map(m)) => m
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_plain_string()))
                .collect(),
            Some(other) => {
                return Err(ToolError::Config(format!(
                    "'tags' must be a mapping, got {other:?}"
                )))
            }
        };

        let appinputs = match doc.get("appinputs") {
            None | Some(Value::Null) => Vec::new(),
            Some(Value::Map(m)) => m
                .iter()
                .map(|(k, v)| {
                    let values = match v {
                        // Duplicate YAML keys coalesce to a Seq — the sweep.
                        Value::Seq(items) => items.iter().map(|i| i.to_plain_string()).collect(),
                        scalar => vec![scalar.to_plain_string()],
                    };
                    (k.to_string(), values)
                })
                .collect(),
            Some(Value::Seq(entries)) => {
                // Alternative form: a list of single-key maps.
                let mut out: Vec<(String, Vec<String>)> = Vec::new();
                for e in entries {
                    let m = e.as_map().ok_or_else(|| {
                        ToolError::Config("'appinputs' list entries must be mappings".into())
                    })?;
                    for (k, v) in m.iter() {
                        match out.iter_mut().find(|(name, _)| name == k) {
                            Some((_, vals)) => vals.push(v.to_plain_string()),
                            None => out.push((k.to_string(), vec![v.to_plain_string()])),
                        }
                    }
                }
                out
            }
            Some(other) => {
                return Err(ToolError::Config(format!(
                    "'appinputs' must be a mapping, got {other:?}"
                )))
            }
        };

        let get_opt_str = |key: &str| -> Option<String> {
            doc.get(key).and_then(|v| v.as_str()).map(|s| s.to_string())
        };
        let get_bool =
            |key: &str| -> bool { doc.get(key).and_then(|v| v.as_bool()).unwrap_or(false) };

        Ok(UserConfig {
            subscription: req_str(&doc, "subscription")?,
            skus,
            rgprefix: req_str(&doc, "rgprefix")?,
            appsetupurl: req_str(&doc, "appsetupurl")?,
            nnodes,
            appname: req_str(&doc, "appname")?,
            tags,
            region: req_str(&doc, "region")?,
            regions: match doc.get("regions") {
                None | Some(Value::Null) => Vec::new(),
                Some(_) => str_list(&doc, "regions")?,
            },
            createjumpbox: get_bool("createjumpbox"),
            ppr,
            appinputs,
            vpnrg: get_opt_str("vpnrg"),
            vpnvnet: get_opt_str("vpnvnet"),
            peervpn: get_bool("peervpn"),
        })
    }

    /// Serializes back to a Listing-1-style YAML document that
    /// [`UserConfig::from_yaml`] parses to an equal value. The service
    /// journal uses this to persist admitted-but-unfinished requests so a
    /// restarted daemon can replay them; sweeps use the `appinputs`
    /// list-of-single-key-maps form so multi-value parameters survive.
    pub fn to_yaml(&self) -> String {
        let mut out = String::new();
        let mut kv = |k: &str, v: &str| {
            out.push_str(k);
            out.push_str(": ");
            out.push_str(&yaml_scalar(v));
            out.push('\n');
        };
        kv("subscription", &self.subscription);
        kv("rgprefix", &self.rgprefix);
        kv("appsetupurl", &self.appsetupurl);
        kv("appname", &self.appname);
        kv("region", &self.region);
        if !self.regions.is_empty() {
            out.push_str("regions:\n");
            for r in &self.regions {
                out.push_str(&format!("- {}\n", yaml_scalar(r)));
            }
        }
        out.push_str(&format!("ppr: {}\n", self.ppr));
        if self.createjumpbox {
            out.push_str("createjumpbox: true\n");
        }
        if self.peervpn {
            out.push_str("peervpn: true\n");
        }
        if let Some(rg) = &self.vpnrg {
            out.push_str(&format!("vpnrg: {}\n", yaml_scalar(rg)));
        }
        if let Some(vnet) = &self.vpnvnet {
            out.push_str(&format!("vpnvnet: {}\n", yaml_scalar(vnet)));
        }
        out.push_str("skus:\n");
        for sku in &self.skus {
            out.push_str(&format!("- {}\n", yaml_scalar(sku)));
        }
        let nodes: Vec<String> = self.nnodes.iter().map(|n| n.to_string()).collect();
        out.push_str(&format!("nnodes: [{}]\n", nodes.join(", ")));
        if !self.tags.is_empty() {
            out.push_str("tags:\n");
            for (k, v) in &self.tags {
                out.push_str(&format!("  {}: {}\n", yaml_scalar(k), yaml_scalar(v)));
            }
        }
        if !self.appinputs.is_empty() {
            out.push_str("appinputs:\n");
            for (k, values) in &self.appinputs {
                for v in values {
                    out.push_str(&format!("- {}: {}\n", yaml_scalar(k), yaml_scalar(v)));
                }
            }
        }
        out
    }

    /// Total number of scenarios this configuration expands to. With a
    /// multi-region `regions` list this is an upper bound: generation drops
    /// (SKU, region) pairs where the region does not offer the SKU's family.
    pub fn scenario_count(&self) -> usize {
        let input_combos: usize = self
            .appinputs
            .iter()
            .map(|(_, vs)| vs.len().max(1))
            .product();
        self.skus.len() * self.nnodes.len() * input_combos.max(1) * self.regions.len().max(1)
    }

    /// The paper's OpenFOAM Listing 1 configuration (3 SKUs × 6 node counts
    /// × 2 meshes = 36 scenarios).
    pub fn example_openfoam() -> Self {
        UserConfig::from_yaml(
            r#"
subscription: mysubscription
skus:
- Standard_HC44rs
- Standard_HB120rs_v2
- Standard_HB120rs_v3
rgprefix: hpcadvisortest1
appsetupurl: https://example.com/scripts/openfoam.sh
nnodes: [1, 2, 3, 4, 8, 16]
appname: openfoam
tags:
  version: v1
region: southcentralus
createjumpbox: true
ppr: 100
appinputs:
  mesh: "80 24 24"
  mesh: "60 16 16"
"#,
        )
        .expect("bundled example config parses")
    }

    /// The paper's Listing 3 experiment: OpenFOAM motorBike at
    /// BLOCKMESH_DIMENSIONS "40 16 16" (~8 M cells).
    pub fn example_openfoam_motorbike() -> Self {
        let mut c = Self::example_openfoam();
        c.appinputs = vec![("mesh".into(), vec!["40 16 16".into()])];
        c.nnodes = vec![1, 2, 3, 4, 8, 16];
        c
    }

    /// The paper's Listing 4 / Figures 2–5 experiment: LAMMPS LJ with the
    /// box multiplied ×30 (≈ 864 M atoms) on three InfiniBand SKUs up to
    /// 1,920 cores.
    pub fn example_lammps() -> Self {
        UserConfig::from_yaml(
            r#"
subscription: mysubscription
skus:
- Standard_HC44rs
- Standard_HB120rs_v2
- Standard_HB120rs_v3
rgprefix: hpcadvisorlammps
appsetupurl: https://example.com/scripts/lammps.sh
nnodes: [1, 2, 3, 4, 8, 16]
appname: lammps
tags:
  version: v1
region: southcentralus
ppr: 100
appinputs:
  BOXFACTOR: "30"
"#,
        )
        .expect("bundled example config parses")
    }

    /// A small LAMMPS sweep for doctests and quick starts (1 SKU × 3 node
    /// counts × 1 input = 3 scenarios).
    pub fn example_lammps_small() -> Self {
        let mut c = Self::example_lammps();
        c.skus = vec!["Standard_HB120rs_v3".into()];
        c.nnodes = vec![1, 2, 4];
        c.appinputs = vec![("BOXFACTOR".into(), vec!["8".into()])];
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn to_yaml_round_trips_every_bundled_example() {
        for config in [
            UserConfig::example_openfoam(),
            UserConfig::example_openfoam_motorbike(),
            UserConfig::example_lammps(),
            UserConfig::example_lammps_small(),
        ] {
            let back = UserConfig::from_yaml(&config.to_yaml()).expect("emitted YAML parses");
            assert_eq!(back, config, "round-trip changed the config");
        }
    }

    #[test]
    fn to_yaml_quotes_hostile_scalars() {
        let mut config = UserConfig::example_lammps_small();
        config.tags = vec![
            ("plain".into(), "value".into()),
            ("numberish".into(), "42".into()),
            ("boolish".into(), "true".into()),
            ("commenty".into(), "a # b".into()),
            ("colony".into(), "a: b".into()),
            ("bracket".into(), "[1, 2]".into()),
            ("spacey".into(), "  padded  ".into()),
        ];
        config.appinputs = vec![("mesh".into(), vec!["80 24 24".into(), "60 16 16".into()])];
        let back = UserConfig::from_yaml(&config.to_yaml()).expect("quoted YAML parses");
        assert_eq!(back, config);
    }

    #[test]
    fn parses_listing1_fields() {
        let c = UserConfig::example_openfoam();
        assert_eq!(c.subscription, "mysubscription");
        assert_eq!(c.skus.len(), 3);
        assert_eq!(c.nnodes, vec![1, 2, 3, 4, 8, 16]);
        assert_eq!(c.appname, "openfoam");
        assert_eq!(c.region, "southcentralus");
        assert!(c.createjumpbox);
        assert_eq!(c.ppr, 100);
        assert_eq!(c.tags, vec![("version".to_string(), "v1".to_string())]);
        // The duplicated `mesh:` keys become a 2-value sweep.
        assert_eq!(
            c.appinputs,
            vec![(
                "mesh".to_string(),
                vec!["80 24 24".to_string(), "60 16 16".to_string()]
            )]
        );
        // 3 SKUs × 6 node counts × 2 meshes (the paper's 3x6x2).
        assert_eq!(c.scenario_count(), 36);
    }

    #[test]
    fn missing_fields_error() {
        assert!(UserConfig::from_yaml("subscription: s\n").is_err());
        let err = UserConfig::from_yaml("appname: x\nnnodes: [1]\nskus:\n- A\n").unwrap_err();
        assert!(err.to_string().contains("missing required field"));
    }

    #[test]
    fn invalid_values_error() {
        let base = |extra: &str| {
            format!(
                "subscription: s\nrgprefix: r\nappsetupurl: u\nappname: a\nregion: southcentralus\nskus:\n- A\n{extra}"
            )
        };
        assert!(UserConfig::from_yaml(&base("nnodes: [0]\n")).is_err());
        assert!(UserConfig::from_yaml(&base("nnodes: [1]\nppr: 150\n")).is_err());
        assert!(UserConfig::from_yaml(&base("nnodes: []\n")).is_err());
        assert!(UserConfig::from_yaml(&base("nnodes: [1]\n")).is_ok());
    }

    #[test]
    fn defaults() {
        let c = UserConfig::from_yaml(
            "subscription: s\nrgprefix: r\nappsetupurl: u\nappname: a\nregion: eastus\nskus:\n- A\nnnodes: [1]\n",
        )
        .unwrap();
        assert_eq!(c.ppr, 100);
        assert!(!c.createjumpbox);
        assert!(!c.peervpn);
        assert!(c.appinputs.is_empty());
        assert!(c.tags.is_empty());
        assert_eq!(c.scenario_count(), 1);
    }

    #[test]
    fn appinputs_list_form() {
        let c = UserConfig::from_yaml(
            "subscription: s\nrgprefix: r\nappsetupurl: u\nappname: a\nregion: eastus\nskus:\n- A\nnnodes: [1]\nappinputs:\n- mesh: \"a\"\n- mesh: \"b\"\n- steps: 100\n",
        )
        .unwrap();
        assert_eq!(
            c.appinputs,
            vec![
                ("mesh".to_string(), vec!["a".to_string(), "b".to_string()]),
                ("steps".to_string(), vec!["100".to_string()])
            ]
        );
        assert_eq!(c.scenario_count(), 2);
    }

    #[test]
    fn regions_list_round_trips_and_defaults_empty() {
        let c = UserConfig::from_yaml(
            "subscription: s\nrgprefix: r\nappsetupurl: u\nappname: a\nregion: southcentralus\nskus:\n- A\nnnodes: [1]\n",
        )
        .unwrap();
        assert!(c.regions.is_empty(), "no 'regions' key means single-region");
        let mut c = UserConfig::example_lammps_small();
        c.regions = vec!["southcentralus".into(), "westeurope".into()];
        let back = UserConfig::from_yaml(&c.to_yaml()).unwrap();
        assert_eq!(back, c);
        assert_eq!(c.scenario_count(), 6, "two regions double the 3-point grid");
    }

    #[test]
    fn vpn_options() {
        let c = UserConfig::from_yaml(
            "subscription: s\nrgprefix: r\nappsetupurl: u\nappname: a\nregion: eastus\nskus:\n- A\nnnodes: [1]\nvpnrg: corp-vpn\nvpnvnet: corp-vnet\npeervpn: true\n",
        )
        .unwrap();
        assert_eq!(c.vpnrg.as_deref(), Some("corp-vpn"));
        assert_eq!(c.vpnvnet.as_deref(), Some("corp-vnet"));
        assert!(c.peervpn);
    }
}
