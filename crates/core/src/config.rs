//! The main user configuration file (paper Listing 1).

use crate::error::ToolError;
use hpcadvisor_formats::{yaml, Value};

/// Parsed main configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct UserConfig {
    /// Cloud subscription ID or name.
    pub subscription: String,
    /// VM types (SKUs) to test.
    pub skus: Vec<String>,
    /// Prefix for resource-group names.
    pub rgprefix: String,
    /// URL of the application setup/run script.
    pub appsetupurl: String,
    /// Node counts to test.
    pub nnodes: Vec<u32>,
    /// Application name (selects the bundled script/model family).
    pub appname: String,
    /// Tags copied into every result row.
    pub tags: Vec<(String, String)>,
    /// Region to provision in.
    pub region: String,
    /// Whether to create a jumpbox VM.
    pub createjumpbox: bool,
    /// Percentage of each node's cores to use as processes-per-node.
    pub ppr: u32,
    /// Application input sweep: parameter → values.
    pub appinputs: Vec<(String, Vec<String>)>,
    /// Existing resource group containing a VPN (optional).
    pub vpnrg: Option<String>,
    /// Existing VNet name for the VPN (optional).
    pub vpnvnet: Option<String>,
    /// Whether to peer with the VPN VNet.
    pub peervpn: bool,
}

fn req_str(doc: &Value, key: &str) -> Result<String, ToolError> {
    match doc.get(key) {
        Some(Value::Str(s)) => Ok(s.clone()),
        Some(Value::Int(i)) => Ok(i.to_string()),
        Some(other) => Err(ToolError::Config(format!(
            "field '{key}' must be a string, got {other:?}"
        ))),
        None => Err(ToolError::Config(format!("missing required field '{key}'"))),
    }
}

fn str_list(doc: &Value, key: &str) -> Result<Vec<String>, ToolError> {
    match doc.get(key) {
        Some(Value::Seq(items)) => items
            .iter()
            .map(|v| match v {
                Value::Str(s) => Ok(s.clone()),
                Value::Int(i) => Ok(i.to_string()),
                other => Err(ToolError::Config(format!(
                    "field '{key}' has non-string element {other:?}"
                ))),
            })
            .collect(),
        Some(Value::Str(s)) => Ok(vec![s.clone()]),
        Some(other) => Err(ToolError::Config(format!(
            "field '{key}' must be a list, got {other:?}"
        ))),
        None => Err(ToolError::Config(format!("missing required field '{key}'"))),
    }
}

impl UserConfig {
    /// Parses a Listing-1-style YAML document.
    pub fn from_yaml(text: &str) -> Result<Self, ToolError> {
        let doc = yaml::parse(text)?;
        if doc.as_map().is_none() {
            return Err(ToolError::Config("configuration must be a mapping".into()));
        }

        let nnodes: Vec<u32> = match doc.get("nnodes") {
            Some(Value::Seq(items)) => items
                .iter()
                .map(|v| {
                    v.as_int()
                        .filter(|n| *n > 0 && *n <= 10_000)
                        .map(|n| n as u32)
                        .ok_or_else(|| {
                            ToolError::Config(format!("nnodes element {v:?} must be 1..=10000"))
                        })
                })
                .collect::<Result<_, _>>()?,
            Some(Value::Int(n)) if *n > 0 => vec![*n as u32],
            _ => return Err(ToolError::Config("missing or invalid 'nnodes' list".into())),
        };
        if nnodes.is_empty() {
            return Err(ToolError::Config("'nnodes' list is empty".into()));
        }

        let skus = str_list(&doc, "skus")?;
        if skus.is_empty() {
            return Err(ToolError::Config("'skus' list is empty".into()));
        }

        let ppr = match doc.get("ppr") {
            None => 100,
            Some(v) => {
                let p = v
                    .as_int()
                    .filter(|p| (1..=100).contains(p))
                    .ok_or_else(|| ToolError::Config("'ppr' must be 1..=100".into()))?;
                p as u32
            }
        };

        let tags = match doc.get("tags") {
            None => Vec::new(),
            Some(Value::Map(m)) => m
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_plain_string()))
                .collect(),
            Some(other) => {
                return Err(ToolError::Config(format!(
                    "'tags' must be a mapping, got {other:?}"
                )))
            }
        };

        let appinputs = match doc.get("appinputs") {
            None | Some(Value::Null) => Vec::new(),
            Some(Value::Map(m)) => m
                .iter()
                .map(|(k, v)| {
                    let values = match v {
                        // Duplicate YAML keys coalesce to a Seq — the sweep.
                        Value::Seq(items) => items.iter().map(|i| i.to_plain_string()).collect(),
                        scalar => vec![scalar.to_plain_string()],
                    };
                    (k.to_string(), values)
                })
                .collect(),
            Some(Value::Seq(entries)) => {
                // Alternative form: a list of single-key maps.
                let mut out: Vec<(String, Vec<String>)> = Vec::new();
                for e in entries {
                    let m = e.as_map().ok_or_else(|| {
                        ToolError::Config("'appinputs' list entries must be mappings".into())
                    })?;
                    for (k, v) in m.iter() {
                        match out.iter_mut().find(|(name, _)| name == k) {
                            Some((_, vals)) => vals.push(v.to_plain_string()),
                            None => out.push((k.to_string(), vec![v.to_plain_string()])),
                        }
                    }
                }
                out
            }
            Some(other) => {
                return Err(ToolError::Config(format!(
                    "'appinputs' must be a mapping, got {other:?}"
                )))
            }
        };

        let get_opt_str = |key: &str| -> Option<String> {
            doc.get(key).and_then(|v| v.as_str()).map(|s| s.to_string())
        };
        let get_bool =
            |key: &str| -> bool { doc.get(key).and_then(|v| v.as_bool()).unwrap_or(false) };

        Ok(UserConfig {
            subscription: req_str(&doc, "subscription")?,
            skus,
            rgprefix: req_str(&doc, "rgprefix")?,
            appsetupurl: req_str(&doc, "appsetupurl")?,
            nnodes,
            appname: req_str(&doc, "appname")?,
            tags,
            region: req_str(&doc, "region")?,
            createjumpbox: get_bool("createjumpbox"),
            ppr,
            appinputs,
            vpnrg: get_opt_str("vpnrg"),
            vpnvnet: get_opt_str("vpnvnet"),
            peervpn: get_bool("peervpn"),
        })
    }

    /// Total number of scenarios this configuration expands to.
    pub fn scenario_count(&self) -> usize {
        let input_combos: usize = self
            .appinputs
            .iter()
            .map(|(_, vs)| vs.len().max(1))
            .product();
        self.skus.len() * self.nnodes.len() * input_combos.max(1)
    }

    /// The paper's OpenFOAM Listing 1 configuration (3 SKUs × 6 node counts
    /// × 2 meshes = 36 scenarios).
    pub fn example_openfoam() -> Self {
        UserConfig::from_yaml(
            r#"
subscription: mysubscription
skus:
- Standard_HC44rs
- Standard_HB120rs_v2
- Standard_HB120rs_v3
rgprefix: hpcadvisortest1
appsetupurl: https://example.com/scripts/openfoam.sh
nnodes: [1, 2, 3, 4, 8, 16]
appname: openfoam
tags:
  version: v1
region: southcentralus
createjumpbox: true
ppr: 100
appinputs:
  mesh: "80 24 24"
  mesh: "60 16 16"
"#,
        )
        .expect("bundled example config parses")
    }

    /// The paper's Listing 3 experiment: OpenFOAM motorBike at
    /// BLOCKMESH_DIMENSIONS "40 16 16" (~8 M cells).
    pub fn example_openfoam_motorbike() -> Self {
        let mut c = Self::example_openfoam();
        c.appinputs = vec![("mesh".into(), vec!["40 16 16".into()])];
        c.nnodes = vec![1, 2, 3, 4, 8, 16];
        c
    }

    /// The paper's Listing 4 / Figures 2–5 experiment: LAMMPS LJ with the
    /// box multiplied ×30 (≈ 864 M atoms) on three InfiniBand SKUs up to
    /// 1,920 cores.
    pub fn example_lammps() -> Self {
        UserConfig::from_yaml(
            r#"
subscription: mysubscription
skus:
- Standard_HC44rs
- Standard_HB120rs_v2
- Standard_HB120rs_v3
rgprefix: hpcadvisorlammps
appsetupurl: https://example.com/scripts/lammps.sh
nnodes: [1, 2, 3, 4, 8, 16]
appname: lammps
tags:
  version: v1
region: southcentralus
ppr: 100
appinputs:
  BOXFACTOR: "30"
"#,
        )
        .expect("bundled example config parses")
    }

    /// A small LAMMPS sweep for doctests and quick starts (1 SKU × 3 node
    /// counts × 1 input = 3 scenarios).
    pub fn example_lammps_small() -> Self {
        let mut c = Self::example_lammps();
        c.skus = vec!["Standard_HB120rs_v3".into()];
        c.nnodes = vec![1, 2, 4];
        c.appinputs = vec![("BOXFACTOR".into(), vec!["8".into()])];
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_listing1_fields() {
        let c = UserConfig::example_openfoam();
        assert_eq!(c.subscription, "mysubscription");
        assert_eq!(c.skus.len(), 3);
        assert_eq!(c.nnodes, vec![1, 2, 3, 4, 8, 16]);
        assert_eq!(c.appname, "openfoam");
        assert_eq!(c.region, "southcentralus");
        assert!(c.createjumpbox);
        assert_eq!(c.ppr, 100);
        assert_eq!(c.tags, vec![("version".to_string(), "v1".to_string())]);
        // The duplicated `mesh:` keys become a 2-value sweep.
        assert_eq!(
            c.appinputs,
            vec![(
                "mesh".to_string(),
                vec!["80 24 24".to_string(), "60 16 16".to_string()]
            )]
        );
        // 3 SKUs × 6 node counts × 2 meshes (the paper's 3x6x2).
        assert_eq!(c.scenario_count(), 36);
    }

    #[test]
    fn missing_fields_error() {
        assert!(UserConfig::from_yaml("subscription: s\n").is_err());
        let err = UserConfig::from_yaml("appname: x\nnnodes: [1]\nskus:\n- A\n").unwrap_err();
        assert!(err.to_string().contains("missing required field"));
    }

    #[test]
    fn invalid_values_error() {
        let base = |extra: &str| {
            format!(
                "subscription: s\nrgprefix: r\nappsetupurl: u\nappname: a\nregion: southcentralus\nskus:\n- A\n{extra}"
            )
        };
        assert!(UserConfig::from_yaml(&base("nnodes: [0]\n")).is_err());
        assert!(UserConfig::from_yaml(&base("nnodes: [1]\nppr: 150\n")).is_err());
        assert!(UserConfig::from_yaml(&base("nnodes: []\n")).is_err());
        assert!(UserConfig::from_yaml(&base("nnodes: [1]\n")).is_ok());
    }

    #[test]
    fn defaults() {
        let c = UserConfig::from_yaml(
            "subscription: s\nrgprefix: r\nappsetupurl: u\nappname: a\nregion: eastus\nskus:\n- A\nnnodes: [1]\n",
        )
        .unwrap();
        assert_eq!(c.ppr, 100);
        assert!(!c.createjumpbox);
        assert!(!c.peervpn);
        assert!(c.appinputs.is_empty());
        assert!(c.tags.is_empty());
        assert_eq!(c.scenario_count(), 1);
    }

    #[test]
    fn appinputs_list_form() {
        let c = UserConfig::from_yaml(
            "subscription: s\nrgprefix: r\nappsetupurl: u\nappname: a\nregion: eastus\nskus:\n- A\nnnodes: [1]\nappinputs:\n- mesh: \"a\"\n- mesh: \"b\"\n- steps: 100\n",
        )
        .unwrap();
        assert_eq!(
            c.appinputs,
            vec![
                ("mesh".to_string(), vec!["a".to_string(), "b".to_string()]),
                ("steps".to_string(), vec!["100".to_string()])
            ]
        );
        assert_eq!(c.scenario_count(), 2);
    }

    #[test]
    fn vpn_options() {
        let c = UserConfig::from_yaml(
            "subscription: s\nrgprefix: r\nappsetupurl: u\nappname: a\nregion: eastus\nskus:\n- A\nnnodes: [1]\nvpnrg: corp-vpn\nvpnvnet: corp-vnet\npeervpn: true\n",
        )
        .unwrap();
        assert_eq!(c.vpnrg.as_deref(), Some("corp-vpn"));
        assert_eq!(c.vpnvnet.as_deref(), Some("corp-vnet"));
        assert!(c.peervpn);
    }
}
