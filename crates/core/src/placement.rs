//! Region placement and failover for the collection loop.
//!
//! A multi-region sweep treats each region as a fault domain: a scenario
//! asks for its grid region first, and when that region faults out
//! (outage, capacity crunch, exhausted quota pool) the collector fails
//! over to the next candidate instead of burning the scenario. The policy
//! is deliberately small and deterministic — no clocks, no randomness —
//! so serial and sharded collects (and a `--resume` after a crash) make
//! byte-identical placement decisions.
//!
//! All state is keyed by `(SKU, region)`, never by region alone. Shards
//! are per-SKU, so a single-shard run and an 8-worker run observe the
//! same fault sequence per key regardless of how the other SKUs
//! interleave.

use cloudsim::RegionCatalog;
use std::collections::{HashMap, HashSet};

/// Deterministic failover policy for one shard run.
///
/// Tracks provisioning faults per `(SKU, region)` and marks a region down
/// for a SKU after a configured number of transient faults
/// (immediately for permanent ones, e.g. an exhausted quota pool).
/// Marked-down regions drop out of every later candidate list, so
/// subsequent scenarios fail over without touching the cloud.
#[derive(Debug, Clone)]
pub struct PlacementPolicy {
    /// Candidate regions in failover order (the run config's `regions`
    /// list, canonicalized against the catalog).
    regions: Vec<String>,
    /// Transient faults a `(SKU, region)` tolerates before markdown.
    markdown_after: u32,
    /// Fault tallies per `"{sku}@{region}"` key.
    faults: HashMap<String, u32>,
    /// Keys marked down for the remainder of the run.
    down: HashSet<String>,
}

impl PlacementPolicy {
    /// Builds a policy over the config's region list. Unknown names are
    /// dropped (scenario generation already rejected them loudly); known
    /// ones are canonicalized so keys match regardless of input casing.
    pub fn new(regions: &[String], markdown_after: u32) -> Self {
        let catalog = RegionCatalog::azure();
        PlacementPolicy {
            regions: regions
                .iter()
                .filter_map(|r| catalog.get(r).map(|region| region.name.clone()))
                .collect(),
            markdown_after: markdown_after.max(1),
            faults: HashMap::new(),
            down: HashSet::new(),
        }
    }

    fn key(sku: &str, region: &str) -> String {
        format!("{sku}@{region}")
    }

    /// Candidate regions for one scenario in failover order: the
    /// scenario's requested region first, then the remaining configured
    /// regions. Regions that do not offer the SKU's family or are marked
    /// down for this SKU are dropped; an empty answer means no region can
    /// satisfy the placement and the scenario should degrade to a
    /// journaled skip.
    pub fn candidates(&self, sku: &str, family: &str, requested: &str) -> Vec<String> {
        let catalog = RegionCatalog::azure();
        let mut out: Vec<String> = Vec::new();
        for name in std::iter::once(requested).chain(self.regions.iter().map(String::as_str)) {
            let Some(region) = catalog.get(name) else {
                continue;
            };
            if out.iter().any(|r| r == &region.name) {
                continue;
            }
            if !region.offers_family(family) {
                continue;
            }
            if self.is_down(sku, &region.name) {
                continue;
            }
            out.push(region.name.clone());
        }
        out
    }

    /// Records a provisioning fault against `(sku, region)`. Permanent
    /// faults (quota exhaustion) mark the key down immediately; transient
    /// ones mark it down once the tally reaches the markdown threshold.
    /// Returns whether the key is now down.
    pub fn record_fault(&mut self, sku: &str, region: &str, permanent: bool) -> bool {
        let key = Self::key(sku, region);
        let tally = self.faults.entry(key.clone()).or_insert(0);
        *tally += 1;
        if permanent || *tally >= self.markdown_after {
            self.down.insert(key);
            return true;
        }
        false
    }

    /// Whether `(sku, region)` is marked down.
    pub fn is_down(&self, sku: &str, region: &str) -> bool {
        self.down.contains(&Self::key(sku, region))
    }

    /// Faults recorded so far against `(sku, region)`.
    pub fn fault_count(&self, sku: &str, region: &str) -> u32 {
        self.faults
            .get(&Self::key(sku, region))
            .copied()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SKU: &str = "Standard_HB120rs_v3";

    #[test]
    fn candidates_put_requested_region_first_then_config_order() {
        let policy = PlacementPolicy::new(
            &[
                "southcentralus".into(),
                "westeurope".into(),
                "japaneast".into(),
            ],
            2,
        );
        let c = policy.candidates(SKU, "HBv3", "westeurope");
        assert_eq!(c, vec!["westeurope", "southcentralus", "japaneast"]);
        // The requested region is not duplicated when it is also configured.
        let c = policy.candidates(SKU, "HBv3", "southcentralus");
        assert_eq!(c, vec!["southcentralus", "westeurope", "japaneast"]);
    }

    #[test]
    fn candidates_filter_family_availability() {
        // japaneast does not offer the HB family (HB60rs).
        let policy = PlacementPolicy::new(&["southcentralus".into(), "japaneast".into()], 2);
        let c = policy.candidates("Standard_HB60rs", "HB", "southcentralus");
        assert_eq!(c, vec!["southcentralus"]);
    }

    #[test]
    fn transient_faults_mark_down_after_threshold() {
        let mut policy = PlacementPolicy::new(&["southcentralus".into(), "westeurope".into()], 2);
        assert!(!policy.record_fault(SKU, "westeurope", false));
        assert!(!policy.is_down(SKU, "westeurope"));
        assert!(policy.record_fault(SKU, "westeurope", false));
        assert!(policy.is_down(SKU, "westeurope"));
        assert_eq!(policy.fault_count(SKU, "westeurope"), 2);
        // The markdown is scoped to the SKU, not the region.
        assert!(!policy.is_down("Standard_HC44rs", "westeurope"));
        // Down regions drop out of the candidate list.
        let c = policy.candidates(SKU, "HBv3", "westeurope");
        assert_eq!(c, vec!["southcentralus"]);
    }

    #[test]
    fn permanent_faults_mark_down_immediately() {
        let mut policy = PlacementPolicy::new(&["southcentralus".into(), "westeurope".into()], 99);
        assert!(policy.record_fault(SKU, "southcentralus", true));
        assert!(policy.is_down(SKU, "southcentralus"));
    }

    #[test]
    fn empty_candidates_when_everything_is_down() {
        let mut policy = PlacementPolicy::new(&["westeurope".into()], 1);
        policy.record_fault(SKU, "westeurope", false);
        assert!(policy.candidates(SKU, "HBv3", "westeurope").is_empty());
    }
}
