//! Plot generation — the tool's four plot families (paper Figures 2–5) and
//! the Pareto-front advice plot (Figure 6), rendered via `svgplot`.

use crate::dataset::{DataFilter, Dataset};
use crate::metrics;
use crate::pareto::pareto_front;
use svgplot::{Chart, Series};

fn subtitle(ds: &Dataset, filter: &DataFilter) -> String {
    let apps: Vec<String> = {
        let mut out = Vec::new();
        for p in ds.filter(filter) {
            if !out.contains(&p.appname) {
                out.push(p.appname.clone());
            }
        }
        out
    };
    let inputs = ds.input_keys(filter);
    format!("{} [{}]", apps.join(","), inputs.join(" | "))
}

/// Plot 1 — Execution Time vs. Number of Nodes (Fig. 2).
pub fn time_vs_nodes_chart(ds: &Dataset, filter: &DataFilter) -> Chart {
    let mut chart = Chart::new(
        "Execution Time vs Number of Nodes",
        "Number of nodes",
        "Execution time (s)",
    )
    .with_subtitle(&subtitle(ds, filter));
    for s in metrics::time_vs_nodes(ds, filter) {
        chart.add_series(Series::line(&s.sku, s.points));
    }
    chart
}

/// Plot 2 — Execution Time vs. Cost (Fig. 3).
pub fn time_vs_cost_chart(ds: &Dataset, filter: &DataFilter) -> Chart {
    let mut chart = Chart::new("Execution Time vs Cost", "Cost ($)", "Execution time (s)")
        .with_subtitle(&subtitle(ds, filter));
    for s in metrics::time_vs_cost(ds, filter) {
        chart.add_series(Series::scatter(&s.sku, s.points));
    }
    chart
}

/// Plot 3 — Speed-up (Fig. 4), with the ideal-linear reference diagonal.
pub fn speedup_chart(ds: &Dataset, filter: &DataFilter) -> Chart {
    let mut chart =
        Chart::new("Speedup", "Number of nodes", "Speedup").with_subtitle(&subtitle(ds, filter));
    let series = metrics::speedup(ds, filter);
    let max_nodes = series
        .iter()
        .flat_map(|s| s.points.iter().map(|(n, _)| *n))
        .fold(1.0f64, f64::max);
    chart.add_series(Series::line(
        "ideal",
        vec![(1.0, 1.0), (max_nodes, max_nodes)],
    ));
    for s in series {
        chart.add_series(Series::line(&s.sku, s.points));
    }
    chart
}

/// Plot 4 — Efficiency (Fig. 5), with the efficiency = 1 reference line;
/// points above it are superlinear.
pub fn efficiency_chart(ds: &Dataset, filter: &DataFilter) -> Chart {
    let mut chart = Chart::new("Efficiency", "Number of nodes", "Efficiency")
        .with_subtitle(&subtitle(ds, filter));
    for s in metrics::efficiency(ds, filter) {
        chart.add_series(Series::line(&s.sku, s.points));
    }
    chart.with_href(1.0)
}

/// Advice plot (Fig. 6): every scenario as a scatter over (cost, time) with
/// the Pareto front drawn as a step line.
pub fn pareto_chart(ds: &Dataset, filter: &DataFilter) -> Chart {
    let mut chart = Chart::new(
        "Advice: Pareto front over cost and execution time",
        "Cost ($)",
        "Execution time (s)",
    )
    .with_subtitle(&subtitle(ds, filter));
    let points = ds.filter(filter);
    let objectives: Vec<(f64, f64)> = points
        .iter()
        .map(|p| (p.cost_dollars, p.exec_time_secs))
        .collect();
    chart.add_series(Series::scatter("scenarios", objectives.clone()));
    let mut front_points: Vec<(f64, f64)> = pareto_front(&objectives)
        .into_iter()
        .map(|i| objectives[i])
        .collect();
    front_points.sort_by(|a, b| a.0.total_cmp(&b.0));
    chart.add_series(Series::step("pareto front", front_points));
    chart
}

/// All five charts, keyed by the file stem the CLI writes them under.
pub fn all_charts(ds: &Dataset, filter: &DataFilter) -> Vec<(&'static str, Chart)> {
    vec![
        ("exectime_vs_nodes", time_vs_nodes_chart(ds, filter)),
        ("exectime_vs_cost", time_vs_cost_chart(ds, filter)),
        ("speedup", speedup_chart(ds, filter)),
        ("efficiency", efficiency_chart(ds, filter)),
        ("pareto_front", pareto_chart(ds, filter)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::point;

    fn ds() -> Dataset {
        let mut ds = Dataset::new();
        for (id, n, t, c) in [
            (1u32, 1u32, 400.0, 0.40),
            (2, 2, 210.0, 0.42),
            (3, 4, 110.0, 0.44),
        ] {
            ds.push(point(id, "lammps", "Standard_HB120rs_v3", n, 120, t, c));
        }
        for (id, n, t, c) in [
            (4u32, 1u32, 700.0, 0.62),
            (5, 2, 360.0, 0.63),
            (6, 4, 190.0, 0.67),
        ] {
            ds.push(point(id, "lammps", "Standard_HC44rs", n, 44, t, c));
        }
        ds
    }

    #[test]
    fn all_five_charts_render() {
        let ds = ds();
        let charts = all_charts(&ds, &DataFilter::all());
        assert_eq!(charts.len(), 5);
        for (name, chart) in charts {
            let svg = chart.to_svg(640, 480);
            assert!(svg.contains("</svg>"), "{name} failed to render");
            let ascii = chart.to_ascii(70, 18);
            assert!(!ascii.is_empty(), "{name} ascii failed");
            let csv = chart.to_csv();
            assert!(csv.starts_with("series,x,y\n"), "{name} csv failed");
        }
    }

    #[test]
    fn speedup_chart_has_ideal_line() {
        let chart = speedup_chart(&ds(), &DataFilter::all());
        assert_eq!(chart.series[0].label, "ideal");
        assert_eq!(chart.series.len(), 3, "ideal + 2 SKUs");
    }

    #[test]
    fn efficiency_chart_has_reference_rule() {
        let chart = efficiency_chart(&ds(), &DataFilter::all());
        assert_eq!(chart.href, Some(1.0));
    }

    #[test]
    fn pareto_chart_contains_front_series() {
        let chart = pareto_chart(&ds(), &DataFilter::all());
        let front = chart
            .series
            .iter()
            .find(|s| s.label == "pareto front")
            .unwrap();
        assert!(!front.points.is_empty());
        // The HC44rs 1-node point (0.62, 700) is dominated by HBv3 1-node
        // (0.40, 400): it must not be on the front.
        assert!(!front.points.iter().any(|(c, _)| (*c - 0.62).abs() < 1e-9));
    }

    #[test]
    fn subtitles_name_the_workload() {
        let chart = time_vs_nodes_chart(&ds(), &DataFilter::all());
        assert!(chart.subtitle.as_deref().unwrap_or("").contains("lammps"));
    }
}
