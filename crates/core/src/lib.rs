//! # hpcadvisor-core — the HPCAdvisor tool, reproduced in Rust
//!
//! This crate implements the paper's contribution: a tool that, given a
//! user's application (a bash setup/run script) and a grid of candidate
//! cloud configurations (VM types × node counts × application inputs),
//! automatically
//!
//! 1. **deploys** a cloud environment (Section III-B: resource group, VNet,
//!    storage, batch service, optional jumpbox/peering) — [`deployment`];
//! 2. **collects data** by expanding the scenario grid and running every
//!    scenario through the batch orchestrator with per-VM-type pool reuse
//!    (the paper's Algorithm 1) — [`scenario`], [`collector`], [`dataset`];
//! 3. **plots** execution time vs. nodes, execution time vs. cost, speed-up
//!    and efficiency (Figures 2–5) — [`plot`], [`metrics`];
//! 4. **advises** with the Pareto front over (execution time, cost)
//!    (Figure 6, Listings 3–4), including Slurm-recipe generation from the
//!    paper's "comprehensive advice" future work — [`pareto`], [`advice`];
//! 5. **optimizes** the number of scenarios that must actually run (the
//!    paper's Section III-F: aggressive SKU discarding, fixed-performance-
//!    factor regression, infrastructure-bottleneck hints) — [`sampling`],
//!    [`regress`].
//!
//! The cloud back-end is the `cloudsim`/`batchsim` simulator pair, the
//! applications are `appmodel` performance models, and user scripts run in
//! the `taskshell` interpreter — see DESIGN.md for the substitution map.
//!
//! ## Quick start
//!
//! ```
//! use hpcadvisor_core::prelude::*;
//!
//! // Listing-1-style configuration (here built programmatically).
//! let config = UserConfig::example_lammps_small();
//! let mut session = Session::create(config, 42).unwrap();
//! let dataset = session.collect().unwrap();
//! let advice = Advice::from_dataset(&dataset, &DataFilter::all());
//! assert!(!advice.rows.is_empty());
//! println!("{}", advice.render_text());
//! ```

pub mod advice;
pub mod appscript;
pub mod collector;
pub mod config;
pub mod dataset;
pub mod deployment;
pub mod error;
pub mod metrics;
pub mod pareto;
pub mod plot;
pub mod predictor;
pub mod regress;
pub mod replicate;
pub mod sampling;
pub mod scenario;
pub mod session;

pub use advice::Advice;
pub use collector::{Collector, CollectorOptions};
pub use config::UserConfig;
pub use dataset::{DataFilter, DataPoint, Dataset};
pub use deployment::{Deployment, DeploymentManager};
pub use error::ToolError;
pub use scenario::{Scenario, ScenarioStatus};
pub use session::Session;

/// Common imports for tool users.
pub mod prelude {
    pub use crate::advice::Advice;
    pub use crate::collector::{Collector, CollectorOptions};
    pub use crate::config::UserConfig;
    pub use crate::dataset::{DataFilter, DataPoint, Dataset};
    pub use crate::deployment::DeploymentManager;
    pub use crate::error::ToolError;
    pub use crate::pareto::pareto_front;
    pub use crate::predictor::{advise_from_history, HistoryPredictor};
    pub use crate::replicate::{front_stability, render_stability, run_replicates};
    pub use crate::sampling::partial::run_partial_execution;
    pub use crate::scenario::{Scenario, ScenarioStatus};
    pub use crate::session::Session;
}
