//! # hpcadvisor-core — the HPCAdvisor tool, reproduced in Rust
//!
//! This crate implements the paper's contribution: a tool that, given a
//! user's application (a bash setup/run script) and a grid of candidate
//! cloud configurations (VM types × node counts × application inputs),
//! automatically
//!
//! 1. **deploys** a cloud environment (Section III-B: resource group, VNet,
//!    storage, batch service, optional jumpbox/peering) — [`deployment`];
//! 2. **collects data** by expanding the scenario grid and running every
//!    scenario through the batch orchestrator with per-VM-type pool reuse
//!    (the paper's Algorithm 1) — [`scenario`], [`collector`], [`dataset`];
//! 3. **plots** execution time vs. nodes, execution time vs. cost, speed-up
//!    and efficiency (Figures 2–5) — [`plot`], [`metrics`];
//! 4. **advises** with the Pareto front over (execution time, cost)
//!    (Figure 6, Listings 3–4), including Slurm-recipe generation from the
//!    paper's "comprehensive advice" future work — [`pareto`], [`advice`];
//! 5. **optimizes** the number of scenarios that must actually run (the
//!    paper's Section III-F: aggressive SKU discarding, fixed-performance-
//!    factor regression, infrastructure-bottleneck hints) — [`sampling`],
//!    [`regress`].
//!
//! The cloud back-end is the `cloudsim`/`batchsim` simulator pair, the
//! applications are `appmodel` performance models, and user scripts run in
//! the `taskshell` interpreter — see DESIGN.md for the substitution map.
//!
//! ## Quick start
//!
//! Collection is described by a [`collect::CollectPlan`] (worker count,
//! shard policy, seed/rerun overrides) and returns a
//! [`collect::CollectReport`] with the dataset, per-scenario outcomes,
//! per-pool billing and executor stats:
//!
//! ```
//! use hpcadvisor_core::prelude::*;
//!
//! // Listing-1-style configuration (here built programmatically).
//! let config = UserConfig::example_lammps_small();
//! let mut session = Session::create(config, 42).unwrap();
//! // Shard the grid by VM type and run shards on 4 worker threads; the
//! // merged dataset is byte-identical to a serial run.
//! let report = session.collect_with(&CollectPlan::new().workers(4)).unwrap();
//! let advice = Advice::from_dataset(&report.dataset, &DataFilter::all());
//! assert!(!advice.rows.is_empty());
//! println!("{}", advice.render_text());
//! ```
//!
//! Migration note: the pre-plan API remains as thin wrappers —
//! [`session::Session::collect`] is equivalent to the default plan and
//! still returns a bare [`dataset::Dataset`], and
//! [`collector::CollectorOptions`] is now built with
//! [`collector::CollectorOptions::builder`] (the struct is
//! `#[non_exhaustive]`).

pub mod advice;
pub mod appscript;
pub mod cache;
pub mod collect;
pub mod collector;
pub mod config;
pub mod dataset;
pub mod deployment;
pub mod error;
pub mod journal;
pub mod metrics;
pub mod pareto;
pub mod placement;
pub mod plot;
pub mod predictor;
pub mod regress;
pub mod replicate;
pub mod retry;
pub mod sampling;
pub mod scenario;
pub mod service;
pub mod service_state;
pub mod session;

pub use advice::{Advice, CapacityComparison};
pub use cache::{CachePolicy, Fingerprint, Fingerprinter, ScenarioCache, SharedScenarioCache};
pub use cloudsim::Capacity;
pub use collect::{CollectPlan, CollectReport, CollectStats, ScenarioOutcome, ShardPolicy};
pub use collector::{Collector, CollectorOptions, CollectorOptionsBuilder};
pub use config::UserConfig;
pub use dataset::{DataFilter, DataPoint, Dataset};
pub use deployment::{Deployment, DeploymentManager};
pub use error::ToolError;
pub use journal::{JournalEntry, RunJournal};
pub use placement::PlacementPolicy;
pub use retry::{FaultClass, RetryPolicy};
pub use scenario::{Scenario, ScenarioStatus};
pub use service::{
    AdviceRequest, AdvisorService, JobEvent, JobHandle, JobOutcome, ServiceConfig, ServiceError,
    TenantPolicy,
};
pub use service_state::{PendingJob, ServiceJournal, ServiceRecord, ServiceState};
pub use session::{Session, SessionBuilder};
pub use telemetry::{Trace, TraceEvent, TraceSummary};

/// Common imports for tool users.
pub mod prelude {
    pub use crate::advice::Advice;
    pub use crate::cache::{CachePolicy, ScenarioCache, SharedScenarioCache};
    pub use crate::collect::{CollectPlan, CollectReport, ShardPolicy};
    pub use crate::collector::{Collector, CollectorOptions};
    pub use crate::config::UserConfig;
    pub use crate::dataset::{DataFilter, DataPoint, Dataset};
    pub use crate::deployment::DeploymentManager;
    pub use crate::error::ToolError;
    pub use crate::journal::RunJournal;
    pub use crate::pareto::pareto_front;
    pub use crate::predictor::{advise_from_history, HistoryPredictor};
    pub use crate::replicate::{front_stability, render_stability, run_replicates};
    pub use crate::retry::RetryPolicy;
    pub use crate::sampling::partial::run_partial_execution;
    pub use crate::scenario::{Scenario, ScenarioStatus};
    pub use crate::service::{
        AdviceRequest, AdvisorService, JobEvent, JobHandle, JobOutcome, ServiceConfig,
        ServiceError, TenantPolicy,
    };
    pub use crate::session::{Session, SessionBuilder};
    pub use cloudsim::Capacity;
    pub use telemetry::{Trace, TraceSummary};
}
