//! The advisor as a long-lived service: many tenants, one simulator fleet.
//!
//! The paper frames HPCAdvisor as a tool one user runs per cluster; this
//! module is the backend that serves the same advice as a daemon. An
//! [`AdvisorService`] owns a pool of worker threads draining a bounded
//! [`JobQueue`] of [`AdviceRequest`]s. Each job builds an isolated
//! [`Session`] via [`Session::builder`] (own provider, own deployment) so
//! tenants can never observe each other's cloud state — with one
//! deliberate exception: all sessions share the service's
//! [`SharedScenarioCache`], so two tenants asking about the same
//! app/SKU/grid pay for one simulation and the second request reports
//! all-hits.
//!
//! Admission control reuses the collection guardrails as per-tenant
//! quotas ([`TenantPolicy`]): a cap on jobs in flight, a cumulative
//! simulated-spend budget (only *newly provisioned* pools count — cache
//! hits are free, so dedup stretches budgets), and a grid-size ceiling.
//! Every rejection is a typed [`ServiceError`], never a panic, and every
//! variant maps onto a wire [`ErrorCode`] through the exhaustive
//! [`ServiceError::wire_code`] match — adding a variant without a code is
//! a compile error.
//!
//! ## Crash safety
//!
//! With [`ServiceConfig::state_dir`] set, the service is durable:
//!
//! * a [`ServiceJournal`] records
//!   every admission, every completion, and every dollar charged, with
//!   the same torn-tail-salvage discipline as the collection journal;
//! * every job runs with a per-job [`RunJournal`] under
//!   `<state_dir>/jobs/`, so a job killed mid-grid resumes from its last
//!   finished scenario instead of restarting;
//! * the shared scenario cache is persisted after every job, not only at
//!   graceful shutdown.
//!
//! A restarted service replays the journal: tenant spend is restored (no
//! budget resets, no double billing) and every admitted-but-unfinished
//! job is re-enqueued and re-served byte-identically — replayed scenarios
//! come from the run journal and the cache, so only the interrupted
//! remainder is simulated and only that remainder is billed.
//!
//! ## Idempotent resubmission
//!
//! Requests may carry a client-chosen `request_key`. Submitting a key that
//! is already in flight for the same tenant *attaches* to the running job
//! instead of admitting a duplicate — the reconnect path after a dropped
//! connection. Submitting a key whose job already finished simply runs
//! again; the shared cache makes the rerun an all-hits, zero-dollar
//! answer with byte-identical dataset bytes.
//!
//! Progress streams through the telemetry layer: each job attaches an
//! [`EventTap`] to its session and forwards the interesting trace events
//! (`run_start`, `scenario_start`, `scenario_end`, `cache_hit`,
//! `run_end`) to every subscriber of the job. The [`JobHandle`] returned
//! by [`AdvisorService::submit`] is one such subscription.
//!
//! Shutdown comes in two grades: [`AdvisorService::shutdown`] (graceful —
//! closes admission, drains every admitted job, joins the workers) and
//! [`AdvisorService::shutdown_now`] (forced — closes admission, fails
//! every job still queued, and abandons the workers mid-job; the journal
//! makes this safe, because the next start replays whatever was cut off).

use crate::cache::{CachePolicy, SharedScenarioCache};
use crate::collect::{CollectPlan, CollectStats};
use crate::config::UserConfig;
use crate::dataset::DataFilter;
use crate::journal::RunJournal;
use crate::service_state::{PendingJob, ServiceJournal, ServiceRecord};
use crate::session::Session;
use hpcadvisor_formats::wire::ErrorCode;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fmt;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender, SyncSender, TrySendError};
use std::sync::Arc;
use telemetry::{EventTap, TraceEvent};

/// Per-tenant admission limits. The same guardrails collection runs use
/// (budgets, caps) applied at the service boundary.
#[derive(Debug, Clone)]
pub struct TenantPolicy {
    /// Maximum jobs one tenant may have queued or running at once.
    pub max_inflight: usize,
    /// Cumulative simulated-spend budget per tenant, in dollars of *newly
    /// provisioned* pool time across all their jobs. Cache hits provision
    /// nothing and therefore cost nothing against this budget. `None`
    /// disables the check.
    pub budget_dollars: Option<f64>,
    /// Largest scenario grid a single request may expand to. `None`
    /// disables the check.
    pub max_scenarios: Option<usize>,
}

impl Default for TenantPolicy {
    fn default() -> Self {
        TenantPolicy {
            max_inflight: 4,
            budget_dollars: None,
            max_scenarios: None,
        }
    }
}

/// Service-wide configuration.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads draining the job queue (jobs run concurrently).
    pub workers: usize,
    /// Bound of the job queue, across all tenants.
    pub queue_capacity: usize,
    /// Admission limits applied to every tenant.
    pub policy: TenantPolicy,
    /// The scenario cache all jobs share — the cross-tenant dedup point.
    pub cache: SharedScenarioCache,
    /// Default cache policy for requests that do not override it.
    pub cache_policy: CachePolicy,
    /// Directory for durable service state (the service journal and
    /// per-job run journals). `None` keeps all accounting in memory — a
    /// crash then forgets spend and drops in-flight jobs, exactly the PR 6
    /// behavior.
    pub state_dir: Option<PathBuf>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 2,
            queue_capacity: 16,
            policy: TenantPolicy::default(),
            cache: SharedScenarioCache::in_memory(),
            cache_policy: CachePolicy::default(),
            state_dir: None,
        }
    }
}

/// Why the service refused or failed a request. Every admission failure
/// is one of these — the daemon maps them to wire error frames through
/// [`ServiceError::wire_code`].
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceError {
    /// The bounded job queue is full; retry later.
    QueueFull {
        /// The queue bound that was hit.
        capacity: usize,
    },
    /// The tenant already has `max_inflight` jobs queued or running.
    OverQuota {
        /// Offending tenant.
        tenant: String,
        /// Jobs currently in flight for the tenant.
        inflight: usize,
        /// The policy cap.
        limit: usize,
    },
    /// The tenant's cumulative simulated spend reached its budget.
    BudgetExhausted {
        /// Offending tenant.
        tenant: String,
        /// Dollars spent so far.
        spent: f64,
        /// The policy budget.
        budget: f64,
    },
    /// The request's scenario grid exceeds the per-request ceiling.
    GridTooLarge {
        /// Offending tenant.
        tenant: String,
        /// Scenario count the request expands to.
        scenarios: usize,
        /// The policy ceiling.
        limit: usize,
    },
    /// The service is shutting down and accepts no new work.
    ShuttingDown,
    /// The job was admitted but failed while running (bad config, ...).
    JobFailed(String),
}

impl ServiceError {
    /// The wire error code for this refusal. The match is exhaustive on
    /// purpose — a new `ServiceError` variant without a wire code must
    /// fail the build here, not surface as an untyped message at
    /// runtime.
    pub fn wire_code(&self) -> ErrorCode {
        match self {
            ServiceError::QueueFull { .. } => ErrorCode::QueueFull,
            ServiceError::OverQuota { .. } => ErrorCode::OverQuota,
            ServiceError::BudgetExhausted { .. } => ErrorCode::BudgetExhausted,
            ServiceError::GridTooLarge { .. } => ErrorCode::GridTooLarge,
            ServiceError::ShuttingDown => ErrorCode::ShuttingDown,
            ServiceError::JobFailed(_) => ErrorCode::JobFailed,
        }
    }

    /// Backoff hint for refusals that clear on their own as load drains.
    pub fn retry_after_ms(&self) -> Option<u64> {
        match self {
            ServiceError::QueueFull { .. } => Some(250),
            ServiceError::OverQuota { .. } => Some(500),
            ServiceError::ShuttingDown => Some(1000),
            _ => None,
        }
    }
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::QueueFull { capacity } => {
                write!(f, "job queue full ({capacity} jobs); retry later")
            }
            ServiceError::OverQuota {
                tenant,
                inflight,
                limit,
            } => write!(
                f,
                "tenant '{tenant}' over quota: {inflight} jobs in flight (limit {limit})"
            ),
            ServiceError::BudgetExhausted {
                tenant,
                spent,
                budget,
            } => write!(
                f,
                "tenant '{tenant}' budget exhausted: ${spent:.2} spent of ${budget:.2}"
            ),
            ServiceError::GridTooLarge {
                tenant,
                scenarios,
                limit,
            } => write!(
                f,
                "tenant '{tenant}' request expands to {scenarios} scenarios (limit {limit})"
            ),
            ServiceError::ShuttingDown => write!(f, "service is shutting down"),
            ServiceError::JobFailed(m) => write!(f, "job failed: {m}"),
        }
    }
}

impl std::error::Error for ServiceError {}

/// One advice request, as admitted into the queue.
#[derive(Debug, Clone)]
pub struct AdviceRequest {
    /// Tenant the request is accounted against.
    pub tenant: String,
    /// The configuration to collect and advise on (the same YAML the CLI
    /// takes).
    pub config: UserConfig,
    /// Experiment seed (fingerprints include it, so tenants only dedup
    /// against results collected under the same seed).
    pub seed: u64,
    /// Worker threads for the job's own collection (per-SKU shards).
    pub workers: usize,
    /// Overrides the service's default cache policy for this request.
    pub cache_policy: Option<CachePolicy>,
    /// Client-chosen idempotency key. Resubmitting a key already in
    /// flight for the same tenant attaches to the running job instead of
    /// admitting a duplicate; with a state directory, the key also names
    /// the job's durable run journal across daemon restarts. `None` lets
    /// the service assign a per-admission key.
    pub request_key: Option<String>,
}

impl AdviceRequest {
    /// A serial request under the service's default cache policy.
    pub fn new(tenant: impl Into<String>, config: UserConfig, seed: u64) -> Self {
        AdviceRequest {
            tenant: tenant.into(),
            config,
            seed,
            workers: 1,
            cache_policy: None,
            request_key: None,
        }
    }

    /// Sets the idempotency key.
    pub fn with_key(mut self, key: impl Into<String>) -> Self {
        self.request_key = Some(key.into());
        self
    }
}

/// What a finished job hands back.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// Service-assigned job id.
    pub job_id: u64,
    /// Tenant the job ran for.
    pub tenant: String,
    /// The collected dataset, serialized exactly as `Dataset::to_json` —
    /// byte-identical to what a standalone CLI run of the same
    /// config/seed produces.
    pub dataset_json: String,
    /// Rendered Pareto-front advice over the full dataset.
    pub advice_text: String,
    /// Executor statistics (cache hit/miss counters included — this is
    /// where cross-tenant dedup becomes observable).
    pub stats: CollectStats,
    /// Simulated dollars of pool time this job newly provisioned (zero
    /// for an all-hits run); what the tenant's budget is charged.
    pub run_cost_dollars: f64,
}

/// One message on a job's event stream.
#[derive(Debug, Clone)]
pub enum JobEvent {
    /// A live trace event from the running collection (scenario
    /// starts/ends, cache hits, run framing).
    Progress(TraceEvent),
    /// The job finished; terminal.
    Finished(Box<JobOutcome>),
    /// The job failed after admission; terminal.
    Failed(String),
}

impl JobEvent {
    fn is_terminal(&self) -> bool {
        !matches!(self, JobEvent::Progress(_))
    }
}

/// The client's end of one admitted job: a stream of [`JobEvent`]s ending
/// in `Finished` or `Failed`.
#[derive(Debug)]
pub struct JobHandle {
    /// Service-assigned job id.
    pub id: u64,
    /// Tenant the job was admitted for.
    pub tenant: String,
    events: Receiver<JobEvent>,
}

impl JobHandle {
    /// The live event stream (progress, then one terminal event).
    pub fn events(&self) -> &Receiver<JobEvent> {
        &self.events
    }

    /// Consumes the handle into its raw receiver.
    pub fn into_events(self) -> Receiver<JobEvent> {
        self.events
    }

    /// Blocks until the job's terminal event, discarding progress.
    pub fn wait(self) -> Result<JobOutcome, ServiceError> {
        for event in self.events.iter() {
            match event {
                JobEvent::Progress(_) => continue,
                JobEvent::Finished(outcome) => return Ok(*outcome),
                JobEvent::Failed(m) => return Err(ServiceError::JobFailed(m)),
            }
        }
        Err(ServiceError::JobFailed(
            "job channel closed without a terminal event".into(),
        ))
    }
}

/// A bounded multi-producer multi-consumer queue that can be closed.
///
/// Pushes fail fast with [`QueuePushError::Full`] at the bound (admission
/// control's backpressure) and [`QueuePushError::Closed`] after
/// [`JobQueue::close`]; pops block until an item or the drain completes.
#[derive(Debug)]
pub struct JobQueue<T> {
    tx: Mutex<Option<SyncSender<T>>>,
    rx: Mutex<Receiver<T>>,
    capacity: usize,
}

/// Why a [`JobQueue::push`] was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueuePushError {
    /// The queue is at capacity.
    Full,
    /// The queue was closed.
    Closed,
}

impl<T> JobQueue<T> {
    /// A queue holding at most `capacity` items (minimum 1).
    pub fn bounded(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        let (tx, rx) = std::sync::mpsc::sync_channel(capacity);
        JobQueue {
            tx: Mutex::new(Some(tx)),
            rx: Mutex::new(rx),
            capacity,
        }
    }

    /// The queue bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Enqueues without blocking; fails fast when full or closed.
    pub fn push(&self, item: T) -> Result<(), QueuePushError> {
        let tx = self.tx.lock();
        let Some(tx) = tx.as_ref() else {
            return Err(QueuePushError::Closed);
        };
        match tx.try_send(item) {
            Ok(()) => Ok(()),
            Err(TrySendError::Full(_)) => Err(QueuePushError::Full),
            Err(TrySendError::Disconnected(_)) => Err(QueuePushError::Closed),
        }
    }

    /// Dequeues, blocking until an item arrives; `None` once the queue is
    /// closed *and* drained — consumers see every admitted item.
    pub fn pop(&self) -> Option<T> {
        self.rx.lock().recv().ok()
    }

    /// Closes the queue: pushes fail from now on, pops drain what is left.
    pub fn close(&self) {
        self.tx.lock().take();
    }
}

/// The broadcast side of one job: late subscribers (idempotent
/// resubmissions after a dropped connection) attach mid-run and are
/// guaranteed the terminal event even if it was published before they
/// arrived.
#[derive(Debug)]
struct JobShared {
    id: u64,
    tenant: String,
    state: Mutex<JobSubscribers>,
}

#[derive(Debug, Default)]
struct JobSubscribers {
    subscribers: Vec<Sender<JobEvent>>,
    terminal: Option<JobEvent>,
}

impl JobShared {
    fn new(id: u64, tenant: &str) -> Arc<JobShared> {
        Arc::new(JobShared {
            id,
            tenant: tenant.to_string(),
            state: Mutex::new(JobSubscribers::default()),
        })
    }

    /// Fans an event out to every live subscriber, pruning hung-up ones.
    /// Terminal events are remembered for late attachers.
    fn publish(&self, event: JobEvent) {
        let mut state = self.state.lock();
        if event.is_terminal() {
            state.terminal = Some(event.clone());
        }
        state
            .subscribers
            .retain(|tx| tx.send(event.clone()).is_ok());
    }

    /// A new subscription: live events from now on, or the stored
    /// terminal event immediately if the job already ended.
    fn attach(&self) -> Receiver<JobEvent> {
        let (tx, rx) = channel();
        let mut state = self.state.lock();
        match &state.terminal {
            Some(terminal) => {
                let _ = tx.send(terminal.clone());
            }
            None => state.subscribers.push(tx),
        }
        rx
    }
}

/// An admitted job traveling through the queue.
struct Job {
    id: u64,
    key: String,
    request: AdviceRequest,
    shared: Arc<JobShared>,
}

/// Trace-event kinds forwarded to clients as progress. Everything else
/// (pool resizes, node boots, task spans) stays in the trace layer.
const STREAMED_KINDS: &[&str] = &[
    "run_start",
    "scenario_start",
    "scenario_end",
    "cache_hit",
    "journal_replay",
    "run_end",
];

/// The per-job tap: forwards the streamed subset of trace events to the
/// job's subscribers. Send failures mean every client hung up — the run
/// continues; its results still feed the shared cache.
struct ProgressForwarder {
    shared: Arc<JobShared>,
}

impl EventTap for ProgressForwarder {
    fn on_event(&self, event: &TraceEvent) {
        if STREAMED_KINDS.contains(&event.kind.as_str()) {
            self.shared.publish(JobEvent::Progress(event.clone()));
        }
    }
}

/// 64-bit FNV-1a over a request key — names the per-job journal file so
/// arbitrary client keys become safe, fixed-length filenames.
fn key_hash(key: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in key.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Shared state between the submitting side and the workers.
struct ServiceInner {
    queue: JobQueue<Job>,
    policy: TenantPolicy,
    cache: SharedScenarioCache,
    cache_policy: CachePolicy,
    accepting: AtomicBool,
    /// Forced shutdown: workers fail queued jobs instead of running them.
    force: AtomicBool,
    next_id: AtomicU64,
    /// tenant → jobs queued or running.
    inflight: Mutex<HashMap<String, usize>>,
    /// tenant → cumulative newly-provisioned dollars.
    spent: Mutex<HashMap<String, f64>>,
    /// The durable admission/spend log (`None` without a state dir).
    journal: Option<Mutex<ServiceJournal>>,
    /// Directory of per-job run journals (`None` without a state dir).
    jobs_dir: Option<PathBuf>,
    /// request key → in-flight job, for attach-on-resubmit.
    running: Mutex<HashMap<String, Arc<JobShared>>>,
}

impl ServiceInner {
    fn release(&self, tenant: &str) {
        let mut inflight = self.inflight.lock();
        if let Some(n) = inflight.get_mut(tenant) {
            *n = n.saturating_sub(1);
            if *n == 0 {
                inflight.remove(tenant);
            }
        }
    }

    fn journal_append(&self, record: ServiceRecord) {
        if let Some(journal) = &self.journal {
            journal.lock().append(record);
        }
    }

    /// The durable run-journal path for a job key.
    fn job_journal_path(&self, key: &str) -> Option<PathBuf> {
        self.jobs_dir
            .as_ref()
            .map(|dir| dir.join(format!("job-{:016x}.jsonl", key_hash(key))))
    }
}

/// The multi-tenant advisor daemon's engine (see the module docs).
pub struct AdvisorService {
    inner: Arc<ServiceInner>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
    /// Event streams of jobs replayed from the journal at startup.
    recovery: Mutex<Vec<Receiver<JobEvent>>>,
    recovered_jobs: usize,
}

impl AdvisorService {
    /// Starts the worker pool and returns the running service. With a
    /// state directory, first replays the service journal: tenant spend
    /// is restored and every admitted-but-unfinished job is re-enqueued
    /// (their event streams are drained by [`AdvisorService::await_recovery`]).
    pub fn start(config: ServiceConfig) -> AdvisorService {
        let (journal, jobs_dir, pending) = match &config.state_dir {
            Some(dir) => {
                let _ = std::fs::create_dir_all(dir.join("jobs"));
                let journal = ServiceJournal::open(dir.join("service-journal.jsonl"));
                let pending = journal.state().pending.clone();
                (Some(Mutex::new(journal)), Some(dir.join("jobs")), pending)
            }
            None => (None, None, Vec::new()),
        };
        let spent = journal
            .as_ref()
            .map(|j| j.lock().state().spent.clone())
            .unwrap_or_default();
        let inner = Arc::new(ServiceInner {
            // Recovered jobs must all fit in the queue regardless of the
            // configured bound.
            queue: JobQueue::bounded(config.queue_capacity.max(pending.len())),
            policy: config.policy,
            cache: config.cache,
            cache_policy: config.cache_policy,
            accepting: AtomicBool::new(true),
            force: AtomicBool::new(false),
            next_id: AtomicU64::new(1),
            inflight: Mutex::new(HashMap::new()),
            spent: Mutex::new(spent),
            journal,
            jobs_dir,
            running: Mutex::new(HashMap::new()),
        });

        // Re-admit interrupted jobs before the workers start, bypassing
        // admission checks (they were already admitted once).
        let mut recovery = Vec::new();
        let mut recovered_jobs = 0;
        for pending_job in pending {
            if let Some(rx) = enqueue_recovered(&inner, pending_job) {
                recovery.push(rx);
                recovered_jobs += 1;
            }
        }

        let workers = (0..config.workers.max(1))
            .map(|i| {
                let inner = inner.clone();
                std::thread::Builder::new()
                    .name(format!("advisor-worker-{i}"))
                    .spawn(move || {
                        while let Some(job) = inner.queue.pop() {
                            if inner.force.load(Ordering::SeqCst) {
                                abandon_job(&inner, job);
                            } else {
                                run_job(&inner, job);
                            }
                        }
                    })
                    .expect("spawn advisor worker")
            })
            .collect();
        AdvisorService {
            inner,
            workers: Mutex::new(workers),
            recovery: Mutex::new(recovery),
            recovered_jobs,
        }
    }

    /// The shared scenario cache (for status displays and persistence).
    pub fn cache(&self) -> SharedScenarioCache {
        self.inner.cache.clone()
    }

    /// Dollars of newly-provisioned simulated pool time charged to
    /// `tenant` so far — across restarts, when a state directory is set.
    pub fn tenant_spend(&self, tenant: &str) -> f64 {
        self.inner.spent.lock().get(tenant).copied().unwrap_or(0.0)
    }

    /// Number of interrupted jobs replayed from the journal at startup.
    pub fn recovered_jobs(&self) -> usize {
        self.recovered_jobs
    }

    /// Blocks until every job recovered at startup reaches its terminal
    /// event, returning how many finished successfully. Call once, before
    /// serving traffic, so resubmitted requests find the cache warm.
    pub fn await_recovery(&self) -> usize {
        let receivers = std::mem::take(&mut *self.recovery.lock());
        let mut finished = 0;
        for rx in receivers {
            for event in rx.iter() {
                match event {
                    JobEvent::Progress(_) => continue,
                    JobEvent::Finished(_) => {
                        finished += 1;
                        break;
                    }
                    JobEvent::Failed(_) => break,
                }
            }
        }
        finished
    }

    /// Admits a request, returning the job's event stream, or the typed
    /// reason it was refused. Admission checks run in order: shutdown,
    /// grid size, budget, in-flight quota, queue capacity. A request
    /// whose `request_key` is already in flight for the same tenant
    /// attaches to the running job instead (no new admission).
    pub fn submit(&self, request: AdviceRequest) -> Result<JobHandle, ServiceError> {
        let inner = &self.inner;
        if !inner.accepting.load(Ordering::SeqCst) {
            return Err(ServiceError::ShuttingDown);
        }
        let tenant = request.tenant.clone();
        // Idempotent resubmission: same key, same tenant, still running →
        // attach to the in-flight job.
        if let Some(key) = &request.request_key {
            let running = inner.running.lock();
            if let Some(shared) = running.get(key) {
                if shared.tenant == tenant {
                    return Ok(JobHandle {
                        id: shared.id,
                        tenant,
                        events: shared.attach(),
                    });
                }
            }
        }
        if let Some(limit) = inner.policy.max_scenarios {
            let scenarios = request.config.scenario_count();
            if scenarios > limit {
                return Err(ServiceError::GridTooLarge {
                    tenant,
                    scenarios,
                    limit,
                });
            }
        }
        if let Some(budget) = inner.policy.budget_dollars {
            let spent = inner.spent.lock().get(&tenant).copied().unwrap_or(0.0);
            if spent >= budget {
                return Err(ServiceError::BudgetExhausted {
                    tenant,
                    spent,
                    budget,
                });
            }
        }
        {
            // Reserve the in-flight slot under the lock so racing submits
            // from one tenant cannot both pass the check.
            let mut inflight = inner.inflight.lock();
            let n = inflight.entry(tenant.clone()).or_insert(0);
            if *n >= inner.policy.max_inflight {
                return Err(ServiceError::OverQuota {
                    tenant,
                    inflight: *n,
                    limit: inner.policy.max_inflight,
                });
            }
            *n += 1;
        }
        let id = inner.next_id.fetch_add(1, Ordering::SeqCst);
        let key = request
            .request_key
            .clone()
            .unwrap_or_else(|| format!("auto-{id}"));
        let shared = JobShared::new(id, &tenant);
        let events = shared.attach();
        inner.running.lock().insert(key.clone(), shared.clone());
        inner.journal_append(ServiceRecord::Admitted(PendingJob {
            key: key.clone(),
            tenant: tenant.clone(),
            seed: request.seed,
            workers: request.workers,
            config_yaml: request.config.to_yaml(),
            regions: request.config.regions.clone(),
            cache_policy: request.cache_policy,
        }));
        let job = Job {
            id,
            key: key.clone(),
            request,
            shared,
        };
        match inner.queue.push(job) {
            Ok(()) => Ok(JobHandle { id, tenant, events }),
            Err(e) => {
                inner.running.lock().remove(&key);
                inner.journal_append(ServiceRecord::Done { key });
                inner.release(&tenant);
                Err(match e {
                    QueuePushError::Full => ServiceError::QueueFull {
                        capacity: inner.queue.capacity(),
                    },
                    QueuePushError::Closed => ServiceError::ShuttingDown,
                })
            }
        }
    }

    /// Stops accepting work, drains every job already admitted, and joins
    /// the workers. In-flight jobs run to completion — their clients get
    /// their terminal events.
    pub fn shutdown(self) {
        self.inner.accepting.store(false, Ordering::SeqCst);
        self.inner.queue.close();
        for worker in self.workers.lock().drain(..) {
            let _ = worker.join();
        }
    }

    /// Forced shutdown: stops accepting work, fails every job still
    /// queued with [`ServiceError::ShuttingDown`], and detaches the
    /// workers without waiting for jobs already running. Safe only
    /// because state is journaled — a subsequent [`AdvisorService::start`]
    /// on the same state directory replays whatever was cut off.
    pub fn shutdown_now(&self) {
        self.inner.accepting.store(false, Ordering::SeqCst);
        self.inner.force.store(true, Ordering::SeqCst);
        self.inner.queue.close();
        // Detach the workers: whatever job each is in the middle of keeps
        // running on its thread, but nobody waits for it — the journal
        // still holds its admission, so a restart re-serves it.
        self.workers.lock().drain(..).for_each(drop);
    }
}

impl Drop for AdvisorService {
    fn drop(&mut self) {
        // Dropping without shutdown() still drains gracefully.
        self.inner.accepting.store(false, Ordering::SeqCst);
        self.inner.queue.close();
        for worker in self.workers.lock().drain(..) {
            let _ = worker.join();
        }
    }
}

/// Re-enqueues one journal-recovered job, returning its event stream.
fn enqueue_recovered(inner: &Arc<ServiceInner>, pending: PendingJob) -> Option<Receiver<JobEvent>> {
    let config = match UserConfig::from_yaml(&pending.config_yaml) {
        Ok(c) => c,
        Err(_) => {
            // Unreplayable (journal from an incompatible version): close it
            // out rather than crash-loop on it at every restart.
            inner.journal_append(ServiceRecord::Done {
                key: pending.key.clone(),
            });
            return None;
        }
    };
    let id = inner.next_id.fetch_add(1, Ordering::SeqCst);
    let request = AdviceRequest {
        tenant: pending.tenant.clone(),
        config,
        seed: pending.seed,
        workers: pending.workers,
        cache_policy: pending.cache_policy,
        request_key: Some(pending.key.clone()),
    };
    let shared = JobShared::new(id, &pending.tenant);
    let rx = shared.attach();
    *inner
        .inflight
        .lock()
        .entry(pending.tenant.clone())
        .or_insert(0) += 1;
    inner
        .running
        .lock()
        .insert(pending.key.clone(), shared.clone());
    let job = Job {
        id,
        key: pending.key,
        request,
        shared,
    };
    // Capacity was sized to hold every recovered job in start().
    inner.queue.push(job).ok().map(|()| rx)
}

/// Fails one queued job during forced shutdown.
fn abandon_job(inner: &ServiceInner, job: Job) {
    // Deliberately NOT journaled as done: the admission stays in the
    // journal so the next start replays the job.
    inner.running.lock().remove(&job.key);
    job.shared
        .publish(JobEvent::Failed(ServiceError::ShuttingDown.to_string()));
    inner.release(&job.shared.tenant);
}

/// Executes one admitted job on a worker thread: isolated session, shared
/// cache, durable run journal, live progress, terminal event, spend
/// journaling, quota release.
fn run_job(inner: &ServiceInner, job: Job) {
    let Job {
        id,
        key,
        request,
        shared,
    } = job;
    let tenant = request.tenant.clone();
    let result = execute_request(inner, id, &tenant, &key, request, shared.clone());
    match result {
        Ok(outcome) => {
            let run_cost_dollars = outcome.run_cost_dollars;
            *inner.spent.lock().entry(tenant.clone()).or_insert(0.0) += run_cost_dollars;
            // Spend before Done: a crash between the two replays the job,
            // which re-serves from cache at $0 — never double-billed.
            inner.journal_append(ServiceRecord::Spend {
                tenant: tenant.clone(),
                dollars: run_cost_dollars,
            });
            inner.journal_append(ServiceRecord::Done { key: key.clone() });
            if let Some(path) = inner.job_journal_path(&key) {
                let _ = std::fs::remove_file(path);
            }
            // Persist the shared cache incrementally (no-op when clean),
            // so even a kill -9 keeps every finished job's scenarios.
            if inner.jobs_dir.is_some() {
                let _ = inner.cache.save();
            }
            // Deregister BEFORE publishing the terminal event: a waiter
            // woken by it must observe the key as free, so an immediate
            // resubmission runs fresh (from cache) instead of attaching
            // to a job that already finished.
            inner.running.lock().remove(&key);
            shared.publish(JobEvent::Finished(Box::new(outcome)));
        }
        Err(e) => {
            // Failed jobs are closed out too: replaying a config that
            // deterministically fails would crash-loop every restart.
            inner.journal_append(ServiceRecord::Done { key: key.clone() });
            if let Some(path) = inner.job_journal_path(&key) {
                let _ = std::fs::remove_file(path);
            }
            inner.running.lock().remove(&key);
            shared.publish(JobEvent::Failed(e.to_string()));
        }
    }
    inner.release(&tenant);
}

fn execute_request(
    inner: &ServiceInner,
    job_id: u64,
    tenant: &str,
    key: &str,
    request: AdviceRequest,
    shared: Arc<JobShared>,
) -> Result<JobOutcome, crate::error::ToolError> {
    let policy = request.cache_policy.unwrap_or(inner.cache_policy);
    let mut builder = Session::builder(request.config)
        .seed(request.seed)
        .shared_cache(inner.cache.clone())
        .cache_policy(policy)
        .progress(Arc::new(ProgressForwarder { shared }));
    if let Some(path) = inner.job_journal_path(key) {
        // Durable per-job journal: a job interrupted mid-grid resumes
        // from its last finished scenario on the next start. Open (not
        // open_fresh) — replaying the surviving prefix IS the feature.
        builder = builder.journal(RunJournal::open(path));
    }
    let mut session = builder.build()?;
    let report = session.collect_with(&CollectPlan::new().workers(request.workers.max(1)))?;
    // Budget accounting: only pool time this job newly provisioned. An
    // all-hits run provisions nothing and charges nothing.
    let run_cost_dollars = session.total_cloud_cost();
    let advice = crate::advice::Advice::from_dataset(&report.dataset, &DataFilter::all());
    let outcome = JobOutcome {
        job_id,
        tenant: tenant.to_string(),
        dataset_json: report.dataset.to_json(),
        advice_text: advice.render_text(),
        stats: report.stats.clone(),
        run_cost_dollars,
    };
    let _ = session.shutdown();
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_queue_bounds_closes_and_drains() {
        let q: JobQueue<u32> = JobQueue::bounded(2);
        assert_eq!(q.capacity(), 2);
        q.push(1).unwrap();
        q.push(2).unwrap();
        assert_eq!(q.push(3), Err(QueuePushError::Full));
        q.close();
        assert_eq!(q.push(4), Err(QueuePushError::Closed));
        // Closed queues still drain what was admitted.
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn single_request_round_trip_with_progress() {
        let service = AdvisorService::start(ServiceConfig::default());
        let request = AdviceRequest::new("t1", UserConfig::example_lammps_small(), 42);
        let handle = service.submit(request).unwrap();
        assert_eq!(handle.tenant, "t1");
        let mut kinds = Vec::new();
        let mut outcome = None;
        for event in handle.events().iter() {
            match event {
                JobEvent::Progress(ev) => kinds.push(ev.kind.clone()),
                JobEvent::Finished(o) => {
                    outcome = Some(*o);
                    break;
                }
                JobEvent::Failed(m) => panic!("job failed: {m}"),
            }
        }
        let outcome = outcome.expect("finished");
        assert_eq!(outcome.stats.completed, 3);
        assert_eq!(outcome.stats.cache_misses, 3);
        assert!(outcome.run_cost_dollars > 0.0, "cold run provisions pools");
        assert!(outcome.advice_text.contains("Nodes"));
        assert_eq!(
            kinds.iter().filter(|k| *k == "scenario_start").count(),
            3,
            "progress streamed per scenario: {kinds:?}"
        );
        assert_eq!(kinds.iter().filter(|k| *k == "scenario_end").count(), 3);
        assert_eq!(kinds.first().map(String::as_str), Some("run_start"));
        assert_eq!(kinds.last().map(String::as_str), Some("run_end"));
        assert!(service.tenant_spend("t1") > 0.0);
        service.shutdown();
    }

    #[test]
    fn bad_config_fails_the_job_not_the_service() {
        let service = AdvisorService::start(ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        });
        let mut config = UserConfig::example_lammps_small();
        config.skus = vec!["No_Such_Sku".into()];
        let handle = service
            .submit(AdviceRequest::new("t1", config, 42))
            .unwrap();
        let err = handle.wait().unwrap_err();
        assert!(matches!(err, ServiceError::JobFailed(_)), "{err}");
        // The worker survives and serves the next job.
        let handle = service
            .submit(AdviceRequest::new(
                "t1",
                UserConfig::example_lammps_small(),
                42,
            ))
            .unwrap();
        assert_eq!(handle.wait().unwrap().stats.completed, 3);
        service.shutdown();
    }

    #[test]
    fn every_service_error_maps_to_a_wire_code() {
        // The match in wire_code() is the compile-time guard; this pins
        // the actual pairings so a refactor cannot silently swap codes.
        let cases: Vec<(ServiceError, ErrorCode)> = vec![
            (
                ServiceError::QueueFull { capacity: 1 },
                ErrorCode::QueueFull,
            ),
            (
                ServiceError::OverQuota {
                    tenant: "t".into(),
                    inflight: 1,
                    limit: 1,
                },
                ErrorCode::OverQuota,
            ),
            (
                ServiceError::BudgetExhausted {
                    tenant: "t".into(),
                    spent: 1.0,
                    budget: 1.0,
                },
                ErrorCode::BudgetExhausted,
            ),
            (
                ServiceError::GridTooLarge {
                    tenant: "t".into(),
                    scenarios: 2,
                    limit: 1,
                },
                ErrorCode::GridTooLarge,
            ),
            (ServiceError::ShuttingDown, ErrorCode::ShuttingDown),
            (ServiceError::JobFailed("x".into()), ErrorCode::JobFailed),
        ];
        for (error, code) in cases {
            assert_eq!(error.wire_code(), code, "{error}");
        }
        assert_eq!(
            ServiceError::QueueFull { capacity: 1 }.retry_after_ms(),
            Some(250)
        );
        assert_eq!(ServiceError::JobFailed("x".into()).retry_after_ms(), None);
    }

    #[test]
    fn attach_after_terminal_replays_the_outcome() {
        let shared = JobShared::new(7, "t");
        shared.publish(JobEvent::Failed("boom".into()));
        let rx = shared.attach();
        match rx.recv().unwrap() {
            JobEvent::Failed(m) => assert_eq!(m, "boom"),
            other => panic!("expected the stored terminal event, got {other:?}"),
        }
    }
}
