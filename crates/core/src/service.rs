//! The advisor as a long-lived service: many tenants, one simulator fleet.
//!
//! The paper frames HPCAdvisor as a tool one user runs per cluster; this
//! module is the backend that serves the same advice as a daemon. An
//! [`AdvisorService`] owns a pool of worker threads draining a bounded
//! [`JobQueue`] of [`AdviceRequest`]s. Each job builds an isolated
//! [`Session`] via [`Session::builder`] (own provider, own deployment, own
//! journal-free collector) so tenants can never observe each other's cloud
//! state — with one deliberate exception: all sessions share the service's
//! [`SharedScenarioCache`], so two tenants asking about the same
//! app/SKU/grid pay for one simulation and the second request reports
//! all-hits.
//!
//! Admission control reuses the collection guardrails as per-tenant
//! quotas ([`TenantPolicy`]): a cap on jobs in flight, a cumulative
//! simulated-spend budget (only *newly provisioned* pools count — cache
//! hits are free, so dedup stretches budgets), and a grid-size ceiling.
//! Every rejection is a typed [`ServiceError`], never a panic: a daemon
//! fronting many tenants must refuse work gracefully.
//!
//! Progress streams through the telemetry layer: each job attaches an
//! [`EventTap`] to its session, forwards the interesting trace events
//! (`run_start`, `scenario_start`, `scenario_end`, `cache_hit`,
//! `run_end`) into the job's event channel, and the daemon relays them to
//! the client as wire frames. The [`JobHandle`] returned by
//! [`AdvisorService::submit`] is that channel's receiving end.
//!
//! Shutdown is graceful by construction: [`AdvisorService::shutdown`]
//! closes the queue — rejecting new submissions with
//! [`ServiceError::ShuttingDown`] — and joins the workers, which drain
//! every job already admitted before exiting.

use crate::cache::{CachePolicy, SharedScenarioCache};
use crate::collect::{CollectPlan, CollectStats};
use crate::config::UserConfig;
use crate::dataset::DataFilter;
use crate::session::Session;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender, SyncSender, TrySendError};
use std::sync::Arc;
use telemetry::{EventTap, TraceEvent};

/// Per-tenant admission limits. The same guardrails collection runs use
/// (budgets, caps) applied at the service boundary.
#[derive(Debug, Clone)]
pub struct TenantPolicy {
    /// Maximum jobs one tenant may have queued or running at once.
    pub max_inflight: usize,
    /// Cumulative simulated-spend budget per tenant, in dollars of *newly
    /// provisioned* pool time across all their jobs. Cache hits provision
    /// nothing and therefore cost nothing against this budget. `None`
    /// disables the check.
    pub budget_dollars: Option<f64>,
    /// Largest scenario grid a single request may expand to. `None`
    /// disables the check.
    pub max_scenarios: Option<usize>,
}

impl Default for TenantPolicy {
    fn default() -> Self {
        TenantPolicy {
            max_inflight: 4,
            budget_dollars: None,
            max_scenarios: None,
        }
    }
}

/// Service-wide configuration.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads draining the job queue (jobs run concurrently).
    pub workers: usize,
    /// Bound of the job queue, across all tenants.
    pub queue_capacity: usize,
    /// Admission limits applied to every tenant.
    pub policy: TenantPolicy,
    /// The scenario cache all jobs share — the cross-tenant dedup point.
    pub cache: SharedScenarioCache,
    /// Default cache policy for requests that do not override it.
    pub cache_policy: CachePolicy,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 2,
            queue_capacity: 16,
            policy: TenantPolicy::default(),
            cache: SharedScenarioCache::in_memory(),
            cache_policy: CachePolicy::default(),
        }
    }
}

/// Why the service refused or failed a request. Every admission failure
/// is one of these — the daemon maps them to wire error frames.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceError {
    /// The bounded job queue is full; retry later.
    QueueFull {
        /// The queue bound that was hit.
        capacity: usize,
    },
    /// The tenant already has `max_inflight` jobs queued or running.
    OverQuota {
        /// Offending tenant.
        tenant: String,
        /// Jobs currently in flight for the tenant.
        inflight: usize,
        /// The policy cap.
        limit: usize,
    },
    /// The tenant's cumulative simulated spend reached its budget.
    BudgetExhausted {
        /// Offending tenant.
        tenant: String,
        /// Dollars spent so far.
        spent: f64,
        /// The policy budget.
        budget: f64,
    },
    /// The request's scenario grid exceeds the per-request ceiling.
    GridTooLarge {
        /// Offending tenant.
        tenant: String,
        /// Scenario count the request expands to.
        scenarios: usize,
        /// The policy ceiling.
        limit: usize,
    },
    /// The service is shutting down and accepts no new work.
    ShuttingDown,
    /// The job was admitted but failed while running (bad config, ...).
    JobFailed(String),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::QueueFull { capacity } => {
                write!(f, "job queue full ({capacity} jobs); retry later")
            }
            ServiceError::OverQuota {
                tenant,
                inflight,
                limit,
            } => write!(
                f,
                "tenant '{tenant}' over quota: {inflight} jobs in flight (limit {limit})"
            ),
            ServiceError::BudgetExhausted {
                tenant,
                spent,
                budget,
            } => write!(
                f,
                "tenant '{tenant}' budget exhausted: ${spent:.2} spent of ${budget:.2}"
            ),
            ServiceError::GridTooLarge {
                tenant,
                scenarios,
                limit,
            } => write!(
                f,
                "tenant '{tenant}' request expands to {scenarios} scenarios (limit {limit})"
            ),
            ServiceError::ShuttingDown => write!(f, "service is shutting down"),
            ServiceError::JobFailed(m) => write!(f, "job failed: {m}"),
        }
    }
}

impl std::error::Error for ServiceError {}

/// One advice request, as admitted into the queue.
#[derive(Debug, Clone)]
pub struct AdviceRequest {
    /// Tenant the request is accounted against.
    pub tenant: String,
    /// The configuration to collect and advise on (the same YAML the CLI
    /// takes).
    pub config: UserConfig,
    /// Experiment seed (fingerprints include it, so tenants only dedup
    /// against results collected under the same seed).
    pub seed: u64,
    /// Worker threads for the job's own collection (per-SKU shards).
    pub workers: usize,
    /// Overrides the service's default cache policy for this request.
    pub cache_policy: Option<CachePolicy>,
}

impl AdviceRequest {
    /// A serial request under the service's default cache policy.
    pub fn new(tenant: impl Into<String>, config: UserConfig, seed: u64) -> Self {
        AdviceRequest {
            tenant: tenant.into(),
            config,
            seed,
            workers: 1,
            cache_policy: None,
        }
    }
}

/// What a finished job hands back.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// Service-assigned job id.
    pub job_id: u64,
    /// Tenant the job ran for.
    pub tenant: String,
    /// The collected dataset, serialized exactly as `Dataset::to_json` —
    /// byte-identical to what a standalone CLI run of the same
    /// config/seed produces.
    pub dataset_json: String,
    /// Rendered Pareto-front advice over the full dataset.
    pub advice_text: String,
    /// Executor statistics (cache hit/miss counters included — this is
    /// where cross-tenant dedup becomes observable).
    pub stats: CollectStats,
    /// Simulated dollars of pool time this job newly provisioned (zero
    /// for an all-hits run); what the tenant's budget is charged.
    pub run_cost_dollars: f64,
}

/// One message on a job's event stream.
#[derive(Debug, Clone)]
pub enum JobEvent {
    /// A live trace event from the running collection (scenario
    /// starts/ends, cache hits, run framing).
    Progress(TraceEvent),
    /// The job finished; terminal.
    Finished(Box<JobOutcome>),
    /// The job failed after admission; terminal.
    Failed(String),
}

/// The client's end of one admitted job: a stream of [`JobEvent`]s ending
/// in `Finished` or `Failed`.
#[derive(Debug)]
pub struct JobHandle {
    /// Service-assigned job id.
    pub id: u64,
    /// Tenant the job was admitted for.
    pub tenant: String,
    events: Receiver<JobEvent>,
}

impl JobHandle {
    /// The live event stream (progress, then one terminal event).
    pub fn events(&self) -> &Receiver<JobEvent> {
        &self.events
    }

    /// Consumes the handle into its raw receiver.
    pub fn into_events(self) -> Receiver<JobEvent> {
        self.events
    }

    /// Blocks until the job's terminal event, discarding progress.
    pub fn wait(self) -> Result<JobOutcome, ServiceError> {
        for event in self.events.iter() {
            match event {
                JobEvent::Progress(_) => continue,
                JobEvent::Finished(outcome) => return Ok(*outcome),
                JobEvent::Failed(m) => return Err(ServiceError::JobFailed(m)),
            }
        }
        Err(ServiceError::JobFailed(
            "job channel closed without a terminal event".into(),
        ))
    }
}

/// A bounded multi-producer multi-consumer queue that can be closed.
///
/// Pushes fail fast with [`QueuePushError::Full`] at the bound (admission
/// control's backpressure) and [`QueuePushError::Closed`] after
/// [`JobQueue::close`]; pops block until an item or the drain completes.
#[derive(Debug)]
pub struct JobQueue<T> {
    tx: Mutex<Option<SyncSender<T>>>,
    rx: Mutex<Receiver<T>>,
    capacity: usize,
}

/// Why a [`JobQueue::push`] was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueuePushError {
    /// The queue is at capacity.
    Full,
    /// The queue was closed.
    Closed,
}

impl<T> JobQueue<T> {
    /// A queue holding at most `capacity` items (minimum 1).
    pub fn bounded(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        let (tx, rx) = std::sync::mpsc::sync_channel(capacity);
        JobQueue {
            tx: Mutex::new(Some(tx)),
            rx: Mutex::new(rx),
            capacity,
        }
    }

    /// The queue bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Enqueues without blocking; fails fast when full or closed.
    pub fn push(&self, item: T) -> Result<(), QueuePushError> {
        let tx = self.tx.lock();
        let Some(tx) = tx.as_ref() else {
            return Err(QueuePushError::Closed);
        };
        match tx.try_send(item) {
            Ok(()) => Ok(()),
            Err(TrySendError::Full(_)) => Err(QueuePushError::Full),
            Err(TrySendError::Disconnected(_)) => Err(QueuePushError::Closed),
        }
    }

    /// Dequeues, blocking until an item arrives; `None` once the queue is
    /// closed *and* drained — consumers see every admitted item.
    pub fn pop(&self) -> Option<T> {
        self.rx.lock().recv().ok()
    }

    /// Closes the queue: pushes fail from now on, pops drain what is left.
    pub fn close(&self) {
        self.tx.lock().take();
    }
}

/// An admitted job traveling through the queue.
struct Job {
    id: u64,
    request: AdviceRequest,
    events: Sender<JobEvent>,
}

/// Trace-event kinds forwarded to clients as progress. Everything else
/// (pool resizes, node boots, task spans) stays in the trace layer.
const STREAMED_KINDS: &[&str] = &[
    "run_start",
    "scenario_start",
    "scenario_end",
    "cache_hit",
    "journal_replay",
    "run_end",
];

/// The per-job tap: forwards the streamed subset of trace events into the
/// job's event channel. Send failures mean the client hung up — the run
/// continues; its results still feed the shared cache.
struct ProgressForwarder {
    events: Sender<JobEvent>,
}

impl EventTap for ProgressForwarder {
    fn on_event(&self, event: &TraceEvent) {
        if STREAMED_KINDS.contains(&event.kind.as_str()) {
            let _ = self.events.send(JobEvent::Progress(event.clone()));
        }
    }
}

/// Shared state between the submitting side and the workers.
struct ServiceInner {
    queue: JobQueue<Job>,
    policy: TenantPolicy,
    cache: SharedScenarioCache,
    cache_policy: CachePolicy,
    accepting: AtomicBool,
    next_id: AtomicU64,
    /// tenant → jobs queued or running.
    inflight: Mutex<HashMap<String, usize>>,
    /// tenant → cumulative newly-provisioned dollars.
    spent: Mutex<HashMap<String, f64>>,
}

impl ServiceInner {
    fn release(&self, tenant: &str) {
        let mut inflight = self.inflight.lock();
        if let Some(n) = inflight.get_mut(tenant) {
            *n = n.saturating_sub(1);
            if *n == 0 {
                inflight.remove(tenant);
            }
        }
    }
}

/// The multi-tenant advisor daemon's engine (see the module docs).
pub struct AdvisorService {
    inner: Arc<ServiceInner>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl AdvisorService {
    /// Starts the worker pool and returns the running service.
    pub fn start(config: ServiceConfig) -> AdvisorService {
        let inner = Arc::new(ServiceInner {
            queue: JobQueue::bounded(config.queue_capacity),
            policy: config.policy,
            cache: config.cache,
            cache_policy: config.cache_policy,
            accepting: AtomicBool::new(true),
            next_id: AtomicU64::new(1),
            inflight: Mutex::new(HashMap::new()),
            spent: Mutex::new(HashMap::new()),
        });
        let workers = (0..config.workers.max(1))
            .map(|i| {
                let inner = inner.clone();
                std::thread::Builder::new()
                    .name(format!("advisor-worker-{i}"))
                    .spawn(move || {
                        while let Some(job) = inner.queue.pop() {
                            run_job(&inner, job);
                        }
                    })
                    .expect("spawn advisor worker")
            })
            .collect();
        AdvisorService { inner, workers }
    }

    /// The shared scenario cache (for status displays and persistence).
    pub fn cache(&self) -> SharedScenarioCache {
        self.inner.cache.clone()
    }

    /// Dollars of newly-provisioned simulated pool time charged to
    /// `tenant` so far.
    pub fn tenant_spend(&self, tenant: &str) -> f64 {
        self.inner.spent.lock().get(tenant).copied().unwrap_or(0.0)
    }

    /// Admits a request, returning the job's event stream, or the typed
    /// reason it was refused. Admission checks run in order: shutdown,
    /// grid size, budget, in-flight quota, queue capacity.
    pub fn submit(&self, request: AdviceRequest) -> Result<JobHandle, ServiceError> {
        let inner = &self.inner;
        if !inner.accepting.load(Ordering::SeqCst) {
            return Err(ServiceError::ShuttingDown);
        }
        let tenant = request.tenant.clone();
        if let Some(limit) = inner.policy.max_scenarios {
            let scenarios = request.config.scenario_count();
            if scenarios > limit {
                return Err(ServiceError::GridTooLarge {
                    tenant,
                    scenarios,
                    limit,
                });
            }
        }
        if let Some(budget) = inner.policy.budget_dollars {
            let spent = inner.spent.lock().get(&tenant).copied().unwrap_or(0.0);
            if spent >= budget {
                return Err(ServiceError::BudgetExhausted {
                    tenant,
                    spent,
                    budget,
                });
            }
        }
        {
            // Reserve the in-flight slot under the lock so racing submits
            // from one tenant cannot both pass the check.
            let mut inflight = inner.inflight.lock();
            let n = inflight.entry(tenant.clone()).or_insert(0);
            if *n >= inner.policy.max_inflight {
                return Err(ServiceError::OverQuota {
                    tenant,
                    inflight: *n,
                    limit: inner.policy.max_inflight,
                });
            }
            *n += 1;
        }
        let id = inner.next_id.fetch_add(1, Ordering::SeqCst);
        let (tx, rx) = channel();
        let job = Job {
            id,
            request,
            events: tx,
        };
        match inner.queue.push(job) {
            Ok(()) => Ok(JobHandle {
                id,
                tenant,
                events: rx,
            }),
            Err(e) => {
                inner.release(&tenant);
                Err(match e {
                    QueuePushError::Full => ServiceError::QueueFull {
                        capacity: inner.queue.capacity(),
                    },
                    QueuePushError::Closed => ServiceError::ShuttingDown,
                })
            }
        }
    }

    /// Stops accepting work, drains every job already admitted, and joins
    /// the workers. In-flight jobs run to completion — their clients get
    /// their terminal events.
    pub fn shutdown(mut self) {
        self.inner.accepting.store(false, Ordering::SeqCst);
        self.inner.queue.close();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for AdvisorService {
    fn drop(&mut self) {
        // Dropping without shutdown() still drains gracefully.
        self.inner.accepting.store(false, Ordering::SeqCst);
        self.inner.queue.close();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// Executes one admitted job on a worker thread: isolated session, shared
/// cache, live progress, terminal event, quota release.
fn run_job(inner: &ServiceInner, job: Job) {
    let Job {
        id,
        request,
        events,
    } = job;
    let tenant = request.tenant.clone();
    let result = execute_request(inner, id, &tenant, request, events.clone());
    match result {
        Ok(outcome) => {
            let _ = events.send(JobEvent::Finished(Box::new(outcome)));
        }
        Err(e) => {
            let _ = events.send(JobEvent::Failed(e.to_string()));
        }
    }
    inner.release(&tenant);
}

fn execute_request(
    inner: &ServiceInner,
    job_id: u64,
    tenant: &str,
    request: AdviceRequest,
    events: Sender<JobEvent>,
) -> Result<JobOutcome, crate::error::ToolError> {
    let policy = request.cache_policy.unwrap_or(inner.cache_policy);
    let mut session = Session::builder(request.config)
        .seed(request.seed)
        .shared_cache(inner.cache.clone())
        .cache_policy(policy)
        .progress(Arc::new(ProgressForwarder { events }))
        .build()?;
    let report = session.collect_with(&CollectPlan::new().workers(request.workers.max(1)))?;
    // Budget accounting: only pool time this job newly provisioned. An
    // all-hits run provisions nothing and charges nothing.
    let run_cost_dollars = session.total_cloud_cost();
    *inner.spent.lock().entry(tenant.to_string()).or_insert(0.0) += run_cost_dollars;
    let advice = crate::advice::Advice::from_dataset(&report.dataset, &DataFilter::all());
    let outcome = JobOutcome {
        job_id,
        tenant: tenant.to_string(),
        dataset_json: report.dataset.to_json(),
        advice_text: advice.render_text(),
        stats: report.stats.clone(),
        run_cost_dollars,
    };
    let _ = session.shutdown();
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_queue_bounds_closes_and_drains() {
        let q: JobQueue<u32> = JobQueue::bounded(2);
        assert_eq!(q.capacity(), 2);
        q.push(1).unwrap();
        q.push(2).unwrap();
        assert_eq!(q.push(3), Err(QueuePushError::Full));
        q.close();
        assert_eq!(q.push(4), Err(QueuePushError::Closed));
        // Closed queues still drain what was admitted.
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn single_request_round_trip_with_progress() {
        let service = AdvisorService::start(ServiceConfig::default());
        let request = AdviceRequest::new("t1", UserConfig::example_lammps_small(), 42);
        let handle = service.submit(request).unwrap();
        assert_eq!(handle.tenant, "t1");
        let mut kinds = Vec::new();
        let mut outcome = None;
        for event in handle.events().iter() {
            match event {
                JobEvent::Progress(ev) => kinds.push(ev.kind.clone()),
                JobEvent::Finished(o) => {
                    outcome = Some(*o);
                    break;
                }
                JobEvent::Failed(m) => panic!("job failed: {m}"),
            }
        }
        let outcome = outcome.expect("finished");
        assert_eq!(outcome.stats.completed, 3);
        assert_eq!(outcome.stats.cache_misses, 3);
        assert!(outcome.run_cost_dollars > 0.0, "cold run provisions pools");
        assert!(outcome.advice_text.contains("Nodes"));
        assert_eq!(
            kinds.iter().filter(|k| *k == "scenario_start").count(),
            3,
            "progress streamed per scenario: {kinds:?}"
        );
        assert_eq!(kinds.iter().filter(|k| *k == "scenario_end").count(), 3);
        assert_eq!(kinds.first().map(String::as_str), Some("run_start"));
        assert_eq!(kinds.last().map(String::as_str), Some("run_end"));
        assert!(service.tenant_spend("t1") > 0.0);
        service.shutdown();
    }

    #[test]
    fn bad_config_fails_the_job_not_the_service() {
        let service = AdvisorService::start(ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        });
        let mut config = UserConfig::example_lammps_small();
        config.skus = vec!["No_Such_Sku".into()];
        let handle = service
            .submit(AdviceRequest::new("t1", config, 42))
            .unwrap();
        let err = handle.wait().unwrap_err();
        assert!(matches!(err, ServiceError::JobFailed(_)), "{err}");
        // The worker survives and serves the next job.
        let handle = service
            .submit(AdviceRequest::new(
                "t1",
                UserConfig::example_lammps_small(),
                42,
            ))
            .unwrap();
        assert_eq!(handle.wait().unwrap().stats.completed, 3);
        service.shutdown();
    }
}
