//! Content-addressed scenario-result cache for incremental collection.
//!
//! The paper's Algorithm 1 re-executes the full VM-type × node-count ×
//! input grid on every invocation. The companion tool paper motivates
//! *appending to and reusing* prior data points instead of re-running
//! multi-hour cloud jobs; this module is that layer. Every scenario gets a
//! deterministic **fingerprint** — a stable hash over everything that can
//! change its simulated result:
//!
//! * the scenario itself (SKU, node count, processes per node, app inputs)
//!   and the application name,
//! * the experiment noise seed,
//! * the SKU-catalog/pricing revision ([`cloudsim::SkuCatalog::revision`]),
//! * the application setup/run script content,
//! * the app-model version constant ([`appmodel::MODEL_VERSION`]).
//!
//! The cache maps fingerprints to finished [`DataPoint`]s. A warm
//! collection consults it before provisioning anything: hits bypass the
//! batch/cloud simulators entirely and are merged id-ordered, so a warm
//! run's dataset is byte-identical to a cold run's. Whenever a fingerprint
//! input changes (a new seed, a price update, a model bump, an edited
//! script), the key changes and the stale entry is simply never found —
//! invalidation is automatic and needs no bookkeeping.
//!
//! Identity-only fields of a data point — its scenario id, tags, and
//! deployment name — are **not** fingerprinted: they do not influence the
//! simulation, and a cached point is re-stamped with the current values on
//! hit (see [`rehydrate_point`]). This is what lets a widened grid (which
//! shifts scenario ids) still reuse every already-known point.
//!
//! Persistence is a single pretty-printed JSON file (the same
//! `hpcadvisor-formats` store the dataset uses) under the CLI work
//! directory's `cache/` folder. A corrupted or truncated file is treated as
//! an empty cache — a warm run silently degrades to a cold one instead of
//! erroring.
//!
//! Concurrency: fingerprinting and lookup happen once, up front, on the
//! coordinating thread; shard workers only ever see the miss list and
//! accumulate their results into per-shard output buffers. New entries are
//! inserted after the merge barrier, so the hot path takes no lock.

use crate::dataset::{point_to_value, value_to_point, DataPoint};
use crate::error::ToolError;
use crate::scenario::{Scenario, ScenarioStatus};
use hpcadvisor_formats::{json, OrderedMap, Value};
use parking_lot::{Mutex, MutexGuard};
use std::collections::HashMap;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Version of the on-disk cache schema. Files written by a different
/// schema are discarded wholesale (treated as a cold cache).
const STORE_VERSION: i64 = 1;

/// How a collection run uses the scenario cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CachePolicy {
    /// Consult the cache before running and store new results (default).
    #[default]
    ReadWrite,
    /// Consult the cache but never store anything new.
    ReadOnly,
    /// Ignore the cache entirely: every scenario runs cold.
    Off,
}

impl CachePolicy {
    /// True if lookups are allowed.
    pub fn reads(&self) -> bool {
        !matches!(self, CachePolicy::Off)
    }

    /// True if new results should be stored.
    pub fn writes(&self) -> bool {
        matches!(self, CachePolicy::ReadWrite)
    }

    /// Short human-readable name (`read-write`, `read-only`, `off`).
    pub fn as_str(&self) -> &'static str {
        match self {
            CachePolicy::ReadWrite => "read-write",
            CachePolicy::ReadOnly => "read-only",
            CachePolicy::Off => "off",
        }
    }
}

/// A 128-bit content fingerprint of one scenario execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint(u128);

impl Fingerprint {
    /// Hex spelling used as the JSON store key (32 lowercase digits).
    pub fn to_hex(self) -> String {
        format!("{:032x}", self.0)
    }

    /// Parses the hex spelling.
    pub fn from_hex(s: &str) -> Option<Self> {
        if s.len() != 32 {
            return None;
        }
        u128::from_str_radix(s, 16).ok().map(Fingerprint)
    }
}

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// Incremental 128-bit FNV-1a hasher. FNV is not cryptographic, but the
/// cache only needs collision resistance across at most a few million
/// honest keys, where 128 bits is far beyond sufficient — and the hash is
/// bit-stable across platforms and Rust versions, unlike `DefaultHasher`.
#[derive(Debug, Clone)]
struct Fnv128 {
    state: u128,
}

impl Fnv128 {
    const OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
    const PRIME: u128 = 0x0000000001000000000000000000013b;

    fn new() -> Self {
        Fnv128 {
            state: Self::OFFSET,
        }
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state = (self.state ^ b as u128).wrapping_mul(Self::PRIME);
        }
    }

    /// Writes a field followed by a separator byte, so adjacent fields
    /// cannot alias (`"ab" + "c"` vs `"a" + "bc"`).
    fn field(&mut self, bytes: &[u8]) {
        self.write(bytes);
        self.write(&[0x1f]);
    }

    fn finish(&self) -> u128 {
        self.state
    }
}

/// Computes scenario fingerprints for one collection run. Construct once
/// per run (the collection-level inputs are folded in eagerly), then call
/// [`Fingerprinter::scenario`] per grid point.
#[derive(Debug, Clone)]
pub struct Fingerprinter {
    base: Fnv128,
}

impl Fingerprinter {
    /// Folds in every collection-level fingerprint input.
    pub fn new(appname: &str, script: &str, experiment_seed: u64, catalog_revision: u64) -> Self {
        let mut base = Fnv128::new();
        base.field(&appmodel::MODEL_VERSION.to_le_bytes());
        base.field(appname.as_bytes());
        base.field(script.as_bytes());
        base.field(&experiment_seed.to_le_bytes());
        base.field(&catalog_revision.to_le_bytes());
        Fingerprinter { base }
    }

    /// Folds the run's capacity class into the fingerprint. Dedicated is
    /// the implicit default and folds nothing, so fingerprints of ordinary
    /// runs are unchanged; spot results can never shadow dedicated ones
    /// (their eviction overhead makes them different measurements).
    pub fn with_capacity(mut self, capacity: cloudsim::Capacity) -> Self {
        if capacity != cloudsim::Capacity::Dedicated {
            self.base.field(capacity.as_str().as_bytes());
        }
        self
    }

    /// Fingerprints one scenario under this run's collection inputs.
    ///
    /// The placement region folds in last, and only when the scenario pins
    /// one: default-region scenarios keep their pre-placement fingerprints,
    /// so caches populated before multi-region grids existed stay warm.
    /// (No aliasing with the appinput pairs is possible — appinputs always
    /// contribute an even number of fields, the region exactly one.)
    pub fn scenario(&self, s: &Scenario) -> Fingerprint {
        let mut h = self.base.clone();
        h.field(s.sku.as_bytes());
        h.field(&s.nnodes.to_le_bytes());
        h.field(&s.ppn.to_le_bytes());
        for (k, v) in &s.appinputs {
            h.field(k.as_bytes());
            h.field(v.as_bytes());
        }
        if let Some(region) = &s.region {
            h.field(region.as_bytes());
        }
        Fingerprint(h.finish())
    }
}

/// Re-stamps a cached point with the identity-only fields of the current
/// run: scenario id, tags, and deployment. These are exactly the
/// [`DataPoint`] fields excluded from the fingerprint, so after this call
/// the point is byte-for-byte what a cold run of `scenario` would produce.
pub fn rehydrate_point(
    mut point: DataPoint,
    scenario: &Scenario,
    tags: &[(String, String)],
    deployment: &str,
) -> DataPoint {
    point.scenario_id = scenario.id;
    point.tags = tags.to_vec();
    point.deployment = deployment.to_string();
    point
}

/// Summary counters of a cache store (the CLI's `cache stats`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheStoreStats {
    /// Entries currently held.
    pub entries: usize,
    /// Backing file, if the cache is persistent.
    pub path: Option<PathBuf>,
    /// True if the backing file existed but could not be parsed and the
    /// cache recovered by starting cold.
    pub recovered: bool,
}

/// The content-addressed scenario-result store.
///
/// In-memory by default; [`ScenarioCache::open`] binds it to a JSON file
/// that [`ScenarioCache::save`] rewrites atomically (write-then-rename).
#[derive(Debug, Default)]
pub struct ScenarioCache {
    entries: HashMap<u128, DataPoint>,
    path: Option<PathBuf>,
    recovered: bool,
    /// True when the in-memory entries differ from the backing file:
    /// [`ScenarioCache::save`] skips the rewrite entirely when clean, so a
    /// warm all-hits run never touches the store. Recovered opens start
    /// dirty — the next save heals the damaged file.
    dirty: bool,
}

impl ScenarioCache {
    /// An empty, purely in-memory cache (results live for the collector's
    /// lifetime only).
    pub fn in_memory() -> Self {
        ScenarioCache::default()
    }

    /// Opens a file-backed cache. A missing file starts empty; a corrupted
    /// or truncated file also starts empty (cold) with the `recovered` flag
    /// set, never an error — a damaged cache must cost a re-run, not a
    /// failure.
    pub fn open(path: impl AsRef<Path>) -> Self {
        let path = path.as_ref().to_path_buf();
        let (entries, recovered) = match std::fs::read_to_string(&path) {
            Err(_) => (HashMap::new(), false),
            Ok(text) => match parse_store(&text) {
                Ok(entries) => (entries, false),
                Err(_) => (HashMap::new(), true),
            },
        };
        ScenarioCache {
            entries,
            path: Some(path),
            recovered,
            dirty: recovered,
        }
    }

    /// Number of cached points.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The backing file, if any.
    pub fn path(&self) -> Option<&Path> {
        self.path.as_deref()
    }

    /// True if a damaged backing file was discarded on open.
    pub fn recovered(&self) -> bool {
        self.recovered
    }

    /// Store summary for status displays.
    pub fn stats(&self) -> CacheStoreStats {
        CacheStoreStats {
            entries: self.entries.len(),
            path: self.path.clone(),
            recovered: self.recovered,
        }
    }

    /// Looks a fingerprint up, returning a clone of the stored point.
    pub fn lookup(&self, fp: Fingerprint) -> Option<DataPoint> {
        self.entries.get(&fp.0).cloned()
    }

    /// Stores a finished point. Only completed points are cacheable —
    /// failures may be transient (injected faults, quota) and must re-run.
    /// A point identical to the stored one is a no-op that leaves the
    /// store clean, so redundant inserts never force a file rewrite.
    /// Returns whether the store changed.
    pub fn insert(&mut self, fp: Fingerprint, point: &DataPoint) -> bool {
        if point.status != ScenarioStatus::Completed {
            return false;
        }
        if self.entries.get(&fp.0) == Some(point) {
            return false;
        }
        self.entries.insert(fp.0, point.clone());
        self.dirty = true;
        true
    }

    /// Drops every entry (the CLI's `cache clear`). The backing file is
    /// rewritten empty on the next [`ScenarioCache::save`].
    pub fn clear(&mut self) {
        if !self.entries.is_empty() {
            self.dirty = true;
        }
        self.entries.clear();
    }

    /// True when the in-memory entries differ from the backing file.
    pub fn is_dirty(&self) -> bool {
        self.dirty
    }

    /// Writes the store to its backing file (no-op for in-memory caches
    /// and for clean stores — an all-hits warm run rewrites nothing).
    /// The write goes to a sibling temp file first and renames into place,
    /// so a crash mid-save leaves the old cache intact.
    pub fn save(&mut self) -> Result<(), ToolError> {
        let Some(path) = &self.path else {
            return Ok(());
        };
        if !self.dirty {
            return Ok(());
        }
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let mut keys: Vec<&u128> = self.entries.keys().collect();
        keys.sort_unstable();
        let mut entries = OrderedMap::new();
        for k in keys {
            entries.insert(Fingerprint(*k).to_hex(), point_to_value(&self.entries[k]));
        }
        let mut doc = OrderedMap::new();
        doc.insert("version", Value::Int(STORE_VERSION));
        doc.insert("entries", Value::Map(entries));
        let text = json::to_string_pretty(&Value::Map(doc));
        let tmp = path.with_extension("json.tmp");
        std::fs::write(&tmp, text)?;
        std::fs::rename(&tmp, path)?;
        self.dirty = false;
        Ok(())
    }
}

/// A scenario cache shared by many sessions — the daemon's cross-tenant
/// dedup point. Clones are handles to the same store; every consult and
/// insert takes the internal lock, so concurrent jobs that ask about the
/// same scenarios pay for one simulation and hit on the rest.
///
/// The collector holds its cache through this type even when unshared (a
/// plain CLI run is simply a share group of one).
#[derive(Debug, Clone, Default)]
pub struct SharedScenarioCache {
    inner: Arc<Mutex<ScenarioCache>>,
}

impl SharedScenarioCache {
    /// Wraps an existing cache into a shareable handle.
    pub fn new(cache: ScenarioCache) -> Self {
        SharedScenarioCache {
            inner: Arc::new(Mutex::new(cache)),
        }
    }

    /// A shareable handle over an empty in-memory cache.
    pub fn in_memory() -> Self {
        SharedScenarioCache::new(ScenarioCache::in_memory())
    }

    /// Opens a file-backed cache (see [`ScenarioCache::open`]) behind a
    /// shareable handle.
    pub fn open(path: impl AsRef<Path>) -> Self {
        SharedScenarioCache::new(ScenarioCache::open(path))
    }

    /// Locks the underlying store for direct access.
    pub fn lock(&self) -> MutexGuard<'_, ScenarioCache> {
        self.inner.lock()
    }

    /// Number of cached points.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// True if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    /// True if a damaged backing file was discarded on open.
    pub fn recovered(&self) -> bool {
        self.lock().recovered()
    }

    /// Store summary for status displays.
    pub fn stats(&self) -> CacheStoreStats {
        self.lock().stats()
    }

    /// Persists the underlying store (see [`ScenarioCache::save`]).
    pub fn save(&self) -> Result<(), ToolError> {
        self.lock().save()
    }
}

fn parse_store(text: &str) -> Result<HashMap<u128, DataPoint>, ToolError> {
    let doc = json::parse(text)?;
    let version = doc
        .get("version")
        .and_then(|v| v.as_int())
        .ok_or_else(|| ToolError::Config("cache store missing version".into()))?;
    if version != STORE_VERSION {
        return Err(ToolError::Config(format!(
            "cache store version {version} != {STORE_VERSION}"
        )));
    }
    let entries = doc
        .get("entries")
        .and_then(|v| v.as_map())
        .ok_or_else(|| ToolError::Config("cache store missing entries".into()))?;
    let mut out = HashMap::with_capacity(entries.len());
    for (key, value) in entries.iter() {
        let fp = Fingerprint::from_hex(key)
            .ok_or_else(|| ToolError::Config(format!("bad cache key '{key}'")))?;
        out.insert(fp.0, value_to_point(value)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::point;

    fn scenario(id: u32, sku: &str, nnodes: u32) -> Scenario {
        Scenario {
            id,
            sku: sku.into(),
            nnodes,
            ppn: 120,
            appinputs: vec![("BOXFACTOR".into(), "8".into())],
            region: None,
            status: ScenarioStatus::Pending,
        }
    }

    fn tempfile(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "hpcadvisor-cache-test-{tag}-{}.json",
            std::process::id()
        ))
    }

    #[test]
    fn fingerprints_are_stable_and_sensitive() {
        let fpr = Fingerprinter::new("lammps", "script", 42, 7);
        let s = scenario(1, "Standard_HB120rs_v3", 4);
        assert_eq!(fpr.scenario(&s), fpr.scenario(&s), "deterministic");
        // Identity-only fields do not move the fingerprint...
        let mut renumbered = s.clone();
        renumbered.id = 99;
        assert_eq!(fpr.scenario(&s), fpr.scenario(&renumbered));
        // ...but every simulation input does.
        let mut other = s.clone();
        other.nnodes = 8;
        assert_ne!(fpr.scenario(&s), fpr.scenario(&other));
        let mut other = s.clone();
        other.appinputs[0].1 = "9".into();
        assert_ne!(fpr.scenario(&s), fpr.scenario(&other));
        for different in [
            Fingerprinter::new("wrf", "script", 42, 7),
            Fingerprinter::new("lammps", "other script", 42, 7),
            Fingerprinter::new("lammps", "script", 43, 7),
            Fingerprinter::new("lammps", "script", 42, 8),
            Fingerprinter::new("lammps", "script", 42, 7).with_capacity(cloudsim::Capacity::Spot),
        ] {
            assert_ne!(fpr.scenario(&s), different.scenario(&s));
        }
        // Dedicated is the implicit default: folding it changes nothing, so
        // pre-capacity cache entries stay addressable.
        let dedicated = Fingerprinter::new("lammps", "script", 42, 7)
            .with_capacity(cloudsim::Capacity::Dedicated);
        assert_eq!(fpr.scenario(&s), dedicated.scenario(&s));
    }

    #[test]
    fn region_folds_only_when_pinned() {
        let fpr = Fingerprinter::new("lammps", "script", 42, 7);
        let s = scenario(1, "Standard_HB120rs_v3", 4);
        // Placement moves the fingerprint: results from different regions
        // are different measurements and must not collide in the cache.
        let mut placed = s.clone();
        placed.region = Some("westeurope".into());
        assert_ne!(fpr.scenario(&s), fpr.scenario(&placed));
        let mut elsewhere = s.clone();
        elsewhere.region = Some("japaneast".into());
        assert_ne!(fpr.scenario(&placed), fpr.scenario(&elsewhere));
        // Back-compat: a region-less scenario folds nothing, so its
        // fingerprint is exactly what pre-placement versions computed —
        // existing caches stay warm.
        let mut unpinned = placed.clone();
        unpinned.region = None;
        assert_eq!(fpr.scenario(&s), fpr.scenario(&unpinned));
        // The region field cannot alias an appinput pair: a region never
        // collides with a scenario whose extra appinput spells the same
        // bytes, because pairs fold two fields and the region folds one.
        let mut inputish = s.clone();
        inputish.appinputs.push(("westeurope".into(), "".into()));
        assert_ne!(fpr.scenario(&placed), fpr.scenario(&inputish));
    }

    #[test]
    fn adjacent_fields_do_not_alias() {
        let a = Fingerprinter::new("ab", "c", 1, 1);
        let b = Fingerprinter::new("a", "bc", 1, 1);
        let s = scenario(1, "Standard_HB120rs_v3", 1);
        assert_ne!(a.scenario(&s), b.scenario(&s));
    }

    #[test]
    fn hex_roundtrip() {
        let fpr = Fingerprinter::new("lammps", "s", 1, 2);
        let fp = fpr.scenario(&scenario(1, "Standard_HC44rs", 2));
        assert_eq!(Fingerprint::from_hex(&fp.to_hex()), Some(fp));
        assert_eq!(fp.to_hex().len(), 32);
        assert_eq!(Fingerprint::from_hex("xyz"), None);
        assert_eq!(Fingerprint::from_hex(""), None);
    }

    #[test]
    fn store_roundtrip_and_policy_gates() {
        let path = tempfile("roundtrip");
        let _ = std::fs::remove_file(&path);
        let fpr = Fingerprinter::new("lammps", "s", 42, 1);
        let s = scenario(3, "Standard_HB120rs_v3", 4);
        let fp = fpr.scenario(&s);
        let mut cache = ScenarioCache::open(&path);
        assert!(cache.is_empty() && !cache.recovered());
        let p = point(3, "lammps", "Standard_HB120rs_v3", 4, 120, 12.5, 0.05);
        assert!(cache.insert(fp, &p));
        cache.save().unwrap();

        let warm = ScenarioCache::open(&path);
        assert_eq!(warm.len(), 1);
        assert_eq!(warm.lookup(fp), Some(p.clone()));
        assert_eq!(
            warm.lookup(fpr.scenario(&scenario(3, "Standard_HC44rs", 4))),
            None
        );

        // Failed points never enter the cache.
        let mut failed = p;
        failed.status = ScenarioStatus::Failed;
        let mut cache = ScenarioCache::in_memory();
        assert!(!cache.insert(fp, &failed));
        assert!(cache.is_empty());
        assert!(cache.save().is_ok(), "in-memory save is a no-op");

        assert!(CachePolicy::ReadWrite.reads() && CachePolicy::ReadWrite.writes());
        assert!(CachePolicy::ReadOnly.reads() && !CachePolicy::ReadOnly.writes());
        assert!(!CachePolicy::Off.reads() && !CachePolicy::Off.writes());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupted_or_truncated_store_recovers_cold() {
        for (tag, garbage) in [
            ("garbage", "this is not json"),
            ("truncated", "{\"version\": 1, \"entries\": {\"00"),
            ("wrong-version", "{\"version\": 999, \"entries\": {}}"),
            ("wrong-shape", "[1, 2, 3]"),
            (
                "bad-point",
                "{\"version\": 1, \"entries\": {\"0123456789abcdef0123456789abcdef\": {\"nope\": 1}}}",
            ),
        ] {
            let path = tempfile(tag);
            std::fs::write(&path, garbage).unwrap();
            let mut cache = ScenarioCache::open(&path);
            assert!(cache.is_empty(), "{tag}: damaged store starts cold");
            assert!(cache.recovered(), "{tag}: recovery is flagged");
            assert!(cache.is_dirty(), "{tag}: recovered stores save eagerly");
            // And saving over the damage produces a loadable store again.
            cache.save().unwrap();
            assert!(!ScenarioCache::open(&path).recovered(), "{tag}");
            let _ = std::fs::remove_file(&path);
        }
    }

    #[test]
    fn clean_stores_skip_the_rewrite() {
        let path = tempfile("dirty");
        let _ = std::fs::remove_file(&path);
        let fpr = Fingerprinter::new("lammps", "s", 42, 1);
        let s = scenario(1, "Standard_HB120rs_v3", 4);
        let fp = fpr.scenario(&s);
        let p = point(1, "lammps", "Standard_HB120rs_v3", 4, 120, 12.5, 0.05);

        let mut cache = ScenarioCache::open(&path);
        assert!(!cache.is_dirty(), "fresh open is clean");
        assert!(cache.insert(fp, &p));
        assert!(cache.is_dirty());
        cache.save().unwrap();
        assert!(!cache.is_dirty(), "save clears the flag");
        let saved_at = std::fs::metadata(&path).unwrap().modified().unwrap();

        // Re-inserting the identical point keeps the store clean: the
        // warm path's post-merge insert loop must not force a rewrite.
        assert!(!cache.insert(fp, &p), "identical insert is a no-op");
        assert!(!cache.is_dirty());
        cache.save().unwrap();
        assert_eq!(
            std::fs::metadata(&path).unwrap().modified().unwrap(),
            saved_at,
            "clean save never touches the file"
        );

        // A genuinely different point under the same key dirties again.
        let mut newer = p.clone();
        newer.exec_time_secs += 1.0;
        assert!(cache.insert(fp, &newer));
        assert!(cache.is_dirty());

        // clear() on a non-empty store schedules an empty rewrite.
        cache.clear();
        assert!(cache.is_dirty());
        cache.save().unwrap();
        assert_eq!(ScenarioCache::open(&path).len(), 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn shared_handles_see_one_store() {
        let shared = SharedScenarioCache::in_memory();
        let clone = shared.clone();
        let fpr = Fingerprinter::new("lammps", "s", 42, 1);
        let s = scenario(1, "Standard_HB120rs_v3", 4);
        let p = point(1, "lammps", "Standard_HB120rs_v3", 4, 120, 12.5, 0.05);
        assert!(shared.lock().insert(fpr.scenario(&s), &p));
        assert_eq!(clone.len(), 1, "clones share the underlying store");
        assert!(!clone.is_empty());
        assert!(!clone.recovered());
        assert_eq!(clone.stats().entries, 1);
        assert!(clone.save().is_ok(), "in-memory save is a no-op");
    }

    #[test]
    fn rehydrate_restamps_identity_fields_only() {
        let mut stored = point(1, "lammps", "Standard_HB120rs_v3", 4, 120, 9.0, 0.04);
        stored.tags = vec![("version".into(), "old".into())];
        stored.deployment = "oldrg001".into();
        let s = scenario(42, "Standard_HB120rs_v3", 4);
        let tags = vec![("version".into(), "v2".into())];
        let out = rehydrate_point(stored.clone(), &s, &tags, "newrg001");
        assert_eq!(out.scenario_id, 42);
        assert_eq!(out.tags, tags);
        assert_eq!(out.deployment, "newrg001");
        assert_eq!(out.exec_time_secs, stored.exec_time_secs);
        assert_eq!(out.metrics, stored.metrics);
    }
}
