//! Content-addressed scenario-result cache for incremental collection.
//!
//! The paper's Algorithm 1 re-executes the full VM-type × node-count ×
//! input grid on every invocation. The companion tool paper motivates
//! *appending to and reusing* prior data points instead of re-running
//! multi-hour cloud jobs; this module is that layer. Every scenario gets a
//! deterministic **fingerprint** — a stable hash over everything that can
//! change its simulated result:
//!
//! * the scenario itself (SKU, node count, processes per node, app inputs)
//!   and the application name,
//! * the experiment noise seed,
//! * the SKU-catalog/pricing revision ([`cloudsim::SkuCatalog::revision`]),
//! * the application setup/run script content,
//! * the app-model version constant ([`appmodel::MODEL_VERSION`]).
//!
//! The cache maps fingerprints to finished [`DataPoint`]s. A warm
//! collection consults it before provisioning anything: hits bypass the
//! batch/cloud simulators entirely and are merged id-ordered, so a warm
//! run's dataset is byte-identical to a cold run's. Whenever a fingerprint
//! input changes (a new seed, a price update, a model bump, an edited
//! script), the key changes and the stale entry is simply never found —
//! invalidation is automatic and needs no bookkeeping.
//!
//! Identity-only fields of a data point — its scenario id, tags, and
//! deployment name — are **not** fingerprinted: they do not influence the
//! simulation, and a cached point is re-stamped with the current values on
//! hit (see [`rehydrate_point`]). This is what lets a widened grid (which
//! shifts scenario ids) still reuse every already-known point.
//!
//! Persistence is an **indexed binary record log** under the CLI work
//! directory's `cache/` folder: a length-prefixed, checksummed append-only
//! log of `(fingerprint, point)` records plus a sibling
//! fingerprint → offset index (`<store>.idx`). Saving appends only the
//! records added since the last save — O(new entries), not O(store) — and
//! compacts via atomic segment rotation (write-temp-then-rename, log
//! before index) once superseded records outnumber live ones. Legacy
//! whole-file JSON stores are read transparently and keep saving as JSON
//! until converted with `cache migrate`. A torn log tail or damaged index
//! salvages every intact record and rebuilds on the next save — never a
//! cold run; only an unrecognizable store (no magic, unparsable JSON)
//! degrades to cold instead of erroring.
//!
//! Concurrency: fingerprinting and lookup happen once, up front, on the
//! coordinating thread; shard workers only ever see the miss list and
//! accumulate their results into per-shard output buffers. New entries are
//! inserted after the merge barrier, so the hot path takes no lock.

use crate::dataset::{point_to_value, value_to_point, DataPoint};
use crate::error::ToolError;
use crate::scenario::{Scenario, ScenarioStatus};
use hpcadvisor_formats::{json, OrderedMap, Value};
use parking_lot::{Mutex, MutexGuard};
use std::collections::HashMap;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Version of the on-disk cache schema. Files written by a different
/// schema are discarded wholesale (treated as a cold cache).
const STORE_VERSION: i64 = 1;

/// Magic prefix of a binary record log (8 bytes, version in the tail).
const LOG_MAGIC: &[u8; 8] = b"HPCAV001";

/// Magic prefix of the sidecar fingerprint → offset index.
const IDX_MAGIC: &[u8; 8] = b"HPCAIDX1";

/// Fixed byte size of one index record: 16-byte fingerprint + u64 offset.
const IDX_RECORD: usize = 24;

/// On-disk format of a persistent store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StoreFormat {
    /// Length-prefixed binary record log with a sidecar index (default for
    /// new stores).
    #[default]
    Binary,
    /// Legacy whole-file pretty-printed JSON (rewritten in full per save).
    Json,
}

impl StoreFormat {
    /// Short human-readable name (`binary`, `json`).
    pub fn as_str(&self) -> &'static str {
        match self {
            StoreFormat::Binary => "binary",
            StoreFormat::Json => "json",
        }
    }
}

/// FNV-1a-64 over a record payload — the per-record checksum that catches
/// torn or bit-rotted log writes.
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(0x100000001b3);
    }
    h
}

/// Sidecar index path: the store path with `.idx` appended (not swapped,
/// so `scenario-cache.bin` and a migrated `scenario-cache.json` cannot
/// collide on one index name).
fn index_path(path: &Path) -> PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(".idx");
    PathBuf::from(os)
}

/// Appends one log record: `[u32 LE payload len][payload][u64 LE FNV-1a]`
/// where the payload is the 16-byte big-endian fingerprint followed by the
/// point's compact JSON.
fn encode_record(buf: &mut Vec<u8>, fp: u128, point: &DataPoint) {
    let mut payload = Vec::with_capacity(160);
    payload.extend_from_slice(&fp.to_be_bytes());
    payload.extend_from_slice(json::to_string(&point_to_value(point)).as_bytes());
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    let sum = fnv64(&payload);
    buf.extend_from_slice(&payload);
    buf.extend_from_slice(&sum.to_le_bytes());
}

/// What a binary-log scan recovered.
struct LogScan {
    entries: HashMap<u128, DataPoint>,
    /// Log offset of each live fingerprint's (last) record.
    offsets: HashMap<u128, u64>,
    /// Byte length of the valid log prefix.
    valid_len: u64,
    /// True when trailing bytes after the valid prefix had to be dropped
    /// (torn final write, or mid-log corruption truncating the scan).
    torn: bool,
    /// Superseded records encountered (same fingerprint written twice).
    dead: usize,
}

/// Walks a binary log, salvaging every intact record. Stops at the first
/// record that fails its length, checksum, or JSON decode — everything
/// before it is kept.
fn scan_log(bytes: &[u8]) -> LogScan {
    let mut entries = HashMap::new();
    let mut offsets = HashMap::new();
    let mut dead = 0usize;
    let mut pos = LOG_MAGIC.len();
    while let Some(len_bytes) = bytes.get(pos..pos + 4) {
        let len = u32::from_le_bytes(len_bytes.try_into().expect("4 bytes")) as usize;
        let Some(payload) = bytes.get(pos + 4..pos + 4 + len) else {
            break;
        };
        let Some(sum_bytes) = bytes.get(pos + 4 + len..pos + 12 + len) else {
            break;
        };
        let sum = u64::from_le_bytes(sum_bytes.try_into().expect("8 bytes"));
        if len < 16 || fnv64(payload) != sum {
            break;
        }
        let fp = u128::from_be_bytes(payload[..16].try_into().expect("16 bytes"));
        let Ok(text) = std::str::from_utf8(&payload[16..]) else {
            break;
        };
        let Ok(point) = json::parse(text)
            .map_err(ToolError::from)
            .and_then(|v| value_to_point(&v))
        else {
            break;
        };
        if entries.insert(fp, point).is_some() {
            dead += 1;
        }
        offsets.insert(fp, pos as u64);
        pos += 12 + len;
    }
    LogScan {
        entries,
        offsets,
        valid_len: pos as u64,
        torn: pos != bytes.len(),
        dead,
    }
}

/// Reads the sidecar index and reports whether it exactly matches the
/// offsets the log scan recovered. A missing, damaged, or stale index is
/// never fatal — the log is the source of truth — it just schedules an
/// index rebuild on the next save.
fn index_matches(path: &Path, offsets: &HashMap<u128, u64>) -> bool {
    let Ok(bytes) = std::fs::read(path) else {
        return offsets.is_empty();
    };
    if !bytes.starts_with(IDX_MAGIC) || !(bytes.len() - IDX_MAGIC.len()).is_multiple_of(IDX_RECORD)
    {
        return false;
    }
    let records = &bytes[IDX_MAGIC.len()..];
    let mut seen: HashMap<u128, u64> = HashMap::with_capacity(records.len() / IDX_RECORD);
    for rec in records.chunks_exact(IDX_RECORD) {
        let fp = u128::from_be_bytes(rec[..16].try_into().expect("16 bytes"));
        let off = u64::from_le_bytes(rec[16..].try_into().expect("8 bytes"));
        seen.insert(fp, off);
    }
    seen == *offsets
}

/// How a collection run uses the scenario cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CachePolicy {
    /// Consult the cache before running and store new results (default).
    #[default]
    ReadWrite,
    /// Consult the cache but never store anything new.
    ReadOnly,
    /// Ignore the cache entirely: every scenario runs cold.
    Off,
}

impl CachePolicy {
    /// True if lookups are allowed.
    pub fn reads(&self) -> bool {
        !matches!(self, CachePolicy::Off)
    }

    /// True if new results should be stored.
    pub fn writes(&self) -> bool {
        matches!(self, CachePolicy::ReadWrite)
    }

    /// Short human-readable name (`read-write`, `read-only`, `off`).
    pub fn as_str(&self) -> &'static str {
        match self {
            CachePolicy::ReadWrite => "read-write",
            CachePolicy::ReadOnly => "read-only",
            CachePolicy::Off => "off",
        }
    }
}

/// A 128-bit content fingerprint of one scenario execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint(u128);

impl Fingerprint {
    /// Hex spelling used as the JSON store key (32 lowercase digits).
    pub fn to_hex(self) -> String {
        format!("{:032x}", self.0)
    }

    /// Parses the hex spelling.
    pub fn from_hex(s: &str) -> Option<Self> {
        if s.len() != 32 {
            return None;
        }
        u128::from_str_radix(s, 16).ok().map(Fingerprint)
    }
}

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// Incremental 128-bit FNV-1a hasher. FNV is not cryptographic, but the
/// cache only needs collision resistance across at most a few million
/// honest keys, where 128 bits is far beyond sufficient — and the hash is
/// bit-stable across platforms and Rust versions, unlike `DefaultHasher`.
#[derive(Debug, Clone)]
struct Fnv128 {
    state: u128,
}

impl Fnv128 {
    const OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
    const PRIME: u128 = 0x0000000001000000000000000000013b;

    fn new() -> Self {
        Fnv128 {
            state: Self::OFFSET,
        }
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state = (self.state ^ b as u128).wrapping_mul(Self::PRIME);
        }
    }

    /// Writes a field followed by a separator byte, so adjacent fields
    /// cannot alias (`"ab" + "c"` vs `"a" + "bc"`).
    fn field(&mut self, bytes: &[u8]) {
        self.write(bytes);
        self.write(&[0x1f]);
    }

    fn finish(&self) -> u128 {
        self.state
    }
}

/// Computes scenario fingerprints for one collection run. Construct once
/// per run (the collection-level inputs are folded in eagerly), then call
/// [`Fingerprinter::scenario`] per grid point.
#[derive(Debug, Clone)]
pub struct Fingerprinter {
    base: Fnv128,
}

impl Fingerprinter {
    /// Folds in every collection-level fingerprint input.
    pub fn new(appname: &str, script: &str, experiment_seed: u64, catalog_revision: u64) -> Self {
        let mut base = Fnv128::new();
        base.field(&appmodel::MODEL_VERSION.to_le_bytes());
        base.field(appname.as_bytes());
        base.field(script.as_bytes());
        base.field(&experiment_seed.to_le_bytes());
        base.field(&catalog_revision.to_le_bytes());
        Fingerprinter { base }
    }

    /// Folds the run's capacity class into the fingerprint. Dedicated is
    /// the implicit default and folds nothing, so fingerprints of ordinary
    /// runs are unchanged; spot results can never shadow dedicated ones
    /// (their eviction overhead makes them different measurements).
    pub fn with_capacity(mut self, capacity: cloudsim::Capacity) -> Self {
        if capacity != cloudsim::Capacity::Dedicated {
            self.base.field(capacity.as_str().as_bytes());
        }
        self
    }

    /// Fingerprints one scenario under this run's collection inputs.
    ///
    /// The placement region folds in last, and only when the scenario pins
    /// one: default-region scenarios keep their pre-placement fingerprints,
    /// so caches populated before multi-region grids existed stay warm.
    /// (No aliasing with the appinput pairs is possible — appinputs always
    /// contribute an even number of fields, the region exactly one.)
    pub fn scenario(&self, s: &Scenario) -> Fingerprint {
        let mut h = self.base.clone();
        h.field(s.sku.as_bytes());
        h.field(&s.nnodes.to_le_bytes());
        h.field(&s.ppn.to_le_bytes());
        for (k, v) in &s.appinputs {
            h.field(k.as_bytes());
            h.field(v.as_bytes());
        }
        if let Some(region) = &s.region {
            h.field(region.as_bytes());
        }
        Fingerprint(h.finish())
    }
}

/// Re-stamps a cached point with the identity-only fields of the current
/// run: scenario id, tags, and deployment. These are exactly the
/// [`DataPoint`] fields excluded from the fingerprint, so after this call
/// the point is byte-for-byte what a cold run of `scenario` would produce.
pub fn rehydrate_point(
    mut point: DataPoint,
    scenario: &Scenario,
    tags: &[(String, String)],
    deployment: &str,
) -> DataPoint {
    point.scenario_id = scenario.id;
    point.tags = tags.to_vec();
    point.deployment = deployment.to_string();
    point
}

/// Summary counters of a cache store (the CLI's `cache stats`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheStoreStats {
    /// Entries currently held.
    pub entries: usize,
    /// Backing file, if the cache is persistent.
    pub path: Option<PathBuf>,
    /// True if the backing file was damaged: an unrecognizable store
    /// started cold, a torn binary log salvaged its intact prefix.
    pub recovered: bool,
    /// On-disk format of the backing store.
    pub format: StoreFormat,
}

/// The content-addressed scenario-result store.
///
/// In-memory by default; [`ScenarioCache::open`] binds it to a file.
/// New stores persist as an indexed binary record log
/// ([`StoreFormat::Binary`]): [`ScenarioCache::save`] appends only the
/// records added since the last save and rotates the segment atomically
/// (temp-then-rename, log before index) when compaction is due. Stores
/// holding legacy JSON keep the JSON whole-file format until
/// [`ScenarioCache::migrate_to_binary`] converts them in place.
#[derive(Debug, Default)]
pub struct ScenarioCache {
    entries: HashMap<u128, DataPoint>,
    path: Option<PathBuf>,
    recovered: bool,
    /// True when the in-memory entries differ from the backing file:
    /// [`ScenarioCache::save`] skips the rewrite entirely when clean, so a
    /// warm all-hits run never touches the store. Recovered opens start
    /// dirty — the next save heals the damaged file.
    dirty: bool,
    format: StoreFormat,
    /// Binary mode: log offset of every live fingerprint's record.
    offsets: HashMap<u128, u64>,
    /// Binary mode: byte length of the valid log prefix on disk.
    valid_len: u64,
    /// Binary mode: fingerprints inserted or changed since the last save —
    /// the records the next save appends.
    pending: Vec<u128>,
    /// Binary mode: superseded records in the on-disk log. Once they
    /// outnumber live entries, the next save compacts instead of appending.
    dead: usize,
    /// Binary mode: the next save must rewrite the whole segment (fresh
    /// store, salvaged tail, clear, migration, or compaction due).
    rewrite_needed: bool,
    /// Binary mode: the sidecar index disagreed with the log (or was
    /// missing); the next save rebuilds it even without new entries.
    index_stale: bool,
}

impl ScenarioCache {
    /// An empty, purely in-memory cache (results live for the collector's
    /// lifetime only).
    pub fn in_memory() -> Self {
        ScenarioCache::default()
    }

    /// Opens a file-backed cache, sniffing the on-disk format. A missing
    /// file starts an empty binary store; a file opening with the binary
    /// magic loads the record log (salvaging every intact record if the
    /// tail is torn or the index disagrees — never cold); anything else is
    /// treated as a legacy JSON store, which keeps the JSON format until
    /// migrated. Only an unparsable legacy file starts cold, with the
    /// `recovered` flag set — never an error, since a damaged cache must
    /// cost a re-run, not a failure.
    pub fn open(path: impl AsRef<Path>) -> Self {
        let path = path.as_ref().to_path_buf();
        match std::fs::read(&path) {
            // Missing file: a fresh binary store.
            Err(_) => ScenarioCache {
                path: Some(path),
                rewrite_needed: true,
                ..ScenarioCache::default()
            },
            Ok(bytes) if bytes.starts_with(LOG_MAGIC) => {
                let scan = scan_log(&bytes);
                let index_stale = scan.torn || !index_matches(&index_path(&path), &scan.offsets);
                let dead_heavy = scan.dead > scan.entries.len();
                ScenarioCache {
                    entries: scan.entries,
                    path: Some(path),
                    recovered: scan.torn,
                    // A torn tail, stale index, or dead-heavy log heals on
                    // the next save even without new inserts.
                    dirty: scan.torn || index_stale || dead_heavy,
                    format: StoreFormat::Binary,
                    offsets: scan.offsets,
                    valid_len: scan.valid_len,
                    pending: Vec::new(),
                    dead: scan.dead,
                    rewrite_needed: scan.torn || dead_heavy,
                    index_stale,
                }
            }
            Ok(bytes) => {
                let (entries, recovered) = match std::str::from_utf8(&bytes)
                    .map_err(|_| ())
                    .and_then(|text| parse_store(text).map_err(|_| ()))
                {
                    Ok(entries) => (entries, false),
                    Err(()) => (HashMap::new(), true),
                };
                ScenarioCache {
                    entries,
                    path: Some(path),
                    recovered,
                    dirty: recovered,
                    format: StoreFormat::Json,
                    ..ScenarioCache::default()
                }
            }
        }
    }

    /// Number of cached points.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The backing file, if any.
    pub fn path(&self) -> Option<&Path> {
        self.path.as_deref()
    }

    /// True if a damaged backing file was discarded (unrecognizable store)
    /// or salvaged (torn binary log) on open.
    pub fn recovered(&self) -> bool {
        self.recovered
    }

    /// On-disk format the store persists as.
    pub fn format(&self) -> StoreFormat {
        self.format
    }

    /// Store summary for status displays.
    pub fn stats(&self) -> CacheStoreStats {
        CacheStoreStats {
            entries: self.entries.len(),
            path: self.path.clone(),
            recovered: self.recovered,
            format: self.format,
        }
    }

    /// Looks a fingerprint up, returning a clone of the stored point.
    pub fn lookup(&self, fp: Fingerprint) -> Option<DataPoint> {
        self.entries.get(&fp.0).cloned()
    }

    /// Stores a finished point. Only completed points are cacheable —
    /// failures may be transient (injected faults, quota) and must re-run.
    /// A point identical to the stored one is a no-op that leaves the
    /// store clean, so redundant inserts never force a file rewrite.
    /// Returns whether the store changed.
    pub fn insert(&mut self, fp: Fingerprint, point: &DataPoint) -> bool {
        if point.status != ScenarioStatus::Completed {
            return false;
        }
        if self.entries.get(&fp.0) == Some(point) {
            return false;
        }
        if self.entries.insert(fp.0, point.clone()).is_some() && self.offsets.contains_key(&fp.0) {
            // Superseding an on-disk record leaves it dead in the log; the
            // appended replacement wins on load (last record per key).
            self.dead += 1;
        }
        self.pending.push(fp.0);
        if self.dead > self.entries.len() {
            self.rewrite_needed = true;
        }
        self.dirty = true;
        true
    }

    /// Drops every entry (the CLI's `cache clear`). The backing file is
    /// rewritten empty on the next [`ScenarioCache::save`].
    pub fn clear(&mut self) {
        if !self.entries.is_empty() {
            self.dirty = true;
            self.rewrite_needed = true;
        }
        self.entries.clear();
        self.pending.clear();
    }

    /// Converts a legacy JSON store to the indexed binary format in place
    /// (the CLI's `cache migrate`): the same path re-persists as a binary
    /// record log on the next [`ScenarioCache::save`], plus the sidecar
    /// index. Returns `false` (and changes nothing) when the store is
    /// already binary or purely in-memory.
    pub fn migrate_to_binary(&mut self) -> bool {
        if self.format == StoreFormat::Binary || self.path.is_none() {
            return false;
        }
        self.format = StoreFormat::Binary;
        self.rewrite_needed = true;
        self.dirty = true;
        true
    }

    /// True when the in-memory entries differ from the backing file.
    pub fn is_dirty(&self) -> bool {
        self.dirty
    }

    /// Writes the store to its backing file (no-op for in-memory caches
    /// and for clean stores — an all-hits warm run rewrites nothing).
    ///
    /// Binary stores append only the records inserted since the last save
    /// (O(new entries)); a full segment rotation happens only on the first
    /// save, after `clear`/`migrate`, or when dead records outnumber live
    /// ones. Rotations and legacy-JSON saves go to a sibling temp file
    /// first and rename into place, so a crash mid-save leaves the old
    /// cache intact; the record log is always renamed before the index, so
    /// a crash between the two is caught as an index mismatch on reopen.
    pub fn save(&mut self) -> Result<(), ToolError> {
        let Some(path) = self.path.clone() else {
            return Ok(());
        };
        if !self.dirty {
            return Ok(());
        }
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        match self.format {
            StoreFormat::Json => self.save_json(&path)?,
            StoreFormat::Binary => {
                if self.rewrite_needed || !path.exists() {
                    self.rotate_segment(&path)?;
                } else {
                    self.append_segment(&path)?;
                }
            }
        }
        self.dirty = false;
        Ok(())
    }

    fn save_json(&mut self, path: &Path) -> Result<(), ToolError> {
        let mut keys: Vec<&u128> = self.entries.keys().collect();
        keys.sort_unstable();
        let mut entries = OrderedMap::new();
        for k in keys {
            entries.insert(Fingerprint(*k).to_hex(), point_to_value(&self.entries[k]));
        }
        let mut doc = OrderedMap::new();
        doc.insert("version", Value::Int(STORE_VERSION));
        doc.insert("entries", Value::Map(entries));
        let text = json::to_string_pretty(&Value::Map(doc));
        let tmp = path.with_extension("json.tmp");
        std::fs::write(&tmp, text)?;
        std::fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Full rewrite: fresh log with one record per live entry in
    /// fingerprint order, then a fresh index. The log renames first —
    /// it is the source of truth and a crash before the index rename
    /// leaves a mismatched index, which reopen detects and rebuilds.
    fn rotate_segment(&mut self, path: &Path) -> Result<(), ToolError> {
        let mut keys: Vec<u128> = self.entries.keys().copied().collect();
        keys.sort_unstable();
        let mut log = Vec::with_capacity(LOG_MAGIC.len() + self.entries.len() * 128);
        log.extend_from_slice(LOG_MAGIC);
        self.offsets.clear();
        for fp in &keys {
            self.offsets.insert(*fp, log.len() as u64);
            encode_record(&mut log, *fp, &self.entries[fp]);
        }
        let tmp = path.with_extension("bin.tmp");
        std::fs::write(&tmp, &log)?;
        std::fs::rename(&tmp, path)?;
        self.write_index(path, &keys)?;
        self.valid_len = log.len() as u64;
        self.dead = 0;
        self.pending.clear();
        self.rewrite_needed = false;
        self.index_stale = false;
        self.recovered = false;
        Ok(())
    }

    /// Incremental save: append one record per pending insert to the log
    /// (after truncating any torn tail past `valid_len`), then extend the
    /// index with the matching offsets.
    fn append_segment(&mut self, path: &Path) -> Result<(), ToolError> {
        let mut fresh: Vec<u128> = std::mem::take(&mut self.pending);
        fresh.sort_unstable();
        fresh.dedup();
        let mut log = Vec::new();
        let mut appended = Vec::with_capacity(fresh.len());
        for fp in fresh {
            let Some(point) = self.entries.get(&fp) else {
                continue; // inserted then cleared before a rotation; skip
            };
            self.offsets.insert(fp, self.valid_len + log.len() as u64);
            encode_record(&mut log, fp, point);
            appended.push(fp);
        }
        if !log.is_empty() {
            use std::io::{Seek, SeekFrom, Write};
            let mut file = std::fs::OpenOptions::new().write(true).open(path)?;
            // Truncate any torn tail past the salvage point before appending.
            file.set_len(self.valid_len)?;
            file.seek(SeekFrom::End(0))?;
            file.write_all(&log)?;
            file.flush()?;
            self.valid_len += log.len() as u64;
        }
        if self.index_stale {
            let mut keys: Vec<u128> = self.offsets.keys().copied().collect();
            keys.sort_unstable();
            self.write_index(path, &keys)?;
            self.index_stale = false;
        } else if !appended.is_empty() {
            use std::io::Write;
            let mut buf = Vec::with_capacity(appended.len() * IDX_RECORD);
            for fp in &appended {
                buf.extend_from_slice(&fp.to_be_bytes());
                buf.extend_from_slice(&self.offsets[fp].to_le_bytes());
            }
            let mut file = std::fs::OpenOptions::new()
                .append(true)
                .open(index_path(path))?;
            file.write_all(&buf)?;
            file.flush()?;
        }
        Ok(())
    }

    /// Rewrites the sidecar index from scratch (tmp + rename).
    fn write_index(&self, path: &Path, keys: &[u128]) -> Result<(), ToolError> {
        let mut idx = Vec::with_capacity(IDX_MAGIC.len() + keys.len() * IDX_RECORD);
        idx.extend_from_slice(IDX_MAGIC);
        for fp in keys {
            idx.extend_from_slice(&fp.to_be_bytes());
            idx.extend_from_slice(&self.offsets[fp].to_le_bytes());
        }
        let idx_file = index_path(path);
        let tmp = idx_file.with_extension("idx.tmp");
        std::fs::write(&tmp, &idx)?;
        std::fs::rename(&tmp, &idx_file)?;
        Ok(())
    }
}

/// A scenario cache shared by many sessions — the daemon's cross-tenant
/// dedup point. Clones are handles to the same store; every consult and
/// insert takes the internal lock, so concurrent jobs that ask about the
/// same scenarios pay for one simulation and hit on the rest.
///
/// The collector holds its cache through this type even when unshared (a
/// plain CLI run is simply a share group of one).
#[derive(Debug, Clone, Default)]
pub struct SharedScenarioCache {
    inner: Arc<Mutex<ScenarioCache>>,
}

impl SharedScenarioCache {
    /// Wraps an existing cache into a shareable handle.
    pub fn new(cache: ScenarioCache) -> Self {
        SharedScenarioCache {
            inner: Arc::new(Mutex::new(cache)),
        }
    }

    /// A shareable handle over an empty in-memory cache.
    pub fn in_memory() -> Self {
        SharedScenarioCache::new(ScenarioCache::in_memory())
    }

    /// Opens a file-backed cache (see [`ScenarioCache::open`]) behind a
    /// shareable handle.
    pub fn open(path: impl AsRef<Path>) -> Self {
        SharedScenarioCache::new(ScenarioCache::open(path))
    }

    /// Locks the underlying store for direct access.
    pub fn lock(&self) -> MutexGuard<'_, ScenarioCache> {
        self.inner.lock()
    }

    /// Number of cached points.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// True if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    /// True if a damaged backing file was discarded on open.
    pub fn recovered(&self) -> bool {
        self.lock().recovered()
    }

    /// Store summary for status displays.
    pub fn stats(&self) -> CacheStoreStats {
        self.lock().stats()
    }

    /// Persists the underlying store (see [`ScenarioCache::save`]).
    pub fn save(&self) -> Result<(), ToolError> {
        self.lock().save()
    }
}

fn parse_store(text: &str) -> Result<HashMap<u128, DataPoint>, ToolError> {
    let doc = json::parse(text)?;
    let version = doc
        .get("version")
        .and_then(|v| v.as_int())
        .ok_or_else(|| ToolError::Config("cache store missing version".into()))?;
    if version != STORE_VERSION {
        return Err(ToolError::Config(format!(
            "cache store version {version} != {STORE_VERSION}"
        )));
    }
    let entries = doc
        .get("entries")
        .and_then(|v| v.as_map())
        .ok_or_else(|| ToolError::Config("cache store missing entries".into()))?;
    let mut out = HashMap::with_capacity(entries.len());
    for (key, value) in entries.iter() {
        let fp = Fingerprint::from_hex(key)
            .ok_or_else(|| ToolError::Config(format!("bad cache key '{key}'")))?;
        out.insert(fp.0, value_to_point(value)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::point;

    fn scenario(id: u32, sku: &str, nnodes: u32) -> Scenario {
        Scenario {
            id,
            sku: sku.into(),
            nnodes,
            ppn: 120,
            appinputs: vec![("BOXFACTOR".into(), "8".into())],
            region: None,
            status: ScenarioStatus::Pending,
        }
    }

    fn tempfile(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "hpcadvisor-cache-test-{tag}-{}.json",
            std::process::id()
        ))
    }

    #[test]
    fn fingerprints_are_stable_and_sensitive() {
        let fpr = Fingerprinter::new("lammps", "script", 42, 7);
        let s = scenario(1, "Standard_HB120rs_v3", 4);
        assert_eq!(fpr.scenario(&s), fpr.scenario(&s), "deterministic");
        // Identity-only fields do not move the fingerprint...
        let mut renumbered = s.clone();
        renumbered.id = 99;
        assert_eq!(fpr.scenario(&s), fpr.scenario(&renumbered));
        // ...but every simulation input does.
        let mut other = s.clone();
        other.nnodes = 8;
        assert_ne!(fpr.scenario(&s), fpr.scenario(&other));
        let mut other = s.clone();
        other.appinputs[0].1 = "9".into();
        assert_ne!(fpr.scenario(&s), fpr.scenario(&other));
        for different in [
            Fingerprinter::new("wrf", "script", 42, 7),
            Fingerprinter::new("lammps", "other script", 42, 7),
            Fingerprinter::new("lammps", "script", 43, 7),
            Fingerprinter::new("lammps", "script", 42, 8),
            Fingerprinter::new("lammps", "script", 42, 7).with_capacity(cloudsim::Capacity::Spot),
        ] {
            assert_ne!(fpr.scenario(&s), different.scenario(&s));
        }
        // Dedicated is the implicit default: folding it changes nothing, so
        // pre-capacity cache entries stay addressable.
        let dedicated = Fingerprinter::new("lammps", "script", 42, 7)
            .with_capacity(cloudsim::Capacity::Dedicated);
        assert_eq!(fpr.scenario(&s), dedicated.scenario(&s));
    }

    #[test]
    fn region_folds_only_when_pinned() {
        let fpr = Fingerprinter::new("lammps", "script", 42, 7);
        let s = scenario(1, "Standard_HB120rs_v3", 4);
        // Placement moves the fingerprint: results from different regions
        // are different measurements and must not collide in the cache.
        let mut placed = s.clone();
        placed.region = Some("westeurope".into());
        assert_ne!(fpr.scenario(&s), fpr.scenario(&placed));
        let mut elsewhere = s.clone();
        elsewhere.region = Some("japaneast".into());
        assert_ne!(fpr.scenario(&placed), fpr.scenario(&elsewhere));
        // Back-compat: a region-less scenario folds nothing, so its
        // fingerprint is exactly what pre-placement versions computed —
        // existing caches stay warm.
        let mut unpinned = placed.clone();
        unpinned.region = None;
        assert_eq!(fpr.scenario(&s), fpr.scenario(&unpinned));
        // The region field cannot alias an appinput pair: a region never
        // collides with a scenario whose extra appinput spells the same
        // bytes, because pairs fold two fields and the region folds one.
        let mut inputish = s.clone();
        inputish.appinputs.push(("westeurope".into(), "".into()));
        assert_ne!(fpr.scenario(&placed), fpr.scenario(&inputish));
    }

    #[test]
    fn adjacent_fields_do_not_alias() {
        let a = Fingerprinter::new("ab", "c", 1, 1);
        let b = Fingerprinter::new("a", "bc", 1, 1);
        let s = scenario(1, "Standard_HB120rs_v3", 1);
        assert_ne!(a.scenario(&s), b.scenario(&s));
    }

    #[test]
    fn hex_roundtrip() {
        let fpr = Fingerprinter::new("lammps", "s", 1, 2);
        let fp = fpr.scenario(&scenario(1, "Standard_HC44rs", 2));
        assert_eq!(Fingerprint::from_hex(&fp.to_hex()), Some(fp));
        assert_eq!(fp.to_hex().len(), 32);
        assert_eq!(Fingerprint::from_hex("xyz"), None);
        assert_eq!(Fingerprint::from_hex(""), None);
    }

    #[test]
    fn store_roundtrip_and_policy_gates() {
        let path = tempfile("roundtrip");
        let _ = std::fs::remove_file(&path);
        let fpr = Fingerprinter::new("lammps", "s", 42, 1);
        let s = scenario(3, "Standard_HB120rs_v3", 4);
        let fp = fpr.scenario(&s);
        let mut cache = ScenarioCache::open(&path);
        assert!(cache.is_empty() && !cache.recovered());
        let p = point(3, "lammps", "Standard_HB120rs_v3", 4, 120, 12.5, 0.05);
        assert!(cache.insert(fp, &p));
        cache.save().unwrap();

        let warm = ScenarioCache::open(&path);
        assert_eq!(warm.len(), 1);
        assert_eq!(warm.lookup(fp), Some(p.clone()));
        assert_eq!(
            warm.lookup(fpr.scenario(&scenario(3, "Standard_HC44rs", 4))),
            None
        );

        // Failed points never enter the cache.
        let mut failed = p;
        failed.status = ScenarioStatus::Failed;
        let mut cache = ScenarioCache::in_memory();
        assert!(!cache.insert(fp, &failed));
        assert!(cache.is_empty());
        assert!(cache.save().is_ok(), "in-memory save is a no-op");

        assert!(CachePolicy::ReadWrite.reads() && CachePolicy::ReadWrite.writes());
        assert!(CachePolicy::ReadOnly.reads() && !CachePolicy::ReadOnly.writes());
        assert!(!CachePolicy::Off.reads() && !CachePolicy::Off.writes());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupted_or_truncated_store_recovers_cold() {
        for (tag, garbage) in [
            ("garbage", "this is not json"),
            ("truncated", "{\"version\": 1, \"entries\": {\"00"),
            ("wrong-version", "{\"version\": 999, \"entries\": {}}"),
            ("wrong-shape", "[1, 2, 3]"),
            (
                "bad-point",
                "{\"version\": 1, \"entries\": {\"0123456789abcdef0123456789abcdef\": {\"nope\": 1}}}",
            ),
        ] {
            let path = tempfile(tag);
            std::fs::write(&path, garbage).unwrap();
            let mut cache = ScenarioCache::open(&path);
            assert!(cache.is_empty(), "{tag}: damaged store starts cold");
            assert!(cache.recovered(), "{tag}: recovery is flagged");
            assert!(cache.is_dirty(), "{tag}: recovered stores save eagerly");
            // And saving over the damage produces a loadable store again.
            cache.save().unwrap();
            assert!(!ScenarioCache::open(&path).recovered(), "{tag}");
            let _ = std::fs::remove_file(&path);
        }
    }

    #[test]
    fn clean_stores_skip_the_rewrite() {
        let path = tempfile("dirty");
        let _ = std::fs::remove_file(&path);
        let fpr = Fingerprinter::new("lammps", "s", 42, 1);
        let s = scenario(1, "Standard_HB120rs_v3", 4);
        let fp = fpr.scenario(&s);
        let p = point(1, "lammps", "Standard_HB120rs_v3", 4, 120, 12.5, 0.05);

        let mut cache = ScenarioCache::open(&path);
        assert!(!cache.is_dirty(), "fresh open is clean");
        assert!(cache.insert(fp, &p));
        assert!(cache.is_dirty());
        cache.save().unwrap();
        assert!(!cache.is_dirty(), "save clears the flag");
        let saved_at = std::fs::metadata(&path).unwrap().modified().unwrap();

        // Re-inserting the identical point keeps the store clean: the
        // warm path's post-merge insert loop must not force a rewrite.
        assert!(!cache.insert(fp, &p), "identical insert is a no-op");
        assert!(!cache.is_dirty());
        cache.save().unwrap();
        assert_eq!(
            std::fs::metadata(&path).unwrap().modified().unwrap(),
            saved_at,
            "clean save never touches the file"
        );

        // A genuinely different point under the same key dirties again.
        let mut newer = p.clone();
        newer.exec_time_secs += 1.0;
        assert!(cache.insert(fp, &newer));
        assert!(cache.is_dirty());

        // clear() on a non-empty store schedules an empty rewrite.
        cache.clear();
        assert!(cache.is_dirty());
        cache.save().unwrap();
        assert_eq!(ScenarioCache::open(&path).len(), 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn shared_handles_see_one_store() {
        let shared = SharedScenarioCache::in_memory();
        let clone = shared.clone();
        let fpr = Fingerprinter::new("lammps", "s", 42, 1);
        let s = scenario(1, "Standard_HB120rs_v3", 4);
        let p = point(1, "lammps", "Standard_HB120rs_v3", 4, 120, 12.5, 0.05);
        assert!(shared.lock().insert(fpr.scenario(&s), &p));
        assert_eq!(clone.len(), 1, "clones share the underlying store");
        assert!(!clone.is_empty());
        assert!(!clone.recovered());
        assert_eq!(clone.stats().entries, 1);
        assert!(clone.save().is_ok(), "in-memory save is a no-op");
    }

    #[test]
    fn new_stores_are_binary_with_a_sidecar_index() {
        let path = tempfile("binary-fresh");
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(index_path(&path));
        let fpr = Fingerprinter::new("lammps", "s", 42, 1);
        let mut cache = ScenarioCache::open(&path);
        assert_eq!(cache.format(), StoreFormat::Binary);
        for id in 1..=3u32 {
            let s = scenario(id, "Standard_HB120rs_v3", id);
            let p = point(
                id,
                "lammps",
                "Standard_HB120rs_v3",
                id,
                120,
                10.0 + f64::from(id),
                0.05,
            );
            assert!(cache.insert(fpr.scenario(&s), &p));
        }
        cache.save().unwrap();
        let bytes = std::fs::read(&path).unwrap();
        assert!(bytes.starts_with(LOG_MAGIC), "log leads with the magic");
        let idx = std::fs::read(index_path(&path)).unwrap();
        assert!(idx.starts_with(IDX_MAGIC), "index leads with the magic");
        assert_eq!((idx.len() - IDX_MAGIC.len()) % IDX_RECORD, 0);
        assert_eq!((idx.len() - IDX_MAGIC.len()) / IDX_RECORD, 3);

        let warm = ScenarioCache::open(&path);
        assert_eq!(warm.len(), 3);
        assert!(!warm.recovered());
        assert!(!warm.is_dirty(), "clean binary open stays clean");
        assert_eq!(warm.stats().format, StoreFormat::Binary);
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(index_path(&path));
    }

    #[test]
    fn binary_saves_append_instead_of_rewriting() {
        let path = tempfile("binary-append");
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(index_path(&path));
        let fpr = Fingerprinter::new("lammps", "s", 42, 1);
        let mut cache = ScenarioCache::open(&path);
        let s1 = scenario(1, "Standard_HB120rs_v3", 2);
        let p1 = point(1, "lammps", "Standard_HB120rs_v3", 2, 120, 11.0, 0.05);
        cache.insert(fpr.scenario(&s1), &p1);
        cache.save().unwrap();
        let before = std::fs::read(&path).unwrap();

        let s2 = scenario(2, "Standard_HC44rs", 4);
        let p2 = point(2, "lammps", "Standard_HC44rs", 4, 44, 14.0, 0.03);
        cache.insert(fpr.scenario(&s2), &p2);
        cache.save().unwrap();
        let after = std::fs::read(&path).unwrap();
        assert!(after.len() > before.len());
        assert_eq!(
            &after[..before.len()],
            &before[..],
            "old log bytes untouched"
        );

        let warm = ScenarioCache::open(&path);
        assert_eq!(warm.len(), 2);
        assert_eq!(warm.lookup(fpr.scenario(&s2)), Some(p2));
        assert!(!warm.is_dirty(), "appended index matches the log");
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(index_path(&path));
    }

    #[test]
    fn torn_log_tail_salvages_intact_records() {
        let path = tempfile("binary-torn");
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(index_path(&path));
        let fpr = Fingerprinter::new("lammps", "s", 42, 1);
        let mut cache = ScenarioCache::open(&path);
        let mut fps = Vec::new();
        for id in 1..=3u32 {
            let s = scenario(id, "Standard_HB120rs_v3", id);
            let p = point(
                id,
                "lammps",
                "Standard_HB120rs_v3",
                id,
                120,
                10.0 + f64::from(id),
                0.05,
            );
            fps.push((fpr.scenario(&s), p.clone()));
            cache.insert(fpr.scenario(&s), &p);
        }
        cache.save().unwrap();

        // Tear the final record mid-write: drop the last 5 bytes.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();

        let mut salvaged = ScenarioCache::open(&path);
        assert_eq!(salvaged.len(), 2, "intact prefix survives, not a cold run");
        assert!(salvaged.recovered(), "the torn tail is flagged");
        assert!(salvaged.is_dirty(), "salvage heals on the next save");
        // Rotation lays records out in fingerprint order; the torn record
        // is the highest fingerprint, the other two survive.
        fps.sort_by_key(|(fp, _)| *fp);
        for (fp, p) in &fps[..2] {
            assert_eq!(salvaged.lookup(*fp), Some(p.clone()));
        }
        salvaged.save().unwrap();
        let healed = ScenarioCache::open(&path);
        assert_eq!(healed.len(), 2);
        assert!(!healed.recovered() && !healed.is_dirty());
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(index_path(&path));
    }

    #[test]
    fn damaged_or_missing_index_rebuilds_from_the_log() {
        let path = tempfile("binary-idx");
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(index_path(&path));
        let fpr = Fingerprinter::new("lammps", "s", 42, 1);
        let s = scenario(1, "Standard_HB120rs_v3", 2);
        let p = point(1, "lammps", "Standard_HB120rs_v3", 2, 120, 11.0, 0.05);
        let fp = fpr.scenario(&s);
        let mut cache = ScenarioCache::open(&path);
        cache.insert(fp, &p);
        cache.save().unwrap();

        for damage in ["missing", "garbage", "stale"] {
            match damage {
                "missing" => {
                    let _ = std::fs::remove_file(index_path(&path));
                }
                "garbage" => std::fs::write(index_path(&path), b"not an index").unwrap(),
                _ => {
                    // Valid framing, wrong offset.
                    let mut idx = Vec::new();
                    idx.extend_from_slice(IDX_MAGIC);
                    idx.extend_from_slice(&fp.0.to_be_bytes());
                    idx.extend_from_slice(&999u64.to_le_bytes());
                    std::fs::write(index_path(&path), &idx).unwrap();
                }
            }
            let mut opened = ScenarioCache::open(&path);
            assert_eq!(opened.len(), 1, "{damage}: the log is the truth");
            assert!(!opened.recovered(), "{damage}: no data was lost");
            assert!(
                opened.is_dirty(),
                "{damage}: the index rebuild is scheduled"
            );
            assert_eq!(opened.lookup(fp), Some(p.clone()), "{damage}");
            opened.save().unwrap();
            assert!(!ScenarioCache::open(&path).is_dirty(), "{damage}: rebuilt");
        }
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(index_path(&path));
    }

    #[test]
    fn dead_heavy_logs_compact_on_save() {
        let path = tempfile("binary-compact");
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(index_path(&path));
        let fpr = Fingerprinter::new("lammps", "s", 42, 1);
        let s = scenario(1, "Standard_HB120rs_v3", 2);
        let fp = fpr.scenario(&s);
        // Hand-write a log where the same key was superseded twice: two
        // dead records against one live one.
        let mut log = Vec::new();
        log.extend_from_slice(LOG_MAGIC);
        let mut last = point(1, "lammps", "Standard_HB120rs_v3", 2, 120, 11.0, 0.05);
        for round in 0..3u32 {
            last = point(1, "lammps", "Standard_HB120rs_v3", 2, 120, 11.0, 0.05);
            last.exec_time_secs += f64::from(round);
            encode_record(&mut log, fp.0, &last);
        }
        std::fs::write(&path, &log).unwrap();

        let mut cache = ScenarioCache::open(&path);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.lookup(fp), Some(last), "the last record wins");
        assert!(!cache.recovered(), "dead records are not data loss");
        assert!(cache.is_dirty(), "2 dead vs 1 live schedules compaction");
        cache.save().unwrap();
        let compacted = std::fs::read(&path).unwrap();
        assert!(
            compacted.len() < log.len(),
            "rotation drops the dead records"
        );
        let reopened = ScenarioCache::open(&path);
        assert_eq!(reopened.len(), 1);
        assert!(!reopened.is_dirty());
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(index_path(&path));
    }

    #[test]
    fn legacy_json_reads_and_migrates_byte_identically() {
        let path = tempfile("legacy-migrate");
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(index_path(&path));
        let fpr = Fingerprinter::new("lammps", "s", 42, 1);
        let mut fps = Vec::new();
        // Hand-write a legacy JSON store, the format older releases saved.
        let mut entries = OrderedMap::new();
        for id in 1..=3u32 {
            let s = scenario(id, "Standard_HB120rs_v3", id);
            let p = point(
                id,
                "lammps",
                "Standard_HB120rs_v3",
                id,
                120,
                10.0 + f64::from(id),
                0.05,
            );
            let fp = fpr.scenario(&s);
            entries.insert(fp.to_hex(), point_to_value(&p));
            fps.push((fp, p));
        }
        let mut doc = OrderedMap::new();
        doc.insert("version", Value::Int(STORE_VERSION));
        doc.insert("entries", Value::Map(entries));
        std::fs::write(&path, json::to_string_pretty(&Value::Map(doc))).unwrap();

        // Transparent read: the store opens as JSON and keeps saving JSON.
        let mut cache = ScenarioCache::open(&path);
        assert_eq!(cache.format(), StoreFormat::Json);
        assert_eq!(cache.len(), 3);
        assert!(!cache.recovered());
        let s4 = scenario(4, "Standard_HC44rs", 4);
        let p4 = point(4, "lammps", "Standard_HC44rs", 4, 44, 14.0, 0.03);
        cache.insert(fpr.scenario(&s4), &p4);
        cache.save().unwrap();
        assert!(
            std::fs::read(&path).unwrap().starts_with(b"{"),
            "unmigrated stores stay JSON"
        );

        // Migration converts in place; every point survives bit-for-bit.
        let mut cache = ScenarioCache::open(&path);
        assert!(cache.migrate_to_binary());
        assert!(!cache.migrate_to_binary(), "second migrate is a no-op");
        cache.save().unwrap();
        assert!(std::fs::read(&path).unwrap().starts_with(LOG_MAGIC));
        let migrated = ScenarioCache::open(&path);
        assert_eq!(migrated.format(), StoreFormat::Binary);
        assert_eq!(migrated.len(), 4);
        for (fp, p) in &fps {
            assert_eq!(migrated.lookup(*fp), Some(p.clone()));
        }
        assert_eq!(migrated.lookup(fpr.scenario(&s4)), Some(p4));
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(index_path(&path));
    }

    #[test]
    fn in_memory_stores_never_migrate() {
        let mut cache = ScenarioCache::in_memory();
        assert!(!cache.migrate_to_binary(), "nothing to persist");
    }

    #[test]
    fn rehydrate_restamps_identity_fields_only() {
        let mut stored = point(1, "lammps", "Standard_HB120rs_v3", 4, 120, 9.0, 0.04);
        stored.tags = vec![("version".into(), "old".into())];
        stored.deployment = "oldrg001".into();
        let s = scenario(42, "Standard_HB120rs_v3", 4);
        let tags = vec![("version".into(), "v2".into())];
        let out = rehydrate_point(stored.clone(), &s, &tags, "newrg001");
        assert_eq!(out.scenario_id, 42);
        assert_eq!(out.tags, tags);
        assert_eq!(out.deployment, "newrg001");
        assert_eq!(out.exec_time_secs, stored.exec_time_secs);
        assert_eq!(out.metrics, stored.metrics);
    }
}
