//! Durable daemon state: an append-only JSONL service journal.
//!
//! The PR 6 daemon kept tenant spend and the in-flight job manifest only
//! in memory, so a crash forgot who had spent what and silently dropped
//! every admitted job. This module gives [`crate::service::AdvisorService`]
//! the same crash-safety discipline the collection layer already has in
//! [`crate::journal`]: one compact JSON record per line, appended and
//! flushed as state changes, with torn-tail salvage on reopen — a killed
//! daemon leaves a readable prefix, and the next start replays it.
//!
//! Three record kinds cover the whole admission lifecycle:
//!
//! * `spend` — a tenant was charged some newly-provisioned dollars when a
//!   job finished. Replay sums these per tenant, so budgets survive
//!   restarts and a resubmitted all-hits run cannot be double-billed.
//! * `admitted` — a request passed admission: its idempotency key, tenant,
//!   seed, worker count and the full config (as the canonical YAML from
//!   [`crate::config::UserConfig::to_yaml`]).
//! * `done` — the job reached a terminal state (finished, failed, or was
//!   deliberately abandoned). An `admitted` with no matching `done` is an
//!   interrupted job the restarted daemon must re-serve.
//!
//! Compaction mirrors [`crate::journal::RunJournal`]: the first append
//! after detecting damage — or after the done/spend history has grown well
//! past the live state — rewrites the file from the replayed state (one
//! cumulative `spend` per tenant plus the still-pending `admitted`
//! records), so the journal stays bounded by live state, not daemon
//! uptime.

use crate::cache::CachePolicy;
use hpcadvisor_formats::{json, OrderedMap, Value};
use std::collections::HashMap;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Version of the service-journal line format. A header with a different
/// version discards the file wholesale (cold start, `recovered` set).
const SERVICE_JOURNAL_VERSION: i64 = 1;

/// An admitted-but-unfinished request, exactly as needed to re-admit it.
#[derive(Debug, Clone, PartialEq)]
pub struct PendingJob {
    /// Idempotency key the client (or the service) assigned the request.
    pub key: String,
    /// Tenant the request is accounted against.
    pub tenant: String,
    /// Experiment seed.
    pub seed: u64,
    /// Worker threads for the job's own collection.
    pub workers: usize,
    /// The full configuration, serialized with `UserConfig::to_yaml`.
    pub config_yaml: String,
    /// Placement regions of the job's grid, denormalized from the config
    /// so an operator reading the journal (or a restarted daemon deciding
    /// re-admission order) sees the placement dimension without parsing
    /// YAML. Empty for single-region jobs, and then omitted from the
    /// journal line so pre-placement journals replay byte-identically.
    pub regions: Vec<String>,
    /// Cache-policy override, if the request carried one.
    pub cache_policy: Option<CachePolicy>,
}

/// One journaled state change.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceRecord {
    /// `tenant` was charged `dollars` of newly-provisioned pool time.
    Spend {
        /// Tenant charged.
        tenant: String,
        /// Newly provisioned dollars (never negative).
        dollars: f64,
    },
    /// A request passed admission and entered the queue.
    Admitted(PendingJob),
    /// The job with this key reached a terminal state.
    Done {
        /// Idempotency key of the finished job.
        key: String,
    },
}

fn parse_cache_policy(s: &str) -> Option<CachePolicy> {
    match s {
        "read-write" => Some(CachePolicy::ReadWrite),
        "read-only" => Some(CachePolicy::ReadOnly),
        "off" => Some(CachePolicy::Off),
        _ => None,
    }
}

fn record_to_line(r: &ServiceRecord) -> String {
    let mut m = OrderedMap::new();
    match r {
        ServiceRecord::Spend { tenant, dollars } => {
            m.insert("rec", Value::str("spend"));
            m.insert("tenant", Value::str(tenant));
            m.insert("dollars", Value::Float(*dollars));
        }
        ServiceRecord::Admitted(job) => {
            m.insert("rec", Value::str("admitted"));
            m.insert("key", Value::str(&job.key));
            m.insert("tenant", Value::str(&job.tenant));
            m.insert("seed", Value::Int(job.seed as i64));
            m.insert("workers", Value::Int(job.workers as i64));
            m.insert("config_yaml", Value::str(&job.config_yaml));
            if !job.regions.is_empty() {
                m.insert(
                    "regions",
                    Value::Seq(job.regions.iter().map(Value::str).collect()),
                );
            }
            if let Some(policy) = job.cache_policy {
                m.insert("cache_policy", Value::str(policy.as_str()));
            }
        }
        ServiceRecord::Done { key } => {
            m.insert("rec", Value::str("done"));
            m.insert("key", Value::str(key));
        }
    }
    json::to_string(&Value::Map(m))
}

fn line_to_record(line: &str) -> Option<ServiceRecord> {
    let v = json::parse(line).ok()?;
    match v.get("rec")?.as_str()? {
        "spend" => Some(ServiceRecord::Spend {
            tenant: v.get("tenant")?.as_str()?.to_string(),
            dollars: v.get("dollars")?.as_f64()?,
        }),
        "admitted" => Some(ServiceRecord::Admitted(PendingJob {
            key: v.get("key")?.as_str()?.to_string(),
            tenant: v.get("tenant")?.as_str()?.to_string(),
            seed: v.get("seed")?.as_int()? as u64,
            workers: v.get("workers")?.as_int()?.max(1) as usize,
            config_yaml: v.get("config_yaml")?.as_str()?.to_string(),
            regions: match v.get("regions") {
                Some(Value::Seq(items)) => items
                    .iter()
                    .map(|r| Some(r.as_str()?.to_string()))
                    .collect::<Option<Vec<_>>>()?,
                _ => Vec::new(),
            },
            cache_policy: match v.get("cache_policy") {
                Some(p) => Some(parse_cache_policy(p.as_str()?)?),
                None => None,
            },
        })),
        "done" => Some(ServiceRecord::Done {
            key: v.get("key")?.as_str()?.to_string(),
        }),
        _ => None,
    }
}

/// The replayed view of the journal: what a restarted daemon needs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServiceState {
    /// tenant → cumulative newly-provisioned dollars across all restarts.
    pub spent: HashMap<String, f64>,
    /// Admitted jobs with no terminal record, in admission order (one per
    /// key — a re-admission of the same key replaces the earlier entry).
    pub pending: Vec<PendingJob>,
}

/// The append-only service journal (see the module docs).
#[derive(Debug, Default)]
pub struct ServiceJournal {
    path: Option<PathBuf>,
    state: ServiceState,
    /// Raw record count since the last rewrite — the compaction trigger.
    raw_records: usize,
    recovered: bool,
    /// True once the backing file is known to start with a valid header.
    initialized: bool,
}

impl ServiceJournal {
    /// A purely in-memory journal (nothing persists; for tests).
    pub fn in_memory() -> Self {
        ServiceJournal::default()
    }

    /// Opens a file-backed journal, replaying whatever prefix survives. A
    /// missing file starts empty; a damaged header starts empty with
    /// `recovered` set; a torn tail line — the normal shape of a crash
    /// mid-append — is dropped alone and the next append compacts.
    pub fn open(path: impl AsRef<Path>) -> Self {
        let path = path.as_ref().to_path_buf();
        let mut journal = ServiceJournal {
            path: Some(path.clone()),
            ..ServiceJournal::default()
        };
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(_) => return journal,
        };
        let mut lines = text.lines();
        let header_ok = lines.next().is_some_and(|h| {
            json::parse(h).ok().and_then(|v| v.get("version")?.as_int())
                == Some(SERVICE_JOURNAL_VERSION)
        });
        if !header_ok {
            journal.recovered = true;
            return journal;
        }
        journal.initialized = true;
        for line in lines {
            if line.trim().is_empty() {
                continue;
            }
            match line_to_record(line) {
                Some(record) => {
                    journal.raw_records += 1;
                    journal.apply(record);
                }
                None => journal.recovered = true,
            }
        }
        if journal.recovered {
            // The file may end mid-line; force the next append to rewrite
            // it from the replayed state.
            journal.initialized = false;
        }
        journal
    }

    fn apply(&mut self, record: ServiceRecord) {
        match record {
            ServiceRecord::Spend { tenant, dollars } => {
                *self.state.spent.entry(tenant).or_insert(0.0) += dollars;
            }
            ServiceRecord::Admitted(job) => {
                self.state.pending.retain(|p| p.key != job.key);
                self.state.pending.push(job);
            }
            ServiceRecord::Done { key } => {
                self.state.pending.retain(|p| p.key != key);
            }
        }
    }

    /// The records a compacted rewrite preserves: cumulative spend per
    /// tenant (sorted for deterministic files) plus pending admissions.
    fn live_records(&self) -> Vec<ServiceRecord> {
        let mut tenants: Vec<(&String, &f64)> = self.state.spent.iter().collect();
        tenants.sort_by(|a, b| a.0.cmp(b.0));
        let mut records: Vec<ServiceRecord> = tenants
            .into_iter()
            .map(|(tenant, dollars)| ServiceRecord::Spend {
                tenant: tenant.clone(),
                dollars: *dollars,
            })
            .collect();
        records.extend(
            self.state
                .pending
                .iter()
                .cloned()
                .map(ServiceRecord::Admitted),
        );
        records
    }

    /// True when the done/spend history has outgrown the live state enough
    /// that a rewrite pays for itself.
    fn wants_compaction(&self) -> bool {
        let live = self.state.spent.len() + self.state.pending.len();
        self.raw_records > 2 * live + 16
    }

    /// Appends one record, flushing the line to disk before returning.
    /// IO errors are swallowed: journalling is best-effort and must never
    /// fail the service it protects.
    pub fn append(&mut self, record: ServiceRecord) {
        self.apply(record.clone());
        self.raw_records += 1;
        if let Some(path) = &self.path {
            let rewrite = !self.initialized || self.wants_compaction();
            let write = || -> std::io::Result<()> {
                if let Some(dir) = path.parent() {
                    std::fs::create_dir_all(dir)?;
                }
                if rewrite {
                    // (Re)create with header + the compacted live state
                    // (which already includes `record`).
                    let mut f = std::fs::File::create(path)?;
                    writeln!(f, "{{\"version\": {SERVICE_JOURNAL_VERSION}}}")?;
                    for r in self.live_records() {
                        writeln!(f, "{}", record_to_line(&r))?;
                    }
                    f.flush()
                } else {
                    let mut f = std::fs::OpenOptions::new().append(true).open(path)?;
                    writeln!(f, "{}", record_to_line(&record))?;
                    f.flush()
                }
            };
            if write().is_ok() {
                self.initialized = true;
                if rewrite {
                    self.raw_records = self.live_records().len();
                }
            }
        }
    }

    /// The replayed state: cumulative spend and interrupted jobs.
    pub fn state(&self) -> &ServiceState {
        &self.state
    }

    /// True if damage was detected (and skipped) while opening.
    pub fn recovered(&self) -> bool {
        self.recovered
    }

    /// The backing file, if any.
    pub fn path(&self) -> Option<&Path> {
        self.path.as_deref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::UserConfig;

    fn tempfile(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "hpcadvisor-service-journal-{tag}-{}.jsonl",
            std::process::id()
        ))
    }

    fn admitted(key: &str, tenant: &str) -> ServiceRecord {
        ServiceRecord::Admitted(PendingJob {
            key: key.into(),
            tenant: tenant.into(),
            seed: 42,
            workers: 2,
            config_yaml: UserConfig::example_lammps_small().to_yaml(),
            regions: Vec::new(),
            cache_policy: Some(CachePolicy::ReadWrite),
        })
    }

    #[test]
    fn placed_jobs_journal_their_regions() {
        let job = PendingJob {
            key: "k".into(),
            tenant: "acme".into(),
            seed: 7,
            workers: 4,
            config_yaml: UserConfig::example_lammps_small().to_yaml(),
            regions: vec!["southcentralus".into(), "westeurope".into()],
            cache_policy: None,
        };
        let line = record_to_line(&ServiceRecord::Admitted(job.clone()));
        assert!(line.contains("\"regions\""), "{line}");
        assert_eq!(line_to_record(&line), Some(ServiceRecord::Admitted(job)));
        // Single-region jobs keep the pre-placement line shape.
        let legacy = record_to_line(&admitted("k2", "acme"));
        assert!(!legacy.contains("regions"), "{legacy}");
    }

    #[test]
    fn records_roundtrip_through_lines() {
        for record in [
            ServiceRecord::Spend {
                tenant: "acme".into(),
                dollars: 12.5,
            },
            admitted("k1", "acme"),
            ServiceRecord::Done { key: "k1".into() },
        ] {
            assert_eq!(line_to_record(&record_to_line(&record)), Some(record));
        }
        assert!(line_to_record("not json").is_none());
        assert!(line_to_record("{\"rec\": \"mystery\"}").is_none());
    }

    #[test]
    fn replay_restores_spend_and_pending_jobs() {
        let path = tempfile("replay");
        let _ = std::fs::remove_file(&path);
        let mut journal = ServiceJournal::open(&path);
        journal.append(admitted("k1", "acme"));
        journal.append(admitted("k2", "acme"));
        journal.append(ServiceRecord::Spend {
            tenant: "acme".into(),
            dollars: 3.0,
        });
        journal.append(ServiceRecord::Done { key: "k1".into() });
        journal.append(ServiceRecord::Spend {
            tenant: "acme".into(),
            dollars: 2.0,
        });

        let back = ServiceJournal::open(&path);
        assert!(!back.recovered());
        let state = back.state();
        assert_eq!(state.spent.get("acme"), Some(&5.0));
        assert_eq!(state.pending.len(), 1, "k1 done, k2 interrupted");
        assert_eq!(state.pending[0].key, "k2");
        let config = UserConfig::from_yaml(&state.pending[0].config_yaml).unwrap();
        assert_eq!(config, UserConfig::example_lammps_small());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_line_drops_alone_and_heals() {
        let path = tempfile("torn");
        let _ = std::fs::remove_file(&path);
        let mut journal = ServiceJournal::open(&path);
        journal.append(admitted("k1", "acme"));
        journal.append(admitted("k2", "bob"));
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() - 15]).unwrap();

        let mut back = ServiceJournal::open(&path);
        assert!(back.recovered(), "damage detected");
        assert_eq!(back.state().pending.len(), 1, "only the torn line lost");
        back.append(ServiceRecord::Done { key: "k1".into() });
        let healed = ServiceJournal::open(&path);
        assert!(!healed.recovered(), "append rewrote a clean file");
        assert!(healed.state().pending.is_empty());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn damaged_header_starts_cold() {
        let path = tempfile("header");
        std::fs::write(&path, "garbage\n").unwrap();
        let journal = ServiceJournal::open(&path);
        assert!(journal.recovered());
        assert_eq!(journal.state(), &ServiceState::default());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn compaction_bounds_the_file_by_live_state() {
        let path = tempfile("compact");
        let _ = std::fs::remove_file(&path);
        let mut journal = ServiceJournal::open(&path);
        // Churn many short-lived jobs for one tenant.
        for i in 0..60 {
            journal.append(admitted(&format!("k{i}"), "acme"));
            journal.append(ServiceRecord::Spend {
                tenant: "acme".into(),
                dollars: 1.0,
            });
            journal.append(ServiceRecord::Done {
                key: format!("k{i}"),
            });
        }
        let lines = std::fs::read_to_string(&path).unwrap().lines().count();
        assert!(lines < 40, "history compacted away, got {lines} lines");
        let back = ServiceJournal::open(&path);
        assert_eq!(back.state().spent.get("acme"), Some(&60.0));
        assert!(back.state().pending.is_empty());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn in_memory_journal_tracks_state_without_files() {
        let mut journal = ServiceJournal::in_memory();
        journal.append(admitted("k", "t"));
        assert!(journal.path().is_none());
        assert_eq!(journal.state().pending.len(), 1);
    }
}
