//! The data-collection loop — the paper's Algorithm 1.
//!
//! ```text
//! previousVMType ← ∅
//! foreach task in tasks do
//!     if previousVMType ≠ task.vmtype then
//!         if pool exists then resize pool to zero or delete pool
//!         create_setup_task(task)
//!         pool ← resize_pool(task.vmtype, task.nnodes)
//!     create_compute_task(task); execute_compute_task(task)
//!     store_task_data(task); update_task_status(task, completed)
//!     previousVMType ← task.vmtype
//! if pool then resize pool to zero or delete pool
//! ```
//!
//! Each compute task runs the user's `hpcadvisor_run` function in a fresh
//! `taskshell` interpreter over the deployment's shared filesystem, with the
//! Table I environment variables injected. `HPCADVISORVAR key=value` lines
//! printed by the script are scraped into the dataset, exactly as the paper
//! describes.
//!
//! The loop itself lives in `ShardRun`, which executes one ordered slice of
//! scenarios against one [`BatchService`]. The serial [`Collector::collect`]
//! path runs a single shard over the collector's own service; the parallel
//! path ([`crate::collect::CollectPlan`]) runs one shard per VM type, each on
//! its own service, and merges the outputs in scenario order.

use crate::appscript;
use crate::cache::{
    rehydrate_point, CachePolicy, Fingerprint, Fingerprinter, ScenarioCache, SharedScenarioCache,
};
use crate::config::UserConfig;
use crate::dataset::{DataPoint, Dataset};
use crate::error::ToolError;
use crate::journal::{JournalEntry, RunJournal};
use crate::placement::PlacementPolicy;
use crate::retry::{classify_batch, FaultClass, RetryPolicy};
use crate::scenario::{Scenario, ScenarioStatus};
use appmodel::AppRegistry;
use batchsim::{
    BatchService, FaultKind, SharedProvider, TaskContext, TaskKind, TaskResult, TaskState,
};
use cloudsim::Capacity;
use parking_lot::Mutex;
use simtime::SimDuration;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use taskshell::{ExecutionEnv, Interpreter, UrlStore, Vfs};
use telemetry::Value;

/// Options for a collection run.
///
/// Construct with [`CollectorOptions::builder`]; the struct is
/// `#[non_exhaustive]` so new knobs can be added without breaking callers.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct CollectorOptions {
    /// Seed for the deterministic run-to-run noise.
    pub experiment_seed: u64,
    /// Delete pools after use instead of resizing them to zero (the paper's
    /// "resize pool to zero or delete pool, depending on user preference").
    pub delete_pools: bool,
    /// Re-run scenarios already marked failed.
    pub rerun_failed: bool,
    /// Retry schedule for transient faults (pool allocation, resize, task
    /// submission). The default retries up to 3 attempts with exponential
    /// backoff on the simulated clock; [`RetryPolicy::none`] disables it.
    pub retry: RetryPolicy,
    /// Capacity class the sweep provisions pools with. Spot pools bill at
    /// the SKU's discounted rate but can lose their nodes to eviction
    /// mid-task; the collector requeues evicted scenarios and escalates to
    /// dedicated capacity after [`CollectorOptions::escalate_after`]
    /// evictions.
    pub capacity: Capacity,
    /// Evictions one scenario tolerates before its pool is escalated to
    /// dedicated capacity for the remainder of that scenario.
    pub escalate_after: u32,
    /// Per-scenario wall-clock deadline in simulated seconds. A scenario
    /// whose retry loop (attempt durations plus backoff) exceeds it is
    /// killed into [`ScenarioStatus::TimedOut`] instead of retrying
    /// forever. `None` disables the watchdog.
    pub deadline_secs: Option<f64>,
    /// Sweep-level cost budget in dollars. Once the provider's billed spend
    /// reaches it, every remaining scenario is skipped (journaled, so a
    /// resume honors the stop) instead of executed. `None` disables the
    /// circuit breaker.
    pub budget_dollars: Option<f64>,
    /// Region-fault tolerance for multi-region sweeps: transient
    /// provisioning faults a `(SKU, region)` pair absorbs before the
    /// region is marked down for that SKU and later scenarios fail over
    /// without touching the cloud. Quota exhaustion marks down
    /// immediately. Irrelevant (and ignored) when the run has no
    /// `regions` list.
    pub region_markdown_after: u32,
}

impl Default for CollectorOptions {
    fn default() -> Self {
        CollectorOptions {
            experiment_seed: 42,
            delete_pools: false,
            rerun_failed: false,
            retry: RetryPolicy::default(),
            capacity: Capacity::Dedicated,
            escalate_after: 2,
            deadline_secs: None,
            budget_dollars: None,
            region_markdown_after: 2,
        }
    }
}

impl CollectorOptions {
    /// Starts a builder with the default options.
    pub fn builder() -> CollectorOptionsBuilder {
        CollectorOptionsBuilder {
            options: CollectorOptions::default(),
        }
    }
}

/// Builder for [`CollectorOptions`].
#[derive(Debug, Clone)]
pub struct CollectorOptionsBuilder {
    options: CollectorOptions,
}

impl CollectorOptionsBuilder {
    /// Sets the experiment noise seed.
    pub fn experiment_seed(mut self, seed: u64) -> Self {
        self.options.experiment_seed = seed;
        self
    }

    /// Deletes pools after use instead of resizing them to zero.
    pub fn delete_pools(mut self, yes: bool) -> Self {
        self.options.delete_pools = yes;
        self
    }

    /// Re-runs scenarios already marked failed.
    pub fn rerun_failed(mut self, yes: bool) -> Self {
        self.options.rerun_failed = yes;
        self
    }

    /// Sets the retry schedule for transient faults.
    pub fn retry(mut self, policy: RetryPolicy) -> Self {
        self.options.retry = policy;
        self
    }

    /// Provisions pools with the given capacity class (spot or dedicated).
    pub fn capacity(mut self, capacity: Capacity) -> Self {
        self.options.capacity = capacity;
        self
    }

    /// Evictions one scenario tolerates before escalating to dedicated.
    pub fn escalate_after(mut self, evictions: u32) -> Self {
        self.options.escalate_after = evictions;
        self
    }

    /// Sets the per-scenario wall-clock deadline (simulated seconds).
    pub fn deadline_secs(mut self, secs: Option<f64>) -> Self {
        self.options.deadline_secs = secs;
        self
    }

    /// Sets the sweep-level cost budget in dollars.
    pub fn budget_dollars(mut self, dollars: Option<f64>) -> Self {
        self.options.budget_dollars = dollars;
        self
    }

    /// Transient region faults tolerated before a `(SKU, region)` pair is
    /// marked down and failover stops retrying it.
    pub fn region_markdown_after(mut self, faults: u32) -> Self {
        self.options.region_markdown_after = faults;
        self
    }

    /// Finishes the builder.
    pub fn build(self) -> CollectorOptions {
        self.options
    }
}

/// Everything a scenario executor needs that is independent of which
/// [`BatchService`] and filesystem it runs against. Shared by reference
/// across parallel shard workers, so it holds no mutable state.
#[derive(Clone)]
pub(crate) struct ExecContext {
    pub(crate) provider: SharedProvider,
    pub(crate) config: UserConfig,
    pub(crate) script: String,
    pub(crate) urls: UrlStore,
    pub(crate) deployment: String,
    pub(crate) registry: Arc<AppRegistry>,
    pub(crate) options: CollectorOptions,
}

impl ExecContext {
    pub(crate) fn should_run(&self, s: &Scenario) -> bool {
        match s.status {
            ScenarioStatus::Pending => true,
            ScenarioStatus::Failed => self.options.rerun_failed,
            // Timed-out scenarios burned their wall-clock budget once
            // already; only an explicit rerun request tries again.
            ScenarioStatus::TimedOut => self.options.rerun_failed,
            ScenarioStatus::Completed => false,
            // Skipped scenarios never executed — always worth another try.
            ScenarioStatus::Skipped => true,
        }
    }

    fn app_dir(&self) -> String {
        format!("/share/{}/apps/{}", self.deployment, self.config.appname)
    }

    pub(crate) fn failed_point(&self, scenario: &Scenario, reason: &str) -> DataPoint {
        DataPoint {
            scenario_id: scenario.id,
            appname: self.config.appname.clone(),
            sku: scenario.sku.clone(),
            nnodes: scenario.nnodes,
            ppn: scenario.ppn,
            appinputs: scenario.appinputs.clone(),
            exec_time_secs: 0.0,
            task_secs: 0.0,
            cost_dollars: 0.0,
            status: ScenarioStatus::Failed,
            capacity: self.options.capacity,
            region: scenario.region.clone(),
            metrics: vec![("FAILREASON".into(), reason.to_string())],
            infra: Vec::new(),
            tags: self.config.tags.clone(),
            deployment: self.deployment.clone(),
        }
    }

    /// A point for a scenario killed by the deadline watchdog. Terminal
    /// like a failure — the evidence is "ran out of wall-clock budget", so
    /// the next collect only re-attempts it under `rerun_failed`.
    pub(crate) fn timed_out_point(&self, scenario: &Scenario, reason: &str) -> DataPoint {
        DataPoint {
            scenario_id: scenario.id,
            appname: self.config.appname.clone(),
            sku: scenario.sku.clone(),
            nnodes: scenario.nnodes,
            ppn: scenario.ppn,
            appinputs: scenario.appinputs.clone(),
            exec_time_secs: 0.0,
            task_secs: 0.0,
            cost_dollars: 0.0,
            status: ScenarioStatus::TimedOut,
            capacity: self.options.capacity,
            region: scenario.region.clone(),
            metrics: vec![("TIMEOUTREASON".into(), reason.to_string())],
            infra: Vec::new(),
            tags: self.config.tags.clone(),
            deployment: self.deployment.clone(),
        }
    }

    /// A zero-cost point for a scenario the run deliberately did not
    /// execute (quota-aware degradation). Unlike [`ExecContext::failed_point`]
    /// the status is `Skipped`, so the next collect re-attempts it.
    pub(crate) fn skipped_point(&self, scenario: &Scenario, reason: &str) -> DataPoint {
        DataPoint {
            scenario_id: scenario.id,
            appname: self.config.appname.clone(),
            sku: scenario.sku.clone(),
            nnodes: scenario.nnodes,
            ppn: scenario.ppn,
            appinputs: scenario.appinputs.clone(),
            exec_time_secs: 0.0,
            task_secs: 0.0,
            cost_dollars: 0.0,
            status: ScenarioStatus::Skipped,
            capacity: self.options.capacity,
            region: scenario.region.clone(),
            metrics: vec![("SKIPREASON".into(), reason.to_string())],
            infra: Vec::new(),
            tags: self.config.tags.clone(),
            deployment: self.deployment.clone(),
        }
    }

    /// Builds the task runner closure for the batch service, bound to the
    /// given shared filesystem (the deployment's, or a shard's clone).
    fn make_runner(&self, vfs: &Arc<Mutex<Vfs>>, spec: RunnerSpec) -> batchsim::service::Runner {
        let shared_vfs = vfs.clone();
        let urls = self.urls.clone();
        let registry = self.registry.clone();
        let script = self.script.clone();
        let seed = self.options.experiment_seed;
        Box::new(move |ctx: &TaskContext| -> TaskResult {
            run_script_task(ctx, &spec, shared_vfs, urls, registry, &script, seed)
        })
    }
}

/// Result of one executed scenario, independent of the scenario array it
/// came from (shards return these so the caller can write statuses back).
#[derive(Debug, Clone)]
pub(crate) struct ShardOutcome {
    pub(crate) scenario_id: u32,
    pub(crate) status: ScenarioStatus,
    pub(crate) fail_reason: Option<String>,
    /// Execution attempts spent on the scenario (1 = no retries, 0 = the
    /// scenario was skipped without touching the cloud).
    pub(crate) attempts: u32,
    /// Total simulated backoff the scenario waited through.
    pub(crate) backoff_secs: f64,
    /// Spot evictions the scenario survived (0 on dedicated capacity).
    pub(crate) evictions: u32,
    /// Region failovers the scenario went through before settling (0 when
    /// its first candidate region provisioned, or without a regions list).
    pub(crate) failovers: u32,
}

/// Per-scenario retry bookkeeping: how many attempts were spent (across
/// pool resizes, setup and compute submissions), how much simulated
/// backoff the scenario waited through, and how many spot evictions it
/// survived.
#[derive(Debug, Clone, Copy)]
struct Tally {
    attempts: u32,
    backoff_secs: f64,
    evictions: u32,
    failovers: u32,
}

impl Tally {
    fn fresh() -> Self {
        Tally {
            attempts: 1,
            backoff_secs: 0.0,
            evictions: 0,
            failovers: 0,
        }
    }
}

/// Live journal hook handed into shard runs: appends each terminal outcome
/// (with its data point) the moment the scenario finishes, so a killed run
/// leaves a replayable prefix. Cloneable across shard workers; appends
/// serialize on the journal mutex.
#[derive(Clone)]
pub(crate) struct JournalWriter {
    pub(crate) journal: Arc<Mutex<RunJournal>>,
    /// Scenario id → content fingerprint, precomputed on the coordinator.
    pub(crate) fingerprints: Arc<HashMap<u32, Fingerprint>>,
}

impl JournalWriter {
    pub(crate) fn record(&self, outcome: &ShardOutcome, point: &DataPoint) {
        let Some(&fingerprint) = self.fingerprints.get(&outcome.scenario_id) else {
            return;
        };
        self.journal.lock().append(JournalEntry {
            fingerprint,
            scenario_id: outcome.scenario_id,
            status: outcome.status,
            attempts: outcome.attempts,
            backoff_secs: outcome.backoff_secs,
            fail_reason: outcome.fail_reason.clone(),
            point: Some(point.clone()),
        });
    }
}

/// Everything one shard produced: data points and per-scenario outcomes, in
/// execution order.
#[derive(Debug, Default)]
pub(crate) struct ShardOutput {
    pub(crate) points: Vec<DataPoint>,
    pub(crate) outcomes: Vec<ShardOutcome>,
}

/// The pool a shard currently holds. Algorithm 1 reuses one pool per VM
/// type; the placement dimension extends the reuse key with the region the
/// pool's nodes actually live in, so a failed-over scenario and its
/// same-placement successors share a pool.
#[derive(Debug, Clone)]
struct PoolCtx {
    sku: String,
    /// Placement region; `None` is the deployment's home region.
    region: Option<String>,
    name: String,
    /// Whether the app's setup task succeeded on this pool.
    setup_ok: bool,
}

/// Pool name for a `(SKU, region)` pair. Home-region pools keep the
/// pre-placement name so existing trace scopes and backoff jitter streams
/// stay byte-identical.
fn pool_name_for(sku: &str, region: Option<&str>) -> String {
    let base = format!("pool-{}", sku.to_ascii_lowercase().replace("standard_", ""));
    match region {
        Some(r) => format!("{base}-{}", r.to_ascii_lowercase()),
        None => base,
    }
}

/// Scope string for one scenario's trace events (`s<id>`).
fn scenario_scope(scenario: &Scenario) -> String {
    format!("s{}", scenario.id)
}

/// The trace vocabulary's status strings.
pub(crate) fn status_str(status: ScenarioStatus) -> &'static str {
    match status {
        ScenarioStatus::Pending => "pending",
        ScenarioStatus::Completed => "completed",
        ScenarioStatus::Failed => "failed",
        ScenarioStatus::Skipped => "skipped",
        ScenarioStatus::TimedOut => "timed_out",
    }
}

/// Executes an ordered slice of scenarios against one batch service —
/// Algorithm 1 over one shard. The serial path uses a single shard holding
/// every scenario; the parallel path runs one `ShardRun` per VM type.
pub(crate) struct ShardRun<'a> {
    pub(crate) ctx: &'a ExecContext,
    pub(crate) service: &'a mut BatchService,
    pub(crate) vfs: Arc<Mutex<Vfs>>,
    /// When set, every terminal outcome is appended to the run journal as
    /// the scenario finishes (crash-safe resume).
    pub(crate) journal: Option<JournalWriter>,
}

impl ShardRun<'_> {
    pub(crate) fn run(&mut self, scenarios: &[Scenario]) -> Result<ShardOutput, ToolError> {
        let mut out = ShardOutput::default();
        // Status updates made during this run, so a scenario id appearing
        // twice in the slice sees its first outcome (completed => skipped).
        let mut updated: HashMap<u32, ScenarioStatus> = HashMap::new();
        // SKUs whose family quota ran out mid-run: their remaining
        // scenarios are skipped, not failed, and the sweep keeps going.
        let mut exhausted_skus: HashSet<String> = HashSet::new();
        // Region failover state, keyed per (SKU, region) so serial and
        // per-SKU-sharded runs make identical placement decisions.
        let mut placement = PlacementPolicy::new(
            &self.ctx.config.regions,
            self.ctx.options.region_markdown_after,
        );
        let mut current: Option<PoolCtx> = None;

        for scenario in scenarios {
            let mut scenario = scenario.clone();
            if let Some(status) = updated.get(&scenario.id) {
                scenario.status = *status;
            }
            if !self.ctx.should_run(&scenario) {
                continue;
            }
            let mut tally = Tally::fresh();
            self.service
                .trace_mut()
                .emit("scenario_start", &scenario_scope(&scenario), |m| {
                    m.insert("sku", Value::str(scenario.sku.clone()));
                    m.insert("nnodes", Value::Int(i64::from(scenario.nnodes)));
                });
            // Budget circuit breaker: once billed spend reaches the budget,
            // every remaining scenario degrades to a journaled skip — the
            // sweep stops spending but still produces a complete, resumable
            // picture of what was dropped and why.
            if let Some(budget) = self.ctx.options.budget_dollars {
                let spent = self.ctx.provider.lock().billing().total_cost();
                if spent >= budget {
                    tally.attempts = 0;
                    self.record_journaled_skip(
                        &mut out,
                        &mut updated,
                        &scenario,
                        &format!("budget exceeded: ${spent:.2} spent of ${budget:.2} budget"),
                        tally,
                    );
                    continue;
                }
            }
            if exhausted_skus.contains(&scenario.sku) {
                tally.attempts = 0;
                self.record_skip(
                    &mut out,
                    &mut updated,
                    &scenario,
                    "SKU quota exhausted earlier in this run",
                    tally,
                );
                continue;
            }

            // Candidate placements in failover order. Home-region scenarios
            // (no placement dimension) keep the legacy single-candidate
            // path; placed ones start at their grid region and fall through
            // the remaining configured regions.
            let placements: Vec<Option<String>> = match &scenario.region {
                None => vec![None],
                Some(requested) => {
                    let family = self
                        .ctx
                        .provider
                        .lock()
                        .catalog()
                        .get(&scenario.sku)
                        .map(|s| s.family.clone())
                        .unwrap_or_default();
                    placement
                        .candidates(&scenario.sku, &family, requested)
                        .into_iter()
                        .map(Some)
                        .collect()
                }
            };
            if placements.is_empty() {
                tally.attempts = 0;
                self.record_journaled_skip(
                    &mut out,
                    &mut updated,
                    &scenario,
                    &format!(
                        "no region satisfies placement SLA: every candidate region for {} \
                         is marked down",
                        scenario.sku
                    ),
                    tally,
                );
                continue;
            }

            let mut handled = false;
            let mut tried: Vec<String> = Vec::new();
            let mut last_fault = String::new();
            for region in &placements {
                let attempt_region = region.as_deref();
                match self.ensure_pool(&scenario, attempt_region, &mut current, &mut tally)? {
                    Ok(()) => {
                        let (pool_name, setup_ok) = {
                            let pool = current.as_ref().expect("ensure_pool sets the pool context");
                            (pool.name.clone(), pool.setup_ok)
                        };
                        if !setup_ok {
                            self.record_failure(
                                &mut out,
                                &mut updated,
                                &scenario,
                                "application setup failed on this pool",
                                tally,
                            );
                            handled = true;
                            break;
                        }
                        // Compute task.
                        let point = self.run_compute_task(
                            &pool_name,
                            &scenario,
                            attempt_region,
                            &mut tally,
                        )?;
                        // Escalation is scoped to the scenario: hand the pool
                        // back to the run's configured capacity class before
                        // the next scenario reuses it.
                        self.apply_capacity(&pool_name)?;
                        updated.insert(scenario.id, point.status);
                        self.trace_scenario_end(&scenario, point.status, tally, point.cost_dollars);
                        let outcome = ShardOutcome {
                            scenario_id: scenario.id,
                            status: point.status,
                            fail_reason: match point.status {
                                ScenarioStatus::Failed => Some(
                                    point
                                        .metric("FAILREASON")
                                        .map(str::to_string)
                                        .unwrap_or_else(|| "compute task failed".into()),
                                ),
                                ScenarioStatus::TimedOut => Some(
                                    point
                                        .metric("TIMEOUTREASON")
                                        .map(str::to_string)
                                        .unwrap_or_else(|| "deadline exceeded".into()),
                                ),
                                _ => None,
                            },
                            attempts: tally.attempts,
                            backoff_secs: tally.backoff_secs,
                            evictions: tally.evictions,
                            failovers: tally.failovers,
                        };
                        if let Some(writer) = &self.journal {
                            writer.record(&outcome, &point);
                        }
                        out.outcomes.push(outcome);
                        out.points.push(point);
                        handled = true;
                        break;
                    }
                    Err((e, class)) => match (&scenario.region, class) {
                        (None, _) => {
                            // Legacy single-region semantics, untouched.
                            self.record_resize_error(
                                &mut out,
                                &mut updated,
                                &mut exhausted_skus,
                                &scenario,
                                &e,
                                class,
                                tally,
                            );
                            handled = true;
                            break;
                        }
                        (Some(_), FaultClass::Permanent) => {
                            // Hard rejections are not a region's fault; no
                            // other placement would fare better.
                            self.record_failure(
                                &mut out,
                                &mut updated,
                                &scenario,
                                &format!("pool resize: {e}"),
                                tally,
                            );
                            handled = true;
                            break;
                        }
                        (Some(_), _) => {
                            // The region fault domain tripped (outage,
                            // capacity crunch, exhausted quota pool): mark it
                            // and fail over to the next candidate.
                            let region_name = attempt_region.unwrap_or_default().to_string();
                            let permanent = class == FaultClass::PermanentForSku;
                            let down =
                                placement.record_fault(&scenario.sku, &region_name, permanent);
                            tally.failovers += 1;
                            last_fault = e.to_string();
                            tried.push(region_name.clone());
                            self.service.trace_mut().emit(
                                "failover",
                                &scenario_scope(&scenario),
                                |m| {
                                    m.insert("region", Value::str(region_name.clone()));
                                    m.insert("fault", Value::str(last_fault.clone()));
                                    m.insert(
                                        "marked_down",
                                        Value::str(if down { "true" } else { "false" }),
                                    );
                                },
                            );
                        }
                    },
                }
            }
            if !handled {
                // Every candidate region faulted out: degrade to a journaled
                // skip so a resume honors the decision instead of re-rolling
                // the whole failover chain against the cloud.
                self.record_journaled_skip(
                    &mut out,
                    &mut updated,
                    &scenario,
                    &format!(
                        "no region satisfies placement SLA: tried {}; last fault: {last_fault}",
                        tried.join(", ")
                    ),
                    tally,
                );
            }
        }
        if let Some(pool) = current.take() {
            self.teardown_pool(&pool.name)?;
        }
        Ok(out)
    }

    /// Makes sure the active pool matches `(scenario.sku, region)` with at
    /// least `scenario.nnodes` nodes and a finished app setup, tearing down
    /// the previous pool on a key change (Algorithm 1's pool reuse,
    /// extended with the placement dimension). The outer `Result` carries
    /// systemic errors; the inner one reports provisioning failures with
    /// their retry classification so the caller can fail over.
    #[allow(clippy::type_complexity)]
    fn ensure_pool(
        &mut self,
        scenario: &Scenario,
        region: Option<&str>,
        current: &mut Option<PoolCtx>,
        tally: &mut Tally,
    ) -> Result<Result<(), (batchsim::BatchError, FaultClass)>, ToolError> {
        let reusable = current
            .as_ref()
            .map(|pool| pool.sku == scenario.sku && pool.region.as_deref() == region)
            .unwrap_or(false);
        if reusable {
            let name = current.as_ref().map(|p| p.name.clone()).unwrap_or_default();
            if self
                .service
                .pool(&name)
                .map(|p| p.nodes < scenario.nnodes)
                .unwrap_or(false)
            {
                // "The number of nodes that the user requested for testing
                // is then incremented in the pool."
                if let Err(err) = self.resize_with_retry(&name, scenario.nnodes, tally) {
                    return Ok(Err(err));
                }
            }
            return Ok(Ok(()));
        }
        if let Some(pool) = current.take() {
            self.teardown_pool(&pool.name)?;
        }
        let mut name = pool_name_for(&scenario.sku, region);
        if self
            .service
            .pool(&name)
            .map(|p| p.state != batchsim::PoolState::Active)
            .unwrap_or(true)
        {
            // Deleted pools cannot be recreated under the same name;
            // uniquify defensively.
            if self.service.pool(&name).is_some() {
                name = format!("{name}-{}", scenario.id);
            }
            self.service.create_pool_in(&name, &scenario.sku, region)?;
        }
        self.apply_capacity(&name)?;
        let provisioned = self.resize_with_retry(&name, scenario.nnodes, tally);
        let setup_ok = match &provisioned {
            Ok(()) => self.run_setup_task(&name, tally)?,
            Err(_) => false,
        };
        *current = Some(PoolCtx {
            sku: scenario.sku.clone(),
            region: region.map(str::to_string),
            name,
            setup_ok,
        });
        Ok(provisioned)
    }

    /// Resizes a pool under the retry policy: transient faults back off on
    /// the simulated clock and try again; permanent faults (and exhausted
    /// retries) return the error with its classification.
    fn resize_with_retry(
        &mut self,
        pool: &str,
        target: u32,
        tally: &mut Tally,
    ) -> Result<(), (batchsim::BatchError, FaultClass)> {
        let max_attempts = self.ctx.options.retry.max_attempts;
        let mut retries = 0u32;
        loop {
            match self.service.resize_pool(pool, target) {
                Ok(()) => return Ok(()),
                Err(e) => {
                    let class = classify_batch(&e);
                    if class != FaultClass::Transient || retries + 1 >= max_attempts {
                        return Err((e, class));
                    }
                    retries += 1;
                    self.backoff(pool, retries, tally);
                }
            }
        }
    }

    /// Advances the shared simulated clock by the backoff for retry
    /// `retry_no` (1-based) in `scope`, tallying it against the current
    /// scenario. Only billing sees the wait — task durations are
    /// runner-reported, so retried datasets stay byte-identical.
    fn backoff(&mut self, scope: &str, retry_no: u32, tally: &mut Tally) {
        let secs = self.ctx.options.retry.backoff_secs(scope, retry_no);
        tally.attempts += 1;
        tally.backoff_secs += secs;
        let attempt = tally.attempts;
        let trace = self.service.trace_mut();
        trace.emit("retry", scope, |m| {
            m.insert("attempt", Value::Int(i64::from(attempt)));
            m.insert("backoff_secs", Value::Float(secs));
        });
        trace.advance(secs);
        self.service
            .clock()
            .advance_by(SimDuration::from_secs_f64(secs));
    }

    /// Emits the scenario's terminal trace event. `cost` is the data
    /// point's deterministic price × nodes × exec-time figure, never the
    /// jittered billing span.
    fn trace_scenario_end(
        &mut self,
        scenario: &Scenario,
        status: ScenarioStatus,
        tally: Tally,
        cost: f64,
    ) {
        self.service
            .trace_mut()
            .emit("scenario_end", &scenario_scope(scenario), |m| {
                m.insert("status", Value::str(status_str(status)));
                m.insert("attempts", Value::Int(i64::from(tally.attempts)));
                m.insert("evictions", Value::Int(i64::from(tally.evictions)));
                m.insert("cost", Value::Float(cost));
            });
    }

    /// Brings the pool's capacity class back to the run's configured one
    /// (spot sweeps provision spot pools; escalation flips a pool to
    /// dedicated for one scenario only). The switch needs an empty pool, so
    /// a populated pool is resized to zero first — the next scenario's
    /// resize-up re-provisions it.
    fn apply_capacity(&mut self, pool: &str) -> Result<(), ToolError> {
        let want = self.ctx.options.capacity;
        if self.service.pool(pool).map(|p| p.capacity) == Some(want) {
            return Ok(());
        }
        self.service.resize_pool(pool, 0)?;
        self.service.set_pool_capacity(pool, want)?;
        Ok(())
    }

    /// Records the terminal outcome of a failed resize: quota exhaustion
    /// degrades the rest of the SKU to skips, anything else is a failure.
    #[allow(clippy::too_many_arguments)]
    fn record_resize_error(
        &mut self,
        out: &mut ShardOutput,
        updated: &mut HashMap<u32, ScenarioStatus>,
        exhausted_skus: &mut HashSet<String>,
        scenario: &Scenario,
        error: &batchsim::BatchError,
        class: FaultClass,
        tally: Tally,
    ) {
        if class == FaultClass::PermanentForSku {
            exhausted_skus.insert(scenario.sku.clone());
            self.record_skip(
                out,
                updated,
                scenario,
                &format!("SKU quota exhausted: {error}"),
                tally,
            );
        } else {
            self.record_failure(
                out,
                updated,
                scenario,
                &format!("pool resize: {error}"),
                tally,
            );
        }
    }

    fn record_failure(
        &mut self,
        out: &mut ShardOutput,
        updated: &mut HashMap<u32, ScenarioStatus>,
        scenario: &Scenario,
        reason: &str,
        tally: Tally,
    ) {
        updated.insert(scenario.id, ScenarioStatus::Failed);
        self.trace_scenario_end(scenario, ScenarioStatus::Failed, tally, 0.0);
        let point = self.ctx.failed_point(scenario, reason);
        let outcome = ShardOutcome {
            scenario_id: scenario.id,
            status: ScenarioStatus::Failed,
            fail_reason: Some(reason.to_string()),
            attempts: tally.attempts,
            backoff_secs: tally.backoff_secs,
            evictions: tally.evictions,
            failovers: tally.failovers,
        };
        if let Some(writer) = &self.journal {
            writer.record(&outcome, &point);
        }
        out.points.push(point);
        out.outcomes.push(outcome);
    }

    /// Records a deliberately-not-executed scenario. Quota skips are never
    /// journaled: the next collect (or a resume) should attempt them.
    fn record_skip(
        &mut self,
        out: &mut ShardOutput,
        updated: &mut HashMap<u32, ScenarioStatus>,
        scenario: &Scenario,
        reason: &str,
        tally: Tally,
    ) {
        updated.insert(scenario.id, ScenarioStatus::Skipped);
        self.trace_scenario_end(scenario, ScenarioStatus::Skipped, tally, 0.0);
        out.points.push(self.ctx.skipped_point(scenario, reason));
        out.outcomes.push(ShardOutcome {
            scenario_id: scenario.id,
            status: ScenarioStatus::Skipped,
            fail_reason: Some(reason.to_string()),
            attempts: tally.attempts,
            backoff_secs: tally.backoff_secs,
            evictions: tally.evictions,
            failovers: tally.failovers,
        });
    }

    /// Records a journaled skip — a deliberate terminal decision (the
    /// budget breaker tripping, or placement exhausting every candidate
    /// region). Unlike quota skips this one IS journaled: a `--resume`
    /// must honor the stop instead of silently re-running (and re-billing)
    /// everything the run deliberately cut.
    fn record_journaled_skip(
        &mut self,
        out: &mut ShardOutput,
        updated: &mut HashMap<u32, ScenarioStatus>,
        scenario: &Scenario,
        reason: &str,
        tally: Tally,
    ) {
        updated.insert(scenario.id, ScenarioStatus::Skipped);
        self.trace_scenario_end(scenario, ScenarioStatus::Skipped, tally, 0.0);
        let point = self.ctx.skipped_point(scenario, reason);
        let outcome = ShardOutcome {
            scenario_id: scenario.id,
            status: ScenarioStatus::Skipped,
            fail_reason: Some(reason.to_string()),
            attempts: tally.attempts,
            backoff_secs: tally.backoff_secs,
            evictions: tally.evictions,
            failovers: tally.failovers,
        };
        if let Some(writer) = &self.journal {
            writer.record(&outcome, &point);
        }
        out.points.push(point);
        out.outcomes.push(outcome);
    }

    fn teardown_pool(&mut self, pool: &str) -> Result<(), ToolError> {
        if self.service.pool(pool).is_none() {
            return Ok(());
        }
        if self.ctx.options.delete_pools {
            self.service.delete_pool(pool)?;
        } else {
            self.service.resize_pool(pool, 0)?;
        }
        Ok(())
    }

    /// Runs the pool's setup task (`hpcadvisor_setup` in the app directory),
    /// retrying injected transient faults. Returns whether setup succeeded.
    /// Genuine script failures carry no fault kind and never retry.
    fn run_setup_task(&mut self, pool: &str, tally: &mut Tally) -> Result<bool, ToolError> {
        let max_attempts = self.ctx.options.retry.max_attempts;
        let mut attempt = 1u32;
        loop {
            let runner = self.ctx.make_runner(
                &self.vfs,
                RunnerSpec {
                    function: "hpcadvisor_setup".into(),
                    cwd: self.ctx.app_dir(),
                    env: Vec::new(),
                    write_hostfile: false,
                },
            );
            let record = self.service.run_task(
                pool,
                &format!("setup-{}", self.ctx.config.appname),
                TaskKind::Setup,
                1,
                1,
                runner,
            )?;
            if record.state == TaskState::Completed {
                return Ok(true);
            }
            if record.fault != Some(FaultKind::Transient) || attempt >= max_attempts {
                return Ok(false);
            }
            self.backoff(pool, attempt, tally);
            attempt += 1;
        }
    }

    /// Runs one scenario's compute task and converts it to a data point,
    /// retrying attempts that failed from an injected transient fault
    /// (task-start rejection, mid-task node death). Application-level
    /// failures (e.g. an OOM) carry no fault kind and are never retried.
    ///
    /// Spot evictions get their own requeue path: the eviction tore the
    /// pool down, so the scenario backs off, re-provisions the pool and
    /// tries again; after `escalate_after` evictions the pool is escalated
    /// to dedicated capacity so the scenario can finish. Eviction retries
    /// are bounded by the escalation, not by `max_attempts`. The deadline
    /// watchdog cuts either loop short into a `TimedOut` point once the
    /// scenario's simulated wall-clock (attempts plus backoff) exceeds it.
    fn run_compute_task(
        &mut self,
        pool: &str,
        scenario: &Scenario,
        region: Option<&str>,
        tally: &mut Tally,
    ) -> Result<DataPoint, ToolError> {
        let max_attempts = self.ctx.options.retry.max_attempts;
        let escalate_after = self.ctx.options.escalate_after;
        let mut attempt = 1u32;
        let mut task_secs_total = 0.0f64;
        let backoff_start = tally.backoff_secs;
        // Real spend consumed by evicted attempts, surfaced as overhead in
        // the final point so spot rows carry their true cost.
        let mut eviction_cost = 0.0f64;
        loop {
            let (mut point, meta) = self.run_compute_task_once(pool, scenario, region)?;
            task_secs_total += point.task_secs;
            if point.status == ScenarioStatus::Completed {
                if tally.evictions > 0 {
                    point.cost_dollars += eviction_cost;
                    point
                        .metrics
                        .push(("EVICTIONS".into(), tally.evictions.to_string()));
                }
                return Ok(point);
            }
            if meta.evicted {
                tally.evictions += 1;
                eviction_cost += point.cost_dollars;
            }
            let elapsed = task_secs_total + (tally.backoff_secs - backoff_start);
            if let Some(deadline) = self.ctx.options.deadline_secs {
                if elapsed >= deadline {
                    let mut point = self.ctx.timed_out_point(
                        scenario,
                        &format!(
                            "deadline exceeded: {elapsed:.0}s elapsed over {attempt} attempt(s) \
                             and {} eviction(s) against a {deadline:.0}s deadline",
                            tally.evictions
                        ),
                    );
                    // The attempts ran in the placed region; label the row
                    // with it, not the grid's requested one.
                    point.region = region.map(str::to_string);
                    return Ok(point);
                }
            }
            if meta.evicted {
                self.backoff(pool, attempt, tally);
                attempt += 1;
                if tally.evictions >= escalate_after
                    && self.service.pool(pool).map(|p| p.capacity) == Some(Capacity::Spot)
                {
                    self.service.resize_pool(pool, 0)?;
                    self.service.set_pool_capacity(pool, Capacity::Dedicated)?;
                }
                // The eviction deprovisioned the pool; bring it back before
                // the next attempt.
                if let Err((e, _)) = self.resize_with_retry(pool, scenario.nnodes, tally) {
                    point.metrics.push((
                        "FAILREASON".into(),
                        format!("pool re-provision after eviction: {e}"),
                    ));
                    return Ok(point);
                }
                continue;
            }
            if !meta.retryable || attempt >= max_attempts {
                return Ok(point);
            }
            self.backoff(pool, attempt, tally);
            attempt += 1;
        }
    }

    /// One compute-task attempt, plus the facts the retry loop needs beyond
    /// the point itself: whether a failure is worth retrying (the batch
    /// layer flagged it transient) and whether it was a spot eviction.
    fn run_compute_task_once(
        &mut self,
        pool: &str,
        scenario: &Scenario,
        region: Option<&str>,
    ) -> Result<(DataPoint, AttemptMeta), ToolError> {
        let task_dir = format!("{}/task-{}", self.ctx.app_dir(), scenario.id);
        // The capacity class this attempt runs on (escalation may have
        // flipped the pool to dedicated mid-scenario).
        let capacity = self
            .service
            .pool(pool)
            .map(|p| p.capacity)
            .unwrap_or_default();
        let mut env: Vec<(String, String)> = vec![
            ("NNODES".into(), scenario.nnodes.to_string()),
            ("PPN".into(), scenario.ppn.to_string()),
            ("SKU".into(), scenario.sku.clone()),
            ("VMTYPE".into(), scenario.sku.clone()),
            ("TASKRUN_DIR".into(), task_dir.clone()),
        ];
        for (k, v) in &scenario.appinputs {
            env.push((k.clone(), v.clone()));
        }
        let runner = self.ctx.make_runner(
            &self.vfs,
            RunnerSpec {
                function: "hpcadvisor_run".into(),
                cwd: task_dir,
                env,
                write_hostfile: true,
            },
        );
        let record = self.service.run_task(
            pool,
            &scenario.label(&self.ctx.config.appname),
            TaskKind::Compute,
            scenario.nnodes,
            scenario.ppn,
            runner,
        )?;

        // Scrape HPCADVISORVAR / HPCADVISORINFRA lines.
        let mut metrics: Vec<(String, String)> = Vec::new();
        let mut infra: Vec<(String, String)> = Vec::new();
        for line in record.stdout.lines() {
            if let Some(rest) = line.strip_prefix("HPCADVISORVAR ") {
                if let Some((k, v)) = rest.split_once('=') {
                    metrics.push((k.trim().to_string(), v.trim().to_string()));
                }
            } else if let Some(rest) = line.strip_prefix("HPCADVISORINFRA ") {
                for kv in rest.split_whitespace() {
                    if let Some((k, v)) = kv.split_once('=') {
                        infra.push((k.to_string(), v.to_string()));
                    }
                }
            }
        }

        // Runner-reported execution time: identical to the wall-clock span
        // under serial execution, but immune to sibling shards advancing the
        // shared virtual clock while this task runs.
        let task_secs = record
            .execution_duration()
            .unwrap_or(SimDuration::ZERO)
            .as_secs_f64();
        let exec_time_secs = metrics
            .iter()
            .find(|(k, _)| k == "APPEXECTIME")
            .and_then(|(_, v)| v.parse::<f64>().ok())
            .unwrap_or(task_secs);
        let price = {
            let provider = self.ctx.provider.lock();
            // Placed scenarios bill at the placed region's multiplier — a
            // failover's cost delta is real and lands in the dataset.
            let base = match region {
                Some(r) => provider.price_per_hour_in(&scenario.sku, r)?,
                None => provider.price_per_hour(&scenario.sku)?,
            };
            match capacity {
                Capacity::Dedicated => base,
                Capacity::Spot => {
                    let discount = provider
                        .catalog()
                        .get(&scenario.sku)
                        .map(|s| s.spot_discount)
                        .unwrap_or(0.0);
                    base * (1.0 - discount)
                }
            }
        };
        let cost_dollars = price * scenario.nnodes as f64 * exec_time_secs / 3600.0;
        let status = match record.state {
            TaskState::Completed => ScenarioStatus::Completed,
            _ => ScenarioStatus::Failed,
        };
        let retryable = record.fault == Some(FaultKind::Transient);
        let evicted = record.evicted;
        Ok((
            DataPoint {
                scenario_id: scenario.id,
                appname: self.ctx.config.appname.clone(),
                sku: scenario.sku.clone(),
                nnodes: scenario.nnodes,
                ppn: scenario.ppn,
                appinputs: scenario.appinputs.clone(),
                exec_time_secs,
                task_secs,
                cost_dollars,
                status,
                // The row is labeled with the *requested* capacity class even
                // if escalation finished it on a dedicated pool: the sweep
                // stays homogeneous and the escalated row's dedicated-rate
                // cost (plus eviction overhead) is the true price of asking
                // for spot under that pressure.
                capacity: self.ctx.options.capacity,
                // Where the row actually ran: the placed region after any
                // failover, or the home region (implicit) without one.
                region: region.map(str::to_string),
                metrics,
                infra,
                tags: self.ctx.config.tags.clone(),
                deployment: self.ctx.deployment.clone(),
            },
            AttemptMeta { retryable, evicted },
        ))
    }
}

/// Facts about one compute attempt the retry loop needs beyond the data
/// point itself.
#[derive(Debug, Clone, Copy)]
struct AttemptMeta {
    retryable: bool,
    evicted: bool,
}

/// One scenario answered from the result cache instead of the simulator.
#[derive(Debug, Clone)]
pub(crate) struct CacheHit {
    /// Position of the scenario's first occurrence in the requested order
    /// (used to splice cached points back where a cold run would emit them).
    pub(crate) pos: usize,
    pub(crate) scenario: Scenario,
    pub(crate) point: DataPoint,
}

/// The cache's answer for one ordered scenario list: which scenarios are
/// already known (hits, rehydrated and ready to emit) and which must run
/// (misses, with their fingerprints kept so fresh results can be stored
/// after the run).
#[derive(Debug, Default)]
pub(crate) struct CacheConsult {
    pub(crate) hits: Vec<CacheHit>,
    pub(crate) misses: Vec<Scenario>,
    pub(crate) fingerprints: HashMap<u32, Fingerprint>,
}

/// Consults the scenario cache for an ordered run list.
///
/// Only scenarios the context would actually run are looked up; skipped ones
/// (already completed, or failed without rerun) pass through as misses so
/// the shard loop applies exactly the cold-path skip logic. A repeated id
/// whose first occurrence hit is suppressed outright — a cold run would have
/// completed the first occurrence and skipped the rest.
pub(crate) fn consult_cache(
    ctx: &ExecContext,
    cache: &ScenarioCache,
    policy: CachePolicy,
    ordered: &[Scenario],
) -> CacheConsult {
    let mut out = CacheConsult::default();
    if !policy.reads() {
        out.misses = ordered.to_vec();
        return out;
    }
    let revision = ctx.provider.lock().catalog().revision();
    let fpr = Fingerprinter::new(
        &ctx.config.appname,
        &ctx.script,
        ctx.options.experiment_seed,
        revision,
    )
    .with_capacity(ctx.options.capacity);
    // id → whether its first occurrence hit.
    let mut first: HashMap<u32, bool> = HashMap::new();
    for (pos, s) in ordered.iter().enumerate() {
        if !ctx.should_run(s) {
            out.misses.push(s.clone());
            continue;
        }
        match first.get(&s.id) {
            Some(true) => continue,
            Some(false) => {
                out.misses.push(s.clone());
                continue;
            }
            None => {}
        }
        let fp = fpr.scenario(s);
        match cache.lookup(fp) {
            Some(point) => {
                let point = rehydrate_point(point, s, &ctx.config.tags, &ctx.deployment);
                out.hits.push(CacheHit {
                    pos,
                    scenario: s.clone(),
                    point,
                });
                first.insert(s.id, true);
            }
            None => {
                out.fingerprints.insert(s.id, fp);
                out.misses.push(s.clone());
                first.insert(s.id, false);
            }
        }
    }
    out
}

/// One scenario answered from the run journal instead of executing.
#[derive(Debug, Clone)]
pub(crate) struct JournalHit {
    pub(crate) scenario: Scenario,
    pub(crate) entry: JournalEntry,
}

/// The journal's answer for an ordered run list: finished outcomes to
/// replay verbatim, scenarios still to run, and the fingerprint of every
/// runnable scenario (feeding the live [`JournalWriter`] and cache
/// healing).
#[derive(Debug, Default)]
pub(crate) struct JournalConsult {
    pub(crate) hits: Vec<JournalHit>,
    pub(crate) misses: Vec<Scenario>,
    pub(crate) fingerprints: HashMap<u32, Fingerprint>,
}

impl JournalConsult {
    /// The no-journal answer: everything is a miss, nothing is tracked.
    pub(crate) fn pass_through(ordered: &[Scenario]) -> Self {
        JournalConsult {
            misses: ordered.to_vec(),
            ..JournalConsult::default()
        }
    }
}

/// Consults the run journal for an ordered run list — the resume path.
///
/// Completed entries always replay. Failed, timed-out and budget-skipped
/// entries were all deliberate terminal decisions, so they replay unless
/// the run reruns failures. Quota skips are never journaled, so they (and
/// anything the journal has not seen) fall through as misses. Repeated ids
/// follow [`consult_cache`]'s first-occurrence rule.
pub(crate) fn consult_journal(
    ctx: &ExecContext,
    journal: &RunJournal,
    ordered: &[Scenario],
) -> JournalConsult {
    let mut out = JournalConsult::default();
    let revision = ctx.provider.lock().catalog().revision();
    let fpr = Fingerprinter::new(
        &ctx.config.appname,
        &ctx.script,
        ctx.options.experiment_seed,
        revision,
    )
    .with_capacity(ctx.options.capacity);
    // id → whether its first occurrence replayed.
    let mut first: HashMap<u32, bool> = HashMap::new();
    for s in ordered {
        if !ctx.should_run(s) {
            out.misses.push(s.clone());
            continue;
        }
        match first.get(&s.id) {
            Some(true) => continue,
            Some(false) => {
                out.misses.push(s.clone());
                continue;
            }
            None => {}
        }
        let fp = fpr.scenario(s);
        out.fingerprints.insert(s.id, fp);
        let replay = journal.lookup(fp).filter(|e| match e.status {
            ScenarioStatus::Completed => true,
            ScenarioStatus::Failed | ScenarioStatus::TimedOut | ScenarioStatus::Skipped => {
                !ctx.options.rerun_failed
            }
            ScenarioStatus::Pending => false,
        });
        match replay {
            Some(entry) => {
                out.hits.push(JournalHit {
                    scenario: s.clone(),
                    entry: entry.clone(),
                });
                first.insert(s.id, true);
            }
            None => {
                out.misses.push(s.clone());
                first.insert(s.id, false);
            }
        }
    }
    out
}

/// Stores freshly-executed completed points under the fingerprints recorded
/// at consult time, persisting the cache if anything changed. Runs on the
/// coordinating thread after all shards have merged — shard workers never
/// touch the cache.
pub(crate) fn store_new_points(
    cache: &SharedScenarioCache,
    fingerprints: &HashMap<u32, Fingerprint>,
    points: &[DataPoint],
) -> Result<(), ToolError> {
    let mut cache = cache.lock();
    for p in points {
        if let Some(&fp) = fingerprints.get(&p.scenario_id) {
            cache.insert(fp, p);
        }
    }
    // The store tracks its own dirtiness: this is a no-op unless an
    // insert above (or a concurrent sharer) actually changed something.
    cache.save()
}

/// Maps scenario id → index in the array, built once per call instead of a
/// linear scan per id.
pub(crate) fn index_by_id(scenarios: &[Scenario]) -> HashMap<u32, usize> {
    scenarios
        .iter()
        .enumerate()
        .map(|(idx, s)| (s.id, idx))
        .collect()
}

/// Resolves requested ids into scenario clones in request order, failing on
/// unknown ids before anything runs.
pub(crate) fn resolve_ids(
    scenarios: &[Scenario],
    index: &HashMap<u32, usize>,
    ids: &[u32],
) -> Result<Vec<Scenario>, ToolError> {
    let mut ordered = Vec::with_capacity(ids.len());
    for &id in ids {
        let &idx = index
            .get(&id)
            .ok_or_else(|| ToolError::NoData(format!("scenario id {id} not found")))?;
        ordered.push(scenarios[idx].clone());
    }
    Ok(ordered)
}

/// The collector for one deployment.
pub struct Collector {
    pub(crate) ctx: ExecContext,
    pub(crate) service: BatchService,
    pub(crate) shared_vfs: Arc<Mutex<Vfs>>,
    pub(crate) cache: SharedScenarioCache,
    pub(crate) cache_policy: CachePolicy,
    pub(crate) journal: Option<Arc<Mutex<RunJournal>>>,
    pub(crate) progress: Option<Arc<dyn telemetry::EventTap>>,
}

impl Collector {
    /// Creates a collector bound to an existing deployment. Resolves the
    /// application script from `appsetupurl` (bundled scripts are
    /// registered automatically for known app names).
    pub fn new(
        provider: SharedProvider,
        deployment: &str,
        config: UserConfig,
        options: CollectorOptions,
    ) -> Result<Self, ToolError> {
        let mut urls = UrlStore::with_known_inputs();
        appscript::seed_urlstore(&mut urls, &config.appsetupurl, &config.appname);
        let script = appscript::fetch_script(&urls, &config.appsetupurl)?;
        let service = BatchService::new(provider.clone(), deployment);
        Ok(Collector {
            ctx: ExecContext {
                provider,
                config,
                script,
                urls,
                deployment: deployment.to_string(),
                registry: Arc::new(AppRegistry::standard()),
                options,
            },
            service,
            shared_vfs: Arc::new(Mutex::new(Vfs::new())),
            cache: SharedScenarioCache::in_memory(),
            cache_policy: CachePolicy::default(),
            journal: None,
            progress: None,
        })
    }

    /// Replaces the scenario-result cache (e.g. with a file-backed store
    /// opened via [`ScenarioCache::open`]). The default is an empty
    /// in-memory cache, which memoizes results for this collector's
    /// lifetime only.
    pub fn set_cache(&mut self, cache: ScenarioCache) {
        self.cache = SharedScenarioCache::new(cache);
    }

    /// Attaches a cache handle shared with other collectors (the advisor
    /// daemon's cross-tenant dedup point): consults and inserts all hit
    /// the same store.
    pub fn set_shared_cache(&mut self, cache: SharedScenarioCache) {
        self.cache = cache;
    }

    /// Attaches a live progress tap: plan-based collects hand every trace
    /// event (scenario starts/ends, pool activity, run framing) to `tap`
    /// as it is emitted, whether or not the plan records a trace. Pass
    /// `None` to detach.
    pub fn set_progress_tap(&mut self, tap: Option<Arc<dyn telemetry::EventTap>>) {
        self.progress = tap;
    }

    /// Sets the cache policy used when a run has no plan-level override.
    pub fn set_cache_policy(&mut self, policy: CachePolicy) {
        self.cache_policy = policy;
    }

    /// Attaches a crash-safe run journal. Plan-level collects
    /// ([`crate::collect::CollectPlan`]) replay its finished entries and
    /// append each new outcome as it lands; without one, nothing is
    /// journaled.
    pub fn set_journal(&mut self, journal: RunJournal) {
        self.journal = Some(Arc::new(Mutex::new(journal)));
    }

    /// The attached run journal, if any.
    pub fn journal(&self) -> Option<Arc<Mutex<RunJournal>>> {
        self.journal.clone()
    }

    /// A handle to the scenario-result cache (clones share the store).
    pub fn cache(&self) -> SharedScenarioCache {
        self.cache.clone()
    }

    /// Registers custom script content for a URL (user-provided scripts).
    pub fn register_script(&mut self, url: &str, content: &str) -> Result<(), ToolError> {
        self.ctx.urls.put(url, content);
        if url == self.ctx.config.appsetupurl {
            self.ctx.script = content.to_string();
        }
        Ok(())
    }

    /// The cloud provider this collector bills against.
    pub fn provider(&self) -> SharedProvider {
        self.ctx.provider.clone()
    }

    /// The options the collector was created with.
    pub fn options(&self) -> &CollectorOptions {
        &self.ctx.options
    }

    /// The deployment's shared filesystem (inspectable, like the paper's
    /// jumpbox lets users do).
    pub fn shared_vfs(&self) -> Arc<Mutex<Vfs>> {
        self.shared_vfs.clone()
    }

    /// Runs every pending scenario (Algorithm 1 over the whole list).
    pub fn collect(&mut self, scenarios: &mut [Scenario]) -> Result<Dataset, ToolError> {
        let ids: Vec<u32> = scenarios
            .iter()
            .filter(|s| self.ctx.should_run(s))
            .map(|s| s.id)
            .collect();
        self.run_scenarios(scenarios, &ids)
    }

    /// Runs a chosen subset of scenarios (the smart-sampling drivers use
    /// this), preserving Algorithm 1's pool-reuse structure.
    pub fn run_scenarios(
        &mut self,
        scenarios: &mut [Scenario],
        ids: &[u32],
    ) -> Result<Dataset, ToolError> {
        let index = index_by_id(scenarios);
        let ordered = resolve_ids(scenarios, &index, ids)?;
        let policy = self.cache_policy;
        let consult = consult_cache(&self.ctx, &self.cache.lock(), policy, &ordered);
        let out = ShardRun {
            ctx: &self.ctx,
            service: &mut self.service,
            vfs: self.shared_vfs.clone(),
            journal: None,
        }
        .run(&consult.misses)?;
        for outcome in &out.outcomes {
            scenarios[index[&outcome.scenario_id]].status = outcome.status;
        }
        if policy.writes() {
            store_new_points(&self.cache, &consult.fingerprints, &out.points)?;
        }
        // Splice executed and cached points back into the requested order —
        // exactly where a cold run would have emitted them.
        let mut pos: HashMap<u32, usize> = HashMap::new();
        for (i, s) in ordered.iter().enumerate() {
            pos.entry(s.id).or_insert(i);
        }
        let mut tagged: Vec<(usize, DataPoint)> =
            Vec::with_capacity(out.points.len() + consult.hits.len());
        for point in out.points {
            tagged.push((pos[&point.scenario_id], point));
        }
        for hit in consult.hits {
            scenarios[index[&hit.scenario.id]].status = ScenarioStatus::Completed;
            tagged.push((hit.pos, hit.point));
        }
        tagged.sort_by_key(|(p, _)| *p);
        let mut dataset = Dataset::new();
        for (_, point) in tagged {
            dataset.push(point);
        }
        Ok(dataset)
    }
}

/// What a runner should do.
#[derive(Debug, Clone)]
struct RunnerSpec {
    function: String,
    cwd: String,
    env: Vec<(String, String)>,
    write_hostfile: bool,
}

/// Executes one script function inside a fresh interpreter over the shared
/// filesystem, then merges filesystem changes back (sequential tasks ⇒ the
/// merge is a plain replace, like a shared NFS mount).
fn run_script_task(
    ctx: &TaskContext,
    spec: &RunnerSpec,
    shared_vfs: Arc<Mutex<Vfs>>,
    urls: UrlStore,
    registry: Arc<AppRegistry>,
    script: &str,
    seed: u64,
) -> TaskResult {
    let vfs = shared_vfs.lock().clone();
    let mut interp = Interpreter::new(
        ExecutionEnv {
            sku: ctx.sku.clone(),
            registry,
            experiment_seed: seed,
        },
        vfs,
        urls,
    );
    interp.set_cwd(&spec.cwd);
    for (k, v) in &spec.env {
        interp.set_var(k, v);
    }
    // Table I variables that depend on the concrete node assignment.
    interp.set_var("HOSTLIST_PPN", &ctx.hostlist_ppn());
    if spec.write_hostfile {
        let hostfile_path = format!("{}/hostfile", spec.cwd.trim_end_matches('/'));
        interp.vfs_mut().write(&hostfile_path, ctx.hostfile());
        interp.set_var("HOSTFILE_PATH", &hostfile_path);
    }

    // Scheduling/launch overhead on the batch side.
    let overhead = SimDuration::from_secs(5);
    let load = match interp.load_script(script) {
        Ok(outcome) => outcome,
        Err(e) => return TaskResult::failed(overhead, format!("script parse error: {e}\n"), 127),
    };
    if load.exit_code != 0 {
        return TaskResult::failed(
            overhead + load.elapsed,
            format!("{}script top-level failed\n", load.stdout),
            load.exit_code,
        );
    }
    match interp.call_function(&spec.function) {
        Ok(outcome) => {
            *shared_vfs.lock() = interp.vfs().clone();
            let duration = overhead + load.elapsed + outcome.elapsed;
            if outcome.exit_code == 0 {
                TaskResult::ok(duration, outcome.stdout)
            } else {
                TaskResult::failed(duration, outcome.stdout, outcome.exit_code)
            }
        }
        Err(e) => TaskResult::failed(
            overhead + load.elapsed,
            format!("script error in {}: {e}\n", spec.function),
            126,
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deployment::DeploymentManager;
    use crate::scenario::generate_scenarios;
    use cloudsim::SkuCatalog;

    fn setup(config: &UserConfig) -> (Collector, Vec<Scenario>) {
        let mut manager = DeploymentManager::new(&config.subscription, &config.region, 7).unwrap();
        let rg = manager.create(config).unwrap();
        let collector = Collector::new(
            manager.provider(),
            &rg,
            config.clone(),
            CollectorOptions::default(),
        )
        .unwrap();
        let scenarios = generate_scenarios(config, &SkuCatalog::azure_hpc()).unwrap();
        (collector, scenarios)
    }

    #[test]
    fn collects_small_lammps_sweep() {
        let config = UserConfig::example_lammps_small();
        let (mut collector, mut scenarios) = setup(&config);
        let ds = collector.collect(&mut scenarios).unwrap();
        assert_eq!(ds.len(), 3);
        assert!(scenarios
            .iter()
            .all(|s| s.status == ScenarioStatus::Completed));
        for p in &ds.points {
            assert!(p.exec_time_secs > 0.0, "{p:?}");
            assert!(p.cost_dollars > 0.0);
            assert!(p.task_secs >= p.exec_time_secs * 0.5);
            assert!(p.metric("LAMMPSATOMS").is_some(), "scraped metrics present");
            assert!(p.infra_metric("bottleneck").is_some());
            assert_eq!(p.tags, vec![("version".to_string(), "v1".to_string())]);
        }
        // More nodes ⇒ faster for this compute-bound input.
        let t1 = ds
            .points
            .iter()
            .find(|p| p.nnodes == 1)
            .unwrap()
            .exec_time_secs;
        let t4 = ds
            .points
            .iter()
            .find(|p| p.nnodes == 4)
            .unwrap()
            .exec_time_secs;
        assert!(t4 < t1);
    }

    #[test]
    fn scraped_exectime_excludes_setup_overhead() {
        let config = UserConfig::example_lammps_small();
        let (mut collector, mut scenarios) = setup(&config);
        let ds = collector.collect(&mut scenarios).unwrap();
        for p in &ds.points {
            // APPEXECTIME (loop time) is well below the whole task duration
            // (which includes EESSI init, module load, wget, mpirun launch).
            assert!(p.exec_time_secs < p.task_secs, "{p:?}");
        }
    }

    #[test]
    fn completed_scenarios_are_not_rerun() {
        let config = UserConfig::example_lammps_small();
        let (mut collector, mut scenarios) = setup(&config);
        let first = collector.collect(&mut scenarios).unwrap();
        assert_eq!(first.len(), 3);
        let second = collector.collect(&mut scenarios).unwrap();
        assert!(second.is_empty(), "everything already completed");
    }

    #[test]
    fn pool_reuse_across_same_sku() {
        // With 1 SKU and 3 node counts, billing shows pool growth (resizes),
        // not one pool per scenario.
        let config = UserConfig::example_lammps_small();
        let (mut collector, mut scenarios) = setup(&config);
        collector.collect(&mut scenarios).unwrap();
        let provider = collector.provider();
        let p = provider.lock();
        let spans = p.billing().records();
        // Three resizes (1→2→4 nodes) plus the final resize-to-zero closes
        // the last span: exactly 3 usage records for the single pool.
        assert_eq!(spans.len(), 3, "spans: {spans:?}");
        assert_eq!(spans[0].nodes, 1);
        assert_eq!(spans[1].nodes, 2);
        assert_eq!(spans[2].nodes, 4);
    }

    #[test]
    fn oom_scenario_marked_failed_and_sweep_continues() {
        let mut config = UserConfig::example_lammps_small();
        config.appname = "wrf".into();
        config.appsetupurl = "https://example.com/scripts/wrf.sh".into();
        // 1 km WRF OOMs on 1–2 nodes of HBv3, succeeds on 16.
        config.appinputs = vec![
            ("resolution_km".into(), vec!["1".into()]),
            ("hours".into(), vec!["1".into()]),
        ];
        config.nnodes = vec![1, 16];
        let (mut collector, mut scenarios) = setup(&config);
        let ds = collector.collect(&mut scenarios).unwrap();
        assert_eq!(ds.len(), 2);
        let failed = ds.points.iter().find(|p| p.nnodes == 1).unwrap();
        assert_eq!(failed.status, ScenarioStatus::Failed);
        let ok = ds.points.iter().find(|p| p.nnodes == 16).unwrap();
        assert_eq!(ok.status, ScenarioStatus::Completed);
        assert_eq!(
            scenarios
                .iter()
                .filter(|s| s.status == ScenarioStatus::Failed)
                .count(),
            1
        );
    }

    #[test]
    fn cost_matches_price_times_nodes_times_time() {
        let config = UserConfig::example_lammps_small();
        let (mut collector, mut scenarios) = setup(&config);
        let ds = collector.collect(&mut scenarios).unwrap();
        for p in ds.completed() {
            let expected = 3.60 * p.nnodes as f64 * p.exec_time_secs / 3600.0;
            assert!(
                (p.cost_dollars - expected).abs() < 1e-9,
                "cost {} vs expected {expected}",
                p.cost_dollars
            );
        }
    }

    #[test]
    fn setup_artifacts_visible_to_tasks_via_shared_fs() {
        let config = UserConfig::example_lammps_small();
        let (mut collector, mut scenarios) = setup(&config);
        collector.collect(&mut scenarios).unwrap();
        let vfs = collector.shared_vfs();
        let vfs = vfs.lock();
        // Setup downloaded in.lj.txt into the app dir...
        assert!(vfs.exists("/share/hpcadvisorlammps001/apps/lammps/in.lj.txt"));
        // ...and each task dir holds its own (sed-patched) copy + log.
        for s in &scenarios {
            let dir = format!("/share/hpcadvisorlammps001/apps/lammps/task-{}", s.id);
            assert!(vfs.exists(&format!("{dir}/in.lj.txt")), "{dir}");
            assert!(vfs.exists(&format!("{dir}/log.lammps")), "{dir}");
            let patched = vfs.read(&format!("{dir}/in.lj.txt")).unwrap();
            assert!(patched.contains("variable x index 8"), "sed applied");
        }
    }

    #[test]
    fn run_subset_only_runs_requested_ids() {
        let config = UserConfig::example_lammps_small();
        let (mut collector, mut scenarios) = setup(&config);
        let ids: Vec<u32> = scenarios.iter().map(|s| s.id).take(1).collect();
        let ds = collector.run_scenarios(&mut scenarios, &ids).unwrap();
        assert_eq!(ds.len(), 1);
        assert_eq!(
            scenarios
                .iter()
                .filter(|s| s.status == ScenarioStatus::Completed)
                .count(),
            1
        );
    }

    #[test]
    fn unknown_id_fails_before_running_anything() {
        let config = UserConfig::example_lammps_small();
        let (mut collector, mut scenarios) = setup(&config);
        let mut ids: Vec<u32> = scenarios.iter().map(|s| s.id).collect();
        ids.push(9999);
        let err = collector.run_scenarios(&mut scenarios, &ids).unwrap_err();
        assert!(matches!(err, ToolError::NoData(_)), "{err}");
        assert!(
            scenarios
                .iter()
                .all(|s| s.status == ScenarioStatus::Pending),
            "id validation happens before execution"
        );
    }
}

#[cfg(test)]
mod option_tests {
    use super::*;
    use crate::deployment::DeploymentManager;
    use crate::scenario::generate_scenarios;
    use cloudsim::SkuCatalog;

    fn setup_with(
        config: &UserConfig,
        options: CollectorOptions,
    ) -> (Collector, Vec<Scenario>, batchsim::SharedProvider) {
        let mut manager = DeploymentManager::new(&config.subscription, &config.region, 7).unwrap();
        let rg = manager.create(config).unwrap();
        let provider = manager.provider();
        let collector = Collector::new(provider.clone(), &rg, config.clone(), options).unwrap();
        let scenarios = generate_scenarios(config, &SkuCatalog::azure_hpc()).unwrap();
        (collector, scenarios, provider)
    }

    #[test]
    fn delete_pools_option_tears_down_pools() {
        let config = UserConfig::example_lammps_small();
        let options = CollectorOptions::builder().delete_pools(true).build();
        let (mut collector, mut scenarios, _provider) = setup_with(&config, options);
        collector.collect(&mut scenarios).unwrap();
        let pool = collector.service.pool("pool-hb120rs_v3").unwrap();
        assert_eq!(pool.state, batchsim::PoolState::Deleted);
    }

    #[test]
    fn resize_to_zero_keeps_pool_by_default() {
        let config = UserConfig::example_lammps_small();
        let (mut collector, mut scenarios, _provider) =
            setup_with(&config, CollectorOptions::default());
        collector.collect(&mut scenarios).unwrap();
        let pool = collector.service.pool("pool-hb120rs_v3").unwrap();
        assert_eq!(pool.state, batchsim::PoolState::Active);
        assert_eq!(pool.nodes, 0, "resized to zero, not deleted");
    }

    #[test]
    fn rerun_failed_retries_failed_scenarios() {
        use cloudsim::{FaultPlan, Operation};
        let config = UserConfig::example_lammps_small();
        // Retries off: this test is about the *cross-run* rerun_failed
        // knob, so the in-run retry must not absorb the injected fault.
        let options = CollectorOptions::builder()
            .rerun_failed(true)
            .retry(RetryPolicy::none())
            .build();
        let (mut collector, mut scenarios, provider) = setup_with(&config, options);
        // First pass: the second compute task (invocation 2: setup=0,
        // compute=1,2,3) fails by injection.
        provider
            .lock()
            .set_fault_plan(FaultPlan::none().fail_nth(Operation::RunTask, 2));
        let first = collector.collect(&mut scenarios).unwrap();
        assert_eq!(
            first
                .points
                .iter()
                .filter(|p| p.status == ScenarioStatus::Failed)
                .count(),
            1
        );
        // Second pass: only the failed scenario reruns, and succeeds.
        let second = collector.collect(&mut scenarios).unwrap();
        assert_eq!(second.len(), 1);
        assert_eq!(second.points[0].status, ScenarioStatus::Completed);
        assert!(scenarios
            .iter()
            .all(|s| s.status == ScenarioStatus::Completed));
    }
}
