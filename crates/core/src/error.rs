use std::fmt;

/// Top-level tool error: wraps the substrate errors plus configuration
/// problems of the tool itself.
#[derive(Debug)]
pub enum ToolError {
    /// Configuration file problem (missing field, bad type, empty sweep).
    Config(String),
    /// Cloud control-plane error.
    Cloud(cloudsim::CloudError),
    /// Batch-orchestrator error (pools, task layouts).
    Batch(batchsim::BatchError),
    /// Script interpreter error.
    Shell(taskshell::ShellError),
    /// File-format error (YAML/JSON).
    Format(hpcadvisor_formats::FormatError),
    /// Application model error.
    Model(appmodel::ModelError),
    /// Referenced deployment does not exist.
    UnknownDeployment(String),
    /// Dataset/advice asked for data that is not there.
    NoData(String),
    /// Filesystem I/O (CLI persistence).
    Io(std::io::Error),
}

impl fmt::Display for ToolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ToolError::Config(m) => write!(f, "configuration error: {m}"),
            ToolError::Cloud(e) => write!(f, "cloud error: {e}"),
            ToolError::Batch(e) => write!(f, "batch error: {e}"),
            ToolError::Shell(e) => write!(f, "script error: {e}"),
            ToolError::Format(e) => write!(f, "format error: {e}"),
            ToolError::Model(e) => write!(f, "application model error: {e}"),
            ToolError::UnknownDeployment(d) => write!(f, "deployment '{d}' not found"),
            ToolError::NoData(m) => write!(f, "no data: {m}"),
            ToolError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for ToolError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ToolError::Cloud(e) => Some(e),
            ToolError::Batch(e) => Some(e),
            ToolError::Shell(e) => Some(e),
            ToolError::Format(e) => Some(e),
            ToolError::Model(e) => Some(e),
            ToolError::Io(e) => Some(e),
            ToolError::Config(_) | ToolError::UnknownDeployment(_) | ToolError::NoData(_) => None,
        }
    }
}

impl From<cloudsim::CloudError> for ToolError {
    fn from(e: cloudsim::CloudError) -> Self {
        ToolError::Cloud(e)
    }
}
impl From<batchsim::BatchError> for ToolError {
    fn from(e: batchsim::BatchError) -> Self {
        // Unwrap pure cloud errors so callers keep matching `ToolError::Cloud`
        // for quota/capacity conditions, as they did before `BatchError`.
        match e {
            batchsim::BatchError::Cloud(c) => ToolError::Cloud(c),
            other => ToolError::Batch(other),
        }
    }
}
impl From<taskshell::ShellError> for ToolError {
    fn from(e: taskshell::ShellError) -> Self {
        ToolError::Shell(e)
    }
}
impl From<hpcadvisor_formats::FormatError> for ToolError {
    fn from(e: hpcadvisor_formats::FormatError) -> Self {
        ToolError::Format(e)
    }
}
impl From<appmodel::ModelError> for ToolError {
    fn from(e: appmodel::ModelError) -> Self {
        ToolError::Model(e)
    }
}
impl From<std::io::Error> for ToolError {
    fn from(e: std::io::Error) -> Self {
        ToolError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_substrate_errors() {
        let e: ToolError = cloudsim::CloudError::UnknownSku("x".into()).into();
        assert!(e.to_string().contains("cloud error"));
        let e: ToolError = taskshell::ShellError::UnknownCommand("c".into()).into();
        assert!(e.to_string().contains("script error"));
        let e = ToolError::Config("skus list is empty".into());
        assert!(e.to_string().contains("skus"));
    }

    #[test]
    fn batch_errors_flatten_cloud_and_keep_sources() {
        use std::error::Error;
        // A cloud error inside a batch error surfaces as ToolError::Cloud…
        let e: ToolError =
            batchsim::BatchError::from(cloudsim::CloudError::UnknownSku("x".into())).into();
        assert!(matches!(e, ToolError::Cloud(_)), "{e}");
        // …while batch-layer failures keep their own variant and source chain.
        let e: ToolError = batchsim::BatchError::PoolBusy { pool: "p".into() }.into();
        assert!(matches!(e, ToolError::Batch(_)));
        assert!(e.to_string().contains("batch error"));
        assert!(e.source().is_some());
    }
}
