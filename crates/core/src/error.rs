use std::fmt;

/// Top-level tool error: wraps the substrate errors plus configuration
/// problems of the tool itself.
#[derive(Debug)]
pub enum ToolError {
    /// Configuration file problem (missing field, bad type, empty sweep).
    Config(String),
    /// Cloud control-plane error.
    Cloud(cloudsim::CloudError),
    /// Script interpreter error.
    Shell(taskshell::ShellError),
    /// File-format error (YAML/JSON).
    Format(hpcadvisor_formats::FormatError),
    /// Application model error.
    Model(appmodel::ModelError),
    /// Referenced deployment does not exist.
    UnknownDeployment(String),
    /// Dataset/advice asked for data that is not there.
    NoData(String),
    /// Filesystem I/O (CLI persistence).
    Io(std::io::Error),
}

impl fmt::Display for ToolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ToolError::Config(m) => write!(f, "configuration error: {m}"),
            ToolError::Cloud(e) => write!(f, "cloud error: {e}"),
            ToolError::Shell(e) => write!(f, "script error: {e}"),
            ToolError::Format(e) => write!(f, "format error: {e}"),
            ToolError::Model(e) => write!(f, "application model error: {e}"),
            ToolError::UnknownDeployment(d) => write!(f, "deployment '{d}' not found"),
            ToolError::NoData(m) => write!(f, "no data: {m}"),
            ToolError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for ToolError {}

impl From<cloudsim::CloudError> for ToolError {
    fn from(e: cloudsim::CloudError) -> Self {
        ToolError::Cloud(e)
    }
}
impl From<taskshell::ShellError> for ToolError {
    fn from(e: taskshell::ShellError) -> Self {
        ToolError::Shell(e)
    }
}
impl From<hpcadvisor_formats::FormatError> for ToolError {
    fn from(e: hpcadvisor_formats::FormatError) -> Self {
        ToolError::Format(e)
    }
}
impl From<appmodel::ModelError> for ToolError {
    fn from(e: appmodel::ModelError) -> Self {
        ToolError::Model(e)
    }
}
impl From<std::io::Error> for ToolError {
    fn from(e: std::io::Error) -> Self {
        ToolError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_substrate_errors() {
        let e: ToolError = cloudsim::CloudError::UnknownSku("x".into()).into();
        assert!(e.to_string().contains("cloud error"));
        let e: ToolError = taskshell::ShellError::UnknownCommand("c".into()).into();
        assert!(e.to_string().contains("script error"));
        let e = ToolError::Config("skus list is empty".into());
        assert!(e.to_string().contains("skus"));
    }
}
