//! Regression primitives for the smart-sampling optimizers (paper §III-F:
//! "We are currently exploring regression techniques and obtaining positive
//! results for some workloads").
//!
//! * [`linear_fit`] — ordinary least squares `y = a + b·x`.
//! * [`power_fit`] — `y = c·xᵏ` via least squares in log–log space; the
//!   natural model for "execution time vs. input size".
//! * [`amdahl_fit`] — `T(p) = T₁·(s + (1−s)/p)`, linear in the basis
//!   `(1, 1/p)`; the natural model for "execution time vs. ranks" and what
//!   the fixed-performance-factor extrapolation uses.

/// A fitted model with its coefficient of determination.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fit {
    /// Intercept-like coefficient (model-specific; see each fitter).
    pub a: f64,
    /// Slope-like coefficient (model-specific).
    pub b: f64,
    /// Coefficient of determination on the fitted (possibly transformed)
    /// data.
    pub r2: f64,
}

/// Ordinary least squares for `y = a + b·x`. Returns `None` with fewer than
/// two distinct x values.
pub fn linear_fit(points: &[(f64, f64)]) -> Option<Fit> {
    let pts: Vec<(f64, f64)> = points
        .iter()
        .copied()
        .filter(|(x, y)| x.is_finite() && y.is_finite())
        .collect();
    let n = pts.len() as f64;
    if pts.len() < 2 {
        return None;
    }
    let sx: f64 = pts.iter().map(|(x, _)| x).sum();
    let sy: f64 = pts.iter().map(|(_, y)| y).sum();
    let sxx: f64 = pts.iter().map(|(x, _)| x * x).sum();
    let sxy: f64 = pts.iter().map(|(x, y)| x * y).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return None;
    }
    let b = (n * sxy - sx * sy) / denom;
    let a = (sy - b * sx) / n;
    let mean_y = sy / n;
    let ss_tot: f64 = pts.iter().map(|(_, y)| (y - mean_y).powi(2)).sum();
    let ss_res: f64 = pts.iter().map(|(x, y)| (y - (a + b * x)).powi(2)).sum();
    let r2 = if ss_tot < 1e-12 {
        1.0
    } else {
        1.0 - ss_res / ss_tot
    };
    Some(Fit { a, b, r2 })
}

/// Fits `y = c·xᵏ` (log–log least squares). Requires positive data.
/// Returns `Fit { a: c, b: k, r2 }` where `r2` is measured in log space.
pub fn power_fit(points: &[(f64, f64)]) -> Option<Fit> {
    let logged: Vec<(f64, f64)> = points
        .iter()
        .filter(|(x, y)| *x > 0.0 && *y > 0.0)
        .map(|(x, y)| (x.ln(), y.ln()))
        .collect();
    let fit = linear_fit(&logged)?;
    Some(Fit {
        a: fit.a.exp(),
        b: fit.b,
        r2: fit.r2,
    })
}

/// Evaluates a power fit at `x`.
pub fn power_eval(fit: &Fit, x: f64) -> f64 {
    fit.a * x.powf(fit.b)
}

/// Fits Amdahl's law `T(p) = T₁·(s + (1−s)/p)` over `(p, T)` samples.
/// Returns `Fit { a: T₁·s, b: T₁·(1−s), r2 }`, i.e. `T(p) = a + b/p`.
/// Use [`amdahl_eval`] / [`amdahl_serial_fraction`] for interpretation.
pub fn amdahl_fit(points: &[(f64, f64)]) -> Option<Fit> {
    let transformed: Vec<(f64, f64)> = points
        .iter()
        .filter(|(p, t)| *p > 0.0 && t.is_finite())
        .map(|(p, t)| (1.0 / p, *t))
        .collect();
    linear_fit(&transformed)
}

/// Evaluates an Amdahl fit at `p` ranks/nodes.
pub fn amdahl_eval(fit: &Fit, p: f64) -> f64 {
    fit.a + fit.b / p
}

/// The serial fraction implied by an Amdahl fit (clamped to `[0, 1]`).
pub fn amdahl_serial_fraction(fit: &Fit) -> f64 {
    let t1 = fit.a + fit.b;
    if t1 <= 0.0 {
        return 0.0;
    }
    (fit.a / t1).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_recovers_exact_line() {
        let pts: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 3.0 + 2.0 * i as f64)).collect();
        let f = linear_fit(&pts).unwrap();
        assert!((f.a - 3.0).abs() < 1e-9);
        assert!((f.b - 2.0).abs() < 1e-9);
        assert!((f.r2 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn linear_needs_two_distinct_x() {
        assert!(linear_fit(&[(1.0, 2.0)]).is_none());
        assert!(linear_fit(&[(1.0, 2.0), (1.0, 3.0)]).is_none());
        assert!(linear_fit(&[]).is_none());
    }

    #[test]
    fn power_recovers_cubic() {
        // T = 2·n³ — the matmul law.
        let pts: Vec<(f64, f64)> = [1.0, 2.0, 4.0, 8.0]
            .iter()
            .map(|&n| (n, 2.0 * n * n * n))
            .collect();
        let f = power_fit(&pts).unwrap();
        assert!((f.a - 2.0).abs() < 1e-6, "c = {}", f.a);
        assert!((f.b - 3.0).abs() < 1e-9, "k = {}", f.b);
        assert!((power_eval(&f, 16.0) - 8192.0).abs() < 1e-3);
    }

    #[test]
    fn power_ignores_nonpositive_points() {
        let pts = vec![
            (0.0, 5.0),
            (-1.0, 3.0),
            (1.0, 2.0),
            (2.0, 16.0),
            (4.0, 128.0),
        ];
        let f = power_fit(&pts).unwrap();
        assert!((f.b - 3.0).abs() < 1e-9);
    }

    #[test]
    fn amdahl_recovers_serial_fraction() {
        // T₁ = 100, s = 0.1: T(p) = 100·(0.1 + 0.9/p).
        let pts: Vec<(f64, f64)> = [1.0, 2.0, 4.0, 8.0, 16.0]
            .iter()
            .map(|&p| (p, 100.0 * (0.1 + 0.9 / p)))
            .collect();
        let f = amdahl_fit(&pts).unwrap();
        assert!((amdahl_eval(&f, 1.0) - 100.0).abs() < 1e-9);
        assert!((amdahl_serial_fraction(&f) - 0.1).abs() < 1e-9);
        assert!((amdahl_eval(&f, 32.0) - 100.0 * (0.1 + 0.9 / 32.0)).abs() < 1e-9);
    }

    #[test]
    fn amdahl_fit_on_noisy_data_still_close() {
        let noise = [1.01, 0.99, 1.02, 0.98, 1.0];
        let pts: Vec<(f64, f64)> = [1.0, 2.0, 4.0, 8.0, 16.0]
            .iter()
            .zip(noise.iter())
            .map(|(&p, &k)| (p, 100.0 * (0.05 + 0.95 / p) * k))
            .collect();
        let f = amdahl_fit(&pts).unwrap();
        let s = amdahl_serial_fraction(&f);
        assert!((s - 0.05).abs() < 0.02, "s = {s}");
        assert!(f.r2 > 0.99);
    }

    #[test]
    fn serial_fraction_clamped() {
        let f = Fit {
            a: -5.0,
            b: 10.0,
            r2: 1.0,
        };
        assert_eq!(amdahl_serial_fraction(&f), 0.0);
        let f = Fit {
            a: 10.0,
            b: -5.0,
            r2: 1.0,
        };
        assert_eq!(amdahl_serial_fraction(&f), 1.0);
    }
}

/// Ordinary least squares for a multi-feature linear model
/// `y = β₀ + β₁x₁ + … + βₖxₖ`, solved via the normal equations with
/// Gaussian elimination (feature counts here are tiny — a handful of
/// log-scaled workload descriptors).
///
/// `rows` are `(features, y)` pairs; every row must have the same feature
/// count. Returns the coefficient vector `[β₀, β₁, …, βₖ]`, or `None` when
/// the system is under-determined or singular.
pub fn multilinear_fit(rows: &[(Vec<f64>, f64)]) -> Option<Vec<f64>> {
    multilinear_fit_ridge(rows, 0.0)
}

/// [`multilinear_fit`] with Tikhonov (ridge) regularization: adds `lambda`
/// to the diagonal of XᵀX (intercept excluded). A tiny `lambda` keeps the
/// system solvable when features are collinear — e.g. when a history covers
/// only two SKUs, making the hardware descriptors linearly dependent.
pub fn multilinear_fit_ridge(rows: &[(Vec<f64>, f64)], lambda: f64) -> Option<Vec<f64>> {
    let k = rows.first()?.0.len();
    if rows.len() < k + 1 || rows.iter().any(|(f, y)| f.len() != k || !y.is_finite()) {
        return None;
    }
    let dim = k + 1;
    // Build XᵀX (dim×dim) and Xᵀy (dim) with the implicit intercept column.
    let mut xtx = vec![vec![0.0f64; dim]; dim];
    let mut xty = vec![0.0f64; dim];
    for (features, y) in rows {
        let mut x = Vec::with_capacity(dim);
        x.push(1.0);
        x.extend_from_slice(features);
        for i in 0..dim {
            xty[i] += x[i] * y;
            for j in 0..dim {
                xtx[i][j] += x[i] * x[j];
            }
        }
    }
    // Gaussian elimination with partial pivoting.
    let mut a = xtx;
    let mut b = xty;
    for (i, row) in a.iter_mut().enumerate().skip(1) {
        row[i] += lambda;
    }
    for col in 0..dim {
        let pivot = (col..dim).max_by(|&i, &j| a[i][col].abs().total_cmp(&a[j][col].abs()))?;
        if a[pivot][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        for row in col + 1..dim {
            let (head, tail) = a.split_at_mut(row);
            let (src, dst) = (&head[col], &mut tail[0]);
            let factor = dst[col] / src[col];
            for (d, s) in dst[col..].iter_mut().zip(&src[col..]) {
                *d -= factor * s;
            }
            b[row] -= factor * b[col];
        }
    }
    let mut beta = vec![0.0f64; dim];
    for row in (0..dim).rev() {
        let mut sum = b[row];
        for j in row + 1..dim {
            sum -= a[row][j] * beta[j];
        }
        beta[row] = sum / a[row][row];
    }
    if beta.iter().any(|c| !c.is_finite()) {
        return None;
    }
    Some(beta)
}

/// Evaluates a multilinear fit at a feature vector.
pub fn multilinear_eval(beta: &[f64], features: &[f64]) -> f64 {
    beta[0]
        + beta[1..]
            .iter()
            .zip(features)
            .map(|(b, x)| b * x)
            .sum::<f64>()
}

#[cfg(test)]
mod multilinear_tests {
    use super::*;

    #[test]
    fn recovers_exact_plane() {
        // y = 2 + 3x₁ − 0.5x₂ over a grid.
        let mut rows = Vec::new();
        for i in 0..5 {
            for j in 0..5 {
                let (x1, x2) = (i as f64, j as f64);
                rows.push((vec![x1, x2], 2.0 + 3.0 * x1 - 0.5 * x2));
            }
        }
        let beta = multilinear_fit(&rows).unwrap();
        assert!((beta[0] - 2.0).abs() < 1e-9);
        assert!((beta[1] - 3.0).abs() < 1e-9);
        assert!((beta[2] + 0.5).abs() < 1e-9);
        assert!((multilinear_eval(&beta, &[10.0, 4.0]) - 30.0).abs() < 1e-9);
    }

    #[test]
    fn underdetermined_and_singular_rejected() {
        // Two rows for a 2-feature model: under-determined.
        assert!(multilinear_fit(&[(vec![1.0, 2.0], 3.0), (vec![2.0, 3.0], 4.0)]).is_none());
        // Collinear feature (x₂ = 2·x₁): singular normal matrix.
        let rows: Vec<(Vec<f64>, f64)> = (0..10)
            .map(|i| {
                let x = i as f64;
                (vec![x, 2.0 * x], x)
            })
            .collect();
        assert!(multilinear_fit(&rows).is_none());
        assert!(multilinear_fit(&[]).is_none());
    }

    #[test]
    fn mismatched_feature_lengths_rejected() {
        let rows = vec![(vec![1.0], 1.0), (vec![1.0, 2.0], 2.0), (vec![2.0], 3.0)];
        assert!(multilinear_fit(&rows).is_none());
    }

    #[test]
    fn ridge_handles_collinear_features() {
        // x₂ = 2·x₁ is singular for plain OLS but solvable with ridge, and
        // predictions on the training manifold stay accurate.
        let rows: Vec<(Vec<f64>, f64)> = (0..10)
            .map(|i| {
                let x = i as f64;
                (vec![x, 2.0 * x], 5.0 + 3.0 * x)
            })
            .collect();
        assert!(multilinear_fit(&rows).is_none());
        let beta = multilinear_fit_ridge(&rows, 1e-6).unwrap();
        let pred = multilinear_eval(&beta, &[4.0, 8.0]);
        assert!((pred - 17.0).abs() < 1e-3, "pred {pred}");
    }

    #[test]
    fn noisy_plane_fit_is_close() {
        let mut rows = Vec::new();
        let mut lcg = 12345u64;
        for i in 0..40 {
            lcg = lcg.wrapping_mul(6364136223846793005).wrapping_add(1);
            let noise = ((lcg >> 33) as f64 / 2.0f64.powi(31) - 0.5) * 0.1;
            let x1 = (i % 8) as f64;
            let x2 = (i / 8) as f64;
            rows.push((vec![x1, x2], 1.0 + 0.7 * x1 + 0.2 * x2 + noise));
        }
        let beta = multilinear_fit(&rows).unwrap();
        assert!((beta[1] - 0.7).abs() < 0.05, "{beta:?}");
        assert!((beta[2] - 0.2).abs() < 0.05, "{beta:?}");
    }
}
