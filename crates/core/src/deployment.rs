//! Environment deployment (paper Section III-B) and the deployment registry
//! behind the CLI's `deploy create | list | shutdown` commands (Table II).

use crate::config::UserConfig;
use crate::error::ToolError;
use batchsim::SharedProvider;
use cloudsim::{CloudProvider, ProviderConfig};
use simtime::SimInstant;

/// Lifecycle of a deployment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeploymentState {
    /// Ready for data collection.
    Active,
    /// Shut down; all cloud resources deleted.
    Shutdown,
}

/// One deployment: a resource group with the landing zone, storage, batch
/// account and optional jumpbox/peering.
#[derive(Debug, Clone)]
pub struct Deployment {
    /// Resource-group name (`<rgprefix><seq>`).
    pub name: String,
    /// Region.
    pub region: String,
    /// Application this deployment was created for.
    pub appname: String,
    /// Whether a jumpbox was provisioned.
    pub jumpbox: bool,
    /// Whether VNet peering to a VPN was set up.
    pub peered: bool,
    /// Creation time.
    pub created_at: SimInstant,
    /// Current state.
    pub state: DeploymentState,
}

/// Registry of deployments over one cloud provider.
pub struct DeploymentManager {
    provider: SharedProvider,
    deployments: Vec<Deployment>,
    counter: u32,
}

impl DeploymentManager {
    /// Creates a manager with a fresh simulated provider for the given
    /// subscription/region.
    pub fn new(subscription: &str, region: &str, seed: u64) -> Result<Self, ToolError> {
        let provider = CloudProvider::new(ProviderConfig {
            subscription: subscription.to_string(),
            region: region.to_string(),
            seed,
            ..ProviderConfig::default()
        })?;
        Ok(Self::with_provider(batchsim::share(provider)))
    }

    /// Wraps an existing shared provider.
    pub fn with_provider(provider: SharedProvider) -> Self {
        DeploymentManager {
            provider,
            deployments: Vec::new(),
            counter: 0,
        }
    }

    /// The shared provider handle.
    pub fn provider(&self) -> SharedProvider {
        self.provider.clone()
    }

    /// Creates a deployment for `config`, following the paper's sequence:
    /// variables → landing zone (RG + VNet + subnet) → storage account →
    /// batch service → optional jumpbox and network peering. Returns the
    /// resource-group name.
    pub fn create(&mut self, config: &UserConfig) -> Result<String, ToolError> {
        // 1. Variables.
        self.counter += 1;
        let rg = format!("{}{:03}", config.rgprefix, self.counter);
        let vnet = format!("{rg}-vnet");
        let storage = format!("{rg}stor");
        let batch = format!("{rg}batch");
        let mut provider = self.provider.lock();
        provider.check_subscription(&config.subscription)?;
        // 2. Basic landing zone.
        provider.create_resource_group(&rg)?;
        provider.create_vnet(&rg, &vnet, "default")?;
        // 3. Storage account.
        provider.create_storage_account(&rg, &storage)?;
        // 4. Batch service with no resources.
        provider.create_batch_account(&rg, &batch)?;
        // 5. Optional jumpbox and peering.
        if config.createjumpbox {
            provider.create_jumpbox(&rg, &format!("{rg}-jumpbox"))?;
        }
        let peered = if config.peervpn {
            match (&config.vpnrg, &config.vpnvnet) {
                (Some(vpnrg), Some(vpnvnet)) => {
                    provider.peer_vnets(&rg, vpnrg, vpnvnet)?;
                    true
                }
                _ => {
                    return Err(ToolError::Config(
                        "peervpn requires vpnrg and vpnvnet".into(),
                    ))
                }
            }
        } else {
            false
        };
        let created_at = provider.clock().now();
        drop(provider);
        self.deployments.push(Deployment {
            name: rg.clone(),
            region: config.region.clone(),
            appname: config.appname.clone(),
            jumpbox: config.createjumpbox,
            peered,
            created_at,
            state: DeploymentState::Active,
        });
        Ok(rg)
    }

    /// Lists all previous and current deployments (Table II: `deploy list`).
    pub fn list(&self) -> &[Deployment] {
        &self.deployments
    }

    /// Looks up one deployment.
    pub fn get(&self, name: &str) -> Option<&Deployment> {
        self.deployments.iter().find(|d| d.name == name)
    }

    /// Shuts a deployment down, deleting all its resources (Table II:
    /// `deploy shutdown`).
    pub fn shutdown(&mut self, name: &str) -> Result<(), ToolError> {
        let dep = self
            .deployments
            .iter_mut()
            .find(|d| d.name == name && d.state == DeploymentState::Active)
            .ok_or_else(|| ToolError::UnknownDeployment(name.to_string()))?;
        self.provider.lock().delete_resource_group(name)?;
        dep.state = DeploymentState::Shutdown;
        Ok(())
    }

    /// Renders the `deploy list` table.
    pub fn render_list(&self) -> String {
        let mut out =
            String::from("Deployment           Region           App        State     Jumpbox\n");
        for d in &self.deployments {
            out.push_str(&format!(
                "{:<20}  {:<15}  {:<9}  {:<8}  {}\n",
                d.name,
                d.region,
                d.appname,
                match d.state {
                    DeploymentState::Active => "active",
                    DeploymentState::Shutdown => "shutdown",
                },
                if d.jumpbox { "yes" } else { "no" }
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manager() -> DeploymentManager {
        DeploymentManager::new("mysubscription", "southcentralus", 7).unwrap()
    }

    #[test]
    fn create_provisions_landing_zone() {
        let mut m = manager();
        let config = UserConfig::example_openfoam();
        let rg = m.create(&config).unwrap();
        assert_eq!(rg, "hpcadvisortest1001");
        let provider = m.provider();
        let p = provider.lock();
        let group = p.resource_group(&rg).unwrap();
        assert!(group.has_ready("vnet"));
        assert!(group.has_ready("storage"));
        assert!(group.has_ready("batch"));
        assert!(group.has_ready("jumpbox"), "config requests a jumpbox");
    }

    #[test]
    fn sequence_numbers_increment() {
        let mut m = manager();
        let config = UserConfig::example_openfoam();
        let a = m.create(&config).unwrap();
        let b = m.create(&config).unwrap();
        assert_ne!(a, b);
        assert_eq!(m.list().len(), 2);
    }

    #[test]
    fn wrong_subscription_rejected() {
        let mut m = DeploymentManager::new("other-sub", "southcentralus", 7).unwrap();
        let config = UserConfig::example_openfoam();
        assert!(matches!(
            m.create(&config),
            Err(ToolError::Cloud(
                cloudsim::CloudError::WrongSubscription { .. }
            ))
        ));
    }

    #[test]
    fn shutdown_deletes_resources() {
        let mut m = manager();
        let config = UserConfig::example_openfoam();
        let rg = m.create(&config).unwrap();
        m.shutdown(&rg).unwrap();
        assert_eq!(m.get(&rg).unwrap().state, DeploymentState::Shutdown);
        assert!(matches!(
            m.shutdown(&rg),
            Err(ToolError::UnknownDeployment(_))
        ));
        let list = m.render_list();
        assert!(list.contains("shutdown"));
    }

    #[test]
    fn peering_requires_vpn_fields() {
        let mut m = manager();
        let mut config = UserConfig::example_openfoam();
        config.peervpn = true;
        assert!(m.create(&config).is_err());
        config.vpnrg = Some("corp-vpn".into());
        config.vpnvnet = Some("corp-vnet".into());
        let rg = m.create(&config).unwrap();
        assert!(m.get(&rg).unwrap().peered);
    }
}
