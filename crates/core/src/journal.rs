//! Crash-safe run journal: append-only JSONL of per-scenario outcomes.
//!
//! A multi-hour sweep interrupted at scenario 30 of 36 should not re-spend
//! cloud time on the first 30. The journal records each scenario's outcome
//! *as it finishes* — one compact JSON object per line, appended and
//! flushed — so a killed run leaves a readable prefix. `collect --resume`
//! replays the journal and collects only the remainder; the resumed
//! dataset is byte-identical to an uninterrupted run because entries carry
//! the full [`DataPoint`] and are keyed by the same content fingerprint the
//! PR 2 cache uses.
//!
//! Corruption tolerance mirrors the cache: a damaged header discards the
//! whole file (cold start, `recovered` flag set), a torn tail line — the
//! normal shape of a crash mid-append — drops only that line.

use crate::cache::Fingerprint;
use crate::dataset::{point_to_value, value_to_point, DataPoint};
use crate::scenario::ScenarioStatus;
use hpcadvisor_formats::{json, OrderedMap, Value};
use std::collections::HashMap;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Version of the journal line format. A header with a different version
/// discards the file wholesale.
const JOURNAL_VERSION: i64 = 1;

/// One journaled scenario outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalEntry {
    /// Content fingerprint of the scenario execution (the cache key).
    pub fingerprint: Fingerprint,
    /// Scenario id at the time of the run (diagnostic only — resume matches
    /// by fingerprint, so renumbered grids still replay).
    pub scenario_id: u32,
    /// Terminal status the scenario reached.
    pub status: ScenarioStatus,
    /// Attempts spent on the scenario (1 = no retries; 0 = replayed).
    pub attempts: u32,
    /// Total simulated backoff seconds spent on the scenario.
    pub backoff_secs: f64,
    /// Failure reason, for failed scenarios.
    pub fail_reason: Option<String>,
    /// The finished data point, for completed scenarios.
    pub point: Option<DataPoint>,
}

fn entry_to_line(e: &JournalEntry) -> String {
    let mut m = OrderedMap::new();
    m.insert("fp", Value::str(e.fingerprint.to_hex()));
    m.insert("id", Value::Int(i64::from(e.scenario_id)));
    m.insert("status", Value::str(e.status.as_str()));
    m.insert("attempts", Value::Int(i64::from(e.attempts)));
    m.insert("backoff_secs", Value::Float(e.backoff_secs));
    if let Some(reason) = &e.fail_reason {
        m.insert("fail_reason", Value::str(reason));
    }
    if let Some(point) = &e.point {
        m.insert("point", point_to_value(point));
    }
    json::to_string(&Value::Map(m))
}

fn line_to_entry(line: &str) -> Option<JournalEntry> {
    let v = json::parse(line).ok()?;
    let fingerprint = Fingerprint::from_hex(v.get("fp")?.as_str()?)?;
    let status = ScenarioStatus::parse(v.get("status")?.as_str()?)?;
    let point = match v.get("point") {
        Some(pv) => Some(value_to_point(pv).ok()?),
        None => None,
    };
    Some(JournalEntry {
        fingerprint,
        scenario_id: v.get("id")?.as_int()? as u32,
        status,
        attempts: v.get("attempts")?.as_int()? as u32,
        backoff_secs: v.get("backoff_secs")?.as_f64()?,
        fail_reason: v
            .get("fail_reason")
            .and_then(|r| r.as_str())
            .map(str::to_string),
        point,
    })
}

/// The append-only run journal.
#[derive(Debug, Default)]
pub struct RunJournal {
    path: Option<PathBuf>,
    /// Insertion-ordered entries as read/written; later entries for the
    /// same fingerprint win in [`RunJournal::lookup`].
    entries: Vec<JournalEntry>,
    by_fp: HashMap<Fingerprint, usize>,
    recovered: bool,
    /// True once the backing file is known to start with a valid header.
    initialized: bool,
}

impl RunJournal {
    /// A purely in-memory journal (for tests; nothing persists).
    pub fn in_memory() -> Self {
        RunJournal::default()
    }

    /// Opens a file-backed journal, replaying whatever prefix survives.
    /// A missing file starts empty; a damaged header starts empty with
    /// `recovered` set (the file is rewritten on the first append); a torn
    /// tail line is dropped alone.
    pub fn open(path: impl AsRef<Path>) -> Self {
        let path = path.as_ref().to_path_buf();
        let mut journal = RunJournal {
            path: Some(path.clone()),
            ..RunJournal::default()
        };
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(_) => return journal,
        };
        let mut lines = text.lines();
        let header_ok = lines.next().is_some_and(|h| {
            json::parse(h).ok().and_then(|v| v.get("version")?.as_int()) == Some(JOURNAL_VERSION)
        });
        if !header_ok {
            journal.recovered = true;
            return journal;
        }
        journal.initialized = true;
        for line in lines {
            if line.trim().is_empty() {
                continue;
            }
            match line_to_entry(line) {
                Some(entry) => journal.push(entry),
                // A torn or garbled line: the tail of a crashed append.
                None => journal.recovered = true,
            }
        }
        if journal.recovered {
            // The file may end in a partial line with no newline; force the
            // next append to rewrite it from the surviving entries.
            journal.initialized = false;
        }
        journal
    }

    /// Opens a file-backed journal after deleting any existing file — the
    /// non-resume collect path, which must not replay a previous run.
    pub fn open_fresh(path: impl AsRef<Path>) -> Self {
        let _ = std::fs::remove_file(path.as_ref());
        RunJournal::open(path)
    }

    fn push(&mut self, entry: JournalEntry) {
        self.by_fp.insert(entry.fingerprint, self.entries.len());
        self.entries.push(entry);
    }

    /// Appends one outcome, flushing the line to disk before returning.
    /// IO errors are swallowed: journalling is best-effort and must never
    /// fail the collection it protects.
    pub fn append(&mut self, entry: JournalEntry) {
        if let Some(path) = &self.path {
            let line = entry_to_line(&entry);
            let write = || -> std::io::Result<()> {
                if let Some(dir) = path.parent() {
                    std::fs::create_dir_all(dir)?;
                }
                let mut file = if self.initialized {
                    std::fs::OpenOptions::new().append(true).open(path)?
                } else {
                    // First append (re)creates the file with its header and
                    // the surviving entries, compacting away any damage.
                    let mut f = std::fs::File::create(path)?;
                    writeln!(f, "{{\"version\": {JOURNAL_VERSION}}}")?;
                    for e in &self.entries {
                        writeln!(f, "{}", entry_to_line(e))?;
                    }
                    f
                };
                writeln!(file, "{line}")?;
                file.flush()
            };
            if write().is_ok() {
                self.initialized = true;
            }
        }
        self.push(entry);
    }

    /// Latest entry for a fingerprint, if any.
    pub fn lookup(&self, fp: Fingerprint) -> Option<&JournalEntry> {
        self.by_fp.get(&fp).map(|&i| &self.entries[i])
    }

    /// All entries in append order.
    pub fn entries(&self) -> &[JournalEntry] {
        &self.entries
    }

    /// Number of journaled outcomes (duplicates counted once each).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing is journaled.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// True if damage was detected (and skipped) while opening.
    pub fn recovered(&self) -> bool {
        self.recovered
    }

    /// The backing file, if any.
    pub fn path(&self) -> Option<&Path> {
        self.path.as_deref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::point;

    fn fp(n: u128) -> Fingerprint {
        Fingerprint::from_hex(&format!("{n:032x}")).unwrap()
    }

    fn completed(id: u32, raw: u128) -> JournalEntry {
        JournalEntry {
            fingerprint: fp(raw),
            scenario_id: id,
            status: ScenarioStatus::Completed,
            attempts: 1,
            backoff_secs: 0.0,
            fail_reason: None,
            point: Some(point(id, "lammps", "Standard_HC44rs", 2, 88, 10.0, 0.5)),
        }
    }

    fn tempfile(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "hpcadvisor-journal-test-{tag}-{}.jsonl",
            std::process::id()
        ))
    }

    #[test]
    fn entries_roundtrip_through_lines() {
        let entry = JournalEntry {
            attempts: 3,
            backoff_secs: 87.5,
            ..completed(7, 0xabc)
        };
        assert_eq!(line_to_entry(&entry_to_line(&entry)), Some(entry.clone()));
        let failed = JournalEntry {
            status: ScenarioStatus::Failed,
            fail_reason: Some("quota exceeded".into()),
            point: None,
            ..entry
        };
        assert_eq!(line_to_entry(&entry_to_line(&failed)), Some(failed));
        assert!(line_to_entry("not json").is_none());
        assert!(line_to_entry("{\"fp\": \"zz\"}").is_none());
    }

    #[test]
    fn append_then_reopen_replays() {
        let path = tempfile("replay");
        let _ = std::fs::remove_file(&path);
        let mut journal = RunJournal::open(&path);
        assert!(journal.is_empty() && !journal.recovered());
        journal.append(completed(1, 1));
        journal.append(completed(2, 2));

        let back = RunJournal::open(&path);
        assert_eq!(back.len(), 2);
        assert!(!back.recovered());
        assert_eq!(back.lookup(fp(1)), Some(&completed(1, 1)));
        assert_eq!(back.lookup(fp(3)), None);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_line_drops_alone() {
        let path = tempfile("torn");
        let _ = std::fs::remove_file(&path);
        let mut journal = RunJournal::open(&path);
        journal.append(completed(1, 1));
        journal.append(completed(2, 2));
        // Simulate a crash mid-append: truncate the last line.
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() - 20]).unwrap();

        let back = RunJournal::open(&path);
        assert_eq!(back.len(), 1, "only the torn line is lost");
        assert!(back.recovered());
        assert!(back.lookup(fp(1)).is_some());
        // Appending after recovery keeps the surviving prefix.
        let mut back = back;
        back.append(completed(3, 3));
        let again = RunJournal::open(&path);
        assert_eq!(again.len(), 2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn damaged_header_starts_cold_and_heals_on_append() {
        let path = tempfile("header");
        std::fs::write(&path, "garbage header\nmore garbage\n").unwrap();
        let mut journal = RunJournal::open(&path);
        assert!(journal.is_empty());
        assert!(journal.recovered());
        journal.append(completed(1, 1));
        let back = RunJournal::open(&path);
        assert!(!back.recovered(), "first append rewrote the file");
        assert_eq!(back.len(), 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn open_fresh_discards_previous_run() {
        let path = tempfile("fresh");
        let mut journal = RunJournal::open(&path);
        journal.append(completed(1, 1));
        let fresh = RunJournal::open_fresh(&path);
        assert!(fresh.is_empty());
        assert!(RunJournal::open(&path).lookup(fp(1)).is_none());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn duplicate_fingerprints_last_wins() {
        let mut journal = RunJournal::in_memory();
        journal.append(JournalEntry {
            status: ScenarioStatus::Failed,
            fail_reason: Some("first try".into()),
            point: None,
            ..completed(1, 9)
        });
        journal.append(completed(1, 9));
        assert_eq!(journal.len(), 2);
        assert_eq!(
            journal.lookup(fp(9)).unwrap().status,
            ScenarioStatus::Completed
        );
    }
}
