//! Partial-execution prediction — the technique the paper cites from
//! Yang et al. \[6] and Brunetta & Borin \[13]: "several HPC workloads have
//! a steady execution time per step (after warm-up). So one could get some
//! approximation of execution times and costs."
//!
//! The driver runs every scenario with its step/iteration count scaled
//! down by a probe fraction, extrapolates the full-length time from the
//! steady per-step rate, builds a *predicted* Pareto front, and verifies
//! only the front candidates at full length. Unlike the [`super::Sampler`]
//! strategies this needs to *change the workload* (the step count), so it
//! drives its own sessions instead of implementing the sampler protocol.

use crate::advice::Advice;
use crate::config::UserConfig;
use crate::dataset::{DataFilter, Dataset};
use crate::error::ToolError;
use crate::pareto::pareto_front;
use crate::session::Session;

/// Result of a partial-execution prediction run.
#[derive(Debug, Clone)]
pub struct PartialExecutionReport {
    /// Scenario count of the full grid.
    pub total: usize,
    /// Full-length executions actually performed (the verified front).
    pub full_runs: usize,
    /// Probe (short) executions performed.
    pub probe_runs: usize,
    /// Predicted full-length dataset (every scenario).
    pub predicted: Dataset,
    /// Measured full-length dataset (front candidates only).
    pub verified: Dataset,
    /// Mean absolute relative error of predictions vs. verification.
    pub mean_relative_error: f64,
}

/// Which input key carries the step count for an application.
fn steps_key(appname: &str) -> Option<(&'static str, u64)> {
    match appname.to_ascii_lowercase().as_str() {
        "lammps" => Some(("steps", 100)),
        "openfoam" => Some(("iterations", 250)),
        "gromacs" => Some(("steps", 10_000)),
        "namd" => Some(("steps", 500)),
        _ => None,
    }
}

/// Reads the configured step count (or the app default).
fn configured_steps(config: &UserConfig, key: &str, default: u64) -> u64 {
    config
        .appinputs
        .iter()
        .find(|(k, _)| k.eq_ignore_ascii_case(key))
        .and_then(|(_, vs)| vs.first())
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Runs the partial-execution strategy.
///
/// `probe_fraction` scales the step count of the probe runs (e.g. 0.1 runs
/// 10% of the steps); `margin` widens the predicted front before
/// verification, like the other samplers.
pub fn run_partial_execution(
    config: &UserConfig,
    seed: u64,
    probe_fraction: f64,
    margin: f64,
) -> Result<PartialExecutionReport, ToolError> {
    let (key, default_steps) = steps_key(&config.appname).ok_or_else(|| {
        ToolError::Config(format!(
            "application '{}' has no step-count input for partial execution",
            config.appname
        ))
    })?;
    if !(0.01..=0.9).contains(&probe_fraction) {
        return Err(ToolError::Config(format!(
            "probe_fraction {probe_fraction} must be in 0.01..=0.9"
        )));
    }
    let full_steps = configured_steps(config, key, default_steps);
    let probe_steps = ((full_steps as f64 * probe_fraction).round() as u64).max(1);
    if probe_steps >= full_steps {
        return Err(ToolError::Config(format!(
            "probe of {probe_steps} steps is not shorter than the full {full_steps}"
        )));
    }

    // --- Probes: every scenario at two reduced step counts ----------------
    // Two probe lengths let us fit T(p) = s + r·p per scenario and separate
    // the fixed startup s from the steady per-step rate r — the actual
    // technique of the cited partial-execution predictors.
    let probe_steps_2 = (probe_steps * 2).min(full_steps - 1).max(probe_steps + 1);
    let run_probe = |steps: u64| -> Result<Dataset, ToolError> {
        let mut probe_config = config.clone();
        probe_config
            .appinputs
            .retain(|(k, _)| !k.eq_ignore_ascii_case(key));
        probe_config
            .appinputs
            .push((key.to_string(), vec![steps.to_string()]));
        let mut probe_session = Session::create(probe_config, seed)?;
        probe_session.collect()
    };
    let probe_a = run_probe(probe_steps)?;
    let probe_b = run_probe(probe_steps_2)?;

    // --- Extrapolate ------------------------------------------------------
    let price_of = |p: &crate::dataset::DataPoint| {
        if p.exec_time_secs > 0.0 {
            p.cost_dollars / p.exec_time_secs
        } else {
            0.0
        }
    };
    let mut predicted = Dataset::new();
    for pa in probe_a.completed() {
        let Some(pb) = probe_b
            .completed()
            .into_iter()
            .find(|q| q.scenario_id == pa.scenario_id)
        else {
            continue;
        };
        let rate =
            (pb.exec_time_secs - pa.exec_time_secs) / (probe_steps_2 as f64 - probe_steps as f64);
        let startup = (pa.exec_time_secs - rate * probe_steps as f64).max(0.0);
        let t_full = startup + rate * full_steps as f64;
        let mut q = pa.clone();
        q.cost_dollars = price_of(pa) * t_full;
        q.exec_time_secs = t_full;
        q.metrics.push((
            "PREDICTED_FROM_STEPS".into(),
            format!("{probe_steps}+{probe_steps_2}"),
        ));
        predicted.push(q);
    }

    // --- Predicted front → verify at full length --------------------------
    let objectives: Vec<(f64, f64)> = predicted
        .points
        .iter()
        .map(|p| (p.cost_dollars, p.exec_time_secs))
        .collect();
    let front = pareto_front(&objectives);
    let m = 1.0 + margin.max(0.0);
    let mut to_verify: Vec<u32> = Vec::new();
    for (i, p) in predicted.points.iter().enumerate() {
        let near = front.contains(&i)
            || front.iter().any(|&f| {
                let (fc, ft) = objectives[f];
                p.cost_dollars <= fc * m && p.exec_time_secs <= ft * m
            });
        if near {
            to_verify.push(p.scenario_id);
        }
    }

    let mut full_session = Session::create(config.clone(), seed)?;
    let verified = full_session.collect_subset(&to_verify)?;

    // --- Prediction quality -------------------------------------------------
    let mut err_sum = 0.0;
    let mut err_n = 0usize;
    for v in verified.completed() {
        if let Some(p) = predicted
            .points
            .iter()
            .find(|p| p.scenario_id == v.scenario_id)
        {
            err_sum += (p.exec_time_secs - v.exec_time_secs).abs() / v.exec_time_secs;
            err_n += 1;
        }
    }
    Ok(PartialExecutionReport {
        total: probe_a.len(),
        full_runs: to_verify.len(),
        probe_runs: probe_a.len() + probe_b.len(),
        predicted,
        verified,
        mean_relative_error: if err_n > 0 {
            err_sum / err_n as f64
        } else {
            f64::NAN
        },
    })
}

impl PartialExecutionReport {
    /// The verified advice (Pareto front of the full-length measurements).
    pub fn advice(&self) -> Advice {
        Advice::from_dataset(&self.verified, &DataFilter::all())
    }

    /// Fraction of full-length executions saved vs. running the whole grid
    /// at full length (probes cost `probe_fraction` each, already spent).
    pub fn full_runs_saved(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            1.0 - self.full_runs as f64 / self.total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampling::front_regret;

    fn config() -> UserConfig {
        let mut c = UserConfig::example_lammps();
        c.skus = vec!["Standard_HB120rs_v3".into(), "Standard_HC44rs".into()];
        c.nnodes = vec![2, 4, 8, 16];
        c.appinputs = vec![("BOXFACTOR".into(), vec!["20".into()])];
        c
    }

    #[test]
    fn predicts_accurately_and_saves_full_runs() {
        let report = run_partial_execution(&config(), 7, 0.1, 0.05).unwrap();
        assert_eq!(report.total, 8);
        assert!(report.full_runs < report.total, "{report:?}");
        assert!(
            report.mean_relative_error < 0.10,
            "mean relative error {:.1}% too high",
            report.mean_relative_error * 100.0
        );
        // The verified front is close to ground truth.
        let mut full = Session::create(config(), 7).unwrap();
        let full_ds = full.collect().unwrap();
        let reference = Advice::from_dataset(&full_ds, &DataFilter::all());
        assert!(front_regret(&reference, &report.advice()) < 0.1);
    }

    #[test]
    fn predictions_carry_probe_provenance() {
        let report = run_partial_execution(&config(), 7, 0.1, 0.05).unwrap();
        for p in &report.predicted.points {
            assert!(
                p.metric("PREDICTED_FROM_STEPS").is_some(),
                "prediction must record its probe lengths: {p:?}"
            );
        }
        assert_eq!(
            report.probe_runs,
            2 * report.total,
            "two probes per scenario"
        );
    }

    #[test]
    fn rejects_unsupported_apps_and_bad_fractions() {
        let mut c = config();
        c.appname = "wrf".into();
        assert!(run_partial_execution(&c, 7, 0.1, 0.05).is_err());
        assert!(run_partial_execution(&config(), 7, 0.0, 0.05).is_err());
        assert!(run_partial_execution(&config(), 7, 0.95, 0.05).is_err());
    }

    #[test]
    fn works_for_openfoam_iterations() {
        let mut c = UserConfig::example_openfoam_motorbike();
        c.skus = vec!["Standard_HB120rs_v3".into()];
        c.nnodes = vec![2, 4, 8];
        let report = run_partial_execution(&c, 7, 0.2, 0.05).unwrap();
        assert_eq!(report.total, 3);
        // The two-point fit separates OpenFOAM's fixed startup (8 s inside
        // ExecutionTime) from the per-iteration rate.
        assert!(report.mean_relative_error < 0.15, "{report:?}");
    }
}
