//! Fixed-performance-factor extrapolation (paper §III-F, second strategy):
//! "by using the same VM type but different application input parameters
//! and their influence on execution time, or by using the same application
//! input parameters but analyzing a different VM type, we can identify
//! scenarios that should or should not be in the Pareto front."

use super::{scaling_groups, Sampler};
use crate::dataset::{DataFilter, Dataset};
use crate::pareto::pareto_front;
use crate::regress::{amdahl_eval, amdahl_fit};
use crate::scenario::Scenario;

/// Three-phase sampler:
///
/// 1. For each VM type, run the *reference* input (the first combination)
///    at every node count, plus every other input at the smallest node
///    count only.
/// 2. Fit Amdahl's law to each reference curve; scale it by the measured
///    single-point ratio to predict every unmeasured (input, nodes) time;
///    predict costs from SKU prices; compute the predicted Pareto front.
/// 3. Execute only the scenarios predicted on (or within `margin` of) the
///    front; everything else stays predicted-only.
#[derive(Debug)]
pub struct FixedPerfFactor {
    /// Relative margin around the predicted front that still gets executed.
    pub margin: f64,
    phase: u8,
    predicted: Dataset,
}

impl FixedPerfFactor {
    /// Creates the sampler; `margin` of 0.10 verifies everything within
    /// 10 % of the predicted front.
    pub fn new(margin: f64) -> Self {
        FixedPerfFactor {
            margin: margin.max(0.0),
            phase: 0,
            predicted: Dataset::new(),
        }
    }

    /// Hourly price per node for a SKU (from the shared catalog — the
    /// sampler runs before cost rows exist for unmeasured scenarios).
    fn price(sku: &str) -> f64 {
        cloudsim::SkuCatalog::azure_hpc()
            .get(sku)
            .map(|s| s.price_per_hour)
            .unwrap_or(f64::NAN)
    }
}

impl Sampler for FixedPerfFactor {
    fn name(&self) -> &str {
        "fixed-perf-factor"
    }

    fn predicted(&self) -> Dataset {
        self.predicted.clone()
    }

    fn next_batch(&mut self, candidates: &[Scenario], observed: &Dataset) -> Vec<u32> {
        match self.phase {
            0 => {
                self.phase = 1;
                let mut batch = Vec::new();
                // Reference input = first input combination seen per SKU.
                let mut reference_of_sku: Vec<(String, String)> = Vec::new();
                for (sku, input_key, group) in scaling_groups(candidates) {
                    let is_reference = match reference_of_sku.iter().find(|(s, _)| *s == sku) {
                        Some((_, r)) => *r == input_key,
                        None => {
                            reference_of_sku.push((sku.clone(), input_key.clone()));
                            true
                        }
                    };
                    if is_reference {
                        batch.extend(group.iter().map(|s| s.id));
                    } else if let Some(first) = group.first() {
                        batch.push(first.id);
                    }
                }
                batch
            }
            1 => {
                self.phase = 2;
                let ran: Vec<u32> = observed.points.iter().map(|p| p.scenario_id).collect();
                let completed = observed.filter(&DataFilter::all());
                let measured_time = |id: u32| -> Option<f64> {
                    completed
                        .iter()
                        .find(|p| p.scenario_id == id)
                        .map(|p| p.exec_time_secs)
                };

                // Predict unmeasured scenarios group by group.
                let groups = scaling_groups(candidates);
                let mut predictions: Vec<(u32, f64, f64)> = Vec::new(); // (id, time, cost)
                let mut reference_fit: Vec<(String, crate::regress::Fit, f64)> = Vec::new();
                for (sku, _, group) in &groups {
                    // The reference group is the one whose every member ran.
                    let all_ran = group.iter().all(|s| ran.contains(&s.id));
                    if all_ran && !reference_fit.iter().any(|(s, _, _)| s == sku) {
                        let curve: Vec<(f64, f64)> = group
                            .iter()
                            .filter_map(|s| Some((s.nnodes as f64, measured_time(s.id)?)))
                            .collect();
                        if let Some(fit) = amdahl_fit(&curve) {
                            let base_nodes = group.first().expect("non-empty").nnodes as f64;
                            reference_fit.push((sku.clone(), fit, base_nodes));
                        }
                    }
                }
                for (sku, _, group) in &groups {
                    let Some((_, fit, base_nodes)) =
                        reference_fit.iter().find(|(s, _, _)| s == sku)
                    else {
                        continue;
                    };
                    // Ratio between this input and the reference at the
                    // smallest node count.
                    let Some(anchor) = group.first() else {
                        continue;
                    };
                    let Some(anchor_time) = measured_time(anchor.id) else {
                        continue;
                    };
                    let ref_at_anchor = amdahl_eval(fit, anchor.nnodes as f64);
                    if ref_at_anchor <= 0.0 {
                        continue;
                    }
                    let ratio = anchor_time / ref_at_anchor;
                    let _ = base_nodes;
                    for s in group.iter().filter(|s| !ran.contains(&s.id)) {
                        let t = amdahl_eval(fit, s.nnodes as f64) * ratio;
                        let cost = Self::price(&s.sku) * s.nnodes as f64 * t / 3600.0;
                        predictions.push((s.id, t, cost));
                        let mut point = crate::dataset::point(
                            s.id,
                            "predicted",
                            &s.sku,
                            s.nnodes,
                            s.ppn,
                            t,
                            cost,
                        );
                        point.appinputs = s.appinputs.clone();
                        point.metrics = vec![("PREDICTED".into(), "1".into())];
                        self.predicted.push(point);
                    }
                }

                // Predicted front over measured ∪ predicted.
                let mut all: Vec<(u32, f64, f64, bool)> = completed
                    .iter()
                    .map(|p| (p.scenario_id, p.cost_dollars, p.exec_time_secs, true))
                    .collect();
                all.extend(predictions.iter().map(|(id, t, c)| (*id, *c, *t, false)));
                let objectives: Vec<(f64, f64)> = all.iter().map(|(_, c, t, _)| (*c, *t)).collect();
                let front = pareto_front(&objectives);
                let margin = 1.0 + self.margin;
                // Execute predicted scenarios on or near the front.
                let mut batch = Vec::new();
                for (i, (id, c, t, measured)) in all.iter().enumerate() {
                    if *measured {
                        continue;
                    }
                    let near_front = front.contains(&i)
                        || front.iter().any(|&f| {
                            let (fc, ft) = objectives[f];
                            *c <= fc * margin && *t <= ft * margin
                        });
                    if near_front {
                        batch.push(*id);
                    }
                }
                batch.sort_unstable();
                batch.dedup();
                batch
            }
            _ => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::advice::Advice;
    use crate::config::UserConfig;
    use crate::dataset::DataFilter;
    use crate::sampling::{front_regret, run_sampled, FullGrid};
    use crate::scenario::ScenarioStatus;
    use crate::session::Session;

    /// One SKU, two LAMMPS box factors, four node counts: the second box
    /// factor's curve is predictable from the first by a fixed factor.
    fn config() -> UserConfig {
        let mut c = UserConfig::example_lammps();
        c.skus = vec!["Standard_HB120rs_v3".into()];
        c.nnodes = vec![2, 4, 8, 16];
        c.appinputs = vec![("BOXFACTOR".into(), vec!["16".into(), "20".into()])];
        c
    }

    #[test]
    fn saves_executions_with_low_regret() {
        let mut full_session = Session::create(config(), 42).unwrap();
        let (full_ds, _) = run_sampled(&mut full_session, &mut FullGrid::new()).unwrap();
        let reference = Advice::from_dataset(&full_ds, &DataFilter::all());

        let mut session = Session::create(config(), 42).unwrap();
        let mut sampler = FixedPerfFactor::new(0.10);
        let (ds, report) = run_sampled(&mut session, &mut sampler).unwrap();
        assert!(report.executed < report.total, "{report:?}");
        // Phase 1 runs 4 (reference curve) + 1 (anchor) = 5 of 8.
        assert!(report.executed >= 5);

        let sampled = Advice::from_dataset(&ds, &DataFilter::all());
        assert!(front_regret(&reference, &sampled) < 0.10, "regret too high");
        // Predictions exist for skipped scenarios.
        let predicted = sampler.predicted();
        assert_eq!(
            predicted.len() + report.executed,
            report.total + {
                // scenarios both predicted and then executed appear in both
                // sets; count the overlap.
                let exec_ids: Vec<u32> = ds.points.iter().map(|p| p.scenario_id).collect();
                predicted
                    .points
                    .iter()
                    .filter(|p| exec_ids.contains(&p.scenario_id))
                    .count()
            }
        );
    }

    #[test]
    fn predictions_are_close_to_measurements() {
        // Run the sampler, then compare its predictions for skipped
        // scenarios against a full-grid ground truth at the same seed.
        let mut full_session = Session::create(config(), 42).unwrap();
        let (full_ds, _) = run_sampled(&mut full_session, &mut FullGrid::new()).unwrap();

        let mut session = Session::create(config(), 42).unwrap();
        let mut sampler = FixedPerfFactor::new(0.0);
        let _ = run_sampled(&mut session, &mut sampler).unwrap();
        let predicted = sampler.predicted();
        assert!(!predicted.is_empty());
        for p in &predicted.points {
            let truth = full_ds
                .points
                .iter()
                .find(|q| q.scenario_id == p.scenario_id)
                .expect("ground truth exists");
            let rel = (p.exec_time_secs - truth.exec_time_secs).abs() / truth.exec_time_secs;
            assert!(
                rel < 0.15,
                "prediction for scenario {} off by {:.0}% ({} vs {})",
                p.scenario_id,
                rel * 100.0,
                p.exec_time_secs,
                truth.exec_time_secs
            );
        }
    }

    #[test]
    fn phase_one_shape() {
        let candidates =
            crate::scenario::generate_scenarios(&config(), &cloudsim::SkuCatalog::azure_hpc())
                .unwrap();
        let mut s = FixedPerfFactor::new(0.1);
        let batch = s.next_batch(&candidates, &Dataset::new());
        // 4 reference-curve points + 1 anchor for the second input.
        assert_eq!(batch.len(), 5);
    }

    #[test]
    fn handles_all_failed_observations() {
        let candidates =
            crate::scenario::generate_scenarios(&config(), &cloudsim::SkuCatalog::azure_hpc())
                .unwrap();
        let mut s = FixedPerfFactor::new(0.1);
        let _ = s.next_batch(&candidates, &Dataset::new());
        // Observed dataset with only failed rows: no fit possible, no batch.
        let mut observed = Dataset::new();
        let mut p = crate::dataset::point(1, "lammps", "Standard_HB120rs_v3", 2, 120, 0.0, 0.0);
        p.status = ScenarioStatus::Failed;
        observed.push(p);
        let batch = s.next_batch(&candidates, &observed);
        assert!(batch.is_empty());
        assert!(s.next_batch(&candidates, &observed).is_empty());
    }
}
