//! Aggressive scenario discarding (paper §III-F, first strategy):
//! "Whenever there is evidence, at a given threshold, that a VM type will
//! probably not be part of the Pareto front, we ignore all scenarios with
//! that VM type."

use super::{scaling_groups, Sampler};
use crate::dataset::{DataFilter, Dataset};
use crate::pareto::dominates;
use crate::scenario::Scenario;

/// Two-phase sampler: probe every `(sku, input)` group at its smallest and
/// largest node counts, then run the remaining scenarios only for VM types
/// whose probes sit within `threshold` of the probe-set Pareto front.
#[derive(Debug)]
pub struct AggressiveDiscard {
    /// Relative margin: a probe survives if no other probe beats it by more
    /// than this factor in *both* objectives (e.g. 0.15 ⇒ discard only when
    /// some VM type is >15 % better in time and cost simultaneously).
    pub threshold: f64,
    phase: u8,
    /// SKUs discarded in phase 2 (exposed for reporting/tests).
    pub discarded_skus: Vec<String>,
}

impl AggressiveDiscard {
    /// Creates the sampler with a discard margin (0.15 is a sane default).
    pub fn new(threshold: f64) -> Self {
        AggressiveDiscard {
            threshold: threshold.max(0.0),
            phase: 0,
            discarded_skus: Vec::new(),
        }
    }
}

impl Sampler for AggressiveDiscard {
    fn name(&self) -> &str {
        "aggressive-discard"
    }

    fn next_batch(&mut self, candidates: &[Scenario], observed: &Dataset) -> Vec<u32> {
        match self.phase {
            0 => {
                self.phase = 1;
                // Probe: min and max node count per (sku, input) group.
                let mut batch = Vec::new();
                for (_, _, group) in scaling_groups(candidates) {
                    if let Some(first) = group.first() {
                        batch.push(first.id);
                    }
                    if group.len() > 1 {
                        batch.push(group.last().expect("non-empty").id);
                    }
                }
                batch
            }
            1 => {
                self.phase = 2;
                // Decide survivors from the observed probes.
                let completed = observed.filter(&DataFilter::all());
                let margin = 1.0 + self.threshold;
                let mut keep: Vec<String> = Vec::new();
                for p in &completed {
                    // p survives if no other completed probe dominates it
                    // even after inflating p's objectives by the margin
                    // (i.e. the other point is better by > threshold in
                    // both time and cost).
                    let beaten = completed.iter().any(|q| {
                        dominates(
                            (q.cost_dollars * margin, q.exec_time_secs * margin),
                            (p.cost_dollars, p.exec_time_secs),
                        )
                    });
                    if !beaten && !keep.contains(&p.sku) {
                        keep.push(p.sku.clone());
                    }
                }
                let ran: Vec<u32> = observed.points.iter().map(|p| p.scenario_id).collect();
                self.discarded_skus = candidates
                    .iter()
                    .map(|s| s.sku.clone())
                    .filter(|sku| !keep.contains(sku))
                    .fold(Vec::new(), |mut acc, sku| {
                        if !acc.contains(&sku) {
                            acc.push(sku);
                        }
                        acc
                    });
                candidates
                    .iter()
                    .filter(|s| keep.contains(&s.sku) && !ran.contains(&s.id))
                    .map(|s| s.id)
                    .collect()
            }
            _ => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::advice::Advice;
    use crate::config::UserConfig;
    use crate::sampling::{front_regret, run_sampled, FullGrid};
    use crate::session::Session;

    /// LAMMPS on HBv3 (cheap+fast) vs HC44rs (dominated): the discarder
    /// should skip most HC44rs scenarios.
    fn config() -> UserConfig {
        let mut c = UserConfig::example_lammps();
        c.skus = vec!["Standard_HB120rs_v3".into(), "Standard_HC44rs".into()];
        c.nnodes = vec![2, 4, 8, 16];
        c.appinputs = vec![("BOXFACTOR".into(), vec!["20".into()])];
        c
    }

    #[test]
    fn discards_dominated_sku_and_keeps_front_quality() {
        // Reference front from the full grid.
        let mut full_session = Session::create(config(), 42).unwrap();
        let mut full = FullGrid::new();
        let (full_ds, full_report) = run_sampled(&mut full_session, &mut full).unwrap();
        let reference = Advice::from_dataset(&full_ds, &DataFilter::all());

        // Sampled front.
        let mut session = Session::create(config(), 42).unwrap();
        let mut sampler = AggressiveDiscard::new(0.15);
        let (ds, report) = run_sampled(&mut session, &mut sampler).unwrap();
        let sampled = Advice::from_dataset(&ds, &DataFilter::all());

        assert_eq!(full_report.executed, 8);
        assert!(
            report.executed < full_report.executed,
            "sampling must save executions: {report:?}"
        );
        assert!(
            sampler.discarded_skus.iter().any(|s| s.contains("HC44rs")),
            "HC44rs is dominated for LAMMPS and should be discarded: {:?}",
            sampler.discarded_skus
        );
        // The front extremes survive sampling exactly (probes include the
        // min/max node counts of the winning SKU).
        assert!(front_regret(&reference, &sampled) < 0.05);
    }

    #[test]
    fn zero_threshold_is_most_aggressive() {
        let candidates = {
            let c = config();
            crate::scenario::generate_scenarios(&c, &cloudsim::SkuCatalog::azure_hpc()).unwrap()
        };
        let mut s = AggressiveDiscard::new(0.0);
        let probes = s.next_batch(&candidates, &Dataset::new());
        // 2 skus × 1 input × (min + max) = 4 probes.
        assert_eq!(probes.len(), 4);
    }

    #[test]
    fn terminates_after_phase_two() {
        let candidates = {
            let c = config();
            crate::scenario::generate_scenarios(&c, &cloudsim::SkuCatalog::azure_hpc()).unwrap()
        };
        let mut s = AggressiveDiscard::new(0.1);
        let _ = s.next_batch(&candidates, &Dataset::new());
        let _ = s.next_batch(&candidates, &Dataset::new());
        assert!(s.next_batch(&candidates, &Dataset::new()).is_empty());
    }
}
