//! Smart sampling — the paper's Section III-F optimizations for "scenario
//! generation and executions".
//!
//! The goal is not exact times for every scenario but a good Pareto front
//! with far fewer cloud executions. Three strategies from the paper are
//! implemented, all behind one iterative [`Sampler`] protocol (pick a batch
//! → run it → pick the next batch based on what was observed):
//!
//! * [`FullGrid`] — the baseline: run everything.
//! * [`AggressiveDiscard`] — probe each VM type cheaply, then *discard every
//!   scenario of VM types that show no evidence of reaching the front*.
//! * [`FixedPerfFactor`] — exploit input-parameter structure: measure one
//!   reference input's full scaling curve per VM type, measure other inputs
//!   at a single node count, extrapolate the rest by Amdahl-fit scaling,
//!   and execute only scenarios predicted near the front.
//! * [`BottleneckAware`] — walk node counts upward and stop scaling a VM
//!   type out once the infrastructure metrics say it is network-bound and
//!   no longer improving.

mod aggressive;
mod bottleneck;
pub mod partial;
mod perf_factor;

pub use aggressive::AggressiveDiscard;
pub use bottleneck::BottleneckAware;
pub use partial::{run_partial_execution, PartialExecutionReport};
pub use perf_factor::FixedPerfFactor;

use crate::advice::Advice;
use crate::dataset::Dataset;
use crate::error::ToolError;
use crate::scenario::Scenario;
use crate::session::Session;

/// An iterative scenario-selection strategy.
pub trait Sampler {
    /// Strategy name (for reports).
    fn name(&self) -> &str;
    /// Returns the scenario ids to execute next, given everything observed
    /// so far. An empty batch ends the sampling loop.
    fn next_batch(&mut self, candidates: &[Scenario], observed: &Dataset) -> Vec<u32>;
    /// Model-predicted data points for scenarios the strategy decided *not*
    /// to run (empty for strategies that don't predict).
    fn predicted(&self) -> Dataset {
        Dataset::new()
    }
}

/// The baseline: one batch containing every pending scenario.
#[derive(Debug, Default)]
pub struct FullGrid {
    issued: bool,
}

impl FullGrid {
    /// Creates the baseline sampler.
    pub fn new() -> Self {
        FullGrid::default()
    }
}

impl Sampler for FullGrid {
    fn name(&self) -> &str {
        "full-grid"
    }

    fn next_batch(&mut self, candidates: &[Scenario], _observed: &Dataset) -> Vec<u32> {
        if self.issued {
            return Vec::new();
        }
        self.issued = true;
        candidates.iter().map(|s| s.id).collect()
    }
}

/// Outcome of a sampling-driven collection.
#[derive(Debug, Clone)]
pub struct SamplingReport {
    /// Strategy name.
    pub strategy: String,
    /// Total candidate scenarios.
    pub total: usize,
    /// Scenarios actually executed.
    pub executed: usize,
    /// Scenarios skipped (total − executed).
    pub skipped: usize,
    /// Batches issued.
    pub batches: usize,
}

impl SamplingReport {
    /// Fraction of scenario executions saved.
    pub fn savings(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.skipped as f64 / self.total as f64
        }
    }
}

/// Drives a sampler against a live session: repeatedly asks for a batch,
/// executes it through the collector (Algorithm 1 pool reuse included), and
/// feeds the observations back. Returns the measured dataset and a report.
pub fn run_sampled(
    session: &mut Session,
    sampler: &mut dyn Sampler,
) -> Result<(Dataset, SamplingReport), ToolError> {
    let total = session.scenarios().len();
    let mut observed = Dataset::new();
    let mut executed = 0usize;
    let mut batches = 0usize;
    loop {
        let candidates: Vec<Scenario> = session.scenarios().to_vec();
        let batch = sampler.next_batch(&candidates, &observed);
        if batch.is_empty() {
            break;
        }
        batches += 1;
        executed += batch.len();
        let increment = session.collect_subset(&batch)?;
        observed.extend(increment);
        // Seatbelt: a sampler that keeps issuing batches cannot loop
        // forever past the candidate count.
        if executed > total * 2 {
            return Err(ToolError::NoData(format!(
                "sampler '{}' issued more executions than scenarios exist",
                sampler.name()
            )));
        }
    }
    let report = SamplingReport {
        strategy: sampler.name().to_string(),
        total,
        executed,
        skipped: total.saturating_sub(executed),
        batches,
    };
    Ok((observed, report))
}

/// Similarity between two advice tables: Jaccard index over their
/// `(sku, nodes)` configuration sets. 1.0 = identical fronts.
pub fn front_similarity(a: &Advice, b: &Advice) -> f64 {
    let set = |adv: &Advice| -> Vec<(String, u32)> {
        adv.rows.iter().map(|r| (r.sku.clone(), r.nodes)).collect()
    };
    let sa = set(a);
    let sb = set(b);
    if sa.is_empty() && sb.is_empty() {
        return 1.0;
    }
    let intersection = sa.iter().filter(|x| sb.contains(x)).count();
    let union = sa.len() + sb.len() - intersection;
    intersection as f64 / union as f64
}

/// How far the best configurations of a sampled front are from a reference
/// front, measured as the relative regret on both objectives: 0 = the
/// sampled front contains configurations as fast and as cheap as the
/// reference's extremes.
pub fn front_regret(reference: &Advice, sampled: &Advice) -> f64 {
    let best = |adv: &Advice| -> Option<(f64, f64)> {
        let t = adv
            .rows
            .iter()
            .map(|r| r.exec_time_secs)
            .fold(f64::INFINITY, f64::min);
        let c = adv
            .rows
            .iter()
            .map(|r| r.cost_dollars)
            .fold(f64::INFINITY, f64::min);
        (t.is_finite() && c.is_finite()).then_some((t, c))
    };
    match (best(reference), best(sampled)) {
        (Some((rt, rc)), Some((st, sc))) => {
            let time_regret = ((st - rt) / rt).max(0.0);
            let cost_regret = ((sc - rc) / rc).max(0.0);
            time_regret.max(cost_regret)
        }
        _ => f64::INFINITY,
    }
}

/// Groups candidate scenarios by `(sku, input-combination)` — the unit all
/// samplers reason over. Returns keys in first-seen order.
pub(crate) fn scaling_groups(candidates: &[Scenario]) -> Vec<(String, String, Vec<&Scenario>)> {
    let mut out: Vec<(String, String, Vec<&Scenario>)> = Vec::new();
    for s in candidates {
        let input_key = s
            .appinputs
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect::<Vec<_>>()
            .join(",");
        match out
            .iter_mut()
            .find(|(sku, ik, _)| *sku == s.sku && *ik == input_key)
        {
            Some((_, _, group)) => group.push(s),
            None => out.push((s.sku.clone(), input_key, vec![s])),
        }
    }
    for (_, _, group) in &mut out {
        group.sort_by_key(|s| s.nnodes);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::advice::AdviceRow;
    use crate::config::UserConfig;
    use crate::dataset::DataFilter;
    use crate::scenario::generate_scenarios;
    use cloudsim::SkuCatalog;

    fn advice_of(rows: &[(&str, u32, f64, f64)]) -> Advice {
        Advice {
            rows: rows
                .iter()
                .map(|(sku, n, t, c)| AdviceRow {
                    exec_time_secs: *t,
                    cost_dollars: *c,
                    nodes: *n,
                    ppn: 120,
                    sku: sku.to_string(),
                    appinputs: Vec::new(),
                    region: None,
                })
                .collect(),
            sort: Default::default(),
            skipped_scenarios: 0,
            capacity_comparison: None,
            placement_comparison: None,
        }
    }

    #[test]
    fn full_grid_issues_everything_once() {
        let config = UserConfig::example_openfoam();
        let scenarios = generate_scenarios(&config, &SkuCatalog::azure_hpc()).unwrap();
        let mut s = FullGrid::new();
        let batch = s.next_batch(&scenarios, &Dataset::new());
        assert_eq!(batch.len(), 36);
        assert!(s.next_batch(&scenarios, &Dataset::new()).is_empty());
    }

    #[test]
    fn run_sampled_full_grid_equals_collect() {
        let config = UserConfig::example_lammps_small();
        let mut session = Session::create(config.clone(), 42).unwrap();
        let mut sampler = FullGrid::new();
        let (ds, report) = run_sampled(&mut session, &mut sampler).unwrap();
        assert_eq!(report.executed, 3);
        assert_eq!(report.skipped, 0);
        assert_eq!(report.batches, 1);
        assert_eq!(report.savings(), 0.0);
        let mut reference = Session::create(config, 42).unwrap();
        let ref_ds = reference.collect().unwrap();
        assert_eq!(ds.len(), ref_ds.len());
        let a = Advice::from_dataset(&ds, &DataFilter::all());
        let b = Advice::from_dataset(&ref_ds, &DataFilter::all());
        assert_eq!(front_similarity(&a, &b), 1.0);
        assert_eq!(front_regret(&b, &a), 0.0);
    }

    #[test]
    fn similarity_metric() {
        let a = advice_of(&[("v3", 16, 36.0, 0.58), ("v3", 8, 69.0, 0.55)]);
        let b = advice_of(&[("v3", 16, 37.0, 0.59)]);
        assert!((front_similarity(&a, &b) - 0.5).abs() < 1e-9);
        assert_eq!(front_similarity(&a, &a), 1.0);
        let empty = advice_of(&[]);
        assert_eq!(front_similarity(&empty, &empty), 1.0);
        assert_eq!(front_similarity(&a, &empty), 0.0);
    }

    #[test]
    fn regret_metric() {
        let reference = advice_of(&[("v3", 16, 36.0, 0.576), ("v3", 3, 173.0, 0.519)]);
        // Sampled found something slightly slower but equally cheap.
        let sampled = advice_of(&[("v3", 8, 40.0, 0.519)]);
        let regret = front_regret(&reference, &sampled);
        assert!((regret - (40.0 - 36.0) / 36.0).abs() < 1e-9);
        assert_eq!(front_regret(&reference, &advice_of(&[])), f64::INFINITY);
    }

    #[test]
    fn scaling_groups_structure() {
        let config = UserConfig::example_openfoam();
        let scenarios = generate_scenarios(&config, &SkuCatalog::azure_hpc()).unwrap();
        let groups = scaling_groups(&scenarios);
        // 3 SKUs × 2 meshes.
        assert_eq!(groups.len(), 6);
        for (_, _, g) in &groups {
            assert_eq!(g.len(), 6, "six node counts per group");
            assert!(g.windows(2).all(|w| w[0].nnodes <= w[1].nnodes));
        }
    }
}
