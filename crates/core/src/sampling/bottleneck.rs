//! Infrastructure-bottleneck-aware sampling (paper §III-F, third strategy):
//! "with proper monitoring, it is also possible to identify possible
//! bottlenecks while executing the scenario via infrastructure related
//! metrics such as CPU, memory, network utilization. This can also serve as
//! a hint to identify and prioritize the next scenarios to be executed, or
//! even discarding ones that will not be part of the Pareto front."

use super::{scaling_groups, Sampler};
use crate::dataset::{DataFilter, Dataset};
use crate::scenario::Scenario;

/// Walks node counts upward one at a time per `(sku, input)` group and
/// stops scaling a group out once the latest run is network-bound (network
/// utilization above `net_threshold`) *and* the time improvement over the
/// previous node count fell below `min_improvement`.
#[derive(Debug)]
pub struct BottleneckAware {
    /// Network-utilization fraction above which a run counts as
    /// network-bound.
    pub net_threshold: f64,
    /// Minimum relative improvement to keep scaling out (e.g. 0.10 = 10 %).
    pub min_improvement: f64,
    /// `(sku, input_key)` groups that have been stopped, with the reason.
    pub stopped: Vec<(String, String, String)>,
    done: bool,
}

impl BottleneckAware {
    /// Creates the sampler with the given thresholds.
    pub fn new(net_threshold: f64, min_improvement: f64) -> Self {
        BottleneckAware {
            net_threshold,
            min_improvement,
            stopped: Vec::new(),
            done: false,
        }
    }

    fn is_stopped(&self, sku: &str, input_key: &str) -> bool {
        self.stopped
            .iter()
            .any(|(s, i, _)| s == sku && i == input_key)
    }
}

impl Sampler for BottleneckAware {
    fn name(&self) -> &str {
        "bottleneck-aware"
    }

    fn next_batch(&mut self, candidates: &[Scenario], observed: &Dataset) -> Vec<u32> {
        if self.done {
            return Vec::new();
        }
        let ran: Vec<u32> = observed.points.iter().map(|p| p.scenario_id).collect();
        let completed = observed.filter(&DataFilter::all());
        let mut batch = Vec::new();
        for (sku, input_key, group) in scaling_groups(candidates) {
            if self.is_stopped(&sku, &input_key) {
                continue;
            }
            // Observed runs of this group, ascending by node count.
            let mut seen: Vec<(u32, f64, f64)> = group
                .iter()
                .filter_map(|s| {
                    completed.iter().find(|p| p.scenario_id == s.id).map(|p| {
                        let net = p
                            .infra_metric("net")
                            .and_then(|v| v.parse::<f64>().ok())
                            .unwrap_or(0.0);
                        (s.nnodes, p.exec_time_secs, net)
                    })
                })
                .collect();
            seen.sort_by_key(|(n, _, _)| *n);
            // Stop criterion on the last two runs.
            if seen.len() >= 2 {
                let (_, t_prev, _) = seen[seen.len() - 2];
                let (n_last, t_last, net_last) = seen[seen.len() - 1];
                let improvement = (t_prev - t_last) / t_prev;
                if net_last >= self.net_threshold && improvement < self.min_improvement {
                    self.stopped.push((
                        sku.clone(),
                        input_key.clone(),
                        format!(
                            "network-bound at {n_last} nodes (net={net_last:.2}, improvement={:.1}%)",
                            improvement * 100.0
                        ),
                    ));
                    continue;
                }
            }
            // Next unexecuted node count in this group.
            if let Some(next) = group.iter().find(|s| !ran.contains(&s.id)) {
                batch.push(next.id);
            }
        }
        if batch.is_empty() {
            self.done = true;
        }
        batch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::advice::Advice;
    use crate::config::UserConfig;
    use crate::sampling::{front_regret, run_sampled, FullGrid};
    use crate::session::Session;

    /// GROMACS at 1 M atoms saturates early: scaling past a few nodes is
    /// network-dominated, which the infra metrics expose.
    fn config() -> UserConfig {
        UserConfig::from_yaml(
            r#"
subscription: mysubscription
skus:
- Standard_HB120rs_v3
rgprefix: btest
appsetupurl: https://example.com/scripts/gromacs.sh
nnodes: [1, 2, 4, 8, 12, 16]
appname: gromacs
region: southcentralus
ppr: 100
appinputs:
  atoms: "100000"
  steps: "20000"
"#,
        )
        .unwrap()
    }

    #[test]
    fn stops_scaling_when_network_bound() {
        let mut session = Session::create(config(), 42).unwrap();
        let mut sampler = BottleneckAware::new(0.55, 0.35);
        let (ds, report) = run_sampled(&mut session, &mut sampler).unwrap();
        assert!(
            report.executed < report.total,
            "should stop before 16 nodes: {report:?}"
        );
        assert!(!sampler.stopped.is_empty(), "a stop must be recorded");
        assert!(sampler.stopped[0].2.contains("network-bound"));
        // The observed data still yields a usable front.
        assert!(!Advice::from_dataset(&ds, &DataFilter::all())
            .rows
            .is_empty());
    }

    #[test]
    fn low_thresholds_keep_everything_for_compute_bound_app() {
        // LAMMPS at a large box stays compute-bound: nothing gets stopped.
        let mut c = UserConfig::example_lammps_small();
        c.nnodes = vec![1, 2, 4];
        let mut session = Session::create(c, 42).unwrap();
        let mut sampler = BottleneckAware::new(0.5, 0.10);
        let (_, report) = run_sampled(&mut session, &mut sampler).unwrap();
        assert_eq!(report.executed, report.total);
        assert!(sampler.stopped.is_empty());
    }

    #[test]
    fn front_quality_close_to_full_grid() {
        let mut full_session = Session::create(config(), 42).unwrap();
        let (full_ds, _) = run_sampled(&mut full_session, &mut FullGrid::new()).unwrap();
        let reference = Advice::from_dataset(&full_ds, &DataFilter::all());

        let mut session = Session::create(config(), 42).unwrap();
        let mut sampler = BottleneckAware::new(0.55, 0.35);
        let (ds, _) = run_sampled(&mut session, &mut sampler).unwrap();
        let sampled = Advice::from_dataset(&ds, &DataFilter::all());
        // The cheap end of the front is found exactly; the fast end may be
        // curtailed if scaling stops early — that is the strategy's
        // deliberate trade-off, so only require bounded regret.
        assert!(front_regret(&reference, &sampled) < 0.6);
    }

    #[test]
    fn batches_are_one_per_group_walk() {
        let candidates =
            crate::scenario::generate_scenarios(&config(), &cloudsim::SkuCatalog::azure_hpc())
                .unwrap();
        let mut s = BottleneckAware::new(0.5, 0.1);
        let b1 = s.next_batch(&candidates, &Dataset::new());
        assert_eq!(b1.len(), 1, "one group ⇒ one scenario per batch");
    }
}
