//! Deterministic retry policy for the collection loop.
//!
//! The paper's Algorithm 1 assumes the cloud eventually cooperates; real
//! sweeps hit capacity blips, unhealthy boots and node loss. A
//! [`RetryPolicy`] retries *transient* faults with exponential backoff on
//! the simulated clock — seeded jitter, so a sweep replays identically —
//! while *permanent* faults fail fast and quota exhaustion skips the rest
//! of the SKU instead of burning attempts.

use batchsim::BatchError;
use cloudsim::CloudError;

/// How a collection-layer failure should be handled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultClass {
    /// Retry with backoff: injected transient faults, capacity blips.
    Transient,
    /// No attempt on this SKU can ever succeed (family quota exhausted):
    /// skip its remaining scenarios, keep the other shards running.
    PermanentForSku,
    /// Retrying cannot help (hard rejections, config errors): fail fast.
    Permanent,
}

/// Classifies a cloud control-plane error for retry purposes.
pub fn classify_cloud(e: &CloudError) -> FaultClass {
    match e {
        CloudError::QuotaExceeded { .. } => FaultClass::PermanentForSku,
        CloudError::ProvisioningFailed {
            transient: true, ..
        } => FaultClass::Transient,
        _ => FaultClass::Permanent,
    }
}

/// Classifies a batch-layer error for retry purposes.
pub fn classify_batch(e: &BatchError) -> FaultClass {
    match e {
        BatchError::Cloud(c) => classify_cloud(c),
        _ => FaultClass::Permanent,
    }
}

/// A deterministic retry/backoff schedule.
///
/// Backoff for retry `n` (1-based) is `base · 2^(n-1)` capped at `max`,
/// scaled by a jitter factor in `[0.8, 1.2)` derived from a stateless hash
/// of `(jitter_seed, scope, attempt)` — no RNG state, so serial and
/// parallel collects advance the clock identically per scope.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts per operation (1 = no retries).
    pub max_attempts: u32,
    /// Backoff before the first retry, in simulated seconds.
    pub base_backoff_secs: f64,
    /// Upper bound on a single backoff, in simulated seconds.
    pub max_backoff_secs: f64,
    /// Seed for the jitter hash.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_backoff_secs: 30.0,
            max_backoff_secs: 300.0,
            jitter_seed: 0,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries.
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        }
    }

    /// A policy retrying up to `max_attempts` total attempts.
    pub fn with_max_attempts(max_attempts: u32) -> Self {
        RetryPolicy {
            max_attempts: max_attempts.max(1),
            ..RetryPolicy::default()
        }
    }

    /// Whether the policy retries at all.
    pub fn enabled(&self) -> bool {
        self.max_attempts > 1
    }

    /// Simulated seconds to back off before retry `attempt` (1-based: the
    /// first retry is attempt 1) of an operation in `scope`.
    pub fn backoff_secs(&self, scope: &str, attempt: u32) -> f64 {
        let exp = attempt.saturating_sub(1).min(32);
        let raw = self.base_backoff_secs * f64::from(1u32 << exp.min(31));
        let capped = raw.min(self.max_backoff_secs);
        capped * jitter(self.jitter_seed, scope, attempt)
    }
}

/// Stateless jitter factor in `[0.8, 1.2)` via 64-bit FNV-1a.
fn jitter(seed: u64, scope: &str, attempt: u32) -> f64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for chunk in [
        &seed.to_le_bytes()[..],
        scope.as_bytes(),
        &attempt.to_le_bytes()[..],
    ] {
        for &b in chunk {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
        h ^= 0x1f;
        h = h.wrapping_mul(PRIME);
    }
    let unit = (h >> 11) as f64 / (1u64 << 53) as f64;
    0.8 + 0.4 * unit
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_retries() {
        let p = RetryPolicy::default();
        assert!(p.enabled());
        assert_eq!(p.max_attempts, 3);
        assert!(!RetryPolicy::none().enabled());
        // with_max_attempts never drops below one attempt.
        assert_eq!(RetryPolicy::with_max_attempts(0).max_attempts, 1);
    }

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let p = RetryPolicy {
            jitter_seed: 1,
            ..RetryPolicy::default()
        };
        let b1 = p.backoff_secs("s", 1);
        let b2 = p.backoff_secs("s", 2);
        let b3 = p.backoff_secs("s", 3);
        // Jitter is within ±20%, so doubling dominates it.
        assert!((0.8 * 30.0..1.2 * 30.0).contains(&b1), "{b1}");
        assert!(b2 > b1, "{b2} vs {b1}");
        assert!(b3 > b2, "{b3} vs {b2}");
        // Deep attempts cap at max (± jitter).
        let deep = p.backoff_secs("s", 20);
        assert!(deep <= 1.2 * p.max_backoff_secs, "{deep}");
        assert!(deep >= 0.8 * p.max_backoff_secs, "{deep}");
    }

    #[test]
    fn backoff_is_deterministic_per_scope() {
        let p = RetryPolicy::default();
        assert_eq!(p.backoff_secs("a", 1), p.backoff_secs("a", 1));
        assert_ne!(p.backoff_secs("a", 1), p.backoff_secs("b", 1));
    }

    #[test]
    fn classification() {
        let quota = CloudError::QuotaExceeded {
            family: "HC".into(),
            requested: 100,
            available: 10,
        };
        assert_eq!(classify_cloud(&quota), FaultClass::PermanentForSku);
        let transient = CloudError::ProvisioningFailed {
            operation: "allocate nodes".into(),
            reason: "injected".into(),
            transient: true,
        };
        assert_eq!(classify_cloud(&transient), FaultClass::Transient);
        let hard = CloudError::UnknownSku("X".into());
        assert_eq!(classify_cloud(&hard), FaultClass::Permanent);

        assert_eq!(
            classify_batch(&BatchError::Cloud(quota)),
            FaultClass::PermanentForSku
        );
        assert_eq!(
            classify_batch(&BatchError::PoolUnavailable { pool: "p".into() }),
            FaultClass::Permanent
        );
    }
}
