//! Scenario generation and the persistent task list.
//!
//! "The first step is to create the list of scenarios (or tasks) to be
//! executed based on the main configuration file. Here we take all the VM
//! types, number of nodes, processes per node, and application input
//! parameters to generate all combinations. This list is recorded and
//! stored in a JSON file. The list also contains the status of the task,
//! which can be pending, failed, or completed." — paper, Section III-C.

use crate::config::UserConfig;
use crate::error::ToolError;
use cloudsim::SkuCatalog;
use hpcadvisor_formats::{json, OrderedMap, Value};

/// Task status as recorded in the scenario list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScenarioStatus {
    /// Not yet executed.
    Pending,
    /// Executed successfully.
    Completed,
    /// Executed and failed (or could not run).
    Failed,
    /// Deliberately not executed: the run degraded gracefully (e.g. the
    /// SKU's quota was exhausted mid-run) and will re-attempt on the next
    /// collect. Unlike `Failed`, no execution evidence exists for the
    /// scenario.
    Skipped,
    /// Killed by the per-scenario deadline watchdog: the scenario hung or
    /// thrashed (e.g. eviction loops on spot capacity) past its wall-clock
    /// budget. Terminal like `Failed`, but the evidence is "ran out of
    /// time", not an execution error.
    TimedOut,
}

impl ScenarioStatus {
    /// The status string stored in the JSON task list.
    pub fn as_str(&self) -> &'static str {
        match self {
            ScenarioStatus::Pending => "pending",
            ScenarioStatus::Completed => "completed",
            ScenarioStatus::Failed => "failed",
            ScenarioStatus::Skipped => "skipped",
            ScenarioStatus::TimedOut => "timedout",
        }
    }

    /// Parses a stored status string.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "pending" => Some(ScenarioStatus::Pending),
            "completed" => Some(ScenarioStatus::Completed),
            "failed" => Some(ScenarioStatus::Failed),
            "skipped" => Some(ScenarioStatus::Skipped),
            "timedout" => Some(ScenarioStatus::TimedOut),
            _ => None,
        }
    }
}

/// One point of the configuration grid.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Stable id (1-based position in the generated list).
    pub id: u32,
    /// VM type.
    pub sku: String,
    /// Number of nodes.
    pub nnodes: u32,
    /// Processes per node (from `ppr` % of the SKU's cores).
    pub ppn: u32,
    /// Application input assignment for this point.
    pub appinputs: Vec<(String, String)>,
    /// Requested placement region. `None` means the deployment's home
    /// region — the only case before multi-region grids existed, so it is
    /// omitted from the JSON task list to keep old lists byte-identical.
    pub region: Option<String>,
    /// Execution status.
    pub status: ScenarioStatus,
}

impl Scenario {
    /// Human-readable label, used as the batch task name.
    pub fn label(&self, appname: &str) -> String {
        let mut s = format!(
            "{appname}-{}-n{}-ppn{}",
            self.sku.to_ascii_lowercase().replace("standard_", ""),
            self.nnodes,
            self.ppn
        );
        for (k, v) in &self.appinputs {
            s.push_str(&format!("-{k}={}", v.replace(' ', "_")));
        }
        if let Some(region) = &self.region {
            s.push_str(&format!("-{region}"));
        }
        s
    }

    /// Total MPI ranks.
    pub fn ranks(&self) -> u64 {
        self.nnodes as u64 * self.ppn as u64
    }
}

/// Expands the configuration into the full scenario list.
///
/// The list is ordered SKU-major so Algorithm 1's pool reuse kicks in (one
/// pool per VM type), then by node count ascending (pool grows, never
/// shrinks, within one SKU — "the number of nodes ... is then incremented
/// in the pool").
pub fn generate_scenarios(
    config: &UserConfig,
    catalog: &SkuCatalog,
) -> Result<Vec<Scenario>, ToolError> {
    // An empty `regions` list is the legacy single-region grid: every
    // scenario carries `region: None` and runs in the deployment's home
    // region, keeping the task list (and everything fingerprinted from it)
    // byte-identical to pre-placement versions. A non-empty list multiplies
    // the grid, region-major inside each SKU so one pool per (SKU, region)
    // is reused across node counts.
    let region_catalog = cloudsim::RegionCatalog::azure();
    let mut placements: Vec<Option<&cloudsim::Region>> = Vec::new();
    if config.regions.is_empty() {
        placements.push(None);
    } else {
        for name in &config.regions {
            let region = region_catalog.get(name).ok_or_else(|| {
                ToolError::Config(format!(
                    "unknown region '{name}'; known regions: {}",
                    region_catalog.names().join(", ")
                ))
            })?;
            placements.push(Some(region));
        }
    }
    let mut out = Vec::new();
    let mut id = 1u32;
    let combos = input_combinations(&config.appinputs);
    for sku_name in &config.skus {
        let sku = catalog
            .get(sku_name)
            .ok_or_else(|| ToolError::Cloud(cloudsim::CloudError::UnknownSku(sku_name.clone())))?;
        let ppn = (sku.cores * config.ppr / 100).max(1);
        let mut nnodes = config.nnodes.clone();
        nnodes.sort_unstable();
        for placement in &placements {
            // (SKU, region) pairs the region does not offer are dropped up
            // front rather than generated and failed.
            if let Some(region) = placement {
                if !region.offers_family(&sku.family) {
                    continue;
                }
            }
            for n in &nnodes {
                for combo in &combos {
                    out.push(Scenario {
                        id,
                        sku: sku.name.clone(),
                        nnodes: *n,
                        ppn,
                        appinputs: combo.clone(),
                        region: placement.map(|r| r.name.clone()),
                        status: ScenarioStatus::Pending,
                    });
                    id += 1;
                }
            }
        }
    }
    Ok(out)
}

/// Cartesian product over the input sweep.
fn input_combinations(appinputs: &[(String, Vec<String>)]) -> Vec<Vec<(String, String)>> {
    let mut combos: Vec<Vec<(String, String)>> = vec![Vec::new()];
    for (key, values) in appinputs {
        if values.is_empty() {
            continue;
        }
        let mut next = Vec::with_capacity(combos.len() * values.len());
        for combo in &combos {
            for v in values {
                let mut c = combo.clone();
                c.push((key.clone(), v.clone()));
                next.push(c);
            }
        }
        combos = next;
    }
    combos
}

/// Serializes the scenario list to the tool's JSON task-list format.
pub fn to_json(scenarios: &[Scenario]) -> String {
    let items: Vec<Value> = scenarios
        .iter()
        .map(|s| {
            let mut m = OrderedMap::new();
            m.insert("id", Value::Int(s.id as i64));
            m.insert("sku", Value::str(&s.sku));
            m.insert("nnodes", Value::Int(s.nnodes as i64));
            m.insert("ppn", Value::Int(s.ppn as i64));
            let mut inputs = OrderedMap::new();
            for (k, v) in &s.appinputs {
                inputs.insert(k.clone(), Value::str(v));
            }
            m.insert("appinputs", Value::Map(inputs));
            // None (home region) is omitted so pre-placement task lists
            // stay byte-identical.
            if let Some(region) = &s.region {
                m.insert("region", Value::str(region));
            }
            m.insert("status", Value::str(s.status.as_str()));
            Value::Map(m)
        })
        .collect();
    json::to_string_pretty(&Value::Seq(items))
}

/// Parses a stored scenario list.
pub fn from_json(text: &str) -> Result<Vec<Scenario>, ToolError> {
    let doc = json::parse(text)?;
    let items = doc
        .as_seq()
        .ok_or_else(|| ToolError::Config("scenario list must be a JSON array".into()))?;
    let mut out = Vec::with_capacity(items.len());
    for item in items {
        let get_int = |k: &str| -> Result<i64, ToolError> {
            item.get(k)
                .and_then(|v| v.as_int())
                .ok_or_else(|| ToolError::Config(format!("scenario missing integer '{k}'")))
        };
        let get_str = |k: &str| -> Result<String, ToolError> {
            item.get(k)
                .and_then(|v| v.as_str())
                .map(|s| s.to_string())
                .ok_or_else(|| ToolError::Config(format!("scenario missing string '{k}'")))
        };
        let mut appinputs = Vec::new();
        if let Some(m) = item.get("appinputs").and_then(|v| v.as_map()) {
            for (k, v) in m.iter() {
                appinputs.push((k.to_string(), v.to_plain_string()));
            }
        }
        let status_str = get_str("status")?;
        out.push(Scenario {
            id: get_int("id")? as u32,
            sku: get_str("sku")?,
            nnodes: get_int("nnodes")? as u32,
            ppn: get_int("ppn")? as u32,
            appinputs,
            region: item
                .get("region")
                .and_then(|v| v.as_str())
                .map(|s| s.to_string()),
            status: ScenarioStatus::parse(&status_str)
                .ok_or_else(|| ToolError::Config(format!("bad status '{status_str}'")))?,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn listing1_expands_to_36_scenarios() {
        let config = UserConfig::example_openfoam();
        let catalog = SkuCatalog::azure_hpc();
        let scenarios = generate_scenarios(&config, &catalog).unwrap();
        assert_eq!(scenarios.len(), 36);
        // SKU-major ordering with ascending node counts inside each SKU.
        assert!(scenarios[..12].iter().all(|s| s.sku == "Standard_HC44rs"));
        let nodes: Vec<u32> = scenarios[..12].iter().map(|s| s.nnodes).collect();
        assert_eq!(nodes, vec![1, 1, 2, 2, 3, 3, 4, 4, 8, 8, 16, 16]);
        // ppn = 100% of cores.
        assert_eq!(scenarios[0].ppn, 44);
        assert_eq!(scenarios[12].ppn, 120);
        // Ids are stable 1..=36.
        assert_eq!(scenarios.first().unwrap().id, 1);
        assert_eq!(scenarios.last().unwrap().id, 36);
        assert!(scenarios
            .iter()
            .all(|s| s.status == ScenarioStatus::Pending));
    }

    #[test]
    fn ppr_scales_ppn() {
        let mut config = UserConfig::example_openfoam();
        config.ppr = 50;
        let catalog = SkuCatalog::azure_hpc();
        let scenarios = generate_scenarios(&config, &catalog).unwrap();
        assert_eq!(scenarios[0].ppn, 22, "50% of HC44rs' 44 cores");
        assert_eq!(scenarios[12].ppn, 60, "50% of 120 cores");
    }

    #[test]
    fn multi_parameter_cartesian_product() {
        let combos = input_combinations(&[
            ("a".into(), vec!["1".into(), "2".into()]),
            ("b".into(), vec!["x".into(), "y".into(), "z".into()]),
        ]);
        assert_eq!(combos.len(), 6);
        assert!(combos.contains(&vec![("a".into(), "2".into()), ("b".into(), "y".into())]));
    }

    #[test]
    fn unknown_sku_rejected() {
        let mut config = UserConfig::example_openfoam();
        config.skus.push("Standard_Bogus".into());
        let catalog = SkuCatalog::azure_hpc();
        assert!(generate_scenarios(&config, &catalog).is_err());
    }

    #[test]
    fn json_roundtrip() {
        let config = UserConfig::example_openfoam();
        let catalog = SkuCatalog::azure_hpc();
        let mut scenarios = generate_scenarios(&config, &catalog).unwrap();
        scenarios[3].status = ScenarioStatus::Completed;
        scenarios[5].status = ScenarioStatus::Failed;
        let text = to_json(&scenarios);
        let back = from_json(&text).unwrap();
        assert_eq!(scenarios, back);
    }

    #[test]
    fn labels_are_informative() {
        let config = UserConfig::example_lammps();
        let catalog = SkuCatalog::azure_hpc();
        let scenarios = generate_scenarios(&config, &catalog).unwrap();
        let s = scenarios
            .iter()
            .find(|s| s.nnodes == 16 && s.sku.contains("v3"))
            .unwrap();
        assert_eq!(
            s.label("lammps"),
            "lammps-hb120rs_v3-n16-ppn120-BOXFACTOR=30"
        );
        assert_eq!(s.ranks(), 1920);
    }

    #[test]
    fn multi_region_grid_multiplies_filters_and_roundtrips() {
        let mut config = UserConfig::example_lammps_small();
        config.regions = vec!["southcentralus".into(), "westeurope".into()];
        let catalog = SkuCatalog::azure_hpc();
        let scenarios = generate_scenarios(&config, &catalog).unwrap();
        // 1 SKU × 3 node counts × 1 input × 2 regions.
        assert_eq!(scenarios.len(), 6);
        // Region-major inside the SKU: all southcentralus first.
        assert!(scenarios[..3]
            .iter()
            .all(|s| s.region.as_deref() == Some("southcentralus")));
        assert!(scenarios[3..]
            .iter()
            .all(|s| s.region.as_deref() == Some("westeurope")));
        // Ids stay stable 1..=6 and the region survives the JSON task list.
        let back = from_json(&to_json(&scenarios)).unwrap();
        assert_eq!(back, scenarios);
        // The region shows in the task label so logs disambiguate placements.
        assert!(scenarios[5].label("lammps").ends_with("-westeurope"));

        // A (SKU, region) pair the region does not offer is dropped up
        // front: japaneast lacks the HB (Naples) family entirely.
        let mut config = UserConfig::example_lammps_small();
        config.skus = vec!["Standard_HB60rs".into()];
        config.regions = vec!["southcentralus".into(), "japaneast".into()];
        let scenarios = generate_scenarios(&config, &catalog).unwrap();
        assert_eq!(scenarios.len(), 3, "japaneast offers no HB-family SKUs");
        assert!(scenarios
            .iter()
            .all(|s| s.region.as_deref() == Some("southcentralus")));
    }

    #[test]
    fn unknown_region_rejected_with_catalog_listing() {
        let mut config = UserConfig::example_lammps_small();
        config.regions = vec!["atlantis".into()];
        let catalog = SkuCatalog::azure_hpc();
        let err = generate_scenarios(&config, &catalog).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("unknown region 'atlantis'"), "{msg}");
        assert!(msg.contains("southcentralus"), "lists the catalog: {msg}");
    }

    #[test]
    fn single_region_task_list_bytes_unchanged() {
        // The serialized task list of a region-less config must not contain
        // a region key at all — old lists and new ones are interchangeable.
        let config = UserConfig::example_lammps_small();
        let catalog = SkuCatalog::azure_hpc();
        let scenarios = generate_scenarios(&config, &catalog).unwrap();
        assert!(scenarios.iter().all(|s| s.region.is_none()));
        let text = to_json(&scenarios);
        assert!(!text.contains("\"region\""));
    }

    #[test]
    fn status_parse_roundtrip() {
        for s in [
            ScenarioStatus::Pending,
            ScenarioStatus::Completed,
            ScenarioStatus::Failed,
            ScenarioStatus::Skipped,
            ScenarioStatus::TimedOut,
        ] {
            assert_eq!(ScenarioStatus::parse(s.as_str()), Some(s));
        }
        assert_eq!(ScenarioStatus::parse("running"), None);
    }
}
