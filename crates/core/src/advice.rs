//! Advice generation (paper Section III-E, Listings 3–4) plus the
//! "comprehensive advice" extension (Slurm-recipe generation) from the
//! paper's future-work list.

use crate::dataset::{DataFilter, Dataset};
use crate::pareto::pareto_front;
use crate::scenario::ScenarioStatus;
use cloudsim::Capacity;

/// How the advice table is sorted. "The advice data presented here is
/// sorted by the least execution time first, but the tool has the option to
/// have the data sorted by cost as well."
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AdviceSort {
    /// Fastest first (the paper's listings).
    #[default]
    ByTime,
    /// Cheapest first.
    ByCost,
}

/// One Pareto-efficient configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct AdviceRow {
    /// Execution time in seconds.
    pub exec_time_secs: f64,
    /// Cost in USD.
    pub cost_dollars: f64,
    /// Node count.
    pub nodes: u32,
    /// Processes per node.
    pub ppn: u32,
    /// Short SKU name (as the paper prints it).
    pub sku: String,
    /// Appinput combination the row was measured at.
    pub appinputs: Vec<(String, String)>,
    /// Region the row's measurement actually ran in (after any failover).
    /// `None` for single-region sweeps, where every row ran in the
    /// deployment's home region.
    pub region: Option<String>,
}

/// Aggregate spot-vs-dedicated comparison, available when the dataset
/// carries completed points in both capacity classes.
#[derive(Debug, Clone, PartialEq)]
pub struct CapacityComparison {
    /// Completed spot rows.
    pub spot_completed: usize,
    /// Spot rows that did not complete (failed or timed out).
    pub spot_unfinished: usize,
    /// Total spot evictions recorded in the spot rows' `EVICTIONS` metric.
    pub evictions: u64,
    /// Scenario ids completed in both classes, feeding the cost delta.
    pub pairs: usize,
    /// Mean fractional cost delta of spot vs dedicated over the paired
    /// scenarios (negative ⇒ spot cheaper, e.g. -0.35 = 35% cheaper even
    /// after paying for evicted attempts).
    pub mean_cost_delta: f64,
}

/// One region's outcome tally in a multi-region sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct RegionReport {
    /// Region name (catalog-canonical).
    pub region: String,
    /// Rows that completed in this region.
    pub completed: usize,
    /// Rows that failed or timed out in this region.
    pub unfinished: usize,
    /// Rows degraded to SLA skips while targeting this region.
    pub sla_skipped: usize,
    /// Mean fractional cost premium of this region's completed rows over
    /// the cheapest completed row of the same configuration (SKU, nodes,
    /// ppn, appinputs) in any region. 0.0 means this region was the
    /// cheapest for every configuration it completed.
    pub mean_cost_premium: f64,
}

/// Per-region completion/cost/SLA deltas, present when the dataset carries
/// placed rows (a multi-region sweep).
#[derive(Debug, Clone, PartialEq)]
pub struct PlacementComparison {
    /// One report per region, sorted by region name.
    pub regions: Vec<RegionReport>,
}

impl CapacityComparison {
    /// Spot completion rate over the rows that ran on spot capacity.
    pub fn spot_completion_rate(&self) -> f64 {
        let total = self.spot_completed + self.spot_unfinished;
        if total == 0 {
            return 0.0;
        }
        self.spot_completed as f64 / total as f64
    }
}

/// The advice: the Pareto front of the filtered dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct Advice {
    /// Pareto-efficient rows in the requested order.
    pub rows: Vec<AdviceRow>,
    /// How `rows` is sorted.
    pub sort: AdviceSort,
    /// Scenarios the collection deliberately dropped — skipped (quota or
    /// budget degradation) or killed by the deadline watchdog. When nonzero
    /// the advice was computed from a partial grid and
    /// [`Advice::render_text`] says so.
    pub skipped_scenarios: usize,
    /// Spot-vs-dedicated comparison, present when the dataset holds
    /// completed points in both capacity classes.
    pub capacity_comparison: Option<CapacityComparison>,
    /// Per-region placement deltas, present when the dataset holds placed
    /// rows (a multi-region sweep).
    pub placement_comparison: Option<PlacementComparison>,
}

impl Advice {
    /// Computes the Pareto front of the filtered dataset, fastest first.
    pub fn from_dataset(ds: &Dataset, filter: &DataFilter) -> Advice {
        Advice::from_dataset_sorted(ds, filter, AdviceSort::ByTime)
    }

    /// Computes the Pareto front with an explicit sort order.
    pub fn from_dataset_sorted(ds: &Dataset, filter: &DataFilter, sort: AdviceSort) -> Advice {
        let points = ds.filter(filter);
        let objectives: Vec<(f64, f64)> = points
            .iter()
            .map(|p| (p.cost_dollars, p.exec_time_secs))
            .collect();
        let front = pareto_front(&objectives);
        let mut rows: Vec<AdviceRow> = front
            .into_iter()
            .map(|i| {
                let p = points[i];
                AdviceRow {
                    exec_time_secs: p.exec_time_secs,
                    cost_dollars: p.cost_dollars,
                    nodes: p.nnodes,
                    ppn: p.ppn,
                    sku: p.sku_short(),
                    appinputs: p.appinputs.clone(),
                    region: p.region.clone(),
                }
            })
            .collect();
        match sort {
            AdviceSort::ByTime => {
                rows.sort_by(|a, b| a.exec_time_secs.total_cmp(&b.exec_time_secs))
            }
            AdviceSort::ByCost => rows.sort_by(|a, b| a.cost_dollars.total_cmp(&b.cost_dollars)),
        }
        let skipped_scenarios = ds
            .points
            .iter()
            .filter(|p| p.status == ScenarioStatus::Skipped || p.status == ScenarioStatus::TimedOut)
            .count();
        Advice {
            rows,
            sort,
            skipped_scenarios,
            capacity_comparison: compare_capacity(ds),
            placement_comparison: compare_placement(ds),
        }
    }

    /// Renders the advice table in the paper's Listing 3/4 format:
    ///
    /// ```text
    /// Exectime(s)  Cost($)  Nodes  SKU
    /// 34           0.5440   16     hb120rs_v3
    /// ```
    pub fn render_text(&self) -> String {
        let mut out = String::from("Exectime(s)  Cost($)  Nodes  SKU\n");
        for r in &self.rows {
            // Placed rows carry their region on the SKU axis, so a front
            // mixing regions stays unambiguous (hb120rs_v3@westeurope).
            let sku = match &r.region {
                Some(region) => format!("{}@{}", r.sku, region),
                None => r.sku.clone(),
            };
            out.push_str(&format!(
                "{:<12} {:<8.4} {:<6} {}\n",
                r.exec_time_secs.round() as i64,
                r.cost_dollars,
                r.nodes,
                sku
            ));
        }
        if self.skipped_scenarios > 0 {
            out.push_str(&format!(
                "note: partial grid — {} scenario{} skipped (e.g. quota) or timed out; rerun collect to fill in\n",
                self.skipped_scenarios,
                if self.skipped_scenarios == 1 { "" } else { "s" },
            ));
        }
        if let Some(c) = &self.capacity_comparison {
            out.push_str(&format!(
                "capacity: spot completed {}/{} ({:.0}%, {} eviction{}); \
                 spot vs dedicated cost over {} paired scenario{}: {:+.1}%\n",
                c.spot_completed,
                c.spot_completed + c.spot_unfinished,
                c.spot_completion_rate() * 100.0,
                c.evictions,
                if c.evictions == 1 { "" } else { "s" },
                c.pairs,
                if c.pairs == 1 { "" } else { "s" },
                c.mean_cost_delta * 100.0,
            ));
        }
        if let Some(p) = &self.placement_comparison {
            for r in &p.regions {
                let total = r.completed + r.unfinished + r.sla_skipped;
                out.push_str(&format!(
                    "placement {}: {}/{} completed",
                    r.region, r.completed, total
                ));
                if r.sla_skipped > 0 {
                    out.push_str(&format!(
                        ", {} SLA skip{}",
                        r.sla_skipped,
                        if r.sla_skipped == 1 { "" } else { "s" },
                    ));
                }
                if r.completed > 0 {
                    out.push_str(&format!(
                        ", cost {:+.1}% vs cheapest region",
                        r.mean_cost_premium * 100.0
                    ));
                }
                out.push('\n');
            }
        }
        out
    }

    /// Generates a ready-to-submit Slurm batch script for one advice row —
    /// the paper's envisioned "recipes to run jobs (e.g., Slurm scripts)".
    pub fn slurm_recipe(&self, row: &AdviceRow, appname: &str) -> String {
        let mut inputs = String::new();
        for (k, v) in &row.appinputs {
            inputs.push_str(&format!("export {k}=\"{v}\"\n"));
        }
        format!(
            "#!/bin/bash\n\
             #SBATCH --job-name={appname}\n\
             #SBATCH --nodes={nodes}\n\
             #SBATCH --ntasks-per-node={ppn}\n\
             #SBATCH --exclusive\n\
             #SBATCH --partition={sku}\n\
             # Estimated execution time: {time:.0} s; estimated VM cost: ${cost:.4}\n\
             # Generated by hpcadvisor (Pareto-efficient configuration)\n\
             {inputs}\
             srun --mpi=pmix {appname}\n",
            appname = appname,
            nodes = row.nodes,
            ppn = row.ppn,
            sku = row.sku,
            time = row.exec_time_secs,
            cost = row.cost_dollars,
            inputs = inputs,
        )
    }
}

impl Advice {
    /// Generates a cluster-creation recipe for one advice row — the other
    /// half of the paper's "comprehensive advice" future work ("computing
    /// environment creation/modification, e.g., cluster creation or
    /// scheduling queue creation/modification"). The output mirrors the
    /// tool's own deployment sequence as a reusable shell script.
    pub fn cluster_recipe(&self, row: &AdviceRow, appname: &str, region: &str) -> String {
        let sku_full = format!("Standard_{}", row.sku.to_uppercase());
        // A placed row was measured in a specific region; the recipe
        // deploys there rather than in the session's home region.
        let region = row.region.as_deref().unwrap_or(region);
        format!(
            "#!/bin/bash\n\
             # Cluster recipe generated by hpcadvisor for '{appname}'\n\
             # Pareto-efficient configuration: {nodes} x {sku} ({ppn} procs/node)\n\
             # Estimated run: {time:.0} s, ~${cost:.4} in VM cost per execution\n\
             set -euo pipefail\n\
             RG=hpcadvisor-{appname}\n\
             az group create --name \"$RG\" --location {region}\n\
             az network vnet create --resource-group \"$RG\" --name \"$RG-vnet\" \\\n\
                 --subnet-name default\n\
             az storage account create --resource-group \"$RG\" --name \"{appname}stor\"\n\
             az batch account create --resource-group \"$RG\" --name \"{appname}batch\"\n\
             az batch pool create --id \"pool-{sku}\" \\\n\
                 --vm-size {sku_full} \\\n\
                 --target-dedicated-nodes {nodes} \\\n\
                 --enable-inter-node-communication\n",
            appname = appname,
            nodes = row.nodes,
            sku = row.sku,
            ppn = row.ppn,
            time = row.exec_time_secs,
            cost = row.cost_dollars,
            region = region,
            sku_full = sku_full,
        )
    }
}

/// Builds the spot-vs-dedicated comparison from a dataset that holds rows
/// in both capacity classes (e.g. after a dedicated sweep and a spot sweep
/// into the same dataset). Returns `None` when either class has no
/// completed rows — a single-class dataset has nothing to compare.
fn compare_capacity(ds: &Dataset) -> Option<CapacityComparison> {
    let mut spot_completed = 0usize;
    let mut spot_unfinished = 0usize;
    let mut evictions = 0u64;
    let mut dedicated_completed = 0usize;
    for p in &ds.points {
        match p.capacity {
            Capacity::Spot => match p.status {
                ScenarioStatus::Completed => {
                    spot_completed += 1;
                    evictions += p
                        .metric("EVICTIONS")
                        .and_then(|v| v.parse::<u64>().ok())
                        .unwrap_or(0);
                }
                ScenarioStatus::Failed | ScenarioStatus::TimedOut => spot_unfinished += 1,
                _ => {}
            },
            Capacity::Dedicated => {
                if p.status == ScenarioStatus::Completed {
                    dedicated_completed += 1;
                }
            }
        }
    }
    if spot_completed + spot_unfinished == 0 || dedicated_completed == 0 {
        return None;
    }
    // Pair scenarios completed in both classes and average the fractional
    // cost delta.
    let mut pairs = 0usize;
    let mut delta_sum = 0.0f64;
    for sp in &ds.points {
        if sp.capacity != Capacity::Spot || sp.status != ScenarioStatus::Completed {
            continue;
        }
        let paired = ds.points.iter().find(|dp| {
            dp.capacity == Capacity::Dedicated
                && dp.scenario_id == sp.scenario_id
                && dp.status == ScenarioStatus::Completed
                && dp.cost_dollars > 0.0
        });
        if let Some(dp) = paired {
            pairs += 1;
            delta_sum += (sp.cost_dollars - dp.cost_dollars) / dp.cost_dollars;
        }
    }
    Some(CapacityComparison {
        spot_completed,
        spot_unfinished,
        evictions,
        pairs,
        mean_cost_delta: if pairs > 0 {
            delta_sum / pairs as f64
        } else {
            0.0
        },
    })
}

/// Builds the per-region placement comparison from a dataset holding
/// placed rows. Returns `None` for single-region datasets (no row carries
/// a region). Cost premiums pair configurations — (SKU, nodes, ppn,
/// appinputs) — across regions and measure each completed row against the
/// cheapest completed sibling anywhere.
fn compare_placement(ds: &Dataset) -> Option<PlacementComparison> {
    use std::collections::BTreeMap;
    if !ds.points.iter().any(|p| p.region.is_some()) {
        return None;
    }
    let config_key = |p: &crate::dataset::DataPoint| {
        let mut inputs: Vec<String> = p
            .appinputs
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect();
        inputs.sort();
        format!("{}|{}|{}|{}", p.sku, p.nnodes, p.ppn, inputs.join(","))
    };
    // Cheapest completed cost per configuration across all regions.
    let mut floor: BTreeMap<String, f64> = BTreeMap::new();
    for p in &ds.points {
        if p.region.is_none() || p.status != ScenarioStatus::Completed || p.cost_dollars <= 0.0 {
            continue;
        }
        let key = config_key(p);
        let entry = floor.entry(key).or_insert(f64::INFINITY);
        *entry = entry.min(p.cost_dollars);
    }
    // Region name -> (completed, unfinished, sla_skipped, premium sum, premium count).
    let mut tallies: BTreeMap<String, (usize, usize, usize, f64, usize)> = BTreeMap::new();
    for p in &ds.points {
        let Some(region) = &p.region else { continue };
        let t = tallies.entry(region.clone()).or_default();
        match p.status {
            ScenarioStatus::Completed => {
                t.0 += 1;
                if p.cost_dollars > 0.0 {
                    if let Some(&min) = floor.get(&config_key(p)) {
                        if min.is_finite() && min > 0.0 {
                            t.3 += (p.cost_dollars - min) / min;
                            t.4 += 1;
                        }
                    }
                }
            }
            ScenarioStatus::Failed | ScenarioStatus::TimedOut => t.1 += 1,
            ScenarioStatus::Skipped => t.2 += 1,
            ScenarioStatus::Pending => {}
        }
    }
    Some(PlacementComparison {
        regions: tallies
            .into_iter()
            .map(
                |(region, (completed, unfinished, sla_skipped, sum, n))| RegionReport {
                    region,
                    completed,
                    unfinished,
                    sla_skipped,
                    mean_cost_premium: if n > 0 { sum / n as f64 } else { 0.0 },
                },
            )
            .collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::point;

    /// A dataset whose Pareto front reproduces the paper's Listing 4.
    fn listing4_like() -> Dataset {
        let mut ds = Dataset::new();
        // The front (HB120rs_v3).
        for (id, n, t, c) in [
            (1u32, 3u32, 173.0, 0.519),
            (2, 4, 132.0, 0.528),
            (3, 8, 69.0, 0.552),
            (4, 16, 36.0, 0.576),
        ] {
            ds.push(point(id, "lammps", "Standard_HB120rs_v3", n, 120, t, c));
        }
        // Dominated rows (HC44rs: slower and costlier everywhere).
        for (id, n, t, c) in [(11u32, 8u32, 120.0, 0.95), (12, 16, 62.0, 0.87)] {
            ds.push(point(id, "lammps", "Standard_HC44rs", n, 44, t, c));
        }
        ds
    }

    #[test]
    fn front_matches_listing4_shape() {
        let ds = listing4_like();
        let advice = Advice::from_dataset(&ds, &DataFilter::all());
        assert_eq!(advice.rows.len(), 4);
        assert!(advice.rows.iter().all(|r| r.sku == "hb120rs_v3"));
        // Fastest first.
        assert_eq!(advice.rows[0].nodes, 16);
        assert!((advice.rows[0].exec_time_secs - 36.0).abs() < 1e-9);
        assert_eq!(advice.rows[3].nodes, 3);
    }

    #[test]
    fn sort_by_cost_flips_order() {
        let ds = listing4_like();
        let advice = Advice::from_dataset_sorted(&ds, &DataFilter::all(), AdviceSort::ByCost);
        assert_eq!(advice.rows[0].nodes, 3, "cheapest first");
        assert_eq!(advice.rows[3].nodes, 16);
    }

    #[test]
    fn render_matches_listing_format() {
        let ds = listing4_like();
        let text = Advice::from_dataset(&ds, &DataFilter::all()).render_text();
        let mut lines = text.lines();
        assert_eq!(lines.next().unwrap(), "Exectime(s)  Cost($)  Nodes  SKU");
        let first = lines.next().unwrap();
        assert!(first.starts_with("36"), "{first}");
        assert!(first.contains("0.5760"));
        assert!(first.contains("16"));
        assert!(first.ends_with("hb120rs_v3"));
    }

    #[test]
    fn slurm_recipe_generation() {
        let ds = listing4_like();
        let advice = Advice::from_dataset(&ds, &DataFilter::all());
        let recipe = advice.slurm_recipe(&advice.rows[0], "lammps");
        assert!(recipe.contains("#SBATCH --nodes=16"));
        assert!(recipe.contains("#SBATCH --ntasks-per-node=120"));
        assert!(recipe.contains("--partition=hb120rs_v3"));
        assert!(recipe.contains("srun --mpi=pmix lammps"));
    }

    #[test]
    fn cluster_recipe_generation() {
        let ds = listing4_like();
        let advice = Advice::from_dataset(&ds, &DataFilter::all());
        let recipe = advice.cluster_recipe(&advice.rows[0], "lammps", "southcentralus");
        assert!(recipe.contains("az group create"));
        assert!(recipe.contains("--target-dedicated-nodes 16"));
        assert!(recipe.contains("--vm-size Standard_HB120RS_V3"));
        assert!(recipe.contains("--enable-inter-node-communication"));
    }

    #[test]
    fn empty_dataset_gives_empty_advice() {
        let advice = Advice::from_dataset(&Dataset::new(), &DataFilter::all());
        assert!(advice.rows.is_empty());
        assert_eq!(advice.render_text().lines().count(), 1, "header only");
    }

    #[test]
    fn spot_vs_dedicated_comparison_pairs_scenarios() {
        // No spot rows ⇒ no comparison.
        let ds = listing4_like();
        assert!(Advice::from_dataset(&ds, &DataFilter::all())
            .capacity_comparison
            .is_none());

        // Spot re-measurements of two scenarios, one cheaper, plus one
        // timed-out spot row.
        let mut ds = listing4_like();
        let mut sp = point(
            1,
            "lammps",
            "Standard_HB120rs_v3",
            3,
            120,
            173.0,
            0.519 * 0.4,
        );
        sp.capacity = Capacity::Spot;
        sp.metrics.push(("EVICTIONS".into(), "2".into()));
        ds.push(sp);
        let mut sp = point(
            2,
            "lammps",
            "Standard_HB120rs_v3",
            4,
            120,
            132.0,
            0.528 * 0.6,
        );
        sp.capacity = Capacity::Spot;
        ds.push(sp);
        let mut to = point(3, "lammps", "Standard_HB120rs_v3", 8, 120, 0.0, 0.0);
        to.capacity = Capacity::Spot;
        to.status = ScenarioStatus::TimedOut;
        ds.push(to);

        let advice = Advice::from_dataset(&ds, &DataFilter::all());
        let c = advice
            .capacity_comparison
            .clone()
            .expect("both classes present");
        assert_eq!(c.spot_completed, 2);
        assert_eq!(c.spot_unfinished, 1);
        assert_eq!(c.evictions, 2);
        assert_eq!(c.pairs, 2);
        assert!((c.spot_completion_rate() - 2.0 / 3.0).abs() < 1e-9);
        assert!((c.mean_cost_delta - (-0.5)).abs() < 1e-9, "{c:?}");
        let text = advice.render_text();
        assert!(text.contains("spot completed 2/3"), "{text}");
        assert!(text.contains("-50.0%"), "{text}");
        // The timed-out row also counts into the partial-grid note.
        assert_eq!(advice.skipped_scenarios, 1);
    }

    #[test]
    fn placement_comparison_reports_per_region_deltas() {
        // Single-region dataset: no placement section.
        let ds = listing4_like();
        let advice = Advice::from_dataset(&ds, &DataFilter::all());
        assert!(advice.placement_comparison.is_none());
        assert!(!advice.render_text().contains("placement"));

        // Two regions measuring the same configurations: westeurope runs
        // 8% dearer; japaneast lost one row to an SLA skip.
        let mut ds = Dataset::new();
        for (id, region, cost, status) in [
            (1u32, "southcentralus", 0.50, ScenarioStatus::Completed),
            (2, "westeurope", 0.54, ScenarioStatus::Completed),
            (3, "japaneast", 0.0, ScenarioStatus::Skipped),
        ] {
            let mut p = point(id, "lammps", "Standard_HB120rs_v3", 4, 120, 100.0, cost);
            p.region = Some(region.into());
            p.status = status;
            if status == ScenarioStatus::Skipped {
                p.metrics.push((
                    "SKIPREASON".into(),
                    "no region satisfies placement SLA".into(),
                ));
            }
            ds.push(p);
        }
        let advice = Advice::from_dataset(&ds, &DataFilter::all());
        let pc = advice.placement_comparison.clone().expect("placed rows");
        assert_eq!(pc.regions.len(), 3);
        let by_name = |n: &str| pc.regions.iter().find(|r| r.region == n).unwrap().clone();
        let home = by_name("southcentralus");
        assert_eq!((home.completed, home.sla_skipped), (1, 0));
        assert!(home.mean_cost_premium.abs() < 1e-9, "{home:?}");
        let we = by_name("westeurope");
        assert!((we.mean_cost_premium - 0.08).abs() < 1e-9, "{we:?}");
        let jp = by_name("japaneast");
        assert_eq!((jp.completed, jp.sla_skipped), (0, 1));
        // The render carries one line per region and region-tagged SKUs.
        let text = advice.render_text();
        assert!(
            text.contains("placement westeurope: 1/1 completed, cost +8.0% vs cheapest region"),
            "{text}"
        );
        assert!(
            text.contains("placement japaneast: 0/1 completed, 1 SLA skip"),
            "{text}"
        );
        assert!(text.contains("hb120rs_v3@southcentralus"), "{text}");
        // Pareto keeps the placed axis: the same config in a dearer region
        // is dominated, so only the cheapest region's row survives.
        assert_eq!(advice.rows.len(), 1, "{:?}", advice.rows);
        assert_eq!(advice.rows[0].region.as_deref(), Some("southcentralus"));
        // Cluster recipes deploy into the row's placed region.
        let recipe = advice.cluster_recipe(&advice.rows[0], "lammps", "eastus");
        assert!(recipe.contains("--location southcentralus"), "{recipe}");
    }

    #[test]
    fn skipped_scenarios_annotate_partial_grid() {
        let mut ds = listing4_like();
        let mut sk = point(99, "lammps", "Standard_HC44rs", 2, 44, 0.0, 0.0);
        sk.status = ScenarioStatus::Skipped;
        ds.push(sk);
        let advice = Advice::from_dataset(&ds, &DataFilter::all());
        assert_eq!(advice.skipped_scenarios, 1);
        assert_eq!(advice.rows.len(), 4, "skipped points never become rows");
        assert!(advice.render_text().contains("partial grid"));
        // A complete grid carries no note.
        let full = Advice::from_dataset(&listing4_like(), &DataFilter::all());
        assert_eq!(full.skipped_scenarios, 0);
        assert!(!full.render_text().contains("partial grid"));
    }
}
