//! Advice generation (paper Section III-E, Listings 3–4) plus the
//! "comprehensive advice" extension (Slurm-recipe generation) from the
//! paper's future-work list.

use crate::dataset::{DataFilter, Dataset};
use crate::pareto::pareto_front;
use crate::scenario::ScenarioStatus;
use cloudsim::Capacity;

/// How the advice table is sorted. "The advice data presented here is
/// sorted by the least execution time first, but the tool has the option to
/// have the data sorted by cost as well."
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AdviceSort {
    /// Fastest first (the paper's listings).
    #[default]
    ByTime,
    /// Cheapest first.
    ByCost,
}

/// One Pareto-efficient configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct AdviceRow {
    /// Execution time in seconds.
    pub exec_time_secs: f64,
    /// Cost in USD.
    pub cost_dollars: f64,
    /// Node count.
    pub nodes: u32,
    /// Processes per node.
    pub ppn: u32,
    /// Short SKU name (as the paper prints it).
    pub sku: String,
    /// Appinput combination the row was measured at.
    pub appinputs: Vec<(String, String)>,
}

/// Aggregate spot-vs-dedicated comparison, available when the dataset
/// carries completed points in both capacity classes.
#[derive(Debug, Clone, PartialEq)]
pub struct CapacityComparison {
    /// Completed spot rows.
    pub spot_completed: usize,
    /// Spot rows that did not complete (failed or timed out).
    pub spot_unfinished: usize,
    /// Total spot evictions recorded in the spot rows' `EVICTIONS` metric.
    pub evictions: u64,
    /// Scenario ids completed in both classes, feeding the cost delta.
    pub pairs: usize,
    /// Mean fractional cost delta of spot vs dedicated over the paired
    /// scenarios (negative ⇒ spot cheaper, e.g. -0.35 = 35% cheaper even
    /// after paying for evicted attempts).
    pub mean_cost_delta: f64,
}

impl CapacityComparison {
    /// Spot completion rate over the rows that ran on spot capacity.
    pub fn spot_completion_rate(&self) -> f64 {
        let total = self.spot_completed + self.spot_unfinished;
        if total == 0 {
            return 0.0;
        }
        self.spot_completed as f64 / total as f64
    }
}

/// The advice: the Pareto front of the filtered dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct Advice {
    /// Pareto-efficient rows in the requested order.
    pub rows: Vec<AdviceRow>,
    /// How `rows` is sorted.
    pub sort: AdviceSort,
    /// Scenarios the collection deliberately dropped — skipped (quota or
    /// budget degradation) or killed by the deadline watchdog. When nonzero
    /// the advice was computed from a partial grid and
    /// [`Advice::render_text`] says so.
    pub skipped_scenarios: usize,
    /// Spot-vs-dedicated comparison, present when the dataset holds
    /// completed points in both capacity classes.
    pub capacity_comparison: Option<CapacityComparison>,
}

impl Advice {
    /// Computes the Pareto front of the filtered dataset, fastest first.
    pub fn from_dataset(ds: &Dataset, filter: &DataFilter) -> Advice {
        Advice::from_dataset_sorted(ds, filter, AdviceSort::ByTime)
    }

    /// Computes the Pareto front with an explicit sort order.
    pub fn from_dataset_sorted(ds: &Dataset, filter: &DataFilter, sort: AdviceSort) -> Advice {
        let points = ds.filter(filter);
        let objectives: Vec<(f64, f64)> = points
            .iter()
            .map(|p| (p.cost_dollars, p.exec_time_secs))
            .collect();
        let front = pareto_front(&objectives);
        let mut rows: Vec<AdviceRow> = front
            .into_iter()
            .map(|i| {
                let p = points[i];
                AdviceRow {
                    exec_time_secs: p.exec_time_secs,
                    cost_dollars: p.cost_dollars,
                    nodes: p.nnodes,
                    ppn: p.ppn,
                    sku: p.sku_short(),
                    appinputs: p.appinputs.clone(),
                }
            })
            .collect();
        match sort {
            AdviceSort::ByTime => {
                rows.sort_by(|a, b| a.exec_time_secs.total_cmp(&b.exec_time_secs))
            }
            AdviceSort::ByCost => rows.sort_by(|a, b| a.cost_dollars.total_cmp(&b.cost_dollars)),
        }
        let skipped_scenarios = ds
            .points
            .iter()
            .filter(|p| p.status == ScenarioStatus::Skipped || p.status == ScenarioStatus::TimedOut)
            .count();
        Advice {
            rows,
            sort,
            skipped_scenarios,
            capacity_comparison: compare_capacity(ds),
        }
    }

    /// Renders the advice table in the paper's Listing 3/4 format:
    ///
    /// ```text
    /// Exectime(s)  Cost($)  Nodes  SKU
    /// 34           0.5440   16     hb120rs_v3
    /// ```
    pub fn render_text(&self) -> String {
        let mut out = String::from("Exectime(s)  Cost($)  Nodes  SKU\n");
        for r in &self.rows {
            out.push_str(&format!(
                "{:<12} {:<8.4} {:<6} {}\n",
                r.exec_time_secs.round() as i64,
                r.cost_dollars,
                r.nodes,
                r.sku
            ));
        }
        if self.skipped_scenarios > 0 {
            out.push_str(&format!(
                "note: partial grid — {} scenario{} skipped (e.g. quota) or timed out; rerun collect to fill in\n",
                self.skipped_scenarios,
                if self.skipped_scenarios == 1 { "" } else { "s" },
            ));
        }
        if let Some(c) = &self.capacity_comparison {
            out.push_str(&format!(
                "capacity: spot completed {}/{} ({:.0}%, {} eviction{}); \
                 spot vs dedicated cost over {} paired scenario{}: {:+.1}%\n",
                c.spot_completed,
                c.spot_completed + c.spot_unfinished,
                c.spot_completion_rate() * 100.0,
                c.evictions,
                if c.evictions == 1 { "" } else { "s" },
                c.pairs,
                if c.pairs == 1 { "" } else { "s" },
                c.mean_cost_delta * 100.0,
            ));
        }
        out
    }

    /// Generates a ready-to-submit Slurm batch script for one advice row —
    /// the paper's envisioned "recipes to run jobs (e.g., Slurm scripts)".
    pub fn slurm_recipe(&self, row: &AdviceRow, appname: &str) -> String {
        let mut inputs = String::new();
        for (k, v) in &row.appinputs {
            inputs.push_str(&format!("export {k}=\"{v}\"\n"));
        }
        format!(
            "#!/bin/bash\n\
             #SBATCH --job-name={appname}\n\
             #SBATCH --nodes={nodes}\n\
             #SBATCH --ntasks-per-node={ppn}\n\
             #SBATCH --exclusive\n\
             #SBATCH --partition={sku}\n\
             # Estimated execution time: {time:.0} s; estimated VM cost: ${cost:.4}\n\
             # Generated by hpcadvisor (Pareto-efficient configuration)\n\
             {inputs}\
             srun --mpi=pmix {appname}\n",
            appname = appname,
            nodes = row.nodes,
            ppn = row.ppn,
            sku = row.sku,
            time = row.exec_time_secs,
            cost = row.cost_dollars,
            inputs = inputs,
        )
    }
}

impl Advice {
    /// Generates a cluster-creation recipe for one advice row — the other
    /// half of the paper's "comprehensive advice" future work ("computing
    /// environment creation/modification, e.g., cluster creation or
    /// scheduling queue creation/modification"). The output mirrors the
    /// tool's own deployment sequence as a reusable shell script.
    pub fn cluster_recipe(&self, row: &AdviceRow, appname: &str, region: &str) -> String {
        let sku_full = format!("Standard_{}", row.sku.to_uppercase());
        format!(
            "#!/bin/bash\n\
             # Cluster recipe generated by hpcadvisor for '{appname}'\n\
             # Pareto-efficient configuration: {nodes} x {sku} ({ppn} procs/node)\n\
             # Estimated run: {time:.0} s, ~${cost:.4} in VM cost per execution\n\
             set -euo pipefail\n\
             RG=hpcadvisor-{appname}\n\
             az group create --name \"$RG\" --location {region}\n\
             az network vnet create --resource-group \"$RG\" --name \"$RG-vnet\" \\\n\
                 --subnet-name default\n\
             az storage account create --resource-group \"$RG\" --name \"{appname}stor\"\n\
             az batch account create --resource-group \"$RG\" --name \"{appname}batch\"\n\
             az batch pool create --id \"pool-{sku}\" \\\n\
                 --vm-size {sku_full} \\\n\
                 --target-dedicated-nodes {nodes} \\\n\
                 --enable-inter-node-communication\n",
            appname = appname,
            nodes = row.nodes,
            sku = row.sku,
            ppn = row.ppn,
            time = row.exec_time_secs,
            cost = row.cost_dollars,
            region = region,
            sku_full = sku_full,
        )
    }
}

/// Builds the spot-vs-dedicated comparison from a dataset that holds rows
/// in both capacity classes (e.g. after a dedicated sweep and a spot sweep
/// into the same dataset). Returns `None` when either class has no
/// completed rows — a single-class dataset has nothing to compare.
fn compare_capacity(ds: &Dataset) -> Option<CapacityComparison> {
    let mut spot_completed = 0usize;
    let mut spot_unfinished = 0usize;
    let mut evictions = 0u64;
    let mut dedicated_completed = 0usize;
    for p in &ds.points {
        match p.capacity {
            Capacity::Spot => match p.status {
                ScenarioStatus::Completed => {
                    spot_completed += 1;
                    evictions += p
                        .metric("EVICTIONS")
                        .and_then(|v| v.parse::<u64>().ok())
                        .unwrap_or(0);
                }
                ScenarioStatus::Failed | ScenarioStatus::TimedOut => spot_unfinished += 1,
                _ => {}
            },
            Capacity::Dedicated => {
                if p.status == ScenarioStatus::Completed {
                    dedicated_completed += 1;
                }
            }
        }
    }
    if spot_completed + spot_unfinished == 0 || dedicated_completed == 0 {
        return None;
    }
    // Pair scenarios completed in both classes and average the fractional
    // cost delta.
    let mut pairs = 0usize;
    let mut delta_sum = 0.0f64;
    for sp in &ds.points {
        if sp.capacity != Capacity::Spot || sp.status != ScenarioStatus::Completed {
            continue;
        }
        let paired = ds.points.iter().find(|dp| {
            dp.capacity == Capacity::Dedicated
                && dp.scenario_id == sp.scenario_id
                && dp.status == ScenarioStatus::Completed
                && dp.cost_dollars > 0.0
        });
        if let Some(dp) = paired {
            pairs += 1;
            delta_sum += (sp.cost_dollars - dp.cost_dollars) / dp.cost_dollars;
        }
    }
    Some(CapacityComparison {
        spot_completed,
        spot_unfinished,
        evictions,
        pairs,
        mean_cost_delta: if pairs > 0 {
            delta_sum / pairs as f64
        } else {
            0.0
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::point;

    /// A dataset whose Pareto front reproduces the paper's Listing 4.
    fn listing4_like() -> Dataset {
        let mut ds = Dataset::new();
        // The front (HB120rs_v3).
        for (id, n, t, c) in [
            (1u32, 3u32, 173.0, 0.519),
            (2, 4, 132.0, 0.528),
            (3, 8, 69.0, 0.552),
            (4, 16, 36.0, 0.576),
        ] {
            ds.push(point(id, "lammps", "Standard_HB120rs_v3", n, 120, t, c));
        }
        // Dominated rows (HC44rs: slower and costlier everywhere).
        for (id, n, t, c) in [(11u32, 8u32, 120.0, 0.95), (12, 16, 62.0, 0.87)] {
            ds.push(point(id, "lammps", "Standard_HC44rs", n, 44, t, c));
        }
        ds
    }

    #[test]
    fn front_matches_listing4_shape() {
        let ds = listing4_like();
        let advice = Advice::from_dataset(&ds, &DataFilter::all());
        assert_eq!(advice.rows.len(), 4);
        assert!(advice.rows.iter().all(|r| r.sku == "hb120rs_v3"));
        // Fastest first.
        assert_eq!(advice.rows[0].nodes, 16);
        assert!((advice.rows[0].exec_time_secs - 36.0).abs() < 1e-9);
        assert_eq!(advice.rows[3].nodes, 3);
    }

    #[test]
    fn sort_by_cost_flips_order() {
        let ds = listing4_like();
        let advice = Advice::from_dataset_sorted(&ds, &DataFilter::all(), AdviceSort::ByCost);
        assert_eq!(advice.rows[0].nodes, 3, "cheapest first");
        assert_eq!(advice.rows[3].nodes, 16);
    }

    #[test]
    fn render_matches_listing_format() {
        let ds = listing4_like();
        let text = Advice::from_dataset(&ds, &DataFilter::all()).render_text();
        let mut lines = text.lines();
        assert_eq!(lines.next().unwrap(), "Exectime(s)  Cost($)  Nodes  SKU");
        let first = lines.next().unwrap();
        assert!(first.starts_with("36"), "{first}");
        assert!(first.contains("0.5760"));
        assert!(first.contains("16"));
        assert!(first.ends_with("hb120rs_v3"));
    }

    #[test]
    fn slurm_recipe_generation() {
        let ds = listing4_like();
        let advice = Advice::from_dataset(&ds, &DataFilter::all());
        let recipe = advice.slurm_recipe(&advice.rows[0], "lammps");
        assert!(recipe.contains("#SBATCH --nodes=16"));
        assert!(recipe.contains("#SBATCH --ntasks-per-node=120"));
        assert!(recipe.contains("--partition=hb120rs_v3"));
        assert!(recipe.contains("srun --mpi=pmix lammps"));
    }

    #[test]
    fn cluster_recipe_generation() {
        let ds = listing4_like();
        let advice = Advice::from_dataset(&ds, &DataFilter::all());
        let recipe = advice.cluster_recipe(&advice.rows[0], "lammps", "southcentralus");
        assert!(recipe.contains("az group create"));
        assert!(recipe.contains("--target-dedicated-nodes 16"));
        assert!(recipe.contains("--vm-size Standard_HB120RS_V3"));
        assert!(recipe.contains("--enable-inter-node-communication"));
    }

    #[test]
    fn empty_dataset_gives_empty_advice() {
        let advice = Advice::from_dataset(&Dataset::new(), &DataFilter::all());
        assert!(advice.rows.is_empty());
        assert_eq!(advice.render_text().lines().count(), 1, "header only");
    }

    #[test]
    fn spot_vs_dedicated_comparison_pairs_scenarios() {
        // No spot rows ⇒ no comparison.
        let ds = listing4_like();
        assert!(Advice::from_dataset(&ds, &DataFilter::all())
            .capacity_comparison
            .is_none());

        // Spot re-measurements of two scenarios, one cheaper, plus one
        // timed-out spot row.
        let mut ds = listing4_like();
        let mut sp = point(
            1,
            "lammps",
            "Standard_HB120rs_v3",
            3,
            120,
            173.0,
            0.519 * 0.4,
        );
        sp.capacity = Capacity::Spot;
        sp.metrics.push(("EVICTIONS".into(), "2".into()));
        ds.push(sp);
        let mut sp = point(
            2,
            "lammps",
            "Standard_HB120rs_v3",
            4,
            120,
            132.0,
            0.528 * 0.6,
        );
        sp.capacity = Capacity::Spot;
        ds.push(sp);
        let mut to = point(3, "lammps", "Standard_HB120rs_v3", 8, 120, 0.0, 0.0);
        to.capacity = Capacity::Spot;
        to.status = ScenarioStatus::TimedOut;
        ds.push(to);

        let advice = Advice::from_dataset(&ds, &DataFilter::all());
        let c = advice
            .capacity_comparison
            .clone()
            .expect("both classes present");
        assert_eq!(c.spot_completed, 2);
        assert_eq!(c.spot_unfinished, 1);
        assert_eq!(c.evictions, 2);
        assert_eq!(c.pairs, 2);
        assert!((c.spot_completion_rate() - 2.0 / 3.0).abs() < 1e-9);
        assert!((c.mean_cost_delta - (-0.5)).abs() < 1e-9, "{c:?}");
        let text = advice.render_text();
        assert!(text.contains("spot completed 2/3"), "{text}");
        assert!(text.contains("-50.0%"), "{text}");
        // The timed-out row also counts into the partial-grid note.
        assert_eq!(advice.skipped_scenarios, 1);
    }

    #[test]
    fn skipped_scenarios_annotate_partial_grid() {
        let mut ds = listing4_like();
        let mut sk = point(99, "lammps", "Standard_HC44rs", 2, 44, 0.0, 0.0);
        sk.status = ScenarioStatus::Skipped;
        ds.push(sk);
        let advice = Advice::from_dataset(&ds, &DataFilter::all());
        assert_eq!(advice.skipped_scenarios, 1);
        assert_eq!(advice.rows.len(), 4, "skipped points never become rows");
        assert!(advice.render_text().contains("partial grid"));
        // A complete grid carries no note.
        let full = Advice::from_dataset(&listing4_like(), &DataFilter::all());
        assert_eq!(full.skipped_scenarios, 0);
        assert!(!full.render_text().contains("partial grid"));
    }
}
