//! Application setup/run scripts.
//!
//! The paper's second user input is a bash script with `hpcadvisor_setup`
//! and `hpcadvisor_run` functions, referenced by URL from the main config.
//! This module bundles such scripts for every modelled application — the
//! LAMMPS one is the paper's Listing 2 essentially verbatim — and registers
//! them in the simulated URL store so `appsetupurl` resolution works
//! offline. Users can register their own script content under any URL.

use crate::error::ToolError;
use taskshell::UrlStore;

/// The paper's Listing 2: LAMMPS via EESSI, box-factor sweep, log scraping.
pub const LAMMPS_SCRIPT: &str = r#"#!/usr/bin/env bash

hpcadvisor_setup() {
  if [[ -f in.lj.txt ]]; then
    echo "Data already exists"
    return 0
  fi
  wget https://www.lammps.org/inputs/in.lj.txt
}

hpcadvisor_run() {
  source /cvmfs/software.eessi.io/versions/2023.06/init/bash
  module load LAMMPS

  inputfile="in.lj.txt"
  cp ../$inputfile .

  sed -i "s/variable\s\+x\s\+index\s\+[0-9]\+/variable x index $BOXFACTOR/" $inputfile
  sed -i "s/variable\s\+y\s\+index\s\+[0-9]\+/variable y index $BOXFACTOR/" $inputfile
  sed -i "s/variable\s\+z\s\+index\s\+[0-9]\+/variable z index $BOXFACTOR/" $inputfile
  NP=$(($NNODES * $PPN))
  export UCX_NET_DEVICES=mlx5_ib0:1
  APP=$(which lmp)
  mpirun -np $NP --host "$HOSTLIST_PPN" "$APP" -i $inputfile

  log_file="log.lammps"
  if grep -q "Total wall time: " "$log_file"; then
    echo "Simulation completed successfully."
    APPEXECTIME=$(cat log.lammps | grep Loop | awk '{print $4}')
    LAMMPSATOMS=$(cat log.lammps | grep Loop | awk '{print $12}')
    LAMMPSSTEPS=$(cat log.lammps | grep Loop | awk '{print $9}')
    echo "HPCADVISORVAR APPEXECTIME=$APPEXECTIME"
    echo "HPCADVISORVAR LAMMPSATOMS=$LAMMPSATOMS"
    echo "HPCADVISORVAR LAMMPSSTEPS=$LAMMPSSTEPS"
    return 0
  else
    echo "Simulation did not complete successfully."
    return 1
  fi
}
"#;

/// OpenFOAM motorBike: mesh-dimension sweep, `ExecutionTime` scraping.
pub const OPENFOAM_SCRIPT: &str = r#"#!/usr/bin/env bash

hpcadvisor_setup() {
  if [[ -f motorBike.tgz ]]; then
    echo "Case already present"
    return 0
  fi
  wget https://example.com/motorBike.tgz
}

hpcadvisor_run() {
  source /cvmfs/software.eessi.io/versions/2023.06/init/bash
  module load OpenFOAM
  NP=$(($NNODES * $PPN))
  mpirun -np $NP --host "$HOSTLIST_PPN" simpleFoam -parallel

  log_file="log.simpleFoam"
  if grep -q "Finalising parallel run" "$log_file"; then
    echo "Simulation completed successfully."
    APPEXECTIME=$(cat $log_file | grep ExecutionTime | awk '{print $3}')
    OFCELLS=$(cat $log_file | grep "Mesh size" | awk '{print $3}')
    echo "HPCADVISORVAR APPEXECTIME=$APPEXECTIME"
    echo "HPCADVISORVAR OFCELLS=$OFCELLS"
    return 0
  else
    echo "Simulation did not complete successfully."
    return 1
  fi
}
"#;

/// WRF: resolution/forecast-hours sweep.
pub const WRF_SCRIPT: &str = r#"#!/usr/bin/env bash

hpcadvisor_setup() {
  if [[ -f conus12km.tar.gz ]]; then
    echo "Input deck already present"
    return 0
  fi
  wget https://example.com/conus12km.tar.gz
}

hpcadvisor_run() {
  source /cvmfs/software.eessi.io/versions/2023.06/init/bash
  module load WRF
  NP=$(($NNODES * $PPN))
  mpirun -np $NP --host "$HOSTLIST_PPN" wrf.exe

  log_file="rsl.out.0000"
  if grep -q "SUCCESS COMPLETE WRF" "$log_file"; then
    echo "Simulation completed successfully."
    APPEXECTIME=$(cat $log_file | grep "Total elapsed seconds" | awk '{print $4}')
    WRFSTEPS=$(cat $log_file | grep "wrf: completed" | awk '{print $3}')
    echo "HPCADVISORVAR APPEXECTIME=$APPEXECTIME"
    echo "HPCADVISORVAR WRFSTEPS=$WRFSTEPS"
    return 0
  else
    echo "Simulation did not complete successfully."
    return 1
  fi
}
"#;

/// GROMACS: atom-count/steps sweep.
pub const GROMACS_SCRIPT: &str = r#"#!/usr/bin/env bash

hpcadvisor_setup() {
  echo "GROMACS provided by EESSI; nothing to download"
  return 0
}

hpcadvisor_run() {
  source /cvmfs/software.eessi.io/versions/2023.06/init/bash
  module load GROMACS
  NP=$(($NNODES * $PPN))
  mpirun -np $NP --host "$HOSTLIST_PPN" gmx_mpi mdrun

  log_file="md.log"
  if grep -q "Finished mdrun" "$log_file"; then
    echo "Simulation completed successfully."
    APPEXECTIME=$(cat $log_file | grep "Time:" | awk '{print $3}')
    GMXNSPERDAY=$(cat $log_file | grep "Performance:" | awk '{print $2}')
    echo "HPCADVISORVAR APPEXECTIME=$APPEXECTIME"
    echo "HPCADVISORVAR GMXNSPERDAY=$GMXNSPERDAY"
    return 0
  else
    echo "Simulation did not complete successfully."
    return 1
  fi
}
"#;

/// NAMD: STMV-style benchmark.
pub const NAMD_SCRIPT: &str = r#"#!/usr/bin/env bash

hpcadvisor_setup() {
  if [[ -f stmv.tar.gz ]]; then
    echo "Benchmark already present"
    return 0
  fi
  wget https://example.com/stmv.tar.gz
}

hpcadvisor_run() {
  source /cvmfs/software.eessi.io/versions/2023.06/init/bash
  module load NAMD
  NP=$(($NNODES * $PPN))
  mpirun -np $NP --host "$HOSTLIST_PPN" namd2

  log_file="namd.log"
  if grep -q "End of program" "$log_file"; then
    echo "Simulation completed successfully."
    APPEXECTIME=$(cat $log_file | grep "WallClock:" | awk '{print $2}')
    echo "HPCADVISORVAR APPEXECTIME=$APPEXECTIME"
    return 0
  else
    echo "Simulation did not complete successfully."
    return 1
  fi
}
"#;

/// The matrix-multiplication toy example from the paper's introduction.
pub const MATMUL_SCRIPT: &str = r#"#!/usr/bin/env bash

hpcadvisor_setup() {
  echo "matmul needs no input data"
  return 0
}

hpcadvisor_run() {
  NP=$(($NNODES * $PPN))
  mpirun -np $NP --host "$HOSTLIST_PPN" matmul

  log_file="matmul.log"
  if grep -q "RESULT OK" "$log_file"; then
    APPEXECTIME=$(cat $log_file | grep "multiply done" | awk '{print $4}')
    GFLOPS=$(cat $log_file | grep "multiply done" | awk '{print $6}')
    echo "HPCADVISORVAR APPEXECTIME=$APPEXECTIME"
    echo "HPCADVISORVAR GFLOPS=$GFLOPS"
    return 0
  else
    echo "matmul failed"
    return 1
  fi
}
"#;

/// Returns the bundled script for an application name, if any.
pub fn bundled_script(appname: &str) -> Option<&'static str> {
    match appname.to_ascii_lowercase().as_str() {
        "lammps" => Some(LAMMPS_SCRIPT),
        "openfoam" => Some(OPENFOAM_SCRIPT),
        "wrf" => Some(WRF_SCRIPT),
        "gromacs" => Some(GROMACS_SCRIPT),
        "namd" => Some(NAMD_SCRIPT),
        "matmul" => Some(MATMUL_SCRIPT),
        _ => None,
    }
}

/// Builds the URL store for a run: known benchmark inputs plus the config's
/// `appsetupurl` mapped to the bundled script for its app (unless already
/// registered, e.g. by a user-provided script).
pub fn seed_urlstore(store: &mut UrlStore, appsetupurl: &str, appname: &str) {
    if store.get(appsetupurl).is_none() {
        if let Some(script) = bundled_script(appname) {
            store.put(appsetupurl, script);
        }
    }
}

/// Fetches the application script from the store.
pub fn fetch_script(store: &UrlStore, url: &str) -> Result<String, ToolError> {
    store
        .get(url)
        .map(|s| s.to_string())
        .ok_or_else(|| ToolError::Config(format!("appsetupurl '{url}' cannot be resolved")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use taskshell::Interpreter;

    #[test]
    fn every_bundled_script_parses_and_defines_both_functions() {
        for app in ["lammps", "openfoam", "wrf", "gromacs", "namd", "matmul"] {
            let script = bundled_script(app).unwrap();
            let mut i = Interpreter::for_tests();
            i.load_script(script)
                .unwrap_or_else(|e| panic!("{app}: {e}"));
            assert!(i.has_function("hpcadvisor_setup"), "{app} missing setup");
            assert!(i.has_function("hpcadvisor_run"), "{app} missing run");
        }
        assert!(bundled_script("unknownapp").is_none());
    }

    #[test]
    fn urlstore_seeding_respects_existing_content() {
        let mut store = UrlStore::with_known_inputs();
        seed_urlstore(&mut store, "https://x/lammps.sh", "lammps");
        assert!(fetch_script(&store, "https://x/lammps.sh")
            .unwrap()
            .contains("hpcadvisor_run"));
        // A pre-registered custom script is not overwritten.
        store.put("https://x/custom.sh", "custom-content");
        seed_urlstore(&mut store, "https://x/custom.sh", "lammps");
        assert_eq!(store.get("https://x/custom.sh"), Some("custom-content"));
        // Unknown URL errors.
        assert!(fetch_script(&store, "https://nope/none.sh").is_err());
    }

    #[test]
    fn lammps_script_is_listing2() {
        assert!(LAMMPS_SCRIPT.contains("hpcadvisor_setup"));
        assert!(LAMMPS_SCRIPT.contains(r"s/variable\s\+x\s\+index\s\+[0-9]\+/"));
        assert!(LAMMPS_SCRIPT.contains("HPCADVISORVAR LAMMPSATOMS=$LAMMPSATOMS"));
        assert!(LAMMPS_SCRIPT.contains("mpirun -np $NP --host \"$HOSTLIST_PPN\""));
    }
}
