//! A convenience wrapper tying the whole pipeline together: provider →
//! deployment → scenarios → collector. This is the programmatic equivalent
//! of the CLI sequence `deploy create && collect`.

use crate::cache::{CachePolicy, ScenarioCache};
use crate::collect::{CollectPlan, CollectReport};
use crate::collector::{Collector, CollectorOptions};
use crate::config::UserConfig;
use crate::dataset::Dataset;
use crate::deployment::DeploymentManager;
use crate::error::ToolError;
use crate::journal::RunJournal;
use crate::scenario::{generate_scenarios, Scenario};
use batchsim::SharedProvider;
use cloudsim::SkuCatalog;

/// One end-to-end advisory session over a single deployment.
pub struct Session {
    manager: DeploymentManager,
    collector: Collector,
    scenarios: Vec<Scenario>,
    deployment: String,
    config: UserConfig,
}

impl Session {
    /// Creates the cloud environment and expands the scenario grid.
    pub fn create(config: UserConfig, seed: u64) -> Result<Self, ToolError> {
        let mut manager = DeploymentManager::new(&config.subscription, &config.region, seed)?;
        let deployment = manager.create(&config)?;
        let scenarios = generate_scenarios(&config, &SkuCatalog::azure_hpc())?;
        let collector = Collector::new(
            manager.provider(),
            &deployment,
            config.clone(),
            CollectorOptions::builder().experiment_seed(seed).build(),
        )?;
        Ok(Session {
            manager,
            collector,
            scenarios,
            deployment,
            config,
        })
    }

    /// Creates a session that resumes an interrupted collection from a run
    /// journal: the cloud environment is recreated, and plan-based collects
    /// replay the journal's finished outcomes — only the remainder
    /// executes. The resumed dataset is byte-identical to what the
    /// uninterrupted run would have produced.
    pub fn resume(config: UserConfig, seed: u64, journal: RunJournal) -> Result<Self, ToolError> {
        let mut session = Session::create(config, seed)?;
        session.set_journal(journal);
        Ok(session)
    }

    /// Attaches a crash-safe run journal (see [`RunJournal`]); plan-based
    /// collects append every outcome as it lands and replay finished ones.
    pub fn set_journal(&mut self, journal: RunJournal) {
        self.collector.set_journal(journal);
    }

    /// The deployment (resource-group) name.
    pub fn deployment(&self) -> &str {
        &self.deployment
    }

    /// The configuration this session runs.
    pub fn config(&self) -> &UserConfig {
        &self.config
    }

    /// The scenario list with statuses.
    pub fn scenarios(&self) -> &[Scenario] {
        &self.scenarios
    }

    /// The shared cloud provider (billing, clock, quotas).
    pub fn provider(&self) -> SharedProvider {
        self.manager.provider()
    }

    /// Mutable access to the collector (to register custom scripts).
    pub fn collector_mut(&mut self) -> &mut Collector {
        &mut self.collector
    }

    /// Attaches a scenario-result cache (e.g. a file-backed store opened
    /// via [`ScenarioCache::open`]) so repeat collections reuse finished
    /// data points instead of re-provisioning pools.
    pub fn set_cache(&mut self, cache: ScenarioCache) {
        self.collector.set_cache(cache);
    }

    /// Sets the default cache policy for runs without a plan override.
    pub fn set_cache_policy(&mut self, policy: CachePolicy) {
        self.collector.set_cache_policy(policy);
    }

    /// The collector's scenario-result cache.
    pub fn cache(&self) -> &ScenarioCache {
        self.collector.cache()
    }

    /// Runs all pending scenarios and returns the collected dataset.
    ///
    /// Thin compatibility wrapper over the plan-based API: equivalent to
    /// `collect_with(&CollectPlan::new())` followed by
    /// [`CollectReport::into_dataset`], with legacy strict error semantics.
    pub fn collect(&mut self) -> Result<Dataset, ToolError> {
        self.collector.collect(&mut self.scenarios)
    }

    /// Runs a collection under `plan` (worker count, shard policy, seed and
    /// rerun overrides, optional subset) and returns a [`CollectReport`]
    /// with the dataset, per-scenario outcomes, billing and stats.
    pub fn collect_with(&mut self, plan: &CollectPlan) -> Result<CollectReport, ToolError> {
        self.collector.collect_with_plan(&mut self.scenarios, plan)
    }

    /// Runs a chosen subset of scenario ids (used by smart sampling).
    pub fn collect_subset(&mut self, ids: &[u32]) -> Result<Dataset, ToolError> {
        self.collector.run_scenarios(&mut self.scenarios, ids)
    }

    /// Total cloud spend of this session so far (all VM usage, including
    /// idle pool time — a superset of the per-task cost column).
    pub fn total_cloud_cost(&self) -> f64 {
        self.provider().lock().billing().total_cost()
    }

    /// Shuts the deployment down, deleting its resources.
    pub fn shutdown(&mut self) -> Result<(), ToolError> {
        let name = self.deployment.clone();
        self.manager.shutdown(&name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioStatus;

    #[test]
    fn end_to_end_session() {
        let config = UserConfig::example_lammps_small();
        let mut session = Session::create(config, 42).unwrap();
        assert_eq!(session.scenarios().len(), 3);
        let ds = session.collect().unwrap();
        assert_eq!(ds.len(), 3);
        assert!(session
            .scenarios()
            .iter()
            .all(|s| s.status == ScenarioStatus::Completed));
        // Data collection costs real (simulated) money.
        assert!(session.total_cloud_cost() > 0.0);
        session.shutdown().unwrap();
    }

    #[test]
    fn deterministic_across_sessions() {
        let run = || {
            let mut s = Session::create(UserConfig::example_lammps_small(), 123).unwrap();
            let ds = s.collect().unwrap();
            ds.points
                .iter()
                .map(|p| (p.nnodes, p.exec_time_secs, p.cost_dollars))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn different_seeds_differ() {
        let run = |seed| {
            let mut s = Session::create(UserConfig::example_lammps_small(), seed).unwrap();
            let ds = s.collect().unwrap();
            ds.points[0].exec_time_secs
        };
        assert_ne!(run(1), run(2));
    }
}
