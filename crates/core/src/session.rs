//! A convenience wrapper tying the whole pipeline together: provider →
//! deployment → scenarios → collector. This is the programmatic equivalent
//! of the CLI sequence `deploy create && collect`.
//!
//! Construction goes through [`SessionBuilder`]: everything a session
//! carries for its lifetime — seed, cache (owned or shared), cache policy,
//! journal, custom scripts, progress tap — is declared up front, and the
//! built session is ready to collect with no further mutation. Per-run
//! knobs (workers, retries, capacity, budget, trace) belong on
//! [`CollectPlan`], not here:
//!
//! ```no_run
//! use hpcadvisor_core::prelude::*;
//! use hpcadvisor_core::cache::ScenarioCache;
//!
//! let mut session = Session::builder(UserConfig::example_lammps_small())
//!     .seed(42)
//!     .cache(ScenarioCache::open("cache.json"))
//!     .build()
//!     .unwrap();
//! let report = session.collect_with(&CollectPlan::new().workers(4)).unwrap();
//! # let _ = report;
//! ```
//!
//! The pre-builder mutators (`set_cache`, `set_cache_policy`,
//! `set_journal`, `collector_mut`) remain as deprecated thin wrappers for
//! one release; see DESIGN.md for the deprecation window.

use crate::cache::{CachePolicy, ScenarioCache, SharedScenarioCache};
use crate::collect::{CollectPlan, CollectReport};
use crate::collector::{Collector, CollectorOptions};
use crate::config::UserConfig;
use crate::dataset::Dataset;
use crate::deployment::DeploymentManager;
use crate::error::ToolError;
use crate::journal::RunJournal;
use crate::scenario::{generate_scenarios, Scenario};
use batchsim::SharedProvider;
use cloudsim::SkuCatalog;
use parking_lot::Mutex;
use std::sync::Arc;
use taskshell::Vfs;
use telemetry::EventTap;

/// Everything a [`Session`] can be configured with at build time.
///
/// Obtained from [`Session::builder`]; every method is optional and the
/// defaults match `Session::create(config, 42)`.
pub struct SessionBuilder {
    config: UserConfig,
    seed: u64,
    cache: Option<SharedScenarioCache>,
    cache_policy: Option<CachePolicy>,
    journal: Option<RunJournal>,
    scripts: Vec<(String, String)>,
    progress: Option<Arc<dyn EventTap>>,
}

impl SessionBuilder {
    fn new(config: UserConfig) -> Self {
        SessionBuilder {
            config,
            seed: 42,
            cache: None,
            cache_policy: None,
            journal: None,
            scripts: Vec::new(),
            progress: None,
        }
    }

    /// Experiment seed: drives deployment naming, simulated noise and
    /// scenario fingerprints (default 42).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Attaches a scenario-result cache owned by this session alone (e.g.
    /// a file-backed store from [`ScenarioCache::open`]).
    pub fn cache(mut self, cache: ScenarioCache) -> Self {
        self.cache = Some(SharedScenarioCache::new(cache));
        self
    }

    /// Attaches a cache handle shared with other sessions: all of them
    /// consult and feed the same store. This is how the advisor daemon
    /// dedups identical scenarios across tenants.
    pub fn shared_cache(mut self, cache: SharedScenarioCache) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Default cache policy for runs whose plan has no override.
    pub fn cache_policy(mut self, policy: CachePolicy) -> Self {
        self.cache_policy = Some(policy);
        self
    }

    /// Attaches a crash-safe run journal (see [`RunJournal`]); plan-based
    /// collects append every outcome as it lands and replay finished ones.
    pub fn journal(mut self, journal: RunJournal) -> Self {
        self.journal = Some(journal);
        self
    }

    /// Registers custom script content under a URL before anything runs,
    /// replacing the bundled script when the URL matches `appsetupurl`.
    pub fn script(mut self, url: impl Into<String>, content: impl Into<String>) -> Self {
        self.scripts.push((url.into(), content.into()));
        self
    }

    /// Attaches a live progress tap: every collect streams its trace
    /// events (scenario starts/ends, run framing) to `tap` as they are
    /// emitted — the daemon's per-job progress feed.
    pub fn progress(mut self, tap: Arc<dyn EventTap>) -> Self {
        self.progress = Some(tap);
        self
    }

    /// Creates the cloud environment, expands the scenario grid, and wires
    /// the collector with everything declared on the builder.
    pub fn build(self) -> Result<Session, ToolError> {
        let config = self.config;
        let mut manager = DeploymentManager::new(&config.subscription, &config.region, self.seed)?;
        let deployment = manager.create(&config)?;
        let scenarios = generate_scenarios(&config, &SkuCatalog::azure_hpc())?;
        let mut collector = Collector::new(
            manager.provider(),
            &deployment,
            config.clone(),
            CollectorOptions::builder()
                .experiment_seed(self.seed)
                .build(),
        )?;
        if let Some(cache) = self.cache {
            collector.set_shared_cache(cache);
        }
        if let Some(policy) = self.cache_policy {
            collector.set_cache_policy(policy);
        }
        if let Some(journal) = self.journal {
            collector.set_journal(journal);
        }
        for (url, content) in &self.scripts {
            collector.register_script(url, content)?;
        }
        collector.set_progress_tap(self.progress);
        Ok(Session {
            manager,
            collector,
            scenarios,
            deployment,
            config,
        })
    }
}

/// One end-to-end advisory session over a single deployment.
pub struct Session {
    manager: DeploymentManager,
    collector: Collector,
    scenarios: Vec<Scenario>,
    deployment: String,
    config: UserConfig,
}

impl Session {
    /// Starts building a session over `config`; see [`SessionBuilder`].
    pub fn builder(config: UserConfig) -> SessionBuilder {
        SessionBuilder::new(config)
    }

    /// Creates the cloud environment and expands the scenario grid —
    /// shorthand for `Session::builder(config).seed(seed).build()`.
    pub fn create(config: UserConfig, seed: u64) -> Result<Self, ToolError> {
        Session::builder(config).seed(seed).build()
    }

    /// Creates a session that resumes an interrupted collection from a run
    /// journal: the cloud environment is recreated, and plan-based collects
    /// replay the journal's finished outcomes — only the remainder
    /// executes. The resumed dataset is byte-identical to what the
    /// uninterrupted run would have produced.
    pub fn resume(config: UserConfig, seed: u64, journal: RunJournal) -> Result<Self, ToolError> {
        Session::builder(config).seed(seed).journal(journal).build()
    }

    /// Attaches a crash-safe run journal.
    #[deprecated(
        since = "0.2.0",
        note = "declare the journal at build time: Session::builder(..).journal(..)"
    )]
    pub fn set_journal(&mut self, journal: RunJournal) {
        self.collector.set_journal(journal);
    }

    /// The deployment (resource-group) name.
    pub fn deployment(&self) -> &str {
        &self.deployment
    }

    /// The configuration this session runs.
    pub fn config(&self) -> &UserConfig {
        &self.config
    }

    /// The scenario list with statuses.
    pub fn scenarios(&self) -> &[Scenario] {
        &self.scenarios
    }

    /// The shared cloud provider (billing, clock, quotas).
    pub fn provider(&self) -> SharedProvider {
        self.manager.provider()
    }

    /// Mutable access to the collector.
    #[deprecated(
        since = "0.2.0",
        note = "use Session::register_script / Session::shared_vfs, or declare \
                collector state on Session::builder"
    )]
    pub fn collector_mut(&mut self) -> &mut Collector {
        &mut self.collector
    }

    /// Attaches a scenario-result cache.
    #[deprecated(
        since = "0.2.0",
        note = "declare the cache at build time: Session::builder(..).cache(..)"
    )]
    pub fn set_cache(&mut self, cache: ScenarioCache) {
        self.collector.set_cache(cache);
    }

    /// Sets the default cache policy for runs without a plan override.
    #[deprecated(
        since = "0.2.0",
        note = "declare the policy at build time: Session::builder(..).cache_policy(..)"
    )]
    pub fn set_cache_policy(&mut self, policy: CachePolicy) {
        self.collector.set_cache_policy(policy);
    }

    /// A handle to the collector's scenario-result cache (clones share
    /// the store).
    pub fn cache(&self) -> SharedScenarioCache {
        self.collector.cache()
    }

    /// Registers custom script content for a URL (user-provided scripts),
    /// replacing the bundled script when the URL matches `appsetupurl`.
    /// Also available at build time via [`SessionBuilder::script`].
    pub fn register_script(&mut self, url: &str, content: &str) -> Result<(), ToolError> {
        self.collector.register_script(url, content)
    }

    /// The deployment's shared filesystem (inspectable, like the paper's
    /// jumpbox lets users do).
    pub fn shared_vfs(&self) -> Arc<Mutex<Vfs>> {
        self.collector.shared_vfs()
    }

    /// Runs all pending scenarios and returns the collected dataset.
    ///
    /// Thin compatibility wrapper over the plan-based API: equivalent to
    /// `collect_with(&CollectPlan::new())` followed by
    /// [`CollectReport::into_dataset`], with legacy strict error semantics.
    pub fn collect(&mut self) -> Result<Dataset, ToolError> {
        self.collector.collect(&mut self.scenarios)
    }

    /// Runs a collection under `plan` (worker count, shard policy, seed and
    /// rerun overrides, optional subset) and returns a [`CollectReport`]
    /// with the dataset, per-scenario outcomes, billing and stats.
    pub fn collect_with(&mut self, plan: &CollectPlan) -> Result<CollectReport, ToolError> {
        self.collector.collect_with_plan(&mut self.scenarios, plan)
    }

    /// Runs a chosen subset of scenario ids (used by smart sampling).
    pub fn collect_subset(&mut self, ids: &[u32]) -> Result<Dataset, ToolError> {
        self.collector.run_scenarios(&mut self.scenarios, ids)
    }

    /// Total cloud spend of this session so far (all VM usage, including
    /// idle pool time — a superset of the per-task cost column).
    pub fn total_cloud_cost(&self) -> f64 {
        self.provider().lock().billing().total_cost()
    }

    /// Shuts the deployment down, deleting its resources.
    pub fn shutdown(&mut self) -> Result<(), ToolError> {
        let name = self.deployment.clone();
        self.manager.shutdown(&name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioStatus;

    #[test]
    fn end_to_end_session() {
        let config = UserConfig::example_lammps_small();
        let mut session = Session::create(config, 42).unwrap();
        assert_eq!(session.scenarios().len(), 3);
        let ds = session.collect().unwrap();
        assert_eq!(ds.len(), 3);
        assert!(session
            .scenarios()
            .iter()
            .all(|s| s.status == ScenarioStatus::Completed));
        // Data collection costs real (simulated) money.
        assert!(session.total_cloud_cost() > 0.0);
        session.shutdown().unwrap();
    }

    #[test]
    fn deterministic_across_sessions() {
        let run = || {
            let mut s = Session::create(UserConfig::example_lammps_small(), 123).unwrap();
            let ds = s.collect().unwrap();
            ds.points
                .iter()
                .map(|p| (p.nnodes, p.exec_time_secs, p.cost_dollars))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn different_seeds_differ() {
        let run = |seed| {
            let mut s = Session::create(UserConfig::example_lammps_small(), seed).unwrap();
            let ds = s.collect().unwrap();
            ds.points[0].exec_time_secs
        };
        assert_ne!(run(1), run(2));
    }
}
