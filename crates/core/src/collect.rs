//! The redesigned collection API: [`CollectPlan`] → [`CollectReport`].
//!
//! The paper's Algorithm 1 keeps one pool per VM type and walks the scenario
//! grid serially. Because each SKU owns an independent pool (and an
//! independent quota family on Azure's H-series), the per-SKU slices of the
//! grid are embarrassingly parallel — and within a SKU, scenarios are
//! independent too. This module splits the id-ordered scenario list into
//! per-SKU groups and each group into fixed-size *chunks*
//! ([`CollectPlan::chunk_size`], default 32): workers drain the chunk list
//! through an admission-gated queue, so a hot SKU whose group dwarfs the
//! others is stolen chunk by chunk instead of serializing the run behind
//! one worker. Each chunk runs against its own [`BatchService`] and a clone
//! of the deployment's shared filesystem; pool contexts and backoff scopes
//! stay keyed `(sku, region)`.
//!
//! Determinism: a scenario's data point depends only on the scenario itself,
//! the experiment seed, and the setup artifacts on the filesystem — not on
//! wall-clock interleaving — so the merged, id-ordered [`Dataset`] is
//! byte-identical for any worker count. Three mechanisms keep that true
//! under chunking:
//!
//! - chunk boundaries depend only on the scenario list and the plan's chunk
//!   size, never on the worker count or on which worker ran what;
//! - each chunk's service qualifies its fault-injection counters by chunk
//!   index (`c0`, `c1`, …) on the shared provider, so two chunks of the
//!   same pool running concurrently keep interleaving-free attempt
//!   sequences while probabilistic rolls stay keyed by the bare pool scope;
//! - an admission gate reserves each chunk's worst-case `(family, region)`
//!   quota cores before it starts, so concurrent chunks of one family can
//!   never trip quota denials a serial run would not see.
//!
//! Chunk filesystems are merged back into the deployment's shared
//! filesystem, in chunk-index order, when all chunks finish.
//!
//! Incremental collection: before sharding, the run consults the
//! collector's [`crate::cache::ScenarioCache`] — scenarios whose
//! fingerprint is already known are answered without touching a pool, and
//! only the misses are split into shards. New results are buffered in each
//! shard's `ShardOutput` and inserted into the cache after the merge
//! barrier on the coordinating thread, so shard workers never contend on a
//! cache lock. [`CollectPlan::cache`] overrides the policy per run.
//!
//! ```no_run
//! use hpcadvisor_core::prelude::*;
//!
//! let mut session = Session::create(UserConfig::example_openfoam(), 42).unwrap();
//! let report = session.collect_with(&CollectPlan::new().workers(4)).unwrap();
//! println!("{}", report.render_text());
//! let dataset = report.into_dataset();
//! # let _ = dataset;
//! ```

use crate::cache::{rehydrate_point, CachePolicy};
use crate::collector::{
    consult_cache, consult_journal, index_by_id, resolve_ids, status_str, store_new_points,
    Collector, ExecContext, JournalConsult, JournalWriter, ShardOutput, ShardRun,
};
use crate::dataset::Dataset;
use crate::error::ToolError;
use crate::journal::JournalEntry;
use crate::retry::RetryPolicy;
use crate::scenario::{Scenario, ScenarioStatus};
use batchsim::BatchService;
use cloudsim::{BillingSummary, Capacity};
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;
use std::sync::Arc;
use taskshell::Vfs;
use telemetry::{EventSink, EventTap, Trace, TraceEvent, TraceSummary, Value, COORDINATOR_SHARD};

/// How the scenario list is split into independently-runnable shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShardPolicy {
    /// One shard per VM type (the paper's one-pool-per-SKU structure).
    #[default]
    PerSku,
    /// Everything in one shard (serial semantics regardless of workers).
    SingleShard,
}

/// A declarative description of one collection run.
///
/// Built fluently and handed to [`Session::collect_with`] or
/// [`Collector::collect_with_plan`]; the legacy [`Session::collect`] is a
/// thin wrapper equivalent to the default plan.
///
/// [`Session::collect_with`]: crate::session::Session::collect_with
/// [`Session::collect`]: crate::session::Session::collect
#[derive(Debug, Clone, Default)]
pub struct CollectPlan {
    workers: usize,
    shard_policy: ShardPolicy,
    chunk_size: Option<usize>,
    rerun_failed: Option<bool>,
    experiment_seed: Option<u64>,
    subset: Option<Vec<u32>>,
    cache: Option<CachePolicy>,
    retry: Option<RetryPolicy>,
    capacity: Option<Capacity>,
    escalate_after: Option<u32>,
    deadline_secs: Option<f64>,
    budget_dollars: Option<f64>,
    trace: bool,
}

impl CollectPlan {
    /// A serial, per-SKU-sharded plan with the collector's own options.
    pub fn new() -> Self {
        CollectPlan::default()
    }

    /// Number of worker threads (0 and 1 both mean serial). Workers beyond
    /// the shard count are not spawned.
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = n;
        self
    }

    /// Sets the shard policy.
    pub fn shard_policy(mut self, policy: ShardPolicy) -> Self {
        self.shard_policy = policy;
        self
    }

    /// Maximum scenarios per work-stealing chunk (default
    /// [`DEFAULT_CHUNK_SIZE`]). Chunk boundaries depend only on the
    /// scenario list and this value — never on the worker count — so
    /// results stay byte-identical across worker counts at any setting.
    /// `usize::MAX` restores the legacy one-chunk-per-SKU scheduling
    /// (useful for A/B benchmarks); 0 is treated as 1.
    pub fn chunk_size(mut self, n: usize) -> Self {
        self.chunk_size = Some(n);
        self
    }

    /// Overrides the collector's rerun-failed option for this run.
    pub fn rerun_failed(mut self, yes: bool) -> Self {
        self.rerun_failed = Some(yes);
        self
    }

    /// Overrides the collector's experiment noise seed for this run.
    pub fn experiment_seed(mut self, seed: u64) -> Self {
        self.experiment_seed = Some(seed);
        self
    }

    /// Restricts the run to the given scenario ids (smart-sampling drivers).
    pub fn subset(mut self, ids: impl Into<Vec<u32>>) -> Self {
        self.subset = Some(ids.into());
        self
    }

    /// Overrides the collector's scenario-cache policy for this run
    /// (`Off` forces every scenario cold; `ReadOnly` reuses but never
    /// stores).
    pub fn cache(mut self, policy: CachePolicy) -> Self {
        self.cache = Some(policy);
        self
    }

    /// Overrides the collector's retry policy for this run.
    pub fn retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = Some(policy);
        self
    }

    /// Caps attempts per operation for this run (1 disables retries).
    pub fn max_attempts(self, n: u32) -> Self {
        self.retry(RetryPolicy::with_max_attempts(n))
    }

    /// Overrides the capacity class pools are provisioned with for this
    /// run. Spot capacity bills at the SKU's discounted rate but exposes
    /// scenarios to eviction (requeued, then escalated to dedicated).
    pub fn capacity(mut self, capacity: Capacity) -> Self {
        self.capacity = Some(capacity);
        self
    }

    /// Overrides how many evictions one scenario tolerates before its pool
    /// escalates to dedicated capacity.
    pub fn escalate_after(mut self, evictions: u32) -> Self {
        self.escalate_after = Some(evictions);
        self
    }

    /// Sets a per-scenario wall-clock deadline (simulated seconds); a
    /// scenario whose retry loop exceeds it is marked timed out.
    pub fn deadline_secs(mut self, secs: f64) -> Self {
        self.deadline_secs = Some(secs);
        self
    }

    /// Sets a sweep-level cost budget in dollars; once billed spend reaches
    /// it, remaining scenarios are skipped (journaled) instead of executed.
    pub fn budget_dollars(mut self, dollars: f64) -> Self {
        self.budget_dollars = Some(dollars);
        self
    }

    /// Captures a deterministic run trace ([`CollectReport::trace`]): span
    /// events from every layer, stamped on shard-local simulated timelines
    /// and merged in shard order, so the trace bytes are identical for any
    /// worker count. Off by default — a disabled trace costs one branch per
    /// event site and allocates nothing.
    pub fn trace(mut self, on: bool) -> Self {
        self.trace = on;
        self
    }
}

/// What happened to one executed scenario.
#[derive(Debug, Clone)]
pub struct ScenarioOutcome {
    /// Scenario id in the session's grid.
    pub scenario_id: u32,
    /// VM type the scenario ran on.
    pub sku: String,
    /// Node count of the scenario.
    pub nnodes: u32,
    /// Final status after the run.
    pub status: ScenarioStatus,
    /// Index of the shard that executed it; `None` for cache hits, which
    /// never reach a shard.
    pub shard: Option<usize>,
    /// True if the result was served from the scenario cache.
    pub cached: bool,
    /// True if the outcome was replayed from the crash-safe run journal
    /// (`collect --resume`) instead of executing.
    pub replayed: bool,
    /// Execution attempts spent on the scenario: 1 means no retries, more
    /// means transient faults were retried, 0 means nothing executed
    /// (cached, replayed, or skipped before touching the cloud).
    pub attempts: u32,
    /// Simulated backoff seconds the scenario waited through on retries.
    pub backoff_secs: f64,
    /// Spot evictions the scenario survived (0 on dedicated capacity).
    pub evictions: u32,
    /// Region failovers the scenario went through before settling (0 when
    /// its first candidate region provisioned, or without a regions list).
    pub failovers: u32,
    /// Failure reason (quota, setup, task failure, deadline) when `status`
    /// is failed, skipped, or timed out.
    pub fail_reason: Option<String>,
}

/// Per-worker execution accounting for one collection run. Worker
/// attribution is wall-clock-dependent bookkeeping (like
/// [`CollectStats::wall_secs`]): it never reaches the dataset, the journal
/// or the run trace, which stay byte-identical across worker counts.
#[derive(Debug, Clone, Default)]
pub struct WorkerLoad {
    /// Chunks this worker executed.
    pub chunks: usize,
    /// Scenarios this worker executed.
    pub scenarios: usize,
    /// Wall-clock seconds this worker spent executing chunks.
    pub busy_secs: f64,
    /// Chunks this worker stole: chunks of a SKU group whose first chunk
    /// was taken by a different worker.
    pub steals: usize,
}

/// Aggregate statistics for one collection run.
#[derive(Debug, Clone)]
pub struct CollectStats {
    /// Worker threads actually used.
    pub workers: usize,
    /// Number of work-stealing chunks the scenario list was split into
    /// (one per SKU group when the group fits [`DEFAULT_CHUNK_SIZE`]).
    pub shards: usize,
    /// Total stolen chunks across all workers (0 on serial runs and on
    /// grids where every SKU group fits in one chunk).
    pub steals: usize,
    /// Per-worker utilization, indexed by worker id.
    pub worker_loads: Vec<WorkerLoad>,
    /// Scenarios the executor visited this run (cache hits and journal
    /// replays not counted; quota skips are, since the run reached them).
    pub executed: usize,
    /// Scenarios that completed (executed or cached).
    pub completed: usize,
    /// Scenarios that failed.
    pub failed: usize,
    /// Scenarios skipped by graceful degradation (e.g. SKU quota exhausted
    /// mid-run, or the cost budget tripping); they re-run on the next
    /// collect unless the skip was journaled (budget stops).
    pub skipped: usize,
    /// Scenarios killed by the per-scenario deadline watchdog.
    pub timed_out: usize,
    /// Total spot evictions survived across all scenarios.
    pub evictions: u32,
    /// Scenarios that needed more than one attempt (transient-fault
    /// retries).
    pub retried: usize,
    /// Total simulated backoff across all scenarios, in seconds.
    pub backoff_secs: f64,
    /// Total region failovers across all scenarios (0 without a multi-region
    /// placement grid).
    pub failovers: u32,
    /// Scenarios replayed from the run journal without executing.
    pub journal_replayed: usize,
    /// Scenarios answered from the result cache without running.
    pub cache_hits: usize,
    /// Scenarios consulted but not found in the cache (0 when the cache is
    /// off).
    pub cache_misses: usize,
    /// Wall-clock time of the executor, in seconds.
    pub wall_secs: f64,
}

/// Everything a collection run produced: the dataset, per-scenario
/// outcomes, per-pool billing and executor statistics.
#[derive(Debug)]
pub struct CollectReport {
    /// Collected data points, ordered by scenario id.
    pub dataset: Dataset,
    /// Per-scenario outcomes, ordered by scenario id.
    pub outcomes: Vec<ScenarioOutcome>,
    /// Cumulative per-SKU billing for the deployment (one entry ≈ one pool).
    pub billing: Vec<BillingSummary>,
    /// Executor statistics.
    pub stats: CollectStats,
    /// The merged run trace, when the plan enabled tracing
    /// ([`CollectPlan::trace`]). Byte-identical for any worker count.
    pub trace: Option<Trace>,
}

impl CollectReport {
    /// Extracts just the dataset (what the legacy `collect()` returned).
    pub fn into_dataset(self) -> Dataset {
        self.dataset
    }

    /// Aggregated trace counters and histograms (provision latency, boot
    /// time, retries, cache hit ratio, dollars per completed scenario), when
    /// the run was traced.
    pub fn trace_summary(&self) -> Option<TraceSummary> {
        self.trace.as_ref().map(|t| t.summarize())
    }

    /// Human-readable summary: stats line, per-pool billing, failures.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "collected {} scenarios: {} completed, {} failed ({} worker{}, {} chunk{}, {:.2}s)",
            self.stats.executed + self.stats.cache_hits,
            self.stats.completed,
            self.stats.failed,
            self.stats.workers,
            if self.stats.workers == 1 { "" } else { "s" },
            self.stats.shards,
            if self.stats.shards == 1 { "" } else { "s" },
            self.stats.wall_secs,
        );
        if self.stats.workers > 1 {
            for (i, w) in self.stats.worker_loads.iter().enumerate() {
                let busy_pct = if self.stats.wall_secs > 0.0 {
                    100.0 * w.busy_secs / self.stats.wall_secs
                } else {
                    0.0
                };
                let _ = writeln!(
                    out,
                    "  worker {i}: {} chunk{} ({} stolen), {} scenario{}, {:.0}% busy",
                    w.chunks,
                    if w.chunks == 1 { "" } else { "s" },
                    w.steals,
                    w.scenarios,
                    if w.scenarios == 1 { "" } else { "s" },
                    busy_pct,
                );
            }
        }
        if self.stats.cache_hits > 0 || self.stats.cache_misses > 0 {
            let _ = writeln!(
                out,
                "  cache: {} hit{}, {} miss{}",
                self.stats.cache_hits,
                if self.stats.cache_hits == 1 { "" } else { "s" },
                self.stats.cache_misses,
                if self.stats.cache_misses == 1 {
                    ""
                } else {
                    "es"
                },
            );
        }
        if self.stats.journal_replayed > 0 {
            let _ = writeln!(
                out,
                "  journal: {} outcome{} replayed from a previous run",
                self.stats.journal_replayed,
                if self.stats.journal_replayed == 1 {
                    ""
                } else {
                    "s"
                },
            );
        }
        if self.stats.skipped > 0 {
            let _ = writeln!(
                out,
                "  skipped: {} scenario{} (graceful degradation; rerun to retry)",
                self.stats.skipped,
                if self.stats.skipped == 1 { "" } else { "s" },
            );
        }
        if self.stats.timed_out > 0 {
            let _ = writeln!(
                out,
                "  timed out: {} scenario{} hit the per-scenario deadline",
                self.stats.timed_out,
                if self.stats.timed_out == 1 { "" } else { "s" },
            );
        }
        if self.stats.evictions > 0 {
            let _ = writeln!(
                out,
                "  evictions: {} spot eviction{} survived via requeue/escalation",
                self.stats.evictions,
                if self.stats.evictions == 1 { "" } else { "s" },
            );
        }
        if self.stats.retried > 0 {
            let _ = writeln!(
                out,
                "  retries: {} scenario{} needed more than one attempt, {:.1}s simulated backoff",
                self.stats.retried,
                if self.stats.retried == 1 { "" } else { "s" },
                self.stats.backoff_secs,
            );
        }
        if self.stats.failovers > 0 {
            let _ = writeln!(
                out,
                "  failovers: {} region failover{} rerouted scenarios to healthy regions",
                self.stats.failovers,
                if self.stats.failovers == 1 { "" } else { "s" },
            );
        }
        if let Some(trace) = &self.trace {
            let _ = writeln!(out, "  trace: {} events captured", trace.len());
        }
        for b in &self.billing {
            let _ = writeln!(
                out,
                "  pool {}: peak {} nodes, {} spans, {:.3} node-h, ${:.2}",
                b.sku, b.peak_nodes, b.spans, b.node_hours, b.cost
            );
        }
        for o in &self.outcomes {
            let Some(reason) = &o.fail_reason else {
                continue;
            };
            let verb = match o.status {
                ScenarioStatus::Skipped => "skipped",
                ScenarioStatus::TimedOut => "timed out",
                _ => "failed",
            };
            let _ = writeln!(
                out,
                "  {verb} scenario {} ({} x {}): {}",
                o.scenario_id, o.sku, o.nnodes, reason
            );
        }
        out
    }
}

/// One shard's hand-back: its output, the filesystem clone it worked on
/// (None when it ran on the shared one), and its trace events (empty when
/// the run is untraced).
type ShardResult = Result<(ShardOutput, Option<Vfs>, Vec<TraceEvent>), ToolError>;

/// Builds the sink for one shard (or the coordinator): enabled when the
/// run records a trace or streams live progress, with the tap attached so
/// subscribers see events as they are emitted.
fn shard_sink(shard: i64, on: bool, tap: &Option<Arc<dyn EventTap>>) -> EventSink {
    if !on {
        return EventSink::disabled();
    }
    let sink = EventSink::for_shard(shard);
    match tap {
        Some(tap) => sink.with_tap(tap.clone()),
        None => sink,
    }
}

/// Splits ordered scenarios into shards under `policy`. Per-SKU sharding
/// groups all scenarios of a VM type into one shard, in first-appearance
/// order of the SKU.
fn split_shards(ordered: Vec<Scenario>, policy: ShardPolicy) -> Vec<Vec<Scenario>> {
    match policy {
        ShardPolicy::SingleShard => {
            if ordered.is_empty() {
                Vec::new()
            } else {
                vec![ordered]
            }
        }
        ShardPolicy::PerSku => {
            let mut shards: Vec<Vec<Scenario>> = Vec::new();
            for scenario in ordered {
                match shards.iter_mut().find(|sh| sh[0].sku == scenario.sku) {
                    Some(shard) => shard.push(scenario),
                    None => shards.push(vec![scenario]),
                }
            }
            shards
        }
    }
}

/// Default scenarios per work-stealing chunk. Small enough that a hot SKU's
/// group splits across workers, large enough that pool setup amortizes; on
/// the bundled example grids (≤ a dozen scenarios per SKU) every group fits
/// in one chunk, making chunked scheduling bit-for-bit identical to the
/// legacy per-SKU shards.
pub const DEFAULT_CHUNK_SIZE: usize = 32;

/// One work-stealing unit: a consecutive, id-ordered run of scenarios from
/// a single SKU group, plus the group index (steal accounting).
struct Chunk {
    scenarios: Vec<Scenario>,
    group: usize,
}

/// Splits ordered scenarios into SKU groups under `policy`, then each group
/// into consecutive chunks of at most `chunk_size` scenarios. Boundaries
/// depend only on the inputs — never on the worker count.
fn split_chunks(ordered: Vec<Scenario>, policy: ShardPolicy, chunk_size: usize) -> Vec<Chunk> {
    let chunk_size = chunk_size.max(1);
    let mut chunks = Vec::new();
    for (group, scenarios) in split_shards(ordered, policy).into_iter().enumerate() {
        let mut rest = scenarios;
        while rest.len() > chunk_size {
            let tail = rest.split_off(chunk_size);
            chunks.push(Chunk {
                scenarios: std::mem::replace(&mut rest, tail),
                group,
            });
        }
        chunks.push(Chunk {
            scenarios: rest,
            group,
        });
    }
    chunks
}

/// The shared chunk queue workers drain: a deterministic scan order (always
/// the lowest-index untaken chunk) plus a quota admission gate. Before a
/// chunk starts, its worst-case `(family, region)` core usage is reserved
/// against the region quota limits; a chunk that does not fit waits until a
/// running chunk releases its reservation. Serial runs see each chunk's
/// pool torn down (quota released) before the next starts, so the gate is
/// what keeps concurrent chunks of one family from tripping quota denials
/// a serial run would never see — and with it, keeps results byte-identical
/// across worker counts.
///
/// Known limitation: region-failover targets are not reserved — a scenario
/// rerouted mid-run draws on the target region's quota best-effort, which
/// only matters when concurrent failovers alone exceed a region's limit.
struct ChunkQueue {
    // std primitives (not the workspace's parking_lot) because the gate
    // needs a condition variable; poisoning is recovered, never propagated.
    state: std::sync::Mutex<QueueState>,
    ready: std::sync::Condvar,
    /// Per chunk: `(quota key id, cores)` reservations, each clamped to the
    /// key's limit so a lone over-sized chunk still admits on an idle gate.
    reservations: Vec<Vec<(usize, u32)>>,
    /// Per quota key id: the region's core limit for the family.
    limits: Vec<u32>,
    /// Per chunk: its SKU group index.
    groups: Vec<usize>,
}

struct QueueState {
    taken: Vec<bool>,
    /// Cores currently reserved per quota key id.
    used: Vec<u32>,
    /// Worker that took each group's first chunk; later chunks taken by a
    /// different worker count as steals.
    group_owner: Vec<Option<usize>>,
    remaining: usize,
}

impl ChunkQueue {
    /// Builds the queue, sizing each chunk's reservation from the SKU
    /// catalog (family, cores) and each scenario's pinned or home region.
    fn new(ctx: &ExecContext, chunks: &[Chunk]) -> ChunkQueue {
        let provider = ctx.provider.lock();
        let home = provider.region().name.clone();
        let mut key_ids: HashMap<(String, String), usize> = HashMap::new();
        let mut limits: Vec<u32> = Vec::new();
        let mut reservations = Vec::with_capacity(chunks.len());
        let mut groups = Vec::with_capacity(chunks.len());
        let mut ngroups = 0usize;
        for chunk in chunks {
            let mut need: BTreeMap<usize, u32> = BTreeMap::new();
            for s in &chunk.scenarios {
                // Unknown SKUs fail at runtime anyway; no reservation.
                let Some(sku) = provider.catalog().get(&s.sku) else {
                    continue;
                };
                let region = s.region.as_deref().unwrap_or(&home);
                let id = *key_ids
                    .entry((sku.family.clone(), region.to_string()))
                    .or_insert_with(|| {
                        limits.push(provider.quota_limit(region, &sku.family));
                        limits.len() - 1
                    });
                let cores = sku.cores.saturating_mul(s.nnodes);
                let entry = need.entry(id).or_insert(0);
                *entry = (*entry).max(cores);
            }
            reservations.push(
                need.into_iter()
                    .map(|(id, cores)| (id, cores.min(limits[id])))
                    .collect(),
            );
            groups.push(chunk.group);
            ngroups = ngroups.max(chunk.group + 1);
        }
        ChunkQueue {
            state: std::sync::Mutex::new(QueueState {
                taken: vec![false; chunks.len()],
                used: vec![0; limits.len()],
                group_owner: vec![None; ngroups],
                remaining: chunks.len(),
            }),
            ready: std::sync::Condvar::new(),
            reservations,
            limits,
            groups,
        }
    }

    fn fits(&self, state: &QueueState, chunk: usize) -> bool {
        self.reservations[chunk]
            .iter()
            .all(|&(id, cores)| state.used[id].saturating_add(cores) <= self.limits[id])
    }

    /// Takes the lowest-index untaken chunk whose reservation fits,
    /// blocking while nothing fits but chunks remain. Returns the chunk
    /// index and whether taking it counts as a steal; `None` once every
    /// chunk has been claimed.
    fn acquire(&self, worker: usize) -> Option<(usize, bool)> {
        let mut state = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        loop {
            if state.remaining == 0 {
                return None;
            }
            let next = (0..self.groups.len()).find(|&i| !state.taken[i] && self.fits(&state, i));
            match next {
                Some(i) => {
                    state.taken[i] = true;
                    state.remaining -= 1;
                    for &(id, cores) in &self.reservations[i] {
                        state.used[id] += cores;
                    }
                    let group = self.groups[i];
                    let stolen = match state.group_owner[group] {
                        None => {
                            state.group_owner[group] = Some(worker);
                            false
                        }
                        Some(owner) => owner != worker,
                    };
                    return Some((i, stolen));
                }
                None => {
                    state = self
                        .ready
                        .wait(state)
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                }
            }
        }
    }

    /// Releases a finished chunk's reservation and wakes waiting workers.
    fn release(&self, chunk: usize) {
        let mut state = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        for &(id, cores) in &self.reservations[chunk] {
            state.used[id] = state.used[id].saturating_sub(cores);
        }
        drop(state);
        self.ready.notify_all();
    }
}

impl Collector {
    /// Runs a collection under `plan` and returns a full [`CollectReport`].
    ///
    /// With one worker, shards run back to back on the collector's own
    /// batch service — exactly the legacy serial path. With more, each
    /// shard gets a fresh batch service and a clone of the shared
    /// filesystem, workers drain a shard queue, and the results are merged
    /// in scenario-id order; filesystem changes are merged back at the end.
    ///
    /// A shard-level error (systemic, not per-scenario) marks that shard's
    /// scenarios failed instead of aborting sibling shards.
    pub fn collect_with_plan(
        &mut self,
        scenarios: &mut [Scenario],
        plan: &CollectPlan,
    ) -> Result<CollectReport, ToolError> {
        let started = std::time::Instant::now();
        let mut ctx = self.ctx.clone();
        if let Some(seed) = plan.experiment_seed {
            ctx.options.experiment_seed = seed;
        }
        if let Some(rerun) = plan.rerun_failed {
            ctx.options.rerun_failed = rerun;
        }
        if let Some(retry) = &plan.retry {
            ctx.options.retry = retry.clone();
        }
        if let Some(capacity) = plan.capacity {
            ctx.options.capacity = capacity;
        }
        if let Some(n) = plan.escalate_after {
            ctx.options.escalate_after = n;
        }
        if let Some(secs) = plan.deadline_secs {
            ctx.options.deadline_secs = Some(secs);
        }
        if let Some(dollars) = plan.budget_dollars {
            ctx.options.budget_dollars = Some(dollars);
        }

        let index = index_by_id(scenarios);
        let ordered: Vec<Scenario> = match &plan.subset {
            Some(ids) => resolve_ids(scenarios, &index, ids)?,
            None => scenarios
                .iter()
                .filter(|s| ctx.should_run(s))
                .cloned()
                .collect(),
        };
        // Replay the crash-safe run journal first (the resume path):
        // outcomes a previous interrupted run already finished are emitted
        // verbatim, and only the remainder is collected.
        let journal = self.journal.clone();
        let jconsult = match &journal {
            Some(j) => consult_journal(&ctx, &j.lock(), &ordered),
            None => JournalConsult::pass_through(&ordered),
        };
        let journal_replayed = jconsult.hits.len();
        // Consult the result cache next, on this thread: hits never reach
        // a shard (or a pool), and only the misses are split below.
        let policy = plan.cache.unwrap_or(self.cache_policy);
        let consult = consult_cache(&ctx, &self.cache.lock(), policy, &jconsult.misses);
        let cache_hits = consult.hits.len();
        let cache_misses = consult.fingerprints.len();
        // Cache hits count as finished for resume purposes too.
        if let Some(j) = &journal {
            for hit in &consult.hits {
                if let Some(&fingerprint) = jconsult.fingerprints.get(&hit.scenario.id) {
                    j.lock().append(JournalEntry {
                        fingerprint,
                        scenario_id: hit.scenario.id,
                        status: ScenarioStatus::Completed,
                        attempts: 0,
                        backoff_secs: 0.0,
                        fail_reason: None,
                        point: Some(hit.point.clone()),
                    });
                }
            }
        }
        let writer = journal.as_ref().map(|j| JournalWriter {
            journal: j.clone(),
            fingerprints: Arc::new(jconsult.fingerprints.clone()),
        });
        let chunk_size = plan.chunk_size.unwrap_or(DEFAULT_CHUNK_SIZE);
        let chunks = split_chunks(consult.misses, plan.shard_policy, chunk_size);
        let workers = plan.workers.max(1).min(chunks.len().max(1));

        // Coordinator trace framing: run_start, then the decisions made
        // before any shard executes (journal replays, cache hits, in
        // requested order), then — after the merge barrier below — the
        // shard streams in shard-index order and run_end. Nothing here may
        // depend on worker count or wall-clock.
        let tracing = plan.trace;
        let tap = self.progress.clone();
        // Sinks run whenever the trace is recorded OR a live tap wants the
        // stream; a tap alone never turns on provider-level span buffering
        // (that stays a trace-only cost), and tapped-but-untraced events
        // are discarded after the run, so report bytes are unaffected.
        let sink_on = tracing || tap.is_some();
        if tracing {
            // The shared provider buffers span events only while a traced
            // run is in flight; shard services drain it under the same lock
            // hold as the call that produced them.
            ctx.provider.lock().set_trace_enabled(true);
        }
        let mut coord = shard_sink(COORDINATOR_SHARD, sink_on, &tap);
        coord.emit("run_start", "run", |m| {
            m.insert("scenarios", Value::Int(ordered.len() as i64));
            m.insert("seed", Value::Int(ctx.options.experiment_seed as i64));
        });
        for hit in &jconsult.hits {
            coord.emit("journal_replay", &format!("s{}", hit.scenario.id), |m| {
                m.insert("status", Value::str(status_str(hit.entry.status)));
            });
        }
        for hit in &consult.hits {
            coord.emit("cache_hit", &format!("s{}", hit.scenario.id), |m| {
                m.insert("sku", Value::str(hit.scenario.sku.clone()));
                m.insert("nnodes", Value::Int(i64::from(hit.scenario.nnodes)));
            });
        }

        let mut results: Vec<ShardResult> = Vec::with_capacity(chunks.len());
        let worker_loads: Vec<WorkerLoad>;
        if workers <= 1 {
            // Every chunk starts from a snapshot of the shared filesystem
            // and merges back afterwards, exactly like the parallel path —
            // otherwise a later chunk would see files an earlier chunk
            // downloaded, skip the fetch, and its simulated timeline (and
            // run trace) would depend on the worker count. Likewise each
            // chunk gets a fresh service with chunk-qualified fault
            // counters, so serial and parallel runs replay identically.
            let initial_vfs = self.shared_vfs.lock().clone();
            let mut load = WorkerLoad::default();
            for (idx, chunk) in chunks.iter().enumerate() {
                let chunk_started = std::time::Instant::now();
                let mut service = BatchService::new(ctx.provider.clone(), &ctx.deployment);
                service.set_fault_qualifier(Some(format!("c{idx}")));
                if sink_on {
                    service.set_trace(shard_sink(idx as i64, sink_on, &tap));
                }
                let vfs = Arc::new(Mutex::new(initial_vfs.clone()));
                let out = ShardRun {
                    ctx: &ctx,
                    service: &mut service,
                    vfs: vfs.clone(),
                    journal: writer.clone(),
                }
                .run(&chunk.scenarios);
                let events = service.take_trace();
                let vfs = Arc::try_unwrap(vfs)
                    .map(Mutex::into_inner)
                    .unwrap_or_else(|arc| arc.lock().clone());
                results.push(out.map(|o| (o, Some(vfs), events)));
                load.chunks += 1;
                load.scenarios += chunk.scenarios.len();
                load.busy_secs += chunk_started.elapsed().as_secs_f64();
            }
            worker_loads = vec![load];
        } else {
            (results, worker_loads) = run_parallel(
                &ctx,
                &chunks,
                workers,
                &self.shared_vfs.lock().clone(),
                writer.as_ref(),
                sink_on,
                &tap,
            );
        }
        if tracing {
            ctx.provider.lock().set_trace_enabled(false);
        }

        let mut trace_events: Vec<TraceEvent> = coord.take();
        let mut points = Vec::new();
        let mut outcomes: Vec<ScenarioOutcome> = Vec::new();
        for (chunk_idx, result) in results.into_iter().enumerate() {
            match result {
                Ok((out, vfs, events)) => {
                    trace_events.extend(events);
                    if let Some(vfs) = vfs {
                        self.shared_vfs.lock().merge_from(&vfs);
                    }
                    for oc in out.outcomes {
                        let scenario = &scenarios[index[&oc.scenario_id]];
                        outcomes.push(ScenarioOutcome {
                            scenario_id: oc.scenario_id,
                            sku: scenario.sku.clone(),
                            nnodes: scenario.nnodes,
                            status: oc.status,
                            shard: Some(chunk_idx),
                            cached: false,
                            replayed: false,
                            attempts: oc.attempts,
                            backoff_secs: oc.backoff_secs,
                            evictions: oc.evictions,
                            failovers: oc.failovers,
                            fail_reason: oc.fail_reason,
                        });
                    }
                    points.extend(out.points);
                }
                Err(e) => {
                    // Systemic chunk failure: fail the chunk's runnable
                    // scenarios, leave sibling chunks untouched.
                    let reason = format!("shard error: {e}");
                    for scenario in chunks[chunk_idx]
                        .scenarios
                        .iter()
                        .filter(|s| ctx.should_run(s))
                    {
                        points.push(ctx.failed_point(scenario, &reason));
                        outcomes.push(ScenarioOutcome {
                            scenario_id: scenario.id,
                            sku: scenario.sku.clone(),
                            nnodes: scenario.nnodes,
                            status: ScenarioStatus::Failed,
                            shard: Some(chunk_idx),
                            cached: false,
                            replayed: false,
                            attempts: 1,
                            backoff_secs: 0.0,
                            evictions: 0,
                            failovers: 0,
                            fail_reason: Some(reason.clone()),
                        });
                    }
                }
            }
        }

        // Splice cache hits back in as already-completed outcomes.
        for hit in consult.hits {
            outcomes.push(ScenarioOutcome {
                scenario_id: hit.scenario.id,
                sku: hit.scenario.sku.clone(),
                nnodes: hit.scenario.nnodes,
                status: ScenarioStatus::Completed,
                shard: None,
                cached: true,
                replayed: false,
                attempts: 0,
                backoff_secs: 0.0,
                evictions: 0,
                failovers: 0,
                fail_reason: None,
            });
            points.push(hit.point);
        }

        // Splice journal replays back in with their recorded outcome. The
        // stored point is rehydrated onto the current scenario identity,
        // exactly like a cache hit.
        let mut store_fps = consult.fingerprints.clone();
        for hit in jconsult.hits {
            if let Some(&fp) = jconsult.fingerprints.get(&hit.scenario.id) {
                store_fps.insert(hit.scenario.id, fp);
            }
            let point = match &hit.entry.point {
                Some(p) => {
                    rehydrate_point(p.clone(), &hit.scenario, &ctx.config.tags, &ctx.deployment)
                }
                // Point-less entries (older journals) get a synthetic point
                // matching the journaled status.
                None => {
                    let reason = hit
                        .entry
                        .fail_reason
                        .as_deref()
                        .unwrap_or("journaled failure");
                    match hit.entry.status {
                        ScenarioStatus::Skipped => ctx.skipped_point(&hit.scenario, reason),
                        ScenarioStatus::TimedOut => ctx.timed_out_point(&hit.scenario, reason),
                        _ => ctx.failed_point(&hit.scenario, reason),
                    }
                }
            };
            outcomes.push(ScenarioOutcome {
                scenario_id: hit.scenario.id,
                sku: hit.scenario.sku.clone(),
                nnodes: hit.scenario.nnodes,
                status: hit.entry.status,
                shard: None,
                cached: false,
                replayed: true,
                attempts: 0,
                backoff_secs: 0.0,
                evictions: 0,
                failovers: 0,
                fail_reason: hit.entry.fail_reason,
            });
            points.push(point);
        }

        // Deterministic id order, independent of shard completion order.
        points.sort_by_key(|p| p.scenario_id);
        outcomes.sort_by_key(|o| o.scenario_id);
        for oc in &outcomes {
            scenarios[index[&oc.scenario_id]].status = oc.status;
        }
        if policy.writes() {
            // store_fps also covers journal replays, so a resumed run heals
            // a cache the interrupted run never got to save.
            store_new_points(&self.cache, &store_fps, &points)?;
        }

        let mut dataset = Dataset::new();
        let outcomes_total = outcomes.len();
        let executed = outcomes_total - cache_hits - journal_replayed;
        let completed = outcomes
            .iter()
            .filter(|o| o.status == ScenarioStatus::Completed)
            .count();
        let failed = outcomes
            .iter()
            .filter(|o| o.status == ScenarioStatus::Failed)
            .count();
        let skipped = outcomes
            .iter()
            .filter(|o| o.status == ScenarioStatus::Skipped)
            .count();
        let timed_out = outcomes
            .iter()
            .filter(|o| o.status == ScenarioStatus::TimedOut)
            .count();
        let evictions = outcomes.iter().map(|o| o.evictions).sum();
        let failovers = outcomes.iter().map(|o| o.failovers).sum();
        let retried = outcomes.iter().filter(|o| o.attempts > 1).count();
        let backoff_secs = outcomes.iter().map(|o| o.backoff_secs).sum();
        for p in points {
            dataset.push(p);
        }
        let billing = ctx
            .provider
            .lock()
            .billing()
            .summarize_by_sku(Some(&ctx.deployment));
        // run_end carries only worker-count-invariant aggregates: the cost
        // figure sums the points' deterministic price × nodes × exec-time
        // values, never the jitter-affected billing spans.
        let total_cost: f64 = dataset.points.iter().map(|p| p.cost_dollars).sum();
        coord.emit("run_end", "run", |m| {
            m.insert("completed", Value::Int(completed as i64));
            m.insert("failed", Value::Int(failed as i64));
            m.insert("skipped", Value::Int(skipped as i64));
            m.insert("timed_out", Value::Int(timed_out as i64));
            m.insert("cache_hits", Value::Int(cache_hits as i64));
            m.insert("cache_misses", Value::Int(cache_misses as i64));
            m.insert("replayed", Value::Int(journal_replayed as i64));
            m.insert("cost", Value::Float(total_cost));
        });
        trace_events.extend(coord.take());
        let trace = tracing.then(|| Trace::new(trace_events));
        Ok(CollectReport {
            dataset,
            outcomes,
            billing,
            trace,
            stats: CollectStats {
                workers,
                shards: chunks.len(),
                steals: worker_loads.iter().map(|w| w.steals).sum(),
                worker_loads,
                executed,
                completed,
                failed,
                skipped,
                timed_out,
                evictions,
                failovers,
                retried,
                backoff_secs,
                journal_replayed,
                cache_hits,
                cache_misses,
                wall_secs: started.elapsed().as_secs_f64(),
            },
        })
    }
}

/// Runs chunks on `workers` scoped threads draining the admission-gated
/// [`ChunkQueue`]. Each chunk executes against a fresh [`BatchService`]
/// (same provider, so billing/quota stay global) with chunk-qualified
/// fault counters, and its own clone of the shared filesystem.
#[allow(clippy::too_many_arguments)]
fn run_parallel(
    ctx: &ExecContext,
    chunks: &[Chunk],
    workers: usize,
    initial_vfs: &Vfs,
    journal: Option<&JournalWriter>,
    sink_on: bool,
    tap: &Option<Arc<dyn EventTap>>,
) -> (Vec<ShardResult>, Vec<WorkerLoad>) {
    let slots: Vec<Mutex<Option<ShardResult>>> = chunks.iter().map(|_| Mutex::new(None)).collect();
    let loads: Vec<Mutex<WorkerLoad>> = (0..workers)
        .map(|_| Mutex::new(WorkerLoad::default()))
        .collect();
    let queue = ChunkQueue::new(ctx, chunks);
    let slots_ref = &slots;
    let loads_ref = &loads;
    let queue_ref = &queue;
    let scope_result = crossbeam::thread::scope(|scope| {
        for (worker, worker_load) in loads_ref.iter().enumerate() {
            scope.spawn(move |_| {
                while let Some((i, stolen)) = queue_ref.acquire(worker) {
                    let chunk_started = std::time::Instant::now();
                    let mut service = BatchService::new(ctx.provider.clone(), &ctx.deployment);
                    // Fault counters are qualified by chunk index, and sinks
                    // are keyed by chunk index — not worker id — so the
                    // merged stream is invariant to which worker ran what.
                    service.set_fault_qualifier(Some(format!("c{i}")));
                    if sink_on {
                        service.set_trace(shard_sink(i as i64, sink_on, tap));
                    }
                    let vfs = Arc::new(Mutex::new(initial_vfs.clone()));
                    let result = ShardRun {
                        ctx,
                        service: &mut service,
                        vfs: vfs.clone(),
                        journal: journal.cloned(),
                    }
                    .run(&chunks[i].scenarios);
                    let events = service.take_trace();
                    // All runner closures are gone once the chunk finishes,
                    // so the Arc is unique and the filesystem moves out
                    // copy-free.
                    let result = result.map(|out| {
                        let vfs = Arc::try_unwrap(vfs)
                            .map(Mutex::into_inner)
                            .unwrap_or_else(|arc| arc.lock().clone());
                        (out, Some(vfs), events)
                    });
                    *slots_ref[i].lock() = Some(result);
                    queue_ref.release(i);
                    let mut load = worker_load.lock();
                    load.chunks += 1;
                    load.scenarios += chunks[i].scenarios.len();
                    load.busy_secs += chunk_started.elapsed().as_secs_f64();
                    if stolen {
                        load.steals += 1;
                    }
                }
            });
        }
    });
    if let Err(payload) = scope_result {
        std::panic::resume_unwind(payload);
    }
    let results = slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("every chunk slot is filled"))
        .collect();
    let loads = loads.into_iter().map(Mutex::into_inner).collect();
    (results, loads)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::UserConfig;
    use crate::session::Session;

    #[test]
    fn default_plan_matches_legacy_collect() {
        let serial = {
            let mut s = Session::create(UserConfig::example_lammps_small(), 42).unwrap();
            s.collect().unwrap().to_json()
        };
        let mut s = Session::create(UserConfig::example_lammps_small(), 42).unwrap();
        let report = s.collect_with(&CollectPlan::new()).unwrap();
        assert_eq!(report.stats.workers, 1);
        assert_eq!(report.stats.executed, 3);
        assert_eq!(report.stats.failed, 0);
        assert_eq!(report.into_dataset().to_json(), serial);
    }

    #[test]
    fn per_sku_sharding_groups_scenarios() {
        let mut s = Session::create(UserConfig::example_openfoam(), 42).unwrap();
        let shards = split_shards(s.scenarios().to_vec(), ShardPolicy::PerSku);
        assert_eq!(shards.len(), 3, "one shard per SKU");
        for shard in &shards {
            assert!(shard.windows(2).all(|w| w[0].sku == w[1].sku));
            assert!(shard.windows(2).all(|w| w[0].id < w[1].id), "order kept");
        }
        let report = s.collect_with(&CollectPlan::new().workers(2)).unwrap();
        assert_eq!(report.stats.shards, 3);
        assert_eq!(report.stats.workers, 2);
        // Outcomes cover the whole grid and carry shard attribution.
        assert_eq!(report.outcomes.len(), 36);
        assert!(report.outcomes.iter().any(|o| o.shard == Some(2)));
        assert!(report.outcomes.iter().all(|o| !o.cached), "cold run");
        assert!(!report.billing.is_empty());
        assert!(report.render_text().contains("completed"));
    }

    #[test]
    fn subset_plans_run_only_requested_ids() {
        let mut s = Session::create(UserConfig::example_lammps_small(), 42).unwrap();
        let first_id = s.scenarios()[0].id;
        let report = s
            .collect_with(&CollectPlan::new().subset(vec![first_id]))
            .unwrap();
        assert_eq!(report.stats.executed, 1);
        assert_eq!(report.outcomes[0].scenario_id, first_id);
    }
}
