//! The redesigned collection API: [`CollectPlan`] → [`CollectReport`].
//!
//! The paper's Algorithm 1 keeps one pool per VM type and walks the scenario
//! grid serially. Because each SKU owns an independent pool (and an
//! independent quota family on Azure's H-series), the per-SKU slices of the
//! grid are embarrassingly parallel: this module shards the scenario list by
//! VM type and runs the shards on scoped worker threads, each against its
//! own [`BatchService`] and a clone of the deployment's shared filesystem.
//!
//! Determinism: a scenario's data point depends only on the scenario itself,
//! the experiment seed, and the setup artifacts on the filesystem — not on
//! wall-clock interleaving — so the merged, id-ordered [`Dataset`] is
//! byte-identical to what the serial path produces on the generated grid
//! (where ids ascend SKU-major). Shard filesystems are merged back into the
//! deployment's shared filesystem when all shards finish.
//!
//! Incremental collection: before sharding, the run consults the
//! collector's [`crate::cache::ScenarioCache`] — scenarios whose
//! fingerprint is already known are answered without touching a pool, and
//! only the misses are split into shards. New results are buffered in each
//! shard's [`ShardOutput`] and inserted into the cache after the merge
//! barrier on the coordinating thread, so shard workers never contend on a
//! cache lock. [`CollectPlan::cache`] overrides the policy per run.
//!
//! ```no_run
//! use hpcadvisor_core::prelude::*;
//!
//! let mut session = Session::create(UserConfig::example_openfoam(), 42).unwrap();
//! let report = session.collect_with(&CollectPlan::new().workers(4)).unwrap();
//! println!("{}", report.render_text());
//! let dataset = report.into_dataset();
//! # let _ = dataset;
//! ```

use crate::cache::CachePolicy;
use crate::collector::{
    consult_cache, index_by_id, resolve_ids, store_new_points, Collector, ExecContext, ShardOutput,
    ShardRun,
};
use crate::dataset::Dataset;
use crate::error::ToolError;
use crate::scenario::{Scenario, ScenarioStatus};
use batchsim::BatchService;
use cloudsim::BillingSummary;
use parking_lot::Mutex;
use std::fmt::Write as _;
use std::sync::Arc;
use taskshell::Vfs;

/// How the scenario list is split into independently-runnable shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShardPolicy {
    /// One shard per VM type (the paper's one-pool-per-SKU structure).
    #[default]
    PerSku,
    /// Everything in one shard (serial semantics regardless of workers).
    SingleShard,
}

/// A declarative description of one collection run.
///
/// Built fluently and handed to [`Session::collect_with`] or
/// [`Collector::collect_with_plan`]; the legacy [`Session::collect`] is a
/// thin wrapper equivalent to the default plan.
///
/// [`Session::collect_with`]: crate::session::Session::collect_with
/// [`Session::collect`]: crate::session::Session::collect
#[derive(Debug, Clone, Default)]
pub struct CollectPlan {
    workers: usize,
    shard_policy: ShardPolicy,
    rerun_failed: Option<bool>,
    experiment_seed: Option<u64>,
    subset: Option<Vec<u32>>,
    cache: Option<CachePolicy>,
}

impl CollectPlan {
    /// A serial, per-SKU-sharded plan with the collector's own options.
    pub fn new() -> Self {
        CollectPlan::default()
    }

    /// Number of worker threads (0 and 1 both mean serial). Workers beyond
    /// the shard count are not spawned.
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = n;
        self
    }

    /// Sets the shard policy.
    pub fn shard_policy(mut self, policy: ShardPolicy) -> Self {
        self.shard_policy = policy;
        self
    }

    /// Overrides the collector's rerun-failed option for this run.
    pub fn rerun_failed(mut self, yes: bool) -> Self {
        self.rerun_failed = Some(yes);
        self
    }

    /// Overrides the collector's experiment noise seed for this run.
    pub fn experiment_seed(mut self, seed: u64) -> Self {
        self.experiment_seed = Some(seed);
        self
    }

    /// Restricts the run to the given scenario ids (smart-sampling drivers).
    pub fn subset(mut self, ids: impl Into<Vec<u32>>) -> Self {
        self.subset = Some(ids.into());
        self
    }

    /// Overrides the collector's scenario-cache policy for this run
    /// (`Off` forces every scenario cold; `ReadOnly` reuses but never
    /// stores).
    pub fn cache(mut self, policy: CachePolicy) -> Self {
        self.cache = Some(policy);
        self
    }
}

/// What happened to one executed scenario.
#[derive(Debug, Clone)]
pub struct ScenarioOutcome {
    /// Scenario id in the session's grid.
    pub scenario_id: u32,
    /// VM type the scenario ran on.
    pub sku: String,
    /// Node count of the scenario.
    pub nnodes: u32,
    /// Final status after the run.
    pub status: ScenarioStatus,
    /// Index of the shard that executed it; `None` for cache hits, which
    /// never reach a shard.
    pub shard: Option<usize>,
    /// True if the result was served from the scenario cache.
    pub cached: bool,
    /// Failure reason (quota, setup, task failure) when `status` is failed.
    pub fail_reason: Option<String>,
}

/// Aggregate statistics for one collection run.
#[derive(Debug, Clone)]
pub struct CollectStats {
    /// Worker threads actually used.
    pub workers: usize,
    /// Number of shards the scenario list was split into.
    pub shards: usize,
    /// Scenarios actually executed by the simulators (cache hits and
    /// skipped scenarios not counted).
    pub executed: usize,
    /// Scenarios that completed (executed or cached).
    pub completed: usize,
    /// Scenarios that failed.
    pub failed: usize,
    /// Scenarios answered from the result cache without running.
    pub cache_hits: usize,
    /// Scenarios consulted but not found in the cache (0 when the cache is
    /// off).
    pub cache_misses: usize,
    /// Wall-clock time of the executor, in seconds.
    pub wall_secs: f64,
}

/// Everything a collection run produced: the dataset, per-scenario
/// outcomes, per-pool billing and executor statistics.
#[derive(Debug)]
pub struct CollectReport {
    /// Collected data points, ordered by scenario id.
    pub dataset: Dataset,
    /// Per-scenario outcomes, ordered by scenario id.
    pub outcomes: Vec<ScenarioOutcome>,
    /// Cumulative per-SKU billing for the deployment (one entry ≈ one pool).
    pub billing: Vec<BillingSummary>,
    /// Executor statistics.
    pub stats: CollectStats,
}

impl CollectReport {
    /// Extracts just the dataset (what the legacy `collect()` returned).
    pub fn into_dataset(self) -> Dataset {
        self.dataset
    }

    /// Human-readable summary: stats line, per-pool billing, failures.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "collected {} scenarios: {} completed, {} failed ({} worker{}, {} shard{}, {:.2}s)",
            self.stats.executed + self.stats.cache_hits,
            self.stats.completed,
            self.stats.failed,
            self.stats.workers,
            if self.stats.workers == 1 { "" } else { "s" },
            self.stats.shards,
            if self.stats.shards == 1 { "" } else { "s" },
            self.stats.wall_secs,
        );
        if self.stats.cache_hits > 0 || self.stats.cache_misses > 0 {
            let _ = writeln!(
                out,
                "  cache: {} hit{}, {} miss{}",
                self.stats.cache_hits,
                if self.stats.cache_hits == 1 { "" } else { "s" },
                self.stats.cache_misses,
                if self.stats.cache_misses == 1 {
                    ""
                } else {
                    "es"
                },
            );
        }
        for b in &self.billing {
            let _ = writeln!(
                out,
                "  pool {}: peak {} nodes, {} spans, {:.3} node-h, ${:.2}",
                b.sku, b.peak_nodes, b.spans, b.node_hours, b.cost
            );
        }
        for o in &self.outcomes {
            if let Some(reason) = &o.fail_reason {
                let _ = writeln!(
                    out,
                    "  failed scenario {} ({} x {}): {}",
                    o.scenario_id, o.sku, o.nnodes, reason
                );
            }
        }
        out
    }
}

/// One shard's hand-back: its output plus, for parallel shards, the
/// filesystem clone it worked on (None when it ran on the shared one).
type ShardResult = Result<(ShardOutput, Option<Vfs>), ToolError>;

/// Splits ordered scenarios into shards under `policy`. Per-SKU sharding
/// groups all scenarios of a VM type into one shard, in first-appearance
/// order of the SKU.
fn split_shards(ordered: Vec<Scenario>, policy: ShardPolicy) -> Vec<Vec<Scenario>> {
    match policy {
        ShardPolicy::SingleShard => {
            if ordered.is_empty() {
                Vec::new()
            } else {
                vec![ordered]
            }
        }
        ShardPolicy::PerSku => {
            let mut shards: Vec<Vec<Scenario>> = Vec::new();
            for scenario in ordered {
                match shards.iter_mut().find(|sh| sh[0].sku == scenario.sku) {
                    Some(shard) => shard.push(scenario),
                    None => shards.push(vec![scenario]),
                }
            }
            shards
        }
    }
}

impl Collector {
    /// Runs a collection under `plan` and returns a full [`CollectReport`].
    ///
    /// With one worker, shards run back to back on the collector's own
    /// batch service — exactly the legacy serial path. With more, each
    /// shard gets a fresh batch service and a clone of the shared
    /// filesystem, workers drain a shard queue, and the results are merged
    /// in scenario-id order; filesystem changes are merged back at the end.
    ///
    /// A shard-level error (systemic, not per-scenario) marks that shard's
    /// scenarios failed instead of aborting sibling shards.
    pub fn collect_with_plan(
        &mut self,
        scenarios: &mut [Scenario],
        plan: &CollectPlan,
    ) -> Result<CollectReport, ToolError> {
        let started = std::time::Instant::now();
        let mut ctx = self.ctx.clone();
        if let Some(seed) = plan.experiment_seed {
            ctx.options.experiment_seed = seed;
        }
        if let Some(rerun) = plan.rerun_failed {
            ctx.options.rerun_failed = rerun;
        }

        let index = index_by_id(scenarios);
        let ordered: Vec<Scenario> = match &plan.subset {
            Some(ids) => resolve_ids(scenarios, &index, ids)?,
            None => scenarios
                .iter()
                .filter(|s| ctx.should_run(s))
                .cloned()
                .collect(),
        };
        // Consult the result cache up front, on this thread: hits never
        // reach a shard (or a pool), and only the misses are split below.
        let policy = plan.cache.unwrap_or(self.cache_policy);
        let consult = consult_cache(&ctx, &self.cache, policy, &ordered);
        let cache_hits = consult.hits.len();
        let cache_misses = consult.fingerprints.len();
        let shards = split_shards(consult.misses, plan.shard_policy);
        let workers = plan.workers.max(1).min(shards.len().max(1));

        let mut results: Vec<ShardResult> = Vec::with_capacity(shards.len());
        if workers <= 1 {
            for shard in &shards {
                let out = ShardRun {
                    ctx: &ctx,
                    service: &mut self.service,
                    vfs: self.shared_vfs.clone(),
                }
                .run(shard);
                results.push(out.map(|o| (o, None)));
            }
        } else {
            results = run_parallel(&ctx, &shards, workers, &self.shared_vfs.lock().clone());
        }

        let mut points = Vec::new();
        let mut outcomes: Vec<ScenarioOutcome> = Vec::new();
        for (shard_idx, result) in results.into_iter().enumerate() {
            match result {
                Ok((out, vfs)) => {
                    if let Some(vfs) = vfs {
                        self.shared_vfs.lock().merge_from(&vfs);
                    }
                    for oc in out.outcomes {
                        let scenario = &scenarios[index[&oc.scenario_id]];
                        outcomes.push(ScenarioOutcome {
                            scenario_id: oc.scenario_id,
                            sku: scenario.sku.clone(),
                            nnodes: scenario.nnodes,
                            status: oc.status,
                            shard: Some(shard_idx),
                            cached: false,
                            fail_reason: oc.fail_reason,
                        });
                    }
                    points.extend(out.points);
                }
                Err(e) => {
                    // Systemic shard failure: fail the shard's runnable
                    // scenarios, leave sibling shards untouched.
                    let reason = format!("shard error: {e}");
                    for scenario in shards[shard_idx].iter().filter(|s| ctx.should_run(s)) {
                        points.push(ctx.failed_point(scenario, &reason));
                        outcomes.push(ScenarioOutcome {
                            scenario_id: scenario.id,
                            sku: scenario.sku.clone(),
                            nnodes: scenario.nnodes,
                            status: ScenarioStatus::Failed,
                            shard: Some(shard_idx),
                            cached: false,
                            fail_reason: Some(reason.clone()),
                        });
                    }
                }
            }
        }

        // Splice cache hits back in as already-completed outcomes.
        for hit in consult.hits {
            outcomes.push(ScenarioOutcome {
                scenario_id: hit.scenario.id,
                sku: hit.scenario.sku.clone(),
                nnodes: hit.scenario.nnodes,
                status: ScenarioStatus::Completed,
                shard: None,
                cached: true,
                fail_reason: None,
            });
            points.push(hit.point);
        }

        // Deterministic id order, independent of shard completion order.
        points.sort_by_key(|p| p.scenario_id);
        outcomes.sort_by_key(|o| o.scenario_id);
        for oc in &outcomes {
            scenarios[index[&oc.scenario_id]].status = oc.status;
        }
        if policy.writes() {
            store_new_points(&mut self.cache, &consult.fingerprints, &points)?;
        }

        let mut dataset = Dataset::new();
        let outcomes_total = outcomes.len();
        let executed = outcomes_total - cache_hits;
        let completed = outcomes
            .iter()
            .filter(|o| o.status == ScenarioStatus::Completed)
            .count();
        for p in points {
            dataset.push(p);
        }
        let billing = ctx
            .provider
            .lock()
            .billing()
            .summarize_by_sku(Some(&ctx.deployment));
        Ok(CollectReport {
            dataset,
            outcomes,
            billing,
            stats: CollectStats {
                workers,
                shards: shards.len(),
                executed,
                completed,
                failed: outcomes_total - completed,
                cache_hits,
                cache_misses,
                wall_secs: started.elapsed().as_secs_f64(),
            },
        })
    }
}

/// Runs shards on `workers` scoped threads draining a work-stealing queue.
/// Each shard executes against a fresh [`BatchService`] (same provider, so
/// billing/quota stay global) and its own clone of the shared filesystem.
fn run_parallel(
    ctx: &ExecContext,
    shards: &[Vec<Scenario>],
    workers: usize,
    initial_vfs: &Vfs,
) -> Vec<ShardResult> {
    let slots: Vec<Mutex<Option<ShardResult>>> = shards.iter().map(|_| Mutex::new(None)).collect();
    let queue = crossbeam::deque::Injector::new();
    for i in 0..shards.len() {
        queue.push(i);
    }
    let slots_ref = &slots;
    let queue_ref = &queue;
    let scope_result = crossbeam::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(move |_| loop {
                let i = match queue_ref.steal() {
                    crossbeam::deque::Steal::Success(i) => i,
                    crossbeam::deque::Steal::Empty => break,
                    crossbeam::deque::Steal::Retry => continue,
                };
                let mut service = BatchService::new(ctx.provider.clone(), &ctx.deployment);
                let vfs = Arc::new(Mutex::new(initial_vfs.clone()));
                let result = ShardRun {
                    ctx,
                    service: &mut service,
                    vfs: vfs.clone(),
                }
                .run(&shards[i]);
                // All runner closures are gone once the shard finishes, so
                // the Arc is unique and the filesystem moves out copy-free.
                let result = result.map(|out| {
                    let vfs = Arc::try_unwrap(vfs)
                        .map(Mutex::into_inner)
                        .unwrap_or_else(|arc| arc.lock().clone());
                    (out, Some(vfs))
                });
                *slots_ref[i].lock() = Some(result);
            });
        }
    });
    if let Err(payload) = scope_result {
        std::panic::resume_unwind(payload);
    }
    slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("every shard slot is filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::UserConfig;
    use crate::session::Session;

    #[test]
    fn default_plan_matches_legacy_collect() {
        let serial = {
            let mut s = Session::create(UserConfig::example_lammps_small(), 42).unwrap();
            s.collect().unwrap().to_json()
        };
        let mut s = Session::create(UserConfig::example_lammps_small(), 42).unwrap();
        let report = s.collect_with(&CollectPlan::new()).unwrap();
        assert_eq!(report.stats.workers, 1);
        assert_eq!(report.stats.executed, 3);
        assert_eq!(report.stats.failed, 0);
        assert_eq!(report.into_dataset().to_json(), serial);
    }

    #[test]
    fn per_sku_sharding_groups_scenarios() {
        let mut s = Session::create(UserConfig::example_openfoam(), 42).unwrap();
        let shards = split_shards(s.scenarios().to_vec(), ShardPolicy::PerSku);
        assert_eq!(shards.len(), 3, "one shard per SKU");
        for shard in &shards {
            assert!(shard.windows(2).all(|w| w[0].sku == w[1].sku));
            assert!(shard.windows(2).all(|w| w[0].id < w[1].id), "order kept");
        }
        let report = s.collect_with(&CollectPlan::new().workers(2)).unwrap();
        assert_eq!(report.stats.shards, 3);
        assert_eq!(report.stats.workers, 2);
        // Outcomes cover the whole grid and carry shard attribution.
        assert_eq!(report.outcomes.len(), 36);
        assert!(report.outcomes.iter().any(|o| o.shard == Some(2)));
        assert!(report.outcomes.iter().all(|o| !o.cached), "cold run");
        assert!(!report.billing.is_empty());
        assert!(report.render_text().contains("completed"));
    }

    #[test]
    fn subset_plans_run_only_requested_ids() {
        let mut s = Session::create(UserConfig::example_lammps_small(), 42).unwrap();
        let first_id = s.scenarios()[0].id;
        let report = s
            .collect_with(&CollectPlan::new().subset(vec![first_id]))
            .unwrap();
        assert_eq!(report.stats.executed, 1);
        assert_eq!(report.outcomes[0].scenario_id, first_id);
    }
}
