//! Replicated experiments — an extension beyond the paper.
//!
//! The paper reports single measurements per scenario; real cloud
//! benchmarking practice replicates. Because the whole cloud is simulated
//! in-process and each session is independent, replicates run **in
//! parallel on real threads** (crossbeam scoped threads): an entire
//! 36-scenario sweep replicated 8× completes in a fraction of a second of
//! wall time while representing many hours of virtual cluster time.
//!
//! [`front_stability`] then reports, per configuration, how often it
//! appears on the Pareto front across seeds — separating robust advice
//! from noise artifacts (like the paper's marginal 3-vs-4-node LAMMPS
//! rows, whose costs differ by ~2%, i.e. within single-run noise).

use crate::advice::Advice;
use crate::config::UserConfig;
use crate::dataset::{DataFilter, Dataset};
use crate::error::ToolError;
use crate::session::Session;

/// One replicate's result.
#[derive(Debug, Clone)]
pub struct Replicate {
    /// The seed this replicate ran under.
    pub seed: u64,
    /// Its collected dataset.
    pub dataset: Dataset,
}

/// Runs the full collection once per seed, in parallel.
///
/// Every replicate deploys its own simulated environment, so there is no
/// shared mutable state beyond each session's own provider; failures in
/// any replicate abort the whole call with that error.
pub fn run_replicates(config: &UserConfig, seeds: &[u64]) -> Result<Vec<Replicate>, ToolError> {
    let mut slots: Vec<Option<Result<Replicate, String>>> = Vec::new();
    slots.resize_with(seeds.len(), || None);
    crossbeam::thread::scope(|scope| {
        for (slot, &seed) in slots.iter_mut().zip(seeds) {
            let config = config.clone();
            scope.spawn(move |_| {
                let result = (|| -> Result<Replicate, String> {
                    let mut session = Session::create(config, seed).map_err(|e| e.to_string())?;
                    let dataset = session.collect().map_err(|e| e.to_string())?;
                    Ok(Replicate { seed, dataset })
                })();
                *slot = Some(result);
            });
        }
    })
    .expect("replicate thread panicked");
    slots
        .into_iter()
        .map(|slot| slot.expect("every slot filled").map_err(ToolError::Config))
        .collect()
}

/// Per-configuration stability of the Pareto front across replicates.
#[derive(Debug, Clone, PartialEq)]
pub struct FrontStability {
    /// Short SKU name.
    pub sku: String,
    /// Node count.
    pub nodes: u32,
    /// Fraction of replicates whose front contains this configuration.
    pub frequency: f64,
    /// Mean execution time across replicates where it was measured.
    pub mean_time_secs: f64,
    /// Mean cost across replicates where it was measured.
    pub mean_cost_dollars: f64,
}

/// Computes front membership frequency per configuration.
pub fn front_stability(replicates: &[Replicate], filter: &DataFilter) -> Vec<FrontStability> {
    let n = replicates.len();
    if n == 0 {
        return Vec::new();
    }
    let mut stats: Vec<(String, u32, usize, f64, f64, usize)> = Vec::new();
    for rep in replicates {
        let advice = Advice::from_dataset(&rep.dataset, filter);
        let on_front: Vec<(String, u32)> = advice
            .rows
            .iter()
            .map(|r| (r.sku.clone(), r.nodes))
            .collect();
        // Accumulate times/costs for every measured configuration.
        for p in rep.dataset.filter(filter) {
            let key = (p.sku_short(), p.nnodes);
            let entry = match stats
                .iter_mut()
                .find(|(s, nn, ..)| *s == key.0 && *nn == key.1)
            {
                Some(e) => e,
                None => {
                    stats.push((key.0.clone(), key.1, 0, 0.0, 0.0, 0));
                    stats.last_mut().expect("just pushed")
                }
            };
            entry.3 += p.exec_time_secs;
            entry.4 += p.cost_dollars;
            entry.5 += 1;
        }
        for (sku, nodes) in on_front {
            if let Some(e) = stats
                .iter_mut()
                .find(|(s, nn, ..)| *s == sku && *nn == nodes)
            {
                e.2 += 1;
            }
        }
    }
    let mut out: Vec<FrontStability> = stats
        .into_iter()
        .filter(|(.., measured)| *measured > 0)
        .map(|(sku, nodes, hits, t, c, measured)| FrontStability {
            sku,
            nodes,
            frequency: hits as f64 / n as f64,
            mean_time_secs: t / measured as f64,
            mean_cost_dollars: c / measured as f64,
        })
        .collect();
    out.sort_by(|a, b| {
        b.frequency
            .total_cmp(&a.frequency)
            .then(a.mean_time_secs.total_cmp(&b.mean_time_secs))
    });
    out
}

/// Renders the stability table.
pub fn render_stability(stability: &[FrontStability]) -> String {
    let mut out = String::from("on-front%  mean-time(s)  mean-cost($)  nodes  SKU\n");
    for s in stability {
        out.push_str(&format!(
            "{:>8.0}%  {:<13.1} {:<13.4} {:<6} {}\n",
            s.frequency * 100.0,
            s.mean_time_secs,
            s.mean_cost_dollars,
            s.nodes,
            s.sku
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> UserConfig {
        UserConfig::example_lammps_small()
    }

    #[test]
    fn replicates_run_in_parallel_and_differ_only_by_noise() {
        let reps = run_replicates(&config(), &[1, 2, 3, 4]).unwrap();
        assert_eq!(reps.len(), 4);
        for rep in &reps {
            assert_eq!(rep.dataset.len(), 3);
        }
        // Different seeds give different times…
        let t0 = reps[0].dataset.points[0].exec_time_secs;
        let t1 = reps[1].dataset.points[0].exec_time_secs;
        assert_ne!(t0, t1);
        // …but only by noise (< 10% spread).
        assert!((t0 - t1).abs() / t0 < 0.1);
    }

    #[test]
    fn replicates_match_sequential_runs() {
        // Parallel execution must not change any result (sessions are
        // fully independent).
        let parallel = run_replicates(&config(), &[11, 12]).unwrap();
        for rep in &parallel {
            let mut session = Session::create(config(), rep.seed).unwrap();
            let sequential = session.collect().unwrap();
            assert_eq!(rep.dataset, sequential, "seed {}", rep.seed);
        }
    }

    #[test]
    fn stability_flags_robust_and_marginal_rows() {
        // An out-of-cache box: Amdahl makes cost rise with nodes, so the
        // cheapest (1 node) and fastest (4 nodes) ends are distinct and
        // should be on every replicate's front.
        let mut config = config();
        config.appinputs = vec![("BOXFACTOR".into(), vec!["16".into()])];
        let seeds: Vec<u64> = (1..=8).collect();
        let reps = run_replicates(&config, &seeds).unwrap();
        let stability = front_stability(&reps, &DataFilter::all());
        assert!(!stability.is_empty());
        // Frequencies are valid and the table renders.
        for s in &stability {
            assert!((0.0..=1.0).contains(&s.frequency));
            assert!(s.mean_time_secs > 0.0);
        }
        let text = render_stability(&stability);
        assert!(text.contains("on-front%"));
        // With 1/2/4 nodes of one SKU, the extremes are always on the front
        // (cheapest and fastest can't be dominated under mild noise).
        let always: Vec<&FrontStability> =
            stability.iter().filter(|s| s.frequency == 1.0).collect();
        assert!(always.len() >= 2, "{text}");
    }

    #[test]
    fn empty_inputs() {
        assert!(run_replicates(&config(), &[]).unwrap().is_empty());
        assert!(front_stability(&[], &DataFilter::all()).is_empty());
    }
}
