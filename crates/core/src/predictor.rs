//! Advice from historical data — the paper's opening vision:
//!
//! > "With a substantial database of historical executions and an
//! > application with a reduced set of input parameters that influence
//! > resource selection, it may be possible to generate this list of
//! > resource options **without the need for additional testing or
//! > execution**."
//!
//! [`HistoryPredictor`] learns a log-space multi-linear model of execution
//! time from previously collected data points and predicts unmeasured
//! configurations; [`advise_from_history`] turns a configuration grid plus
//! a historical dataset into a *predicted* Pareto front with **zero** cloud
//! executions. This is the "simple regression analysis" route the paper's
//! §III-F sketches (its references \[2], \[8], \[14] use heavier ML on the
//! same features: application inputs + instance characteristics).
//!
//! Model, per application:
//!
//! ```text
//! ln T = β₀ + β₁·ln(ranks) + β₂·ln(gflops/core) + β₃·ln(mem_bw)
//!        + Σₖ βₖ·ln(inputₖ)            (numeric appinputs, by key)
//! ```
//!
//! which captures power-law scaling in ranks, hardware speed and problem
//! size — exact for the workloads whose cost is a product of powers of
//! those quantities, and a good local approximation elsewhere.

use crate::advice::{Advice, AdviceRow, AdviceSort};
use crate::config::UserConfig;
use crate::dataset::{DataFilter, Dataset};
use crate::error::ToolError;
use crate::pareto::pareto_front;
use crate::regress::{multilinear_eval, multilinear_fit_ridge};
use crate::scenario::{generate_scenarios, Scenario};
use cloudsim::SkuCatalog;

/// A trained execution-time model for one application.
#[derive(Debug, Clone)]
pub struct HistoryPredictor {
    appname: String,
    /// Input keys used as features, in feature order.
    input_keys: Vec<String>,
    /// Coefficients `[β₀, ranks, gflops, mem_bw, inputs…]`.
    beta: Vec<f64>,
    /// Training-set mean absolute relative error (in-sample).
    pub training_error: f64,
    /// Number of training rows.
    pub training_rows: usize,
}

/// Extracts numeric appinputs usable as features. Non-numeric inputs (like
/// OpenFOAM's `"40 16 16"` mesh string) contribute the product of their
/// numeric tokens — a reasonable magnitude proxy (cells ∝ x·y·z).
fn numeric_input(value: &str) -> Option<f64> {
    let tokens: Vec<f64> = value
        .split_whitespace()
        .filter_map(|t| t.parse::<f64>().ok())
        .collect();
    if tokens.is_empty() || tokens.iter().any(|v| *v <= 0.0) {
        return None;
    }
    Some(tokens.iter().product())
}

fn features_for(
    input_keys: &[String],
    catalog: &SkuCatalog,
    sku: &str,
    nnodes: u32,
    ppn: u32,
    appinputs: &[(String, String)],
) -> Option<Vec<f64>> {
    let sku = catalog.get(sku)?;
    let ranks = nnodes as f64 * ppn as f64;
    let mut features = vec![ranks.ln(), sku.gflops_per_core.ln(), sku.mem_bw_gbs.ln()];
    for key in input_keys {
        let value = appinputs
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(key))
            .and_then(|(_, v)| numeric_input(v))?;
        features.push(value.ln());
    }
    Some(features)
}

impl HistoryPredictor {
    /// Trains a predictor for `appname` from the completed rows of a
    /// historical dataset. Needs at least `features + 2` usable rows.
    pub fn train(history: &Dataset, appname: &str) -> Result<HistoryPredictor, ToolError> {
        let catalog = SkuCatalog::azure_hpc();
        let filter = DataFilter {
            appname: Some(appname.to_string()),
            ..DataFilter::all()
        };
        let rows_src = history.filter(&filter);
        if rows_src.is_empty() {
            return Err(ToolError::NoData(format!(
                "no completed history for application '{appname}'"
            )));
        }
        // Feature keys: every appinput key with numeric values everywhere.
        let mut input_keys: Vec<String> = Vec::new();
        for p in &rows_src {
            for (k, v) in &p.appinputs {
                if numeric_input(v).is_some() && !input_keys.iter().any(|x| x == k) {
                    input_keys.push(k.clone());
                }
            }
        }
        // Keys must be present in every row to be usable.
        input_keys.retain(|k| {
            rows_src.iter().all(|p| {
                p.appinputs
                    .iter()
                    .any(|(pk, pv)| pk.eq_ignore_ascii_case(k) && numeric_input(pv).is_some())
            })
        });

        let mut rows: Vec<(Vec<f64>, f64)> = Vec::new();
        for p in &rows_src {
            if p.exec_time_secs <= 0.0 {
                continue;
            }
            if let Some(f) =
                features_for(&input_keys, &catalog, &p.sku, p.nnodes, p.ppn, &p.appinputs)
            {
                rows.push((f, p.exec_time_secs.ln()));
            }
        }
        // A whisper of ridge keeps two-SKU histories (collinear hardware
        // features) solvable.
        let beta = multilinear_fit_ridge(&rows, 1e-6).ok_or_else(|| {
            ToolError::NoData(format!(
                "history for '{appname}' is too small or degenerate to fit ({} usable rows, {} features)",
                rows.len(),
                3 + input_keys.len()
            ))
        })?;
        let mut err_sum = 0.0;
        for (f, ln_t) in &rows {
            let predicted = multilinear_eval(&beta, f).exp();
            let actual = ln_t.exp();
            err_sum += (predicted - actual).abs() / actual;
        }
        Ok(HistoryPredictor {
            appname: appname.to_string(),
            input_keys,
            training_error: err_sum / rows.len() as f64,
            training_rows: rows.len(),
            beta,
        })
    }

    /// Predicts execution time (seconds) for a configuration. `None` when
    /// the SKU is unknown or a required input is missing/non-numeric.
    pub fn predict(
        &self,
        sku: &str,
        nnodes: u32,
        ppn: u32,
        appinputs: &[(String, String)],
    ) -> Option<f64> {
        let catalog = SkuCatalog::azure_hpc();
        let f = features_for(&self.input_keys, &catalog, sku, nnodes, ppn, appinputs)?;
        Some(multilinear_eval(&self.beta, &f).exp())
    }

    /// The application this predictor was trained for.
    pub fn appname(&self) -> &str {
        &self.appname
    }
}

/// A scenario with its predicted execution time (s) and cost ($).
pub type ScenarioPrediction = (Scenario, f64, f64);

/// Predicted advice for a configuration grid using only historical data —
/// zero cloud executions. Returns the predicted Pareto front and the
/// per-scenario predictions it was computed from.
pub fn advise_from_history(
    config: &UserConfig,
    history: &Dataset,
) -> Result<(Advice, Vec<ScenarioPrediction>), ToolError> {
    let predictor = HistoryPredictor::train(history, &config.appname)?;
    let catalog = SkuCatalog::azure_hpc();
    let scenarios = generate_scenarios(config, &catalog)?;
    let mut predictions: Vec<(Scenario, f64, f64)> = Vec::new();
    for s in scenarios {
        let Some(time) = predictor.predict(&s.sku, s.nnodes, s.ppn, &s.appinputs) else {
            continue;
        };
        let Some(sku) = catalog.get(&s.sku) else {
            continue;
        };
        let cost = sku.price_per_hour * s.nnodes as f64 * time / 3600.0;
        predictions.push((s, time, cost));
    }
    if predictions.is_empty() {
        return Err(ToolError::NoData(
            "no scenario of the grid is predictable from this history".into(),
        ));
    }
    let objectives: Vec<(f64, f64)> = predictions.iter().map(|(_, t, c)| (*c, *t)).collect();
    let front = pareto_front(&objectives);
    let mut rows: Vec<AdviceRow> = front
        .into_iter()
        .map(|i| {
            let (s, t, c) = &predictions[i];
            AdviceRow {
                exec_time_secs: *t,
                cost_dollars: *c,
                nodes: s.nnodes,
                ppn: s.ppn,
                sku: s.sku.to_ascii_lowercase().replace("standard_", ""),
                appinputs: s.appinputs.clone(),
                region: s.region.clone(),
            }
        })
        .collect();
    rows.sort_by(|a, b| a.exec_time_secs.total_cmp(&b.exec_time_secs));
    Ok((
        Advice {
            rows,
            sort: AdviceSort::ByTime,
            skipped_scenarios: 0,
            capacity_comparison: None,
            placement_comparison: None,
        },
        predictions,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampling::front_regret;
    use crate::session::Session;

    /// History: LAMMPS boxes 12/16/20 at 2/4/8 nodes on two SKUs.
    fn history() -> Dataset {
        let mut c = UserConfig::example_lammps();
        c.skus = vec!["Standard_HB120rs_v3".into(), "Standard_HC44rs".into()];
        c.nnodes = vec![2, 4, 8];
        c.appinputs = vec![(
            "BOXFACTOR".into(),
            vec!["12".into(), "16".into(), "20".into()],
        )];
        let mut session = Session::create(c, 7).unwrap();
        session.collect().unwrap()
    }

    #[test]
    fn trains_and_fits_history_well() {
        let predictor = HistoryPredictor::train(&history(), "lammps").unwrap();
        assert_eq!(predictor.training_rows, 18);
        assert!(
            predictor.training_error < 0.10,
            "in-sample error {:.1}%",
            predictor.training_error * 100.0
        );
        assert_eq!(predictor.appname(), "lammps");
    }

    #[test]
    fn predicts_unseen_configuration() {
        // Ground truth for box 24 at 16 nodes (never in the history).
        let mut c = UserConfig::example_lammps();
        c.skus = vec!["Standard_HB120rs_v3".into()];
        c.nnodes = vec![16];
        c.appinputs = vec![("BOXFACTOR".into(), vec!["24".into()])];
        let mut session = Session::create(c, 7).unwrap();
        let truth = session.collect().unwrap().points[0].exec_time_secs;

        let predictor = HistoryPredictor::train(&history(), "lammps").unwrap();
        let predicted = predictor
            .predict(
                "Standard_HB120rs_v3",
                16,
                120,
                &[("BOXFACTOR".to_string(), "24".to_string())],
            )
            .unwrap();
        let rel = (predicted - truth).abs() / truth;
        assert!(
            rel < 0.30,
            "extrapolated prediction {predicted:.1}s vs truth {truth:.1}s ({:.0}% off)",
            rel * 100.0
        );
    }

    #[test]
    fn advice_without_executions_matches_measured_front() {
        // The headline: advise a new sweep (box 14, incl. unseen 16-node
        // counts) purely from history…
        let mut target = UserConfig::example_lammps();
        target.skus = vec!["Standard_HB120rs_v3".into(), "Standard_HC44rs".into()];
        target.nnodes = vec![2, 4, 8, 16];
        target.appinputs = vec![("BOXFACTOR".into(), vec!["14".into()])];
        let (predicted_advice, predictions) = advise_from_history(&target, &history()).unwrap();
        assert!(!predicted_advice.rows.is_empty());
        assert_eq!(predictions.len(), 8, "all scenarios predictable");

        // …and compare with actually running it.
        let mut session = Session::create(target, 7).unwrap();
        let measured = session.collect().unwrap();
        let measured_advice = Advice::from_dataset(&measured, &DataFilter::all());
        let regret = front_regret(&measured_advice, &predicted_advice);
        assert!(
            regret < 0.35,
            "zero-execution advice regret {:.0}%:\npredicted:\n{}\nmeasured:\n{}",
            regret * 100.0,
            predicted_advice.render_text(),
            measured_advice.render_text()
        );
    }

    #[test]
    fn errors_without_usable_history() {
        assert!(HistoryPredictor::train(&Dataset::new(), "lammps").is_err());
        // History from a different app doesn't train a lammps model.
        let mut other = Dataset::new();
        other.push(crate::dataset::point(
            1,
            "wrf",
            "Standard_HB120rs_v3",
            2,
            120,
            10.0,
            0.1,
        ));
        assert!(HistoryPredictor::train(&other, "lammps").is_err());
    }

    #[test]
    fn mesh_strings_become_magnitude_features() {
        assert_eq!(numeric_input("40 16 16"), Some(40.0 * 16.0 * 16.0));
        assert_eq!(numeric_input("30"), Some(30.0));
        assert_eq!(numeric_input("abc"), None);
        assert_eq!(numeric_input("0 16 16"), None);
    }
}
