//! The collected dataset and its filters.

use crate::error::ToolError;
use crate::scenario::ScenarioStatus;
use cloudsim::Capacity;
use hpcadvisor_formats::{json, OrderedMap, Value};
use std::collections::HashSet;

/// One collected result row.
#[derive(Debug, Clone, PartialEq)]
pub struct DataPoint {
    /// Scenario id this row came from.
    pub scenario_id: u32,
    /// Application name.
    pub appname: String,
    /// VM type.
    pub sku: String,
    /// Nodes used.
    pub nnodes: u32,
    /// Processes per node.
    pub ppn: u32,
    /// Application inputs of the scenario.
    pub appinputs: Vec<(String, String)>,
    /// Application execution time in seconds (`APPEXECTIME` when the run
    /// script exported it, otherwise the whole task duration).
    pub exec_time_secs: f64,
    /// Whole batch-task duration in seconds (setup + app + teardown).
    pub task_secs: f64,
    /// Cost in USD for the application execution (VM price × nodes × time —
    /// the paper's cost column covers VMs only).
    pub cost_dollars: f64,
    /// Final status.
    pub status: ScenarioStatus,
    /// Extra `HPCADVISORVAR` metrics scraped from the task output.
    pub metrics: Vec<(String, String)>,
    /// Infrastructure utilizations scraped from monitoring
    /// (`cpu`/`membw`/`net`/`bottleneck`).
    pub infra: Vec<(String, String)>,
    /// Tags from the configuration.
    pub tags: Vec<(String, String)>,
    /// Deployment (resource group) the row was collected in.
    pub deployment: String,
    /// Capacity class the row was measured on. Spot rows carry the eviction
    /// overhead in their cost/time; the advisor compares the two classes.
    pub capacity: Capacity,
    /// Region the scenario actually ran in after placement (which may
    /// differ from the requested region when the collector failed over).
    /// `None` means the deployment's home region — the only case before
    /// multi-region placement existed, so it is omitted from JSON to keep
    /// old datasets byte-identical.
    pub region: Option<String>,
}

impl DataPoint {
    /// Looks up a scraped metric.
    pub fn metric(&self, key: &str) -> Option<&str> {
        self.metrics
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Looks up an infrastructure metric.
    pub fn infra_metric(&self, key: &str) -> Option<&str> {
        self.infra
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Short SKU spelling used in advice tables (`hb120rs_v3`).
    pub fn sku_short(&self) -> String {
        self.sku.to_ascii_lowercase().replace("standard_", "")
    }

    /// One-line id for the appinput combination (used to group series).
    pub fn input_key(&self) -> String {
        self.appinputs
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect::<Vec<_>>()
            .join(",")
    }
}

/// A filter over data points ("plot" and "advice" take a data filter in the
/// CLI — Table II).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DataFilter {
    /// Restrict to an application.
    pub appname: Option<String>,
    /// Restrict to a SKU (full or short spelling).
    pub sku: Option<String>,
    /// Required appinput values.
    pub appinputs: Vec<(String, String)>,
    /// Required tags.
    pub tags: Vec<(String, String)>,
    /// Include failed rows too (default: completed only).
    pub include_failed: bool,
    /// Restrict to one capacity class (`capacity=spot|dedicated`).
    pub capacity: Option<Capacity>,
    /// Restrict to one placement region (`region=westeurope`). Rows without
    /// a region (home-region rows of single-region runs) match no region
    /// filter; multi-region grids always stamp the placed region.
    pub region: Option<String>,
}

impl DataFilter {
    /// Matches everything completed.
    pub fn all() -> Self {
        DataFilter::default()
    }

    /// Parses the CLI filter syntax: comma-separated `key=value` pairs.
    /// Keys `appname` and `sku` are recognized directly; everything else is
    /// treated as an appinput requirement.
    pub fn parse(spec: &str) -> Result<Self, ToolError> {
        let mut f = DataFilter::default();
        for part in spec.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            let Some((k, v)) = part.split_once('=') else {
                return Err(ToolError::Config(format!(
                    "bad filter term '{part}': expected key=value"
                )));
            };
            let (k, v) = (k.trim(), v.trim());
            match k {
                "appname" => f.appname = Some(v.to_string()),
                "sku" => f.sku = Some(v.to_string()),
                "status" if v == "any" => f.include_failed = true,
                "capacity" => {
                    f.capacity = Some(Capacity::parse(v).ok_or_else(|| {
                        ToolError::Config(format!("bad capacity '{v}': expected spot or dedicated"))
                    })?)
                }
                "region" => f.region = Some(v.to_string()),
                "tag" => match v.split_once(':') {
                    Some((tk, tv)) => f.tags.push((tk.to_string(), tv.to_string())),
                    None => {
                        return Err(ToolError::Config("tag filter must be tag=key:value".into()))
                    }
                },
                _ => f.appinputs.push((k.to_string(), v.to_string())),
            }
        }
        Ok(f)
    }

    /// True if a point passes the filter.
    pub fn matches(&self, p: &DataPoint) -> bool {
        if !self.include_failed && p.status != ScenarioStatus::Completed {
            return false;
        }
        if let Some(app) = &self.appname {
            if !p.appname.eq_ignore_ascii_case(app) {
                return false;
            }
        }
        if let Some(sku) = &self.sku {
            let want = sku.to_ascii_lowercase().replace("standard_", "");
            if p.sku_short() != want {
                return false;
            }
        }
        for (k, v) in &self.appinputs {
            if !p.appinputs.iter().any(|(pk, pv)| pk == k && pv == v) {
                return false;
            }
        }
        for (k, v) in &self.tags {
            if !p.tags.iter().any(|(pk, pv)| pk == k && pv == v) {
                return false;
            }
        }
        if let Some(c) = self.capacity {
            if p.capacity != c {
                return false;
            }
        }
        if let Some(region) = &self.region {
            match &p.region {
                Some(r) if r.eq_ignore_ascii_case(region) => {}
                _ => return false,
            }
        }
        true
    }
}

/// The dataset: every collected row, in collection order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Dataset {
    /// All rows.
    pub points: Vec<DataPoint>,
}

impl Dataset {
    /// An empty dataset.
    pub fn new() -> Self {
        Dataset::default()
    }

    /// Appends a row.
    pub fn push(&mut self, point: DataPoint) {
        self.points.push(point);
    }

    /// Merges another dataset in, deduplicating by (scenario id, capacity):
    /// an incoming row whose key is already present *replaces* the existing
    /// row in place (fresher data wins, order is preserved). Cache-merge
    /// paths rely on this so a point can never be double-inserted; spot and
    /// dedicated measurements of the same scenario coexist as two rows.
    pub fn extend(&mut self, other: Dataset) {
        let mut by_id: std::collections::HashMap<(u32, Capacity), usize> = self
            .points
            .iter()
            .enumerate()
            .map(|(i, p)| ((p.scenario_id, p.capacity), i))
            .collect();
        for point in other.points {
            match by_id.get(&(point.scenario_id, point.capacity)) {
                Some(&i) => self.points[i] = point,
                None => {
                    by_id.insert((point.scenario_id, point.capacity), self.points.len());
                    self.points.push(point);
                }
            }
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Rows passing a filter.
    pub fn filter(&self, f: &DataFilter) -> Vec<&DataPoint> {
        self.points.iter().filter(|p| f.matches(p)).collect()
    }

    /// Completed rows.
    pub fn completed(&self) -> Vec<&DataPoint> {
        self.filter(&DataFilter::all())
    }

    /// Distinct SKUs (short form) in filter-matching rows, in first-seen
    /// order.
    pub fn skus(&self, f: &DataFilter) -> Vec<String> {
        let mut seen = HashSet::new();
        let mut out: Vec<String> = Vec::new();
        for p in self.filter(f) {
            let s = p.sku_short();
            if seen.insert(s.clone()) {
                out.push(s);
            }
        }
        out
    }

    /// Distinct appinput combinations in filter-matching rows.
    pub fn input_keys(&self, f: &DataFilter) -> Vec<String> {
        let mut seen = HashSet::new();
        let mut out: Vec<String> = Vec::new();
        for p in self.filter(f) {
            let s = p.input_key();
            if seen.insert(s.clone()) {
                out.push(s);
            }
        }
        out
    }

    /// Serializes the dataset as pretty JSON.
    pub fn to_json(&self) -> String {
        let items: Vec<Value> = self.points.iter().map(point_to_value).collect();
        json::to_string_pretty(&Value::Seq(items))
    }

    /// Parses a stored dataset.
    pub fn from_json(text: &str) -> Result<Self, ToolError> {
        let doc = json::parse(text)?;
        let items = doc
            .as_seq()
            .ok_or_else(|| ToolError::Config("dataset must be a JSON array".into()))?;
        let mut ds = Dataset::new();
        for item in items {
            ds.push(value_to_point(item)?);
        }
        Ok(ds)
    }
}

fn pairs_to_value(pairs: &[(String, String)]) -> Value {
    let mut m = OrderedMap::new();
    for (k, v) in pairs {
        m.insert(k.clone(), Value::str(v));
    }
    Value::Map(m)
}

fn value_to_pairs(v: Option<&Value>) -> Vec<(String, String)> {
    v.and_then(|v| v.as_map())
        .map(|m| {
            m.iter()
                .map(|(k, v)| (k.to_string(), v.to_plain_string()))
                .collect()
        })
        .unwrap_or_default()
}

pub(crate) fn point_to_value(p: &DataPoint) -> Value {
    let mut m = OrderedMap::new();
    m.insert("scenario_id", Value::Int(p.scenario_id as i64));
    m.insert("appname", Value::str(&p.appname));
    m.insert("sku", Value::str(&p.sku));
    m.insert("nnodes", Value::Int(p.nnodes as i64));
    m.insert("ppn", Value::Int(p.ppn as i64));
    m.insert("appinputs", pairs_to_value(&p.appinputs));
    m.insert("exec_time_secs", Value::Float(p.exec_time_secs));
    m.insert("task_secs", Value::Float(p.task_secs));
    m.insert("cost_dollars", Value::Float(p.cost_dollars));
    m.insert("status", Value::str(p.status.as_str()));
    // Dedicated is the implicit default so datasets collected before the
    // capacity dimension existed stay byte-identical.
    if p.capacity != Capacity::Dedicated {
        m.insert("capacity", Value::str(p.capacity.as_str()));
    }
    // Same pattern for placement: the home region is implicit.
    if let Some(region) = &p.region {
        m.insert("region", Value::str(region));
    }
    m.insert("metrics", pairs_to_value(&p.metrics));
    m.insert("infra", pairs_to_value(&p.infra));
    m.insert("tags", pairs_to_value(&p.tags));
    m.insert("deployment", Value::str(&p.deployment));
    Value::Map(m)
}

pub(crate) fn value_to_point(v: &Value) -> Result<DataPoint, ToolError> {
    let get_str = |k: &str| -> Result<String, ToolError> {
        v.get(k)
            .and_then(|x| x.as_str())
            .map(|s| s.to_string())
            .ok_or_else(|| ToolError::Config(format!("data point missing string '{k}'")))
    };
    let get_int = |k: &str| -> Result<i64, ToolError> {
        v.get(k)
            .and_then(|x| x.as_int())
            .ok_or_else(|| ToolError::Config(format!("data point missing integer '{k}'")))
    };
    let get_f64 = |k: &str| -> Result<f64, ToolError> {
        v.get(k)
            .and_then(|x| x.as_f64())
            .ok_or_else(|| ToolError::Config(format!("data point missing number '{k}'")))
    };
    let status_str = get_str("status")?;
    Ok(DataPoint {
        scenario_id: get_int("scenario_id")? as u32,
        appname: get_str("appname")?,
        sku: get_str("sku")?,
        nnodes: get_int("nnodes")? as u32,
        ppn: get_int("ppn")? as u32,
        appinputs: value_to_pairs(v.get("appinputs")),
        exec_time_secs: get_f64("exec_time_secs")?,
        task_secs: get_f64("task_secs")?,
        cost_dollars: get_f64("cost_dollars")?,
        status: ScenarioStatus::parse(&status_str)
            .ok_or_else(|| ToolError::Config(format!("bad status '{status_str}'")))?,
        metrics: value_to_pairs(v.get("metrics")),
        infra: value_to_pairs(v.get("infra")),
        tags: value_to_pairs(v.get("tags")),
        deployment: get_str("deployment")?,
        capacity: match v.get("capacity").and_then(|x| x.as_str()) {
            Some(s) => Capacity::parse(s)
                .ok_or_else(|| ToolError::Config(format!("bad capacity '{s}'")))?,
            None => Capacity::Dedicated,
        },
        region: v
            .get("region")
            .and_then(|x| x.as_str())
            .map(|s| s.to_string()),
    })
}

/// Builds a test/example data point quickly.
pub fn point(
    scenario_id: u32,
    appname: &str,
    sku: &str,
    nnodes: u32,
    ppn: u32,
    exec_time_secs: f64,
    cost_dollars: f64,
) -> DataPoint {
    DataPoint {
        scenario_id,
        appname: appname.to_string(),
        sku: sku.to_string(),
        nnodes,
        ppn,
        appinputs: Vec::new(),
        exec_time_secs,
        task_secs: exec_time_secs + 10.0,
        cost_dollars,
        status: ScenarioStatus::Completed,
        metrics: Vec::new(),
        infra: Vec::new(),
        tags: Vec::new(),
        deployment: "test".to_string(),
        capacity: Capacity::Dedicated,
        region: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Dataset {
        let mut ds = Dataset::new();
        let mut p1 = point(1, "lammps", "Standard_HB120rs_v3", 16, 120, 36.0, 0.576);
        p1.appinputs = vec![("BOXFACTOR".into(), "30".into())];
        p1.tags = vec![("version".into(), "v1".into())];
        ds.push(p1);
        let mut p2 = point(2, "lammps", "Standard_HC44rs", 16, 44, 60.0, 0.84);
        p2.appinputs = vec![("BOXFACTOR".into(), "30".into())];
        ds.push(p2);
        let mut p3 = point(3, "openfoam", "Standard_HB120rs_v3", 8, 120, 38.0, 0.304);
        p3.status = ScenarioStatus::Failed;
        ds.push(p3);
        ds
    }

    #[test]
    fn filter_by_app_sku_status() {
        let ds = sample();
        assert_eq!(ds.completed().len(), 2);
        let f = DataFilter {
            appname: Some("lammps".into()),
            ..DataFilter::all()
        };
        assert_eq!(ds.filter(&f).len(), 2);
        let f = DataFilter {
            sku: Some("hb120rs_v3".into()),
            ..DataFilter::all()
        };
        assert_eq!(ds.filter(&f).len(), 1);
        let f = DataFilter {
            include_failed: true,
            ..DataFilter::all()
        };
        assert_eq!(ds.filter(&f).len(), 3);
    }

    #[test]
    fn filter_parsing() {
        let f = DataFilter::parse("appname=lammps, sku=HB120rs_v3, BOXFACTOR=30, tag=version:v1")
            .unwrap();
        assert_eq!(f.appname.as_deref(), Some("lammps"));
        assert_eq!(f.sku.as_deref(), Some("HB120rs_v3"));
        assert_eq!(
            f.appinputs,
            vec![("BOXFACTOR".to_string(), "30".to_string())]
        );
        assert_eq!(f.tags, vec![("version".to_string(), "v1".to_string())]);
        let ds = sample();
        assert_eq!(ds.filter(&f).len(), 1);
        assert!(DataFilter::parse("no-equals-here").is_err());
        assert!(DataFilter::parse("tag=missingcolon").is_err());
        assert_eq!(DataFilter::parse("").unwrap(), DataFilter::all());
    }

    #[test]
    fn json_roundtrip() {
        let ds = sample();
        let text = ds.to_json();
        let back = Dataset::from_json(&text).unwrap();
        assert_eq!(ds, back);
    }

    #[test]
    fn json_roundtrip_covers_failed_and_partial_points() {
        let mut ds = Dataset::new();
        // A failed point with a failure metric but no infra data.
        let mut failed = point(7, "wrf", "Standard_HC44rs", 4, 44, 0.0, 0.0);
        failed.status = ScenarioStatus::Failed;
        failed.metrics = vec![("FAILREASON".into(), "node fault".into())];
        ds.push(failed);
        // A rich completed point exercising every optional field at once.
        let mut full = point(8, "lammps", "Standard_HB120rs_v3", 2, 120, 21.5, 0.11);
        full.appinputs = vec![("BOXFACTOR".into(), "12".into())];
        full.metrics = vec![("LAMMPSATOMS".into(), "1000".into())];
        full.infra = vec![
            ("cpu".into(), "0.93".into()),
            ("bottleneck".into(), "compute".into()),
        ];
        full.tags = vec![("team".into(), "hpc".into())];
        ds.push(full);
        let back = Dataset::from_json(&ds.to_json()).unwrap();
        assert_eq!(ds, back);
        // Serialization is deterministic: re-serializing is byte-identical.
        assert_eq!(ds.to_json(), back.to_json());
        // A point with optional maps entirely absent still parses (empty).
        let sparse = "[{\"scenario_id\": 1, \"appname\": \"a\", \"sku\": \"S\", \
             \"nnodes\": 1, \"ppn\": 4, \"exec_time_secs\": 1.5, \"task_secs\": 2.0, \
             \"cost_dollars\": 0.1, \"status\": \"completed\", \"deployment\": \"d\"}]";
        let ds = Dataset::from_json(sparse).unwrap();
        assert!(ds.points[0].appinputs.is_empty());
        assert!(ds.points[0].metrics.is_empty());
        assert!(ds.points[0].tags.is_empty());
    }

    #[test]
    fn extend_replaces_rows_sharing_a_scenario_id() {
        let mut ds = sample();
        let mut incoming = Dataset::new();
        // Same id as sample's failed row 3, now completed: must replace.
        incoming.push(point(
            3,
            "openfoam",
            "Standard_HB120rs_v3",
            8,
            120,
            39.0,
            0.31,
        ));
        incoming.push(point(
            9,
            "openfoam",
            "Standard_HB120rs_v3",
            16,
            120,
            25.0,
            0.4,
        ));
        ds.extend(incoming);
        assert_eq!(ds.len(), 4, "replacement does not grow the dataset");
        let ids: Vec<u32> = ds.points.iter().map(|p| p.scenario_id).collect();
        assert_eq!(ids, vec![1, 2, 3, 9], "order is preserved");
        let row3 = ds.points.iter().find(|p| p.scenario_id == 3).unwrap();
        assert_eq!(row3.status, ScenarioStatus::Completed, "fresher row wins");
        // Extending with the same rows again is idempotent.
        let again: Dataset = Dataset {
            points: ds.points.clone(),
        };
        ds.extend(again);
        assert_eq!(ds.len(), 4);
    }

    #[test]
    fn capacity_dimension_roundtrips_and_filters() {
        let mut ds = Dataset::new();
        let dedicated = point(1, "lammps", "Standard_HB120rs_v3", 4, 120, 40.0, 0.5);
        let mut spot = dedicated.clone();
        spot.capacity = Capacity::Spot;
        spot.cost_dollars = 0.2;
        ds.push(dedicated.clone());
        // Same scenario id, different capacity: both rows coexist.
        let mut incoming = Dataset::new();
        incoming.push(spot.clone());
        ds.extend(incoming);
        assert_eq!(ds.len(), 2, "spot and dedicated rows coexist");
        // Spot rows carry the capacity key; dedicated rows stay implicit so
        // pre-capacity datasets remain byte-identical.
        let text = ds.to_json();
        assert_eq!(text.matches("\"capacity\"").count(), 1);
        let back = Dataset::from_json(&text).unwrap();
        assert_eq!(ds, back);
        // The filter splits the classes.
        let f = DataFilter::parse("capacity=spot").unwrap();
        let rows = ds.filter(&f);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].capacity, Capacity::Spot);
        assert!(DataFilter::parse("capacity=preemptible").is_err());
        // Re-extending with a fresher spot row replaces, not duplicates.
        let mut fresher = Dataset::new();
        let mut s2 = spot.clone();
        s2.cost_dollars = 0.25;
        fresher.push(s2);
        ds.extend(fresher);
        assert_eq!(ds.len(), 2);
        // CSV carries the capacity column.
        let csv = ds.to_csv();
        let rows = hpcadvisor_formats::csv::read(&csv).unwrap();
        let cap_idx = rows[0].iter().position(|h| h == "capacity").unwrap();
        assert_eq!(rows[1][cap_idx], "dedicated");
        assert_eq!(rows[2][cap_idx], "spot");
    }

    #[test]
    fn region_dimension_roundtrips_and_filters() {
        let mut ds = Dataset::new();
        let home = point(1, "lammps", "Standard_HB120rs_v3", 4, 120, 40.0, 0.5);
        let mut placed = point(2, "lammps", "Standard_HB120rs_v3", 4, 120, 41.0, 0.54);
        placed.region = Some("westeurope".into());
        ds.push(home.clone());
        ds.push(placed.clone());
        // Only the placed row carries the region key; home-region rows stay
        // implicit so pre-placement datasets remain byte-identical.
        let text = ds.to_json();
        assert_eq!(text.matches("\"region\"").count(), 1);
        let back = Dataset::from_json(&text).unwrap();
        assert_eq!(ds, back);
        // The filter selects placed rows case-insensitively; rows without a
        // region never match a region filter.
        let f = DataFilter::parse("region=WestEurope").unwrap();
        let rows = ds.filter(&f);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].scenario_id, 2);
        let none = ds.filter(&DataFilter::parse("region=japaneast").unwrap());
        assert!(none.is_empty());
        // CSV carries the region column, empty for home-region rows.
        let csv = ds.to_csv();
        let rows = hpcadvisor_formats::csv::read(&csv).unwrap();
        let idx = rows[0].iter().position(|h| h == "region").unwrap();
        assert_eq!(rows[1][idx], "");
        assert_eq!(rows[2][idx], "westeurope");
    }

    #[test]
    fn distinct_skus_and_inputs() {
        let ds = sample();
        assert_eq!(ds.skus(&DataFilter::all()), vec!["hb120rs_v3", "hc44rs"]);
        let f = DataFilter {
            appname: Some("lammps".into()),
            ..DataFilter::all()
        };
        assert_eq!(ds.input_keys(&f), vec!["BOXFACTOR=30"]);
    }

    #[test]
    fn metric_lookup() {
        let mut p = point(1, "a", "S", 1, 4, 1.0, 0.1);
        p.metrics = vec![("LAMMPSATOMS".into(), "864000000".into())];
        p.infra = vec![("bottleneck".into(), "compute".into())];
        assert_eq!(p.metric("LAMMPSATOMS"), Some("864000000"));
        assert_eq!(p.metric("NOPE"), None);
        assert_eq!(p.infra_metric("bottleneck"), Some("compute"));
        assert_eq!(p.sku_short(), "s");
    }
}

impl Dataset {
    /// Exports the dataset as CSV with one column per fixed field plus one
    /// column per appinput/metric key seen anywhere in the data (sparse
    /// cells stay empty) — the spreadsheet-friendly sibling of
    /// [`Dataset::to_json`].
    pub fn to_csv(&self) -> String {
        let mut input_keys: Vec<String> = Vec::new();
        let mut metric_keys: Vec<String> = Vec::new();
        for p in &self.points {
            for (k, _) in &p.appinputs {
                if !input_keys.contains(k) {
                    input_keys.push(k.clone());
                }
            }
            for (k, _) in &p.metrics {
                if !metric_keys.contains(k) {
                    metric_keys.push(k.clone());
                }
            }
        }
        let mut header: Vec<String> = [
            "scenario_id",
            "appname",
            "sku",
            "nnodes",
            "ppn",
            "exec_time_secs",
            "task_secs",
            "cost_dollars",
            "status",
            "capacity",
            "region",
            "deployment",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        header.extend(input_keys.iter().cloned());
        header.extend(metric_keys.iter().cloned());
        let mut rows = vec![header];
        for p in &self.points {
            let mut row = vec![
                p.scenario_id.to_string(),
                p.appname.clone(),
                p.sku.clone(),
                p.nnodes.to_string(),
                p.ppn.to_string(),
                format!("{}", p.exec_time_secs),
                format!("{}", p.task_secs),
                format!("{}", p.cost_dollars),
                p.status.as_str().to_string(),
                p.capacity.as_str().to_string(),
                p.region.clone().unwrap_or_default(),
                p.deployment.clone(),
            ];
            for k in &input_keys {
                row.push(
                    p.appinputs
                        .iter()
                        .find(|(pk, _)| pk == k)
                        .map(|(_, v)| v.clone())
                        .unwrap_or_default(),
                );
            }
            for k in &metric_keys {
                row.push(p.metric(k).unwrap_or_default().to_string());
            }
            rows.push(row);
        }
        hpcadvisor_formats::csv::write(&rows)
    }
}

#[cfg(test)]
mod csv_tests {
    use super::*;

    #[test]
    fn csv_export_has_sparse_columns() {
        let mut ds = Dataset::new();
        let mut p1 = point(1, "lammps", "Standard_HB120rs_v3", 16, 120, 36.0, 0.576);
        p1.appinputs = vec![("BOXFACTOR".into(), "30".into())];
        p1.metrics = vec![("LAMMPSATOMS".into(), "864000000".into())];
        ds.push(p1);
        let mut p2 = point(2, "openfoam", "Standard_HB120rs_v2", 8, 120, 38.0, 0.304);
        p2.appinputs = vec![("mesh".into(), "40 16 16".into())];
        ds.push(p2);
        let text = ds.to_csv();
        let rows = hpcadvisor_formats::csv::read(&text).unwrap();
        assert_eq!(rows.len(), 3);
        let header = &rows[0];
        assert!(header.contains(&"BOXFACTOR".to_string()));
        assert!(header.contains(&"mesh".to_string()));
        assert!(header.contains(&"LAMMPSATOMS".to_string()));
        // Row 2 (openfoam) has an empty BOXFACTOR cell.
        let bf_idx = header.iter().position(|h| h == "BOXFACTOR").unwrap();
        assert_eq!(rows[1][bf_idx], "30");
        assert_eq!(rows[2][bf_idx], "");
        // The quoted mesh value survives the round trip.
        let mesh_idx = header.iter().position(|h| h == "mesh").unwrap();
        assert_eq!(rows[2][mesh_idx], "40 16 16");
    }

    #[test]
    fn empty_dataset_csv_is_header_only() {
        let text = Dataset::new().to_csv();
        assert_eq!(text.lines().count(), 1);
        assert!(text.starts_with("scenario_id,"));
    }
}
