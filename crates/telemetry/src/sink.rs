//! The per-shard event sink and its local simulated timeline.

use crate::bus::EventTap;
use crate::TraceEvent;
use hpcadvisor_formats::OrderedMap;
use std::sync::Arc;

/// Shard index stamped on coordinator-level events (run framing, cache
/// hits, journal replays) that belong to no shard.
pub const COORDINATOR_SHARD: i64 = -1;

/// A single-owner event buffer with a shard-local simulated clock.
///
/// A disabled sink (the default) is an empty `Option`: [`EventSink::emit`]
/// returns before invoking the field-building closure, so call sites pay
/// one branch and allocate nothing — telemetry off is free. An enabled
/// sink is owned outright by its shard worker (no locks); shards are
/// merged once, at the barrier, in shard-index order.
///
/// The timeline starts at zero and is advanced explicitly by the owner
/// with deterministic durations only. Never feed it wall-clock or
/// shared-RNG-jittered quantities: trace bytes must not depend on worker
/// count or host speed.
#[derive(Debug, Default)]
pub struct EventSink {
    inner: Option<Sink>,
}

struct Sink {
    shard: i64,
    now: f64,
    events: Vec<TraceEvent>,
    /// Live observer notified of every event as it is recorded, in
    /// addition to buffering (see [`crate::bus`]). Taps cannot alter the
    /// buffered stream.
    tap: Option<Arc<dyn EventTap>>,
}

impl std::fmt::Debug for Sink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sink")
            .field("shard", &self.shard)
            .field("now", &self.now)
            .field("events", &self.events)
            .field("tap", &self.tap.as_ref().map(|_| "..."))
            .finish()
    }
}

impl EventSink {
    /// A sink that drops everything (the zero-cost default).
    pub fn disabled() -> EventSink {
        EventSink { inner: None }
    }

    /// An enabled sink for shard `shard`, its timeline at zero.
    pub fn for_shard(shard: i64) -> EventSink {
        EventSink {
            inner: Some(Sink {
                shard,
                now: 0.0,
                events: Vec::new(),
                tap: None,
            }),
        }
    }

    /// Attaches a live tap: every event recorded from now on is also
    /// handed to `tap` on the emitting thread. No-op on a disabled sink —
    /// taps only observe streams that are being recorded.
    pub fn with_tap(mut self, tap: Arc<dyn EventTap>) -> EventSink {
        if let Some(sink) = &mut self.inner {
            sink.tap = Some(tap);
        }
        self
    }

    /// An enabled sink for coordinator-level events.
    pub fn coordinator() -> EventSink {
        EventSink::for_shard(COORDINATOR_SHARD)
    }

    /// Whether events are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Current shard-local simulated time (zero when disabled).
    pub fn now(&self) -> f64 {
        self.inner.as_ref().map_or(0.0, |s| s.now)
    }

    /// Advances the shard-local timeline by a deterministic duration.
    pub fn advance(&mut self, secs: f64) {
        if let Some(sink) = &mut self.inner {
            sink.now += secs.max(0.0);
        }
    }

    /// Records an event at the current local time. `fill` populates the
    /// kind-specific fields and runs only when the sink is enabled.
    pub fn emit(&mut self, kind: &str, scope: &str, fill: impl FnOnce(&mut OrderedMap)) {
        if let Some(sink) = &mut self.inner {
            let mut ev = TraceEvent::pending(kind, scope, fill);
            ev.t = sink.now;
            ev.shard = sink.shard;
            if let Some(tap) = &sink.tap {
                tap.on_event(&ev);
            }
            sink.events.push(ev);
        }
    }

    /// Stamps buffered pending events (from a layer without timeline
    /// access, e.g. the cloud provider) with the current local time and
    /// this sink's shard, preserving their order.
    pub fn absorb(&mut self, pending: Vec<TraceEvent>) {
        if let Some(sink) = &mut self.inner {
            for mut ev in pending {
                ev.t = sink.now;
                ev.shard = sink.shard;
                if let Some(tap) = &sink.tap {
                    tap.on_event(&ev);
                }
                sink.events.push(ev);
            }
        }
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.inner.as_ref().map_or(0, |s| s.events.len())
    }

    /// True when no events are buffered (always true when disabled).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drains the buffered events, leaving the sink enabled with its
    /// timeline intact.
    pub fn take(&mut self) -> Vec<TraceEvent> {
        self.inner
            .as_mut()
            .map_or_else(Vec::new, |s| std::mem::take(&mut s.events))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcadvisor_formats::Value;

    #[test]
    fn disabled_sink_is_inert_and_never_builds_fields() {
        let mut sink = EventSink::disabled();
        assert!(!sink.is_enabled());
        let mut built = false;
        sink.emit("kind", "scope", |_| built = true);
        sink.advance(10.0);
        sink.absorb(vec![TraceEvent::pending("x", "y", |_| {})]);
        assert!(!built, "field closure ran on a disabled sink");
        assert_eq!(sink.now(), 0.0);
        assert!(sink.is_empty());
        assert!(sink.take().is_empty());
    }

    #[test]
    fn enabled_sink_stamps_local_time_and_shard() {
        let mut sink = EventSink::for_shard(3);
        sink.emit("a", "s", |m| {
            m.insert("n", Value::Int(1));
        });
        sink.advance(5.5);
        sink.emit("b", "s", |_| {});
        sink.advance(-1.0); // negative advances are clamped
        let events = sink.take();
        assert_eq!(events.len(), 2);
        assert_eq!((events[0].t, events[0].shard), (0.0, 3));
        assert_eq!((events[1].t, events[1].shard), (5.5, 3));
        assert_eq!(sink.now(), 5.5);
        assert!(sink.is_empty(), "take drained the buffer");
        assert!(sink.is_enabled(), "take keeps the sink enabled");
    }

    #[test]
    fn tap_sees_every_event_without_disturbing_the_buffer() {
        use crate::bus::EventBus;
        use std::sync::Arc;
        let bus = Arc::new(EventBus::new());
        let rx = bus.subscribe();
        let mut sink = EventSink::for_shard(2).with_tap(bus);
        sink.emit("direct", "s", |_| {});
        sink.advance(3.0);
        sink.absorb(vec![TraceEvent::pending("absorbed", "s", |_| {})]);
        let live: Vec<TraceEvent> = rx.try_iter().collect();
        assert_eq!(live.len(), 2, "tap saw both events live");
        assert_eq!(live[0].kind, "direct");
        assert_eq!(
            (live[1].kind.as_str(), live[1].t, live[1].shard),
            ("absorbed", 3.0, 2)
        );
        assert_eq!(sink.take(), live, "buffered stream is identical");
        // Tapping a disabled sink stays inert.
        let mut off = EventSink::disabled().with_tap(Arc::new(EventBus::new()));
        off.emit("x", "y", |_| {});
        assert!(off.take().is_empty());
    }

    #[test]
    fn absorb_restamps_pending_events_in_order() {
        let mut sink = EventSink::coordinator();
        sink.advance(7.0);
        sink.absorb(vec![
            TraceEvent::pending("p1", "s", |_| {}),
            TraceEvent::pending("p2", "s", |_| {}),
        ]);
        let events = sink.take();
        assert_eq!(events.len(), 2);
        assert!(events
            .iter()
            .all(|e| e.t == 7.0 && e.shard == COORDINATOR_SHARD));
        assert_eq!(events[0].kind, "p1");
        assert_eq!(events[1].kind, "p2");
    }
}
