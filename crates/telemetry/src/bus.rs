//! Live fan-out of trace events to subscribers.
//!
//! The sink layer buffers events per shard and merges them once, after the
//! run — perfect for deterministic trace files, useless for a client that
//! wants to watch a run in flight. An [`EventTap`] is the push-side
//! counterpart: a sink with a tap attached hands every event to the tap
//! *as it is recorded*, in addition to buffering it. Taps observe the
//! stream; they can never change what lands in the trace, so a tapped run
//! stays byte-identical to an untapped one.
//!
//! [`EventBus`] is the standard tap: a subscriber list of mpsc senders.
//! Each [`EventBus::subscribe`] call returns an independent receiver that
//! sees every event published after the subscription; receivers that have
//! been dropped are pruned on the next publish. The advisor daemon uses
//! one bus per job to stream `scenario_start`/`scenario_end` progress
//! frames to the requesting client.
//!
//! Ordering: a tap sees events in the order each shard emits them, which
//! on a parallel run interleaves arbitrarily across shards — live
//! progress is a feed, not a trace. The merged post-run trace remains the
//! only ordering-stable artifact.

use crate::TraceEvent;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Mutex;

/// An observer of trace events at emit time.
///
/// Implementations must be cheap and non-blocking: taps run inline on the
/// emitting worker. A tap must never panic — a slow or dead consumer is
/// the consumer's problem, not the run's.
pub trait EventTap: Send + Sync {
    /// Called once per recorded event, on the emitting thread.
    fn on_event(&self, event: &TraceEvent);
}

/// A fan-out tap: every published event is cloned to all live subscribers.
#[derive(Default)]
pub struct EventBus {
    subscribers: Mutex<Vec<Sender<TraceEvent>>>,
}

impl EventBus {
    /// A bus with no subscribers.
    pub fn new() -> EventBus {
        EventBus::default()
    }

    /// Registers a new subscriber; it sees every event published from now
    /// on. Dropping the receiver unsubscribes implicitly.
    pub fn subscribe(&self) -> Receiver<TraceEvent> {
        let (tx, rx) = channel();
        self.subscribers.lock().unwrap().push(tx);
        rx
    }

    /// Number of currently-registered subscribers (dead ones are only
    /// pruned when a publish hits them).
    pub fn subscriber_count(&self) -> usize {
        self.subscribers.lock().unwrap().len()
    }

    /// Publishes one event to every live subscriber, pruning dead ones.
    pub fn publish(&self, event: &TraceEvent) {
        let mut subs = self.subscribers.lock().unwrap();
        subs.retain(|tx| tx.send(event.clone()).is_ok());
    }
}

impl EventTap for EventBus {
    fn on_event(&self, event: &TraceEvent) {
        self.publish(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn ev(kind: &str) -> TraceEvent {
        TraceEvent::pending(kind, "scope", |_| {})
    }

    #[test]
    fn bus_fans_out_to_every_subscriber() {
        let bus = EventBus::new();
        let a = bus.subscribe();
        let b = bus.subscribe();
        bus.publish(&ev("one"));
        bus.publish(&ev("two"));
        for rx in [&a, &b] {
            assert_eq!(rx.recv().unwrap().kind, "one");
            assert_eq!(rx.recv().unwrap().kind, "two");
        }
    }

    #[test]
    fn dropped_subscribers_are_pruned() {
        let bus = EventBus::new();
        let a = bus.subscribe();
        drop(bus.subscribe());
        assert_eq!(bus.subscriber_count(), 2);
        bus.publish(&ev("tick"));
        assert_eq!(bus.subscriber_count(), 1, "dead receiver pruned");
        assert_eq!(a.recv().unwrap().kind, "tick");
    }

    #[test]
    fn bus_is_shareable_across_threads() {
        let bus = Arc::new(EventBus::new());
        let rx = bus.subscribe();
        let publisher = {
            let bus = bus.clone();
            std::thread::spawn(move || {
                for i in 0..10 {
                    bus.publish(&ev(&format!("e{i}")));
                }
            })
        };
        publisher.join().unwrap();
        let kinds: Vec<String> = rx.try_iter().map(|e| e.kind).collect();
        assert_eq!(kinds.len(), 10);
        assert_eq!(kinds[0], "e0");
        assert_eq!(kinds[9], "e9");
    }
}
