//! # telemetry — deterministic run tracing for the collection pipeline
//!
//! The collector's internals — pool resizes, node boots, retries,
//! evictions, cache hits — are invisible except as scattered counters.
//! This crate gives every layer a structured event stream that is
//!
//! * **zero-cost when off**: an [`EventSink`] is an `Option`-gated buffer;
//!   a disabled sink never invokes the field-building closure, so the hot
//!   path pays one branch and constructs nothing;
//! * **deterministic**: events are stamped on a *shard-local* simulated
//!   timeline that starts at zero and advances only by deterministic
//!   quantities (un-jittered boot latency, runner-reported task durations,
//!   the stateless retry backoff schedule). No wall-clock, no worker
//!   count, no shared-RNG jitter ever reaches the trace bytes, so the
//!   merged trace is byte-identical for any worker count — the same
//!   ordering contract datasets already obey;
//! * **lock-free per shard**: each shard worker owns its sink outright
//!   (it lives inside the shard's `BatchService`); merging happens once,
//!   at the barrier, in shard-index order.
//!
//! The merged stream serializes to JSONL ([`Trace::to_jsonl`], one compact
//! object per line under a `{"version": 1}` header) and aggregates into a
//! [`TraceSummary`] (provision-latency/boot/task/backoff histograms, retry
//! and eviction counts, cache hit ratio, dollars per completed scenario).
//! [`timeline::build_timeline`] folds the stream into per-pool lanes for
//! Gantt rendering.

pub mod bus;
mod event;
mod sink;
pub mod summary;
pub mod timeline;

pub use bus::{EventBus, EventTap};
pub use event::{Trace, TraceError, TraceEvent, TRACE_VERSION};
pub use sink::{EventSink, COORDINATOR_SHARD};
pub use summary::{Histogram, TraceSummary};
pub use timeline::{build_timeline, SpanKind, TimelineLane, TimelineSpan};

// Re-exported so emitting layers can build event fields without a direct
// formats dependency.
pub use hpcadvisor_formats::{OrderedMap, Value};
