//! Aggregation of a trace into counters and histograms.

use crate::TraceEvent;

/// Upper bucket bounds (simulated seconds) shared by all duration
/// histograms; the last bucket is unbounded.
const BOUNDS: [f64; 6] = [1.0, 10.0, 60.0, 180.0, 600.0, 3600.0];

/// A fixed-bucket duration histogram over simulated seconds.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Histogram {
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: f64,
    /// Smallest sample (0 when empty).
    pub min: f64,
    /// Largest sample (0 when empty).
    pub max: f64,
    /// Counts per bucket: `BOUNDS` upper bounds plus an overflow bucket.
    pub buckets: [u64; BOUNDS.len() + 1],
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one sample.
    pub fn record(&mut self, v: f64) {
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v;
        let idx = BOUNDS.iter().position(|&b| v <= b).unwrap_or(BOUNDS.len());
        self.buckets[idx] += 1;
    }

    /// Mean sample (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// One-line rendering: `n=…  mean=…s  min=…s  max=…s`.
    pub fn render_compact(&self) -> String {
        if self.count == 0 {
            return "n=0".to_string();
        }
        format!(
            "n={}  mean={:.1}s  min={:.1}s  max={:.1}s",
            self.count,
            self.mean(),
            self.min,
            self.max
        )
    }
}

/// Counters and histograms aggregated from a merged trace.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceSummary {
    /// Total events in the trace.
    pub events: usize,
    /// Distinct execution chunks that emitted events (coordinator events
    /// excluded). Chunk splitting depends only on the scenario list, never
    /// on the worker count, so this is identical across 1/4/8-worker runs
    /// of the same grid — unlike per-worker utilization, which lives in
    /// `CollectStats`, not the trace.
    pub chunks: usize,
    /// Provider allocations (`provision` events).
    pub provisions: u64,
    /// Provider releases.
    pub releases: u64,
    /// Quota checks that were denied.
    pub quota_denials: u64,
    /// Fault-plan rolls performed.
    pub fault_rolls: u64,
    /// Rolls that fired a fault.
    pub faults_fired: u64,
    /// Pool resizes.
    pub pool_resizes: u64,
    /// Provision latency (allocation grant to usable), simulated seconds.
    pub provision_secs: Histogram,
    /// Node boot time per resize, simulated seconds.
    pub boot_secs: Histogram,
    /// Task execution durations, simulated seconds.
    pub task_secs: Histogram,
    /// Tasks run (`task_end` events).
    pub tasks: u64,
    /// Collector retries after transient faults.
    pub retries: u64,
    /// Backoff waits, simulated seconds.
    pub backoff_secs: Histogram,
    /// Spot evictions.
    pub evictions: u64,
    /// Scenarios that completed.
    pub completed: u64,
    /// Scenarios that failed.
    pub failed: u64,
    /// Scenarios skipped (quota/budget).
    pub skipped: u64,
    /// Scenarios that exceeded the deadline.
    pub timed_out: u64,
    /// Scenarios served from the result cache.
    pub cache_hits: u64,
    /// Scenarios replayed from the run journal.
    pub journal_replays: u64,
    /// Dollars billed for executed scenarios.
    pub cost_dollars: f64,
}

impl TraceSummary {
    /// Folds an event stream into a summary.
    pub fn from_events(events: &[TraceEvent]) -> TraceSummary {
        let mut s = TraceSummary {
            events: events.len(),
            ..TraceSummary::default()
        };
        let mut chunks = std::collections::BTreeSet::new();
        for ev in events {
            if ev.shard >= 0 {
                chunks.insert(ev.shard);
            }
            match ev.kind.as_str() {
                "provision" => {
                    s.provisions += 1;
                    if let Some(secs) = ev.f64_field("boot_secs") {
                        s.provision_secs.record(secs);
                    }
                }
                "release" => s.releases += 1,
                "quota" if ev.fields.get("granted").and_then(|v| v.as_bool()) == Some(false) => {
                    s.quota_denials += 1;
                }
                "fault_roll" => {
                    s.fault_rolls += 1;
                    if ev.fields.get("fired").and_then(|v| v.as_bool()) == Some(true) {
                        s.faults_fired += 1;
                    }
                }
                "pool_resize" => s.pool_resizes += 1,
                "node_boot" => {
                    if let Some(secs) = ev.f64_field("boot_secs") {
                        s.boot_secs.record(secs);
                    }
                }
                "task_end" => {
                    s.tasks += 1;
                    if let Some(secs) = ev.f64_field("secs") {
                        s.task_secs.record(secs);
                    }
                }
                "retry" => {
                    s.retries += 1;
                    if let Some(secs) = ev.f64_field("backoff_secs") {
                        s.backoff_secs.record(secs);
                    }
                }
                "eviction" => s.evictions += 1,
                "cache_hit" => s.cache_hits += 1,
                "journal_replay" => s.journal_replays += 1,
                "scenario_end" => {
                    match ev.str_field("status").unwrap_or("") {
                        "completed" => s.completed += 1,
                        "failed" => s.failed += 1,
                        "skipped" => s.skipped += 1,
                        "timed_out" => s.timed_out += 1,
                        _ => {}
                    }
                    if let Some(cost) = ev.f64_field("cost") {
                        s.cost_dollars += cost;
                    }
                }
                _ => {}
            }
        }
        s.chunks = chunks.len();
        s
    }

    /// Cache hit ratio over consulted scenarios (hits + executed), in
    /// `[0, 1]`; 0 when nothing was consulted.
    pub fn cache_hit_ratio(&self) -> f64 {
        let executed = self.completed + self.failed + self.skipped + self.timed_out;
        let total = self.cache_hits + executed;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Dollars billed per completed scenario (0 when none completed).
    pub fn dollars_per_completed(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.cost_dollars / self.completed as f64
        }
    }

    /// Multi-line human-readable rendering for the CLI.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "trace: {} events across {} execution chunk{}\n",
            self.events,
            self.chunks,
            if self.chunks == 1 { "" } else { "s" }
        ));
        out.push_str(&format!(
            "scenarios: {} completed, {} failed, {} skipped, {} timed out, {} cached, {} replayed\n",
            self.completed,
            self.failed,
            self.skipped,
            self.timed_out,
            self.cache_hits,
            self.journal_replays
        ));
        out.push_str(&format!(
            "cache hit ratio: {:.1}%\n",
            100.0 * self.cache_hit_ratio()
        ));
        out.push_str(&format!(
            "cloud: {} provisions, {} releases, {} pool resizes, {} quota denials\n",
            self.provisions, self.releases, self.pool_resizes, self.quota_denials
        ));
        out.push_str(&format!(
            "faults: {} rolls, {} fired, {} retries, {} evictions\n",
            self.fault_rolls, self.faults_fired, self.retries, self.evictions
        ));
        out.push_str(&format!(
            "provision latency: {}\n",
            self.provision_secs.render_compact()
        ));
        out.push_str(&format!(
            "node boot:         {}\n",
            self.boot_secs.render_compact()
        ));
        out.push_str(&format!(
            "task duration:     {}\n",
            self.task_secs.render_compact()
        ));
        out.push_str(&format!(
            "retry backoff:     {}\n",
            self.backoff_secs.render_compact()
        ));
        out.push_str(&format!(
            "billed: ${:.4} total, ${:.4} per completed scenario\n",
            self.cost_dollars,
            self.dollars_per_completed()
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcadvisor_formats::Value;

    fn ev(kind: &str, fill: impl FnOnce(&mut hpcadvisor_formats::OrderedMap)) -> TraceEvent {
        TraceEvent::pending(kind, "scope", fill)
    }

    #[test]
    fn histogram_buckets_and_stats() {
        let mut h = Histogram::new();
        assert_eq!(h.render_compact(), "n=0");
        for v in [0.5, 5.0, 150.0, 7200.0] {
            h.record(v);
        }
        assert_eq!(h.count, 4);
        assert_eq!(h.min, 0.5);
        assert_eq!(h.max, 7200.0);
        assert_eq!(h.buckets[0], 1, "≤1s");
        assert_eq!(h.buckets[1], 1, "≤10s");
        assert_eq!(h.buckets[3], 1, "≤180s");
        assert_eq!(h.buckets[BOUNDS.len()], 1, "overflow");
        assert!((h.mean() - 1838.875).abs() < 1e-9);
        assert!(h.render_compact().starts_with("n=4"));
    }

    #[test]
    fn summary_folds_the_event_vocabulary() {
        let events = vec![
            ev("provision", |m| {
                m.insert("boot_secs", Value::Float(160.0));
            }),
            ev("quota", |m| {
                m.insert("granted", Value::Bool(false));
            }),
            ev("fault_roll", |m| {
                m.insert("fired", Value::Bool(true));
            }),
            ev("fault_roll", |m| {
                m.insert("fired", Value::Bool(false));
            }),
            ev("pool_resize", |_| {}),
            ev("node_boot", |m| {
                m.insert("boot_secs", Value::Float(160.0));
            }),
            ev("task_end", |m| {
                m.insert("secs", Value::Float(42.0));
            }),
            ev("retry", |m| {
                m.insert("backoff_secs", Value::Float(30.0));
            }),
            ev("eviction", |_| {}),
            ev("cache_hit", |_| {}),
            ev("journal_replay", |_| {}),
            ev("scenario_end", |m| {
                m.insert("status", Value::str("completed"));
                m.insert("cost", Value::Float(1.5));
            }),
            ev("scenario_end", |m| {
                m.insert("status", Value::str("skipped"));
            }),
            ev("release", |_| {}),
            ev("unknown_kind", |_| {}),
        ];
        let s = TraceSummary::from_events(&events);
        assert_eq!(s.events, events.len());
        assert_eq!(s.chunks, 1, "all events carry shard 0");
        assert_eq!(s.provisions, 1);
        assert_eq!(s.releases, 1);
        assert_eq!(s.quota_denials, 1);
        assert_eq!((s.fault_rolls, s.faults_fired), (2, 1));
        assert_eq!(s.pool_resizes, 1);
        assert_eq!(s.tasks, 1);
        assert_eq!(s.retries, 1);
        assert_eq!(s.evictions, 1);
        assert_eq!(s.cache_hits, 1);
        assert_eq!(s.journal_replays, 1);
        assert_eq!((s.completed, s.skipped), (1, 1));
        assert!((s.cost_dollars - 1.5).abs() < 1e-12);
        assert!((s.dollars_per_completed() - 1.5).abs() < 1e-12);
        // 1 hit over (1 hit + 2 executed scenarios).
        assert!((s.cache_hit_ratio() - 1.0 / 3.0).abs() < 1e-12);
        let text = s.render_text();
        assert!(text.contains("1 completed"));
        assert!(text.contains("cache hit ratio: 33.3%"));
    }
}
