//! Folding a trace into per-pool lanes for Gantt rendering.

use crate::TraceEvent;

/// What a span on a pool lane represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// Nodes booting after an allocation (`node_boot`).
    Boot,
    /// A setup task executing.
    Setup,
    /// A compute task executing.
    Compute,
    /// A retry backoff wait (`retry`).
    Backoff,
    /// A spot eviction (zero-width marker).
    Eviction,
}

impl SpanKind {
    /// Stable display label.
    pub fn label(self) -> &'static str {
        match self {
            SpanKind::Boot => "boot",
            SpanKind::Setup => "setup",
            SpanKind::Compute => "compute",
            SpanKind::Backoff => "backoff",
            SpanKind::Eviction => "eviction",
        }
    }
}

/// A `[start, end]` interval on a pool lane, in shard-local simulated
/// seconds.
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineSpan {
    /// Span start, seconds.
    pub start: f64,
    /// Span end, seconds (equal to `start` for markers).
    pub end: f64,
    /// What the interval represents.
    pub kind: SpanKind,
    /// Short annotation (task id, scenario id, …).
    pub label: String,
}

/// One Gantt lane: a pool on a shard and its activity spans.
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineLane {
    /// Shard index the pool ran on.
    pub shard: i64,
    /// Pool name.
    pub pool: String,
    /// Spans in event order.
    pub spans: Vec<TimelineSpan>,
}

impl TimelineLane {
    /// Largest span end on the lane (0 when empty).
    pub fn end(&self) -> f64 {
        self.spans.iter().fold(0.0, |acc, s| acc.max(s.end))
    }
}

/// Folds pool-scoped events into lanes, one per `(shard, pool)`, ordered
/// by shard then first appearance — deterministic because the merged
/// event order is.
pub fn build_timeline(events: &[TraceEvent]) -> Vec<TimelineLane> {
    let mut lanes: Vec<TimelineLane> = Vec::new();
    for ev in events {
        let span = match ev.kind.as_str() {
            "node_boot" => {
                let boot = ev.f64_field("boot_secs").unwrap_or(0.0);
                TimelineSpan {
                    start: ev.t,
                    end: ev.t + boot,
                    kind: SpanKind::Boot,
                    label: format!("+{} nodes", ev.f64_field("nodes").unwrap_or(0.0) as i64),
                }
            }
            "task_end" => {
                let secs = ev.f64_field("secs").unwrap_or(0.0);
                let kind = match ev.str_field("task_kind") {
                    Some("setup") => SpanKind::Setup,
                    _ => SpanKind::Compute,
                };
                TimelineSpan {
                    start: (ev.t - secs).max(0.0),
                    end: ev.t,
                    kind,
                    label: ev.str_field("task").unwrap_or("task").to_string(),
                }
            }
            "retry" => {
                let secs = ev.f64_field("backoff_secs").unwrap_or(0.0);
                TimelineSpan {
                    start: ev.t,
                    end: ev.t + secs,
                    kind: SpanKind::Backoff,
                    label: format!("retry {}", ev.f64_field("attempt").unwrap_or(0.0) as i64),
                }
            }
            "eviction" => TimelineSpan {
                start: ev.t,
                end: ev.t,
                kind: SpanKind::Eviction,
                label: ev.str_field("task").unwrap_or("evicted").to_string(),
            },
            _ => continue,
        };
        match lanes
            .iter_mut()
            .find(|l| l.shard == ev.shard && l.pool == ev.scope)
        {
            Some(lane) => lane.spans.push(span),
            None => lanes.push(TimelineLane {
                shard: ev.shard,
                pool: ev.scope.clone(),
                spans: vec![span],
            }),
        }
    }
    lanes.sort_by_key(|a| a.shard);
    lanes
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcadvisor_formats::Value;

    fn at(t: f64, shard: i64, kind: &str, scope: &str, pairs: &[(&str, Value)]) -> TraceEvent {
        let mut ev = TraceEvent::pending(kind, scope, |m| {
            for (k, v) in pairs {
                m.insert(*k, v.clone());
            }
        });
        ev.t = t;
        ev.shard = shard;
        ev
    }

    #[test]
    fn lanes_group_by_shard_and_pool() {
        let events = vec![
            at(
                0.0,
                1,
                "node_boot",
                "pool-a",
                &[("nodes", Value::Int(2)), ("boot_secs", Value::Float(160.0))],
            ),
            at(
                260.0,
                1,
                "task_end",
                "pool-a",
                &[
                    ("task", Value::str("task-2")),
                    ("task_kind", Value::str("compute")),
                    ("secs", Value::Float(100.0)),
                ],
            ),
            at(
                260.0,
                1,
                "eviction",
                "pool-a",
                &[("task", Value::str("task-2"))],
            ),
            at(
                260.0,
                1,
                "retry",
                "pool-a",
                &[
                    ("attempt", Value::Int(1)),
                    ("backoff_secs", Value::Float(30.0)),
                ],
            ),
            at(
                10.0,
                0,
                "task_end",
                "pool-b",
                &[
                    ("task", Value::str("task-1")),
                    ("task_kind", Value::str("setup")),
                    ("secs", Value::Float(10.0)),
                ],
            ),
            at(0.0, 0, "scenario_start", "3", &[]),
        ];
        let lanes = build_timeline(&events);
        assert_eq!(lanes.len(), 2);
        // Sorted by shard.
        assert_eq!((lanes[0].shard, lanes[0].pool.as_str()), (0, "pool-b"));
        assert_eq!(lanes[0].spans.len(), 1);
        assert_eq!(lanes[0].spans[0].kind, SpanKind::Setup);
        assert_eq!(lanes[0].spans[0].start, 0.0);
        let a = &lanes[1];
        assert_eq!(a.spans.len(), 4);
        assert_eq!(a.spans[0].kind, SpanKind::Boot);
        assert_eq!(a.spans[0].end, 160.0);
        assert_eq!(a.spans[1].kind, SpanKind::Compute);
        assert_eq!((a.spans[1].start, a.spans[1].end), (160.0, 260.0));
        assert_eq!(a.spans[2].kind, SpanKind::Eviction);
        assert_eq!(a.spans[2].start, a.spans[2].end);
        assert_eq!(a.spans[3].kind, SpanKind::Backoff);
        assert_eq!(a.end(), 290.0);
    }
}
