//! The trace event and its canonical JSONL form.

use hpcadvisor_formats::{json, OrderedMap, Value};
use std::fmt;

/// Version stamp of the JSONL trace format (the file's header line).
pub const TRACE_VERSION: i64 = 1;

/// Keys owned by the envelope; event fields may not reuse them.
const RESERVED_KEYS: [&str; 4] = ["t", "shard", "kind", "scope"];

/// One structured trace event.
///
/// `t` is the emitting shard's local simulated time in seconds (each shard
/// timeline starts at zero), `shard` the shard index in deterministic
/// shard order ([`crate::COORDINATOR_SHARD`] for coordinator events),
/// `kind` the event type (`provision`, `task_end`, `scenario_end`, …),
/// `scope` the entity it concerns (SKU, pool, scenario id), and `fields`
/// kind-specific attributes in a fixed insertion order.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Shard-local simulated timestamp, seconds.
    pub t: f64,
    /// Shard index, or [`crate::COORDINATOR_SHARD`] for coordinator events.
    pub shard: i64,
    /// Event kind.
    pub kind: String,
    /// Entity the event concerns.
    pub scope: String,
    /// Kind-specific attributes, serialized after the envelope keys.
    pub fields: OrderedMap,
}

impl TraceEvent {
    /// Builds an event awaiting a timestamp/shard stamp (used by layers
    /// that buffer events for the owner of the shard timeline to absorb).
    pub fn pending(kind: &str, scope: &str, fill: impl FnOnce(&mut OrderedMap)) -> TraceEvent {
        let mut fields = OrderedMap::new();
        fill(&mut fields);
        debug_assert!(
            RESERVED_KEYS.iter().all(|k| !fields.contains_key(k)),
            "event fields reuse an envelope key"
        );
        TraceEvent {
            t: 0.0,
            shard: 0,
            kind: kind.to_string(),
            scope: scope.to_string(),
            fields,
        }
    }

    /// Serializes the event as one compact JSON line (no trailing newline).
    pub fn to_line(&self) -> String {
        let mut m = OrderedMap::new();
        m.insert("t", Value::Float(self.t));
        m.insert("shard", Value::Int(self.shard));
        m.insert("kind", Value::str(&self.kind));
        m.insert("scope", Value::str(&self.scope));
        for (k, v) in self.fields.iter() {
            m.insert(k, v.clone());
        }
        json::to_string(&Value::Map(m))
    }

    /// Parses one JSON line back into an event.
    pub fn from_line(line: &str) -> Result<TraceEvent, TraceError> {
        let doc = json::parse(line).map_err(|e| TraceError(format!("bad trace line: {e}")))?;
        let map = doc
            .as_map()
            .ok_or_else(|| TraceError("trace line is not an object".into()))?;
        let t = map
            .get("t")
            .and_then(Value::as_f64)
            .ok_or_else(|| TraceError("trace line missing numeric 't'".into()))?;
        let shard = map
            .get("shard")
            .and_then(Value::as_int)
            .ok_or_else(|| TraceError("trace line missing integer 'shard'".into()))?;
        let kind = map
            .get("kind")
            .and_then(Value::as_str)
            .ok_or_else(|| TraceError("trace line missing string 'kind'".into()))?
            .to_string();
        let scope = map
            .get("scope")
            .and_then(Value::as_str)
            .ok_or_else(|| TraceError("trace line missing string 'scope'".into()))?
            .to_string();
        let mut fields = OrderedMap::new();
        for (k, v) in map.iter() {
            if !RESERVED_KEYS.contains(&k) {
                fields.insert(k, v.clone());
            }
        }
        Ok(TraceEvent {
            t,
            shard,
            kind,
            scope,
            fields,
        })
    }

    /// Shorthand for a numeric field.
    pub fn f64_field(&self, key: &str) -> Option<f64> {
        self.fields.get(key).and_then(Value::as_f64)
    }

    /// Shorthand for a string field.
    pub fn str_field(&self, key: &str) -> Option<&str> {
        self.fields.get(key).and_then(Value::as_str)
    }
}

/// A merged run trace: coordinator framing plus shard sections in shard
/// order, ready for JSONL export or aggregation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    /// Events in canonical merged order.
    pub events: Vec<TraceEvent>,
}

impl Trace {
    /// Wraps an already-ordered event list.
    pub fn new(events: Vec<TraceEvent>) -> Trace {
        Trace { events }
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when the trace holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Serializes the trace as JSONL: a `{"version": 1}` header followed
    /// by one event per line. The bytes are canonical — re-emitting a
    /// parsed trace reproduces them exactly.
    pub fn to_jsonl(&self) -> String {
        let mut out = format!("{{\"version\": {TRACE_VERSION}}}\n");
        for ev in &self.events {
            out.push_str(&ev.to_line());
            out.push('\n');
        }
        out
    }

    /// Parses a JSONL trace. Unlike the run journal (which tolerates torn
    /// tails because it must survive crashes), a trace is a completed
    /// export: any malformed line is an error.
    pub fn from_jsonl(text: &str) -> Result<Trace, TraceError> {
        let mut lines = text.lines();
        let header = lines
            .next()
            .ok_or_else(|| TraceError("empty trace file".into()))?;
        let version = json::parse(header)
            .ok()
            .as_ref()
            .and_then(|v| v.get("version"))
            .and_then(Value::as_int);
        if version != Some(TRACE_VERSION) {
            return Err(TraceError(format!(
                "unsupported trace header: {header:?} (want version {TRACE_VERSION})"
            )));
        }
        let mut events = Vec::new();
        for (i, line) in lines.enumerate() {
            if line.is_empty() {
                continue;
            }
            events.push(
                TraceEvent::from_line(line)
                    .map_err(|e| TraceError(format!("line {}: {e}", i + 2)))?,
            );
        }
        Ok(Trace { events })
    }

    /// Aggregates the trace into counters and histograms.
    pub fn summarize(&self) -> crate::TraceSummary {
        crate::TraceSummary::from_events(&self.events)
    }
}

/// A trace parse/format error.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceError(pub String);

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for TraceError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TraceEvent {
        let mut ev = TraceEvent::pending("provision", "Standard_HB120rs_v3", |m| {
            m.insert("nodes", Value::Int(4));
            m.insert("boot_secs", Value::Float(166.09437912434102));
            m.insert("capacity", Value::str("spot"));
        });
        ev.t = 12.5;
        ev.shard = 2;
        ev
    }

    #[test]
    fn line_round_trips_byte_identically() {
        let ev = sample();
        let line = ev.to_line();
        let back = TraceEvent::from_line(&line).unwrap();
        assert_eq!(back, ev);
        assert_eq!(back.to_line(), line);
    }

    #[test]
    fn line_escapes_awkward_strings() {
        let ev = TraceEvent::pending("fault_roll", "pool \"q\"\n\\x", |m| {
            m.insert("op", Value::str("Run\tTask"));
        });
        let line = ev.to_line();
        let back = TraceEvent::from_line(&line).unwrap();
        assert_eq!(back.scope, "pool \"q\"\n\\x");
        assert_eq!(back.to_line(), line);
    }

    #[test]
    fn trace_jsonl_round_trips_byte_identically() {
        let trace = Trace::new(vec![sample(), {
            let mut e = sample();
            e.t = 200.0;
            e.kind = "release".into();
            e
        }]);
        let text = trace.to_jsonl();
        assert!(text.starts_with("{\"version\": 1}\n"));
        let back = Trace::from_jsonl(&text).unwrap();
        assert_eq!(back, trace);
        assert_eq!(back.to_jsonl(), text);
    }

    #[test]
    fn bad_inputs_are_rejected() {
        assert!(Trace::from_jsonl("").is_err());
        assert!(Trace::from_jsonl("{\"version\": 9}\n").is_err());
        let torn = format!(
            "{}{}",
            Trace::default().to_jsonl(),
            "{\"t\": 1.0, \"shard\""
        );
        let err = Trace::from_jsonl(&torn).unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
        assert!(TraceEvent::from_line("[1,2]").is_err());
        assert!(TraceEvent::from_line("{\"t\": 0.0}").is_err());
    }

    #[test]
    fn field_accessors() {
        let ev = sample();
        assert_eq!(ev.f64_field("nodes"), Some(4.0));
        assert_eq!(ev.str_field("capacity"), Some("spot"));
        assert_eq!(ev.f64_field("missing"), None);
    }
}
