//! Per-application models and the registry the tool resolves them from.
//!
//! Each model translates user-facing `appinputs` into a [`WorkProfile`] and
//! renders a synthetic application log in the real code's format — close
//! enough that the paper's Listing 2 `grep`/`awk` scraping works verbatim
//! against it.

mod gromacs;
mod lammps;
mod matmul;
mod namd;
mod openfoam;
mod wrf;

pub use gromacs::Gromacs;
pub use lammps::Lammps;
pub use matmul::Matmul;
pub use namd::Namd;
pub use openfoam::OpenFoam;
pub use wrf::Wrf;

use crate::engine::{execute_profile, EngineOutput};
use crate::error::ModelError;
use crate::machine::MachineProfile;
use crate::noise::{noise_factor, scenario_seed};
use crate::work::WorkProfile;
use crate::Inputs;
use simtime::SimDuration;

/// One modelled application.
pub trait AppModel: Send + Sync {
    /// Registry name, e.g. `lammps`.
    fn name(&self) -> &str;
    /// Executable name the run script invokes via `mpirun`, e.g. `lmp`.
    fn binary(&self) -> &str;
    /// Name of the log file the application writes in its run directory.
    fn log_file(&self) -> &str;
    /// Translates inputs into a hardware-independent work profile.
    fn work(&self, inputs: &Inputs) -> Result<WorkProfile, ModelError>;
    /// Renders the application log for a completed run.
    fn render_log(&self, work: &WorkProfile, ranks: u64, wall_secs: f64) -> String;
    /// Structured metrics a run script would scrape (`HPCADVISORVAR` pairs).
    fn metrics(&self, work: &WorkProfile, wall_secs: f64) -> Vec<(String, String)>;
}

/// Result of one simulated application run.
#[derive(Debug, Clone)]
pub struct AppRun {
    /// Wall-clock time including noise.
    pub wall_time: SimDuration,
    /// Same, as seconds (convenience).
    pub wall_secs: f64,
    /// Synthetic application log text.
    pub log: String,
    /// Structured metrics (`APPEXECTIME`, app-specific counters, …).
    pub metrics: Vec<(String, String)>,
    /// Noise-free engine detail (bottleneck, utilizations, per-step time).
    pub engine: EngineOutput,
    /// Total MPI ranks used.
    pub ranks: u64,
}

/// Registry of available application models.
pub struct AppRegistry {
    models: Vec<Box<dyn AppModel>>,
}

impl AppRegistry {
    /// All applications the paper mentions, plus the matmul toy example.
    pub fn standard() -> Self {
        AppRegistry {
            models: vec![
                Box::new(Lammps),
                Box::new(OpenFoam),
                Box::new(Wrf),
                Box::new(Gromacs),
                Box::new(Namd),
                Box::new(Matmul),
            ],
        }
    }

    /// Looks up a model by registry name (case-insensitive).
    pub fn get(&self, name: &str) -> Option<&dyn AppModel> {
        self.models
            .iter()
            .find(|m| m.name().eq_ignore_ascii_case(name))
            .map(|m| m.as_ref())
    }

    /// Looks up a model by its executable name (what `mpirun` launches).
    pub fn get_by_binary(&self, binary: &str) -> Option<&dyn AppModel> {
        let base = binary.rsplit('/').next().unwrap_or(binary);
        self.models
            .iter()
            .find(|m| m.binary() == base)
            .map(|m| m.as_ref())
    }

    /// Names of all registered applications.
    pub fn names(&self) -> Vec<&str> {
        self.models.iter().map(|m| m.name()).collect()
    }

    /// Runs `app` on the given machine/layout/inputs and experiment seed.
    ///
    /// Validates the layout and the memory requirement (a too-small node
    /// count fails like a real OOM-killed job), executes the profile, and
    /// applies deterministic noise.
    pub fn run(
        &self,
        app: &str,
        machine: &MachineProfile,
        nodes: u32,
        ppn: u32,
        inputs: &Inputs,
        experiment_seed: u64,
    ) -> Result<AppRun, ModelError> {
        let model = self
            .get(app)
            .ok_or_else(|| ModelError::UnknownApp(app.to_string()))?;
        if nodes == 0 || ppn == 0 {
            return Err(ModelError::BadLayout(format!(
                "nodes={nodes}, ppn={ppn}: both must be ≥ 1"
            )));
        }
        if ppn > machine.cores {
            return Err(ModelError::BadLayout(format!(
                "ppn={} exceeds {} cores of {}",
                ppn, machine.cores, machine.sku_name
            )));
        }
        let work = model.work(inputs)?;
        let available_gib = machine.memory_gib * nodes as f64;
        if work.required_memory_gib() > available_gib {
            return Err(ModelError::OutOfMemory {
                app: model.name().to_string(),
                required_gib: work.required_memory_gib(),
                available_gib,
            });
        }
        let engine = execute_profile(&work, machine, nodes, ppn);
        let seed = scenario_seed(
            model.name(),
            &machine.sku_name,
            nodes,
            ppn,
            inputs,
            experiment_seed,
        );
        let wall_secs = engine.wall_secs * noise_factor(seed);
        let ranks = nodes as u64 * ppn as u64;
        let log = model.render_log(&work, ranks, wall_secs);
        let metrics = model.metrics(&work, wall_secs);
        Ok(AppRun {
            wall_time: SimDuration::from_secs_f64(wall_secs),
            wall_secs,
            log,
            metrics,
            engine,
            ranks,
        })
    }
}

/// Parses an optional numeric input with a default.
pub(crate) fn parse_input_or<T: std::str::FromStr>(
    app: &str,
    inputs: &Inputs,
    key: &str,
    default: T,
) -> Result<T, ModelError> {
    match lookup(inputs, key) {
        None => Ok(default),
        Some(raw) => raw.trim().parse().map_err(|_| ModelError::BadInput {
            app: app.to_string(),
            key: key.to_string(),
            value: raw.to_string(),
            reason: "not a valid number".into(),
        }),
    }
}

/// Case-insensitive input lookup (scripts export env vars in caps, YAML
/// configs usually use lowercase).
pub(crate) fn lookup<'a>(inputs: &'a Inputs, key: &str) -> Option<&'a str> {
    inputs
        .iter()
        .find(|(k, _)| k.eq_ignore_ascii_case(key))
        .map(|(_, v)| v.as_str())
}

/// Formats seconds as LAMMPS' `H:MM:SS` wall-time notation.
pub(crate) fn hms(secs: f64) -> String {
    let total = secs.round().max(0.0) as u64;
    format!(
        "{}:{:02}:{:02}",
        total / 3600,
        (total % 3600) / 60,
        total % 60
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inputs;
    use cloudsim::SkuCatalog;

    fn machine(name: &str) -> MachineProfile {
        MachineProfile::from_sku(SkuCatalog::azure_hpc().get(name).unwrap())
    }

    #[test]
    fn registry_contains_paper_apps() {
        let reg = AppRegistry::standard();
        for app in ["lammps", "openfoam", "wrf", "gromacs", "namd", "matmul"] {
            assert!(reg.get(app).is_some(), "missing {app}");
        }
        assert!(reg.get("LAMMPS").is_some(), "lookup is case-insensitive");
        assert!(reg.get("hpl").is_none());
    }

    #[test]
    fn binary_lookup() {
        let reg = AppRegistry::standard();
        assert_eq!(reg.get_by_binary("lmp").unwrap().name(), "lammps");
        assert_eq!(
            reg.get_by_binary("/apps/bin/simpleFoam").unwrap().name(),
            "openfoam"
        );
        assert!(reg.get_by_binary("a.out").is_none());
    }

    #[test]
    fn layout_validation() {
        let reg = AppRegistry::standard();
        let m = machine("HC44rs");
        let i = inputs(&[("BOXFACTOR", "4")]);
        assert!(matches!(
            reg.run("lammps", &m, 0, 44, &i, 1),
            Err(ModelError::BadLayout(_))
        ));
        assert!(matches!(
            reg.run("lammps", &m, 1, 45, &i, 1),
            Err(ModelError::BadLayout(_))
        ));
        assert!(reg.run("lammps", &m, 1, 44, &i, 1).is_ok());
    }

    #[test]
    fn oom_on_too_few_nodes() {
        let reg = AppRegistry::standard();
        let m = machine("HB120rs_v3");
        // WRF at 1 km resolution needs terabytes.
        let i = inputs(&[("resolution_km", "1"), ("hours", "1")]);
        let err = reg.run("wrf", &m, 1, 120, &i, 1).unwrap_err();
        assert!(matches!(err, ModelError::OutOfMemory { .. }), "{err:?}");
        // Plenty of nodes succeed.
        assert!(reg.run("wrf", &m, 16, 120, &i, 1).is_ok());
    }

    #[test]
    fn unknown_app_error() {
        let reg = AppRegistry::standard();
        let m = machine("HC44rs");
        assert!(matches!(
            reg.run("hpl", &m, 1, 4, &Inputs::new(), 1),
            Err(ModelError::UnknownApp(_))
        ));
    }

    #[test]
    fn hms_formatting() {
        assert_eq!(hms(36.2), "0:00:36");
        assert_eq!(hms(3725.0), "1:02:05");
        assert_eq!(hms(-1.0), "0:00:00");
    }

    #[test]
    fn input_lookup_is_case_insensitive() {
        let i = inputs(&[("BOXFACTOR", "30")]);
        assert_eq!(lookup(&i, "boxfactor"), Some("30"));
        assert_eq!(lookup(&i, "BoxFactor"), Some("30"));
        assert_eq!(lookup(&i, "mesh"), None);
    }

    #[test]
    fn every_app_runs_with_defaults_where_allowed() {
        let reg = AppRegistry::standard();
        let m = machine("HB120rs_v3");
        // Apps with fully-defaulted inputs.
        for (app, input) in [
            ("lammps", inputs(&[("BOXFACTOR", "10")])),
            ("openfoam", inputs(&[("mesh", "40 16 16")])),
            ("wrf", inputs(&[("resolution_km", "12")])),
            ("gromacs", inputs(&[])),
            ("namd", inputs(&[])),
            ("matmul", inputs(&[("n", "20000")])),
        ] {
            let run = reg
                .run(app, &m, 2, 120, &input, 5)
                .unwrap_or_else(|e| panic!("{app}: {e}"));
            assert!(run.wall_secs > 0.0, "{app} produced zero time");
            assert!(!run.log.is_empty(), "{app} produced no log");
            assert!(
                run.metrics.iter().any(|(k, _)| k == "APPEXECTIME"),
                "{app} missing APPEXECTIME metric"
            );
        }
    }
}
