//! NAMD — classical MD with a measurement-based load balancer.
//!
//! Inputs: `atoms` (default 1,066,628 — the STMV benchmark) and `steps`.
//! NAMD's Charm++ overdecomposition gives it better strong scaling than
//! GROMACS at the same atom count but a higher per-atom cost.

use super::{hms, parse_input_or, AppModel};
use crate::error::ModelError;
use crate::work::{flat_arch, HaloSpec, WorkProfile};
use crate::Inputs;

/// Effective FLOPs per atom per step.
const FLOPS_PER_ATOM_STEP: f64 = 15_000.0;
/// Resident bytes per atom.
const BYTES_PER_ATOM: f64 = 500.0;

/// The NAMD model.
pub struct Namd;

impl AppModel for Namd {
    fn name(&self) -> &str {
        "namd"
    }

    fn binary(&self) -> &str {
        "namd2"
    }

    fn log_file(&self) -> &str {
        "namd.log"
    }

    fn work(&self, inputs: &Inputs) -> Result<WorkProfile, ModelError> {
        let atoms: u64 = parse_input_or(self.name(), inputs, "atoms", 1_066_628)?;
        if !(1_000..=2_000_000_000).contains(&atoms) {
            return Err(ModelError::BadInput {
                app: self.name().into(),
                key: "atoms".into(),
                value: atoms.to_string(),
                reason: "must be in 1e3..=2e9".into(),
            });
        }
        let steps: u64 = parse_input_or(self.name(), inputs, "steps", 500)?;
        if steps == 0 {
            return Err(ModelError::BadInput {
                app: self.name().into(),
                key: "steps".into(),
                value: "0".into(),
                reason: "must be ≥ 1".into(),
            });
        }
        let atoms_f = atoms as f64;
        Ok(WorkProfile {
            app: self.name().into(),
            steps,
            flops_per_step: atoms_f * FLOPS_PER_ATOM_STEP,
            bytes_per_step: atoms_f * 180.0,
            working_set_bytes: atoms_f * BYTES_PER_ATOM,
            serial_secs: 15.0,
            // Charm++ overdecomposition hides most serial work.
            serial_fraction: 6.0e-5,
            halo: Some(HaloSpec {
                bytes_per_rank: 6.0 * 48.0 * atoms_f.powf(2.0 / 3.0),
                messages_per_rank: 12,
                decomp_dims: 3,
            }),
            collective: None,
            arch_efficiency: flat_arch,
            bandwidth_sensitivity: 0.25,
        })
    }

    fn render_log(&self, work: &WorkProfile, ranks: u64, wall_secs: f64) -> String {
        let atoms = (work.working_set_bytes / BYTES_PER_ATOM).round() as u64;
        let exec = (wall_secs - work.serial_secs).max(0.001);
        let days_per_ns = (exec / 86_400.0) / (work.steps as f64 * 2e-6).max(1e-12);
        format!(
            "Charm++> Running on {ranks} processors\n\
             Info: NAMD 3.0 for Linux-x86_64-MPI\n\
             Info: SIMULATION PARAMETERS:\n\
             Info: STRUCTURE: {atoms} ATOMS\n\
             Info: Benchmark time: {ranks} CPUs {per_step:.6} s/step {days_per_ns:.5} days/ns\n\
             TIMING: {steps}  CPU: {exec:.3}, 0.01/step  Wall: {exec:.3}\n\
             WallClock: {wall:.3}  CPUTime: {exec:.3}  Memory: 2048.0 MB\n\
             End of program\n\
             Total wall time: {hms}\n",
            ranks = ranks,
            atoms = atoms,
            per_step = exec / work.steps as f64,
            days_per_ns = days_per_ns,
            steps = work.steps,
            exec = exec,
            wall = wall_secs,
            hms = hms(wall_secs),
        )
    }

    fn metrics(&self, work: &WorkProfile, wall_secs: f64) -> Vec<(String, String)> {
        let atoms = (work.working_set_bytes / BYTES_PER_ATOM).round() as u64;
        let exec = (wall_secs - work.serial_secs).max(0.001);
        vec![
            ("APPEXECTIME".into(), format!("{exec:.0}")),
            ("NAMDATOMS".into(), atoms.to_string()),
            (
                "NAMDSECPERSTEP".into(),
                format!("{:.6}", exec / work.steps as f64),
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::AppRegistry;
    use crate::inputs;
    use crate::machine::MachineProfile;
    use cloudsim::SkuCatalog;

    fn v3() -> MachineProfile {
        MachineProfile::from_sku(SkuCatalog::azure_hpc().get("HB120rs_v3").unwrap())
    }

    #[test]
    fn default_is_stmv() {
        let w = Namd.work(&inputs(&[])).unwrap();
        assert_eq!((w.working_set_bytes / BYTES_PER_ATOM) as u64, 1_066_628);
    }

    #[test]
    fn scales_better_than_gromacs_at_same_size() {
        let reg = AppRegistry::standard();
        let m = v3();
        let i = inputs(&[("atoms", "1000000"), ("steps", "1000")]);
        // Compare per-step times: at 500–1000 steps both runs are dominated
        // by fixed startup, which would mask the scaling difference.
        let speedup = |app: &str| {
            reg.run(app, &m, 1, 120, &i, 0)
                .unwrap()
                .engine
                .per_step_secs
                / reg
                    .run(app, &m, 8, 120, &i, 0)
                    .unwrap()
                    .engine
                    .per_step_secs
        };
        let namd = speedup("namd");
        let gmx = speedup("gromacs");
        assert!(namd > gmx, "NAMD {namd:.2}× vs GROMACS {gmx:.2}×");
    }

    #[test]
    fn log_has_wallclock_line() {
        let w = Namd.work(&inputs(&[])).unwrap();
        let log = Namd.render_log(&w, 480, 90.0);
        assert!(log.contains("WallClock: 90.000"));
        assert!(log.contains("End of program"));
    }

    #[test]
    fn input_bounds() {
        assert!(Namd.work(&inputs(&[("atoms", "10")])).is_err());
        assert!(Namd.work(&inputs(&[("steps", "0")])).is_err());
    }
}
