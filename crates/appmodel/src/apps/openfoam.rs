//! OpenFOAM — the motorBike tutorial at swept mesh resolutions.
//!
//! The paper's Listing 3 uses `BLOCKMESH_DIMENSIONS = "40 16 16"` for the
//! motorBike case "containing 8 million cells": the background block mesh
//! (40·16·16 = 10,240 cells) is refined by snappyHexMesh by a roughly
//! constant factor, so cells ≈ 780 × (x·y·z). The solver is a pressure-
//! velocity loop whose inner conjugate-gradient solves are global-reduction
//! and memory-bandwidth heavy — strong scaling flattens well before LAMMPS
//! does (Listing 3: 59 s → 34 s from 3 → 16 nodes, only 1.7×).
//!
//! Calibration: ~88 kFLOP effective per cell per outer iteration (≈100
//! inner CG iterations at ~0.9 kFLOP each), serial fraction 0.26%, 250
//! outer iterations.

use super::{hms, lookup, parse_input_or, AppModel};
use crate::error::ModelError;
use crate::work::{CollectiveSpec, HaloSpec, WorkProfile};
use crate::Inputs;
use cloudsim::CpuArch;

/// snappyHexMesh refinement multiplier over the background block mesh.
const CELLS_PER_BLOCK_CELL: f64 = 780.0;
/// Effective FLOPs per cell per outer iteration (inner solves included).
const FLOPS_PER_CELL_ITER: f64 = 90_000.0;
/// Resident bytes per cell (fields + matrix + mesh).
const BYTES_PER_CELL: f64 = 1_000.0;

/// CFD sweeps are memory-starved on Intel parts: 44 Skylake cores share
/// 190 GB/s (0.07 B/FLOP) where EPYC H-series nodes offer ~3× the bytes per
/// FLOP, so the Xeons deliver only a fraction of their nominal rate here.
fn openfoam_arch_efficiency(arch: CpuArch) -> f64 {
    match arch {
        CpuArch::SkylakeSp => 0.45,
        CpuArch::CascadeLake => 0.50,
        _ => 1.0,
    }
}

/// The OpenFOAM motorBike model.
pub struct OpenFoam;

impl OpenFoam {
    /// Parses the `mesh` input ("X Y Z" block dimensions) into cell count.
    fn cells(&self, inputs: &Inputs) -> Result<f64, ModelError> {
        let mesh = lookup(inputs, "mesh")
            .or_else(|| lookup(inputs, "BLOCKMESH_DIMENSIONS"))
            .ok_or_else(|| ModelError::MissingInput {
                app: self.name().into(),
                key: "mesh".into(),
            })?;
        let dims: Vec<u64> = mesh
            .split_whitespace()
            .map(|t| t.parse::<u64>())
            .collect::<Result<_, _>>()
            .map_err(|_| ModelError::BadInput {
                app: self.name().into(),
                key: "mesh".into(),
                value: mesh.to_string(),
                reason: "expected three integers 'X Y Z'".into(),
            })?;
        if dims.len() != 3 || dims.contains(&0) {
            return Err(ModelError::BadInput {
                app: self.name().into(),
                key: "mesh".into(),
                value: mesh.to_string(),
                reason: "expected three positive integers 'X Y Z'".into(),
            });
        }
        Ok(dims.iter().product::<u64>() as f64 * CELLS_PER_BLOCK_CELL)
    }
}

impl AppModel for OpenFoam {
    fn name(&self) -> &str {
        "openfoam"
    }

    fn binary(&self) -> &str {
        "simpleFoam"
    }

    fn log_file(&self) -> &str {
        "log.simpleFoam"
    }

    fn work(&self, inputs: &Inputs) -> Result<WorkProfile, ModelError> {
        let cells = self.cells(inputs)?;
        let iterations: u64 = parse_input_or(self.name(), inputs, "iterations", 250)?;
        if iterations == 0 {
            return Err(ModelError::BadInput {
                app: self.name().into(),
                key: "iterations".into(),
                value: "0".into(),
                reason: "must be ≥ 1".into(),
            });
        }
        Ok(WorkProfile {
            app: self.name().into(),
            steps: iterations,
            flops_per_step: cells * FLOPS_PER_CELL_ITER,
            bytes_per_step: cells * 800.0,
            working_set_bytes: cells * BYTES_PER_CELL,
            serial_secs: 8.0,
            serial_fraction: 2.74e-3,
            halo: Some(HaloSpec {
                bytes_per_rank: 6.0 * 48.0 * cells.powf(2.0 / 3.0),
                messages_per_rank: 8,
                decomp_dims: 3,
            }),
            collective: Some(CollectiveSpec {
                bytes: 8.0,
                // ~40 inner reductions per outer iteration (CG dot products
                // across p/U solves) hit the network as latency-bound
                // all-reduces.
                count_per_step: 40.0,
            }),
            arch_efficiency: openfoam_arch_efficiency,
            bandwidth_sensitivity: 0.30,
        })
    }

    fn render_log(&self, work: &WorkProfile, ranks: u64, wall_secs: f64) -> String {
        let cells = (work.working_set_bytes / BYTES_PER_CELL).round() as u64;
        // simpleFoam's ExecutionTime covers the whole solver process,
        // including initialisation (unlike LAMMPS' Loop time).
        let exec = wall_secs.max(0.001);
        format!(
            "/*---------------------------------------------------------------------------*\\\n\
             | =========                 |                                                 |\n\
             | \\\\      /  F ield         | OpenFOAM: The Open Source CFD Toolbox           |\n\
             \\*---------------------------------------------------------------------------*/\n\
             Build  : v2306 OPENFOAM=2306\n\
             Exec   : simpleFoam -parallel\n\
             nProcs : {ranks}\n\
             Mesh size: {cells} cells\n\
             Starting time loop\n\
             Time = {iters}\n\
             smoothSolver:  Solving for Ux, Initial residual = 1.2e-05\n\
             GAMG:  Solving for p, Initial residual = 3.4e-05\n\
             ExecutionTime = {exec:.2} s  ClockTime = {clock} s\n\
             End\n\
             Finalising parallel run\n\
             Total wall time: {hms}\n",
            ranks = ranks,
            cells = cells,
            iters = work.steps,
            exec = exec,
            clock = wall_secs.round() as u64,
            hms = hms(wall_secs),
        )
    }

    fn metrics(&self, work: &WorkProfile, wall_secs: f64) -> Vec<(String, String)> {
        let cells = (work.working_set_bytes / BYTES_PER_CELL).round() as u64;
        let exec = wall_secs.max(0.001);
        vec![
            ("APPEXECTIME".into(), format!("{exec:.0}")),
            ("OFCELLS".into(), cells.to_string()),
            ("OFITERATIONS".into(), work.steps.to_string()),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::AppRegistry;
    use crate::inputs;
    use crate::machine::MachineProfile;
    use cloudsim::SkuCatalog;

    fn v3() -> MachineProfile {
        MachineProfile::from_sku(SkuCatalog::azure_hpc().get("HB120rs_v3").unwrap())
    }

    #[test]
    fn listing3_mesh_is_8m_cells() {
        let w = OpenFoam.work(&inputs(&[("mesh", "40 16 16")])).unwrap();
        let cells = w.working_set_bytes / BYTES_PER_CELL;
        assert!((7.5e6..8.5e6).contains(&cells), "cells {cells}");
    }

    #[test]
    fn paper_listing3_shape() {
        // Paper Listing 3 (HB120rs_v3 rows): 59/48/34 s at 3/4/16 nodes.
        let reg = AppRegistry::standard();
        let m = v3();
        let input = inputs(&[("mesh", "40 16 16")]);
        for (nodes, paper) in [(3u32, 59.0f64), (4, 48.0), (16, 34.0)] {
            let run = reg.run("openfoam", &m, nodes, 120, &input, 0).unwrap();
            let ratio = run.wall_secs / paper;
            assert!(
                (0.75..1.25).contains(&ratio),
                "nodes={nodes}: measured {:.1}s vs paper {paper}s",
                run.wall_secs
            );
        }
    }

    #[test]
    fn scaling_flattens_relative_to_lammps() {
        // OpenFOAM's 3→16-node speedup must be visibly below LAMMPS'.
        let reg = AppRegistry::standard();
        let m = v3();
        let of_in = inputs(&[("mesh", "40 16 16")]);
        let lj_in = inputs(&[("BOXFACTOR", "30")]);
        let of = reg
            .run("openfoam", &m, 3, 120, &of_in, 0)
            .unwrap()
            .wall_secs
            / reg
                .run("openfoam", &m, 16, 120, &of_in, 0)
                .unwrap()
                .wall_secs;
        let lj = reg.run("lammps", &m, 3, 120, &lj_in, 0).unwrap().wall_secs
            / reg.run("lammps", &m, 16, 120, &lj_in, 0).unwrap().wall_secs;
        assert!(of < 0.75 * lj, "OpenFOAM speedup {of:.2} vs LAMMPS {lj:.2}");
    }

    #[test]
    fn mesh_parsing_errors() {
        assert!(OpenFoam.work(&inputs(&[])).is_err());
        assert!(OpenFoam.work(&inputs(&[("mesh", "40 16")])).is_err());
        assert!(OpenFoam.work(&inputs(&[("mesh", "40 0 16")])).is_err());
        assert!(OpenFoam.work(&inputs(&[("mesh", "a b c")])).is_err());
        // BLOCKMESH_DIMENSIONS alias accepted.
        assert!(OpenFoam
            .work(&inputs(&[("BLOCKMESH_DIMENSIONS", "40 16 16")]))
            .is_ok());
    }

    #[test]
    fn log_has_execution_time_line() {
        let w = OpenFoam.work(&inputs(&[("mesh", "40 16 16")])).unwrap();
        let log = OpenFoam.render_log(&w, 480, 48.0);
        assert!(log.contains("ExecutionTime = 48.00 s"));
        assert!(log.contains("Finalising parallel run"));
        assert!(log.contains("nProcs : 480"));
    }

    #[test]
    fn larger_mesh_takes_longer() {
        let reg = AppRegistry::standard();
        let m = v3();
        let small = reg
            .run("openfoam", &m, 4, 120, &inputs(&[("mesh", "40 16 16")]), 0)
            .unwrap()
            .wall_secs;
        let large = reg
            .run("openfoam", &m, 4, 120, &inputs(&[("mesh", "80 24 24")]), 0)
            .unwrap()
            .wall_secs;
        assert!(large > 2.0 * small);
    }
}
