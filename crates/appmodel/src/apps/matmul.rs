//! Dense matrix multiplication — the paper's introductory toy example
//! ("matrix size for the matrix multiplication application").
//!
//! Input: `n` (matrix dimension). One SUMMA-style multiply: 2n³ FLOPs, a
//! broadcast per panel, blocked so the streamed traffic stays modest. It is
//! the most compute-bound profile in the registry and the easiest one for
//! the smart-sampling regressor to extrapolate — a deliberate contrast to
//! the communication-heavy CFD/weather codes.

use super::{hms, parse_input_or, AppModel};
use crate::error::ModelError;
use crate::work::{flat_arch, CollectiveSpec, WorkProfile};
use crate::Inputs;

/// The matmul model.
pub struct Matmul;

impl AppModel for Matmul {
    fn name(&self) -> &str {
        "matmul"
    }

    fn binary(&self) -> &str {
        "matmul"
    }

    fn log_file(&self) -> &str {
        "matmul.log"
    }

    fn work(&self, inputs: &Inputs) -> Result<WorkProfile, ModelError> {
        let n: u64 = parse_input_or(self.name(), inputs, "n", 16_384)?;
        if !(64..=1_000_000).contains(&n) {
            return Err(ModelError::BadInput {
                app: self.name().into(),
                key: "n".into(),
                value: n.to_string(),
                reason: "must be in 64..=1e6".into(),
            });
        }
        let nf = n as f64;
        Ok(WorkProfile {
            app: self.name().into(),
            steps: 1,
            flops_per_step: 2.0 * nf * nf * nf,
            // Blocked: each element re-streamed ~O(n/block) times; use 24n².
            bytes_per_step: 24.0 * nf * nf,
            working_set_bytes: 3.0 * 8.0 * nf * nf,
            serial_secs: 1.0,
            serial_fraction: 0.0,
            halo: None,
            collective: Some(CollectiveSpec {
                bytes: 8.0 * nf,
                count_per_step: nf / 256.0,
            }),
            arch_efficiency: flat_arch,
            bandwidth_sensitivity: 0.15,
        })
    }

    fn render_log(&self, work: &WorkProfile, ranks: u64, wall_secs: f64) -> String {
        let n = ((work.working_set_bytes / 24.0).sqrt()).round() as u64;
        let exec = (wall_secs - work.serial_secs).max(0.001);
        let gflops = work.flops_per_step / exec / 1e9;
        format!(
            "MATMUL benchmark\n\
             ranks={ranks} n={n}\n\
             multiply done in {exec:.3} s ({gflops:.1} GFLOP/s)\n\
             RESULT OK\n\
             Total wall time: {hms}\n",
            ranks = ranks,
            n = n,
            exec = exec,
            gflops = gflops,
            hms = hms(wall_secs),
        )
    }

    fn metrics(&self, work: &WorkProfile, wall_secs: f64) -> Vec<(String, String)> {
        let n = ((work.working_set_bytes / 24.0).sqrt()).round() as u64;
        let exec = (wall_secs - work.serial_secs).max(0.001);
        vec![
            ("APPEXECTIME".into(), format!("{exec:.0}")),
            ("MATRIXSIZE".into(), n.to_string()),
            (
                "GFLOPS".into(),
                format!("{:.1}", work.flops_per_step / exec / 1e9),
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::AppRegistry;
    use crate::inputs;
    use crate::machine::MachineProfile;
    use cloudsim::SkuCatalog;

    fn v3() -> MachineProfile {
        MachineProfile::from_sku(SkuCatalog::azure_hpc().get("HB120rs_v3").unwrap())
    }

    #[test]
    fn cubic_in_n() {
        let w1 = Matmul.work(&inputs(&[("n", "8192")])).unwrap();
        let w2 = Matmul.work(&inputs(&[("n", "16384")])).unwrap();
        assert!((w2.flops_per_step / w1.flops_per_step - 8.0).abs() < 1e-9);
    }

    #[test]
    fn near_perfect_scaling() {
        let reg = AppRegistry::standard();
        let m = v3();
        let i = inputs(&[("n", "65536")]);
        let t1 = reg.run("matmul", &m, 1, 120, &i, 0).unwrap().wall_secs;
        let t8 = reg.run("matmul", &m, 8, 120, &i, 0).unwrap().wall_secs;
        let eff = t1 / t8 / 8.0;
        assert!(eff > 0.8, "efficiency {eff:.2}");
    }

    #[test]
    fn bounds_checked() {
        assert!(Matmul.work(&inputs(&[("n", "32")])).is_err());
        assert!(Matmul.work(&inputs(&[("n", "2000000")])).is_err());
        assert!(Matmul.work(&inputs(&[("n", "nan")])).is_err());
    }

    #[test]
    fn log_roundtrips_n() {
        let w = Matmul.work(&inputs(&[("n", "16384")])).unwrap();
        let log = Matmul.render_log(&w, 120, 10.0);
        assert!(log.contains("n=16384"), "{log}");
        assert!(log.contains("RESULT OK"));
    }
}
