//! GROMACS — molecular dynamics with PME long-range electrostatics.
//!
//! Inputs: `atoms` (system size; default 1 M, roughly the STMV benchmark)
//! and `steps`. The PME grid transposes behave like frequent mid-sized
//! collectives, so GROMACS scales less well than plain LJ and is a good
//! contrast case for the advisor: past a few nodes, cost rises with little
//! time gained.

use super::{hms, parse_input_or, AppModel};
use crate::error::ModelError;
use crate::work::{flat_arch, CollectiveSpec, HaloSpec, WorkProfile};
use crate::Inputs;

/// Effective FLOPs per atom per step (short-range + PME at sustained rates).
const FLOPS_PER_ATOM_STEP: f64 = 9_000.0;
/// Resident bytes per atom.
const BYTES_PER_ATOM: f64 = 400.0;

/// The GROMACS model.
pub struct Gromacs;

impl AppModel for Gromacs {
    fn name(&self) -> &str {
        "gromacs"
    }

    fn binary(&self) -> &str {
        "gmx_mpi"
    }

    fn log_file(&self) -> &str {
        "md.log"
    }

    fn work(&self, inputs: &Inputs) -> Result<WorkProfile, ModelError> {
        let atoms: u64 = parse_input_or(self.name(), inputs, "atoms", 1_000_000)?;
        if !(1_000..=2_000_000_000).contains(&atoms) {
            return Err(ModelError::BadInput {
                app: self.name().into(),
                key: "atoms".into(),
                value: atoms.to_string(),
                reason: "must be in 1e3..=2e9".into(),
            });
        }
        let steps: u64 = parse_input_or(self.name(), inputs, "steps", 10_000)?;
        if steps == 0 {
            return Err(ModelError::BadInput {
                app: self.name().into(),
                key: "steps".into(),
                value: "0".into(),
                reason: "must be ≥ 1".into(),
            });
        }
        let atoms_f = atoms as f64;
        Ok(WorkProfile {
            app: self.name().into(),
            steps,
            flops_per_step: atoms_f * FLOPS_PER_ATOM_STEP,
            bytes_per_step: atoms_f * 150.0,
            working_set_bytes: atoms_f * BYTES_PER_ATOM,
            serial_secs: 10.0,
            serial_fraction: 1.5e-4,
            halo: Some(HaloSpec {
                bytes_per_rank: 6.0 * 40.0 * atoms_f.powf(2.0 / 3.0),
                messages_per_rank: 6,
                decomp_dims: 3,
            }),
            // PME grid transpose + energy reductions: latency-sensitive,
            // several per step.
            collective: Some(CollectiveSpec {
                bytes: 4096.0,
                count_per_step: 4.0,
            }),
            arch_efficiency: flat_arch,
            bandwidth_sensitivity: 0.20,
        })
    }

    fn render_log(&self, work: &WorkProfile, ranks: u64, wall_secs: f64) -> String {
        let atoms = (work.working_set_bytes / BYTES_PER_ATOM).round() as u64;
        let exec = (wall_secs - work.serial_secs).max(0.001);
        // 2 fs step: ns simulated = steps × 2e-6.
        let ns = work.steps as f64 * 2e-6;
        let ns_per_day = ns / (exec / 86_400.0);
        format!(
            "                      :-) GROMACS - gmx mdrun, 2023.3 (-:\n\
             Running on {ranks} MPI ranks\n\
             System: {atoms} atoms\n\
             starting mdrun 'Protein in water'\n\
             {steps} steps,     {ns:.3} ps.\n\
             \n\
                            Core t (s)   Wall t (s)        (%)\n\
                    Time: {core:.3}     {exec:.3}      100.0\n\
                              (ns/day)    (hour/ns)\n\
             Performance:   {ns_per_day:.3}     {hours_per_ns:.3}\n\
             Finished mdrun on rank 0\n\
             Total wall time: {hms}\n",
            ranks = ranks,
            atoms = atoms,
            steps = work.steps,
            ns = ns * 1000.0,
            core = exec * ranks as f64,
            exec = exec,
            ns_per_day = ns_per_day,
            hours_per_ns = 24.0 / ns_per_day.max(1e-9),
            hms = hms(wall_secs),
        )
    }

    fn metrics(&self, work: &WorkProfile, wall_secs: f64) -> Vec<(String, String)> {
        let atoms = (work.working_set_bytes / BYTES_PER_ATOM).round() as u64;
        let exec = (wall_secs - work.serial_secs).max(0.001);
        let ns_per_day = work.steps as f64 * 2e-6 / (exec / 86_400.0);
        vec![
            ("APPEXECTIME".into(), format!("{exec:.0}")),
            ("GMXATOMS".into(), atoms.to_string()),
            ("GMXNSPERDAY".into(), format!("{ns_per_day:.3}")),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::AppRegistry;
    use crate::inputs;
    use crate::machine::MachineProfile;
    use cloudsim::SkuCatalog;

    fn v3() -> MachineProfile {
        MachineProfile::from_sku(SkuCatalog::azure_hpc().get("HB120rs_v3").unwrap())
    }

    #[test]
    fn defaults_are_stmv_scale() {
        let w = Gromacs.work(&inputs(&[])).unwrap();
        assert_eq!((w.working_set_bytes / BYTES_PER_ATOM) as u64, 1_000_000);
        assert_eq!(w.steps, 10_000);
    }

    #[test]
    fn input_bounds() {
        assert!(Gromacs.work(&inputs(&[("atoms", "10")])).is_err());
        assert!(Gromacs.work(&inputs(&[("atoms", "3000000000")])).is_err());
        assert!(Gromacs.work(&inputs(&[("steps", "0")])).is_err());
    }

    #[test]
    fn scaling_saturates_earlier_than_lammps() {
        let reg = AppRegistry::standard();
        let m = v3();
        let i = inputs(&[("atoms", "1000000"), ("steps", "5000")]);
        let t1 = reg.run("gromacs", &m, 1, 120, &i, 0).unwrap().wall_secs;
        let t16 = reg.run("gromacs", &m, 16, 120, &i, 0).unwrap().wall_secs;
        let speedup = t1 / t16;
        assert!(
            speedup < 12.0,
            "1M atoms over 1920 ranks cannot scale freely, got {speedup:.1}×"
        );
        assert!(speedup > 2.0, "some scaling must remain, got {speedup:.1}×");
    }

    #[test]
    fn log_reports_performance() {
        let w = Gromacs.work(&inputs(&[])).unwrap();
        let log = Gromacs.render_log(&w, 240, 120.0);
        assert!(log.contains("Performance:"));
        assert!(log.contains("Finished mdrun"));
    }
}
