//! WRF — a CONUS-style forecast domain at swept horizontal resolution.
//!
//! Inputs: `resolution_km` (grid spacing; the paper's "resolution for a
//! weather forecast such as WRF") and `hours` of simulated forecast. Halving
//! the resolution quadruples the columns *and* halves the time step, so cost
//! grows with the cube of refinement — resolution is the dominant input
//! parameter, exactly the kind of strong input-dependence the tool exists to
//! capture. WRF is halo-exchange bound on a 2-D decomposition with moderate
//! strong scaling, and high-resolution domains out-grow small allocations
//! (simulated OOM).

use super::{hms, parse_input_or, AppModel};
use crate::error::ModelError;
use crate::work::{flat_arch, CollectiveSpec, HaloSpec, WorkProfile};
use crate::Inputs;

/// Columns of the reference CONUS 12 km domain (425 × 300).
const BASE_COLUMNS: f64 = 127_500.0;
/// Vertical levels.
const LEVELS: f64 = 50.0;
/// Effective FLOPs per grid point per step (physics + dynamics, sustained).
const FLOPS_PER_POINT_STEP: f64 = 150_000.0;
/// Resident bytes per grid point.
const BYTES_PER_POINT: f64 = 800.0;

/// The WRF model.
pub struct Wrf;

impl AppModel for Wrf {
    fn name(&self) -> &str {
        "wrf"
    }

    fn binary(&self) -> &str {
        "wrf.exe"
    }

    fn log_file(&self) -> &str {
        "rsl.out.0000"
    }

    fn work(&self, inputs: &Inputs) -> Result<WorkProfile, ModelError> {
        let res_km: f64 = parse_input_or(self.name(), inputs, "resolution_km", 12.0)?;
        if !(0.5..=50.0).contains(&res_km) {
            return Err(ModelError::BadInput {
                app: self.name().into(),
                key: "resolution_km".into(),
                value: res_km.to_string(),
                reason: "must be in 0.5..=50 km".into(),
            });
        }
        let hours: f64 = parse_input_or(self.name(), inputs, "hours", 6.0)?;
        if !(0.1..=240.0).contains(&hours) {
            return Err(ModelError::BadInput {
                app: self.name().into(),
                key: "hours".into(),
                value: hours.to_string(),
                reason: "must be in 0.1..=240 hours".into(),
            });
        }
        let refine = 12.0 / res_km;
        let columns = BASE_COLUMNS * refine * refine;
        let points = columns * LEVELS;
        // CFL: dt scales with grid spacing (6·Δx seconds is the WRF rule of
        // thumb).
        let dt_secs = 6.0 * res_km;
        let steps = ((hours * 3600.0) / dt_secs).ceil().max(1.0) as u64;
        Ok(WorkProfile {
            app: self.name().into(),
            steps,
            flops_per_step: points * FLOPS_PER_POINT_STEP,
            bytes_per_step: points * 400.0,
            working_set_bytes: points * BYTES_PER_POINT,
            serial_secs: 25.0,
            serial_fraction: 3.0e-4,
            halo: Some(HaloSpec {
                // 2-D decomposition: halo per rank scales with the column
                // perimeter × levels.
                bytes_per_rank: 4.0 * 8.0 * columns.sqrt() * LEVELS * 4.0,
                messages_per_rank: 8,
                decomp_dims: 2,
            }),
            collective: Some(CollectiveSpec {
                bytes: 64.0,
                count_per_step: 3.0,
            }),
            arch_efficiency: flat_arch,
            bandwidth_sensitivity: 0.45,
        })
    }

    fn render_log(&self, work: &WorkProfile, ranks: u64, wall_secs: f64) -> String {
        let points = (work.working_set_bytes / BYTES_PER_POINT).round() as u64;
        let exec = (wall_secs - work.serial_secs).max(0.001);
        let per_step = exec / work.steps as f64;
        format!(
            "starting wrf task            0  of           {ranks}\n\
             WRF V4.5 MODEL\n\
             grid points: {points}\n\
             Timing for main: time 0000-00-00_00:00:00 on domain   1: {per_step:.5} elapsed seconds\n\
             Timing for Writing wrfout: 0.8 elapsed seconds\n\
             wrf: completed {steps} steps\n\
             Total elapsed seconds: {exec:.2}\n\
             d01 0000-00-00_06:00:00 wrf: SUCCESS COMPLETE WRF\n\
             Total wall time: {hms}\n",
            ranks = ranks,
            points = points,
            per_step = per_step,
            steps = work.steps,
            exec = exec,
            hms = hms(wall_secs),
        )
    }

    fn metrics(&self, work: &WorkProfile, wall_secs: f64) -> Vec<(String, String)> {
        let exec = (wall_secs - work.serial_secs).max(0.001);
        vec![
            ("APPEXECTIME".into(), format!("{exec:.0}")),
            ("WRFSTEPS".into(), work.steps.to_string()),
            (
                "WRFSECONDSPERSTEP".into(),
                format!("{:.5}", exec / work.steps as f64),
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::AppRegistry;
    use crate::inputs;
    use crate::machine::MachineProfile;
    use cloudsim::SkuCatalog;

    fn v3() -> MachineProfile {
        MachineProfile::from_sku(SkuCatalog::azure_hpc().get("HB120rs_v3").unwrap())
    }

    #[test]
    fn resolution_drives_cubic_cost() {
        // 12 km → 6 km: 4× points, 2× steps ⇒ ~8× work.
        let w12 = Wrf.work(&inputs(&[("resolution_km", "12")])).unwrap();
        let w6 = Wrf.work(&inputs(&[("resolution_km", "6")])).unwrap();
        let work12 = w12.flops_per_step * w12.steps as f64;
        let work6 = w6.flops_per_step * w6.steps as f64;
        let ratio = work6 / work12;
        assert!((7.0..9.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn high_resolution_needs_many_nodes() {
        let reg = AppRegistry::standard();
        let m = v3();
        let i = inputs(&[("resolution_km", "1"), ("hours", "1")]);
        assert!(
            reg.run("wrf", &m, 1, 120, &i, 0).is_err(),
            "1 node must OOM"
        );
        assert!(reg.run("wrf", &m, 16, 120, &i, 0).is_ok());
    }

    #[test]
    fn input_validation() {
        assert!(Wrf.work(&inputs(&[("resolution_km", "0.1")])).is_err());
        assert!(Wrf.work(&inputs(&[("resolution_km", "100")])).is_err());
        assert!(Wrf.work(&inputs(&[("hours", "0")])).is_err());
        assert!(Wrf.work(&inputs(&[("resolution_km", "x")])).is_err());
        assert!(Wrf.work(&inputs(&[])).is_ok(), "all inputs default");
    }

    #[test]
    fn moderate_scaling_on_ib() {
        let reg = AppRegistry::standard();
        let m = v3();
        let i = inputs(&[("resolution_km", "3"), ("hours", "3")]);
        let t2 = reg.run("wrf", &m, 2, 120, &i, 0).unwrap().wall_secs;
        let t8 = reg.run("wrf", &m, 8, 120, &i, 0).unwrap().wall_secs;
        let speedup = t2 / t8;
        assert!(
            speedup > 2.0 && speedup < 4.5,
            "2→8 nodes speedup {speedup}"
        );
    }

    #[test]
    fn log_reports_success() {
        let w = Wrf.work(&inputs(&[])).unwrap();
        let log = Wrf.render_log(&w, 240, 100.0);
        assert!(log.contains("SUCCESS COMPLETE WRF"));
        assert!(log.contains("elapsed seconds"));
    }
}
