//! LAMMPS — the official Lennard-Jones benchmark (`in.lj`).
//!
//! The paper's Listing 2 sweeps a `BOXFACTOR` that multiplies the x/y/z box
//! indices of the stock input; the stock box holds 32,000 atoms, so a factor
//! of 30 yields 32,000 · 30³ = 864 M ≈ the "800 million atoms" the paper
//! quotes. LJ is compute-dominated with a surface-to-volume halo exchange
//! and scales near-linearly on InfiniBand — which is exactly what Listing 4's
//! advice table shows (173 s → 36 s from 3 → 16 nodes).
//!
//! Calibration: effective ~12.4 kFLOP per atom-step (pair forces +
//! neighbour maintenance at sustained rates) and a 10⁻⁴ serial fraction
//! land 16 × HB120rs_v3 at ≈ 36 s of loop time for 100 steps of the ×30
//! box — the paper's Listing 4 series (173/132/69/36 s) within ~5%.

use super::{hms, parse_input_or, AppModel};
use crate::error::ModelError;
use crate::work::{flat_arch, HaloSpec, WorkProfile};
use crate::Inputs;

/// Atoms in the stock `in.lj` box (x = y = z index 1).
const BASE_ATOMS: u64 = 32_000;
/// Effective FLOPs per atom per step, calibrated as described above.
const FLOPS_PER_ATOM_STEP: f64 = 11_800.0;
/// Resident bytes per atom: atom data plus full + half neighbour lists and
/// ghost copies — what makes the ×30 box (~520 GB) overflow a single
/// 448 GiB node, exactly as the paper's advice tables imply (they start at
/// 3 nodes).
const BYTES_PER_ATOM: f64 = 600.0;

/// The LAMMPS LJ model.
pub struct Lammps;

impl AppModel for Lammps {
    fn name(&self) -> &str {
        "lammps"
    }

    fn binary(&self) -> &str {
        "lmp"
    }

    fn log_file(&self) -> &str {
        "log.lammps"
    }

    fn work(&self, inputs: &Inputs) -> Result<WorkProfile, ModelError> {
        let boxfactor: u64 = parse_input_or(self.name(), inputs, "BOXFACTOR", 1)?;
        if boxfactor == 0 || boxfactor > 200 {
            return Err(ModelError::BadInput {
                app: self.name().into(),
                key: "BOXFACTOR".into(),
                value: boxfactor.to_string(),
                reason: "must be in 1..=200".into(),
            });
        }
        let steps: u64 = parse_input_or(self.name(), inputs, "steps", 100)?;
        if steps == 0 {
            return Err(ModelError::BadInput {
                app: self.name().into(),
                key: "steps".into(),
                value: "0".into(),
                reason: "must be ≥ 1".into(),
            });
        }
        let atoms = BASE_ATOMS * boxfactor.pow(3);
        let atoms_f = atoms as f64;
        Ok(WorkProfile {
            app: self.name().into(),
            steps,
            flops_per_step: atoms_f * FLOPS_PER_ATOM_STEP,
            bytes_per_step: atoms_f * 200.0,
            working_set_bytes: atoms_f * BYTES_PER_ATOM,
            serial_secs: 4.0,
            serial_fraction: 2.0e-4,
            halo: Some(HaloSpec {
                bytes_per_rank: 6.0 * 32.0 * atoms_f.powf(2.0 / 3.0),
                messages_per_rank: 6,
                decomp_dims: 3,
            }),
            collective: None,
            arch_efficiency: flat_arch,
            bandwidth_sensitivity: 0.35,
        })
    }

    fn render_log(&self, work: &WorkProfile, ranks: u64, wall_secs: f64) -> String {
        let atoms = (work.working_set_bytes / BYTES_PER_ATOM).round() as u64;
        let loop_secs = (wall_secs - work.serial_secs).max(0.001);
        // The `Loop time of` line reproduces the real LAMMPS field layout:
        // $4 = seconds, $9 = steps, $12 = atoms — the fields Listing 2's awk
        // commands extract.
        format!(
            "LAMMPS (2 Aug 2023 - Update 3)\n\
             OMP_NUM_THREADS environment is not set.\n\
             Created orthogonal box\n\
             Created {atoms} atoms\n\
             Neighbor list info ...\n\
             Setting up Verlet run ...\n\
             Per MPI rank memory allocation (min/avg/max) = 3.154 | 3.156 | 3.162 Mbytes\n\
             Step          Temp          E_pair         E_mol          TotEng         Press\n\
             {last_step}   0.70503476   -5.6763043      0             -4.6188278     0.70570302\n\
             Loop time of {loop_secs:.6} on {ranks} procs for {steps} steps with {atoms} atoms\n\
             Performance: {perf:.3} tau/day, {sps:.3} timesteps/s, {aps:.3} Matom-step/s\n\
             MPI task timing breakdown:\n\
             Total wall time: {hms}\n",
            atoms = atoms,
            last_step = work.steps,
            loop_secs = loop_secs,
            ranks = ranks,
            steps = work.steps,
            perf = 0.005 * 86400.0 * work.steps as f64 / loop_secs,
            sps = work.steps as f64 / loop_secs,
            aps = atoms as f64 * work.steps as f64 / loop_secs / 1e6,
            hms = hms(wall_secs),
        )
    }

    fn metrics(&self, work: &WorkProfile, wall_secs: f64) -> Vec<(String, String)> {
        let atoms = (work.working_set_bytes / BYTES_PER_ATOM).round() as u64;
        let loop_secs = (wall_secs - work.serial_secs).max(0.001);
        vec![
            ("APPEXECTIME".into(), format!("{loop_secs:.0}")),
            ("LAMMPSATOMS".into(), atoms.to_string()),
            ("LAMMPSSTEPS".into(), work.steps.to_string()),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::AppRegistry;
    use crate::inputs;
    use crate::machine::MachineProfile;
    use cloudsim::SkuCatalog;

    fn v3() -> MachineProfile {
        MachineProfile::from_sku(SkuCatalog::azure_hpc().get("HB120rs_v3").unwrap())
    }

    #[test]
    fn boxfactor_30_is_864m_atoms() {
        let w = Lammps.work(&inputs(&[("BOXFACTOR", "30")])).unwrap();
        let atoms = w.working_set_bytes / BYTES_PER_ATOM;
        assert_eq!(atoms as u64, 864_000_000);
    }

    /// Scraped loop time — what the paper's tables report (Listing 2's awk
    /// extracts the `Loop time` field, which excludes setup).
    fn loop_time(run: &crate::apps::AppRun) -> f64 {
        run.metrics
            .iter()
            .find(|(k, _)| k == "APPEXECTIME")
            .and_then(|(_, v)| v.parse().ok())
            .expect("APPEXECTIME metric")
    }

    #[test]
    fn paper_listing4_shape() {
        // Paper Listing 4 (HB120rs_v3, LJ ×30): 173/132/69/36 s at 3/4/8/16
        // nodes. Require the same series within ±20%.
        let reg = AppRegistry::standard();
        let m = v3();
        let input = inputs(&[("BOXFACTOR", "30")]);
        let expect = [(3u32, 173.0f64), (4, 132.0), (8, 69.0), (16, 36.0)];
        for (nodes, paper) in expect {
            let run = reg.run("lammps", &m, nodes, 120, &input, 0).unwrap();
            let measured = loop_time(&run);
            let ratio = measured / paper;
            assert!(
                (0.8..1.2).contains(&ratio),
                "nodes={nodes}: measured {measured:.1}s vs paper {paper}s"
            );
        }
    }

    #[test]
    fn single_node_ooms_at_box30() {
        // 864M atoms × ~600 B ≈ 520 GB does not fit one 448 GiB node — the
        // paper's advice table starting at 3 nodes reflects this.
        let reg = AppRegistry::standard();
        let m = v3();
        let input = inputs(&[("BOXFACTOR", "30")]);
        assert!(matches!(
            reg.run("lammps", &m, 1, 120, &input, 0),
            Err(crate::ModelError::OutOfMemory { .. })
        ));
        assert!(reg.run("lammps", &m, 2, 120, &input, 0).is_ok());
    }

    #[test]
    fn near_linear_scaling_8_to_16() {
        let reg = AppRegistry::standard();
        let m = v3();
        let input = inputs(&[("BOXFACTOR", "30")]);
        let t8 = loop_time(&reg.run("lammps", &m, 8, 120, &input, 0).unwrap());
        let t16 = loop_time(&reg.run("lammps", &m, 16, 120, &input, 0).unwrap());
        let speedup = t8 / t16;
        assert!(speedup > 1.6, "8→16 node speedup {speedup:.2} too low");
    }

    #[test]
    fn log_matches_listing2_awk_fields() {
        let w = Lammps.work(&inputs(&[("BOXFACTOR", "30")])).unwrap();
        let log = Lammps.render_log(&w, 1920, 40.0);
        let loop_line = log.lines().find(|l| l.contains("Loop")).unwrap();
        let fields: Vec<&str> = loop_line.split_whitespace().collect();
        // awk '{print $4}' → exec time; $9 → steps; $12 → atoms (1-indexed).
        assert!(fields[3].parse::<f64>().is_ok(), "field 4 = {}", fields[3]);
        assert_eq!(fields[8], "100");
        assert_eq!(fields[11], "864000000");
        assert!(log.contains("Total wall time: "));
    }

    #[test]
    fn invalid_inputs_rejected() {
        assert!(Lammps.work(&inputs(&[("BOXFACTOR", "0")])).is_err());
        assert!(Lammps.work(&inputs(&[("BOXFACTOR", "abc")])).is_err());
        assert!(Lammps
            .work(&inputs(&[("BOXFACTOR", "5"), ("steps", "0")]))
            .is_err());
        // Missing BOXFACTOR defaults to the stock box.
        let w = Lammps.work(&inputs(&[])).unwrap();
        assert_eq!((w.working_set_bytes / BYTES_PER_ATOM) as u64, 32_000);
    }

    #[test]
    fn hc44rs_is_slowest_sku_of_fig2() {
        let reg = AppRegistry::standard();
        let catalog = SkuCatalog::azure_hpc();
        let input = inputs(&[("BOXFACTOR", "30")]);
        let hc = MachineProfile::from_sku(catalog.get("HC44rs").unwrap());
        let t_hc = loop_time(&reg.run("lammps", &hc, 16, 44, &input, 0).unwrap());
        let t_v3 = loop_time(&reg.run("lammps", &v3(), 16, 120, &input, 0).unwrap());
        assert!(t_hc > 1.3 * t_v3, "HC44rs {t_hc:.0}s vs HBv3 {t_v3:.0}s");
    }
}
