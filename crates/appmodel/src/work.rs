//! Work profiles: what an application run *is*, independent of hardware.
//!
//! Each per-app model reduces its input parameters to one of these; the
//! execution engine then prices the profile on a concrete machine/layout.

/// A nearest-neighbour (halo) exchange per step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HaloSpec {
    /// Bytes exchanged per rank per step at a *reference* decomposition of
    /// one rank owning the whole domain; the engine shrinks this with
    /// surface-to-volume scaling as ranks grow.
    pub bytes_per_rank: f64,
    /// Messages per rank per step (e.g. 6 for a 3-D stencil).
    pub messages_per_rank: u32,
    /// Dimensionality of the domain decomposition (1, 2 or 3) — controls
    /// the surface-to-volume exponent `(d-1)/d`.
    pub decomp_dims: u32,
}

/// A collective (modelled as tree all-reduce) per step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CollectiveSpec {
    /// Payload bytes per collective.
    pub bytes: f64,
    /// Collectives per step (e.g. inner CG iterations × reductions).
    pub count_per_step: f64,
}

/// Hardware-independent description of an application run.
#[derive(Debug, Clone)]
pub struct WorkProfile {
    /// Name used in logs.
    pub app: String,
    /// Number of time steps / iterations after warm-up.
    pub steps: u64,
    /// Floating-point work per step, FLOPs (total across the problem).
    pub flops_per_step: f64,
    /// Memory traffic per step, bytes (total streamed).
    pub bytes_per_step: f64,
    /// Resident working set, bytes (total). Drives the cache model and the
    /// out-of-memory check.
    pub working_set_bytes: f64,
    /// Non-parallelizable time per run, seconds (startup, I/O, warm-up).
    pub serial_secs: f64,
    /// Fraction of per-step work that does not parallelize (Amdahl).
    pub serial_fraction: f64,
    /// Optional halo exchange.
    pub halo: Option<HaloSpec>,
    /// Optional collective.
    pub collective: Option<CollectiveSpec>,
    /// Per-app efficiency on each arch relative to nominal (1.0 = nominal);
    /// multiplies sustained FLOP rate. Lets e.g. AVX-512-friendly codes
    /// favour Intel parts.
    pub arch_efficiency: fn(cloudsim::CpuArch) -> f64,
    /// Sensitivity of this app to memory bandwidth vs. pure FLOPs: 0 ⇒
    /// compute-bound, 1 ⇒ the roofline max applies fully.
    pub bandwidth_sensitivity: f64,
}

/// Default arch efficiency: nominal on everything.
pub fn flat_arch(_: cloudsim::CpuArch) -> f64 {
    1.0
}

impl WorkProfile {
    /// A minimal compute-only profile, useful in tests.
    pub fn compute_only(app: &str, steps: u64, flops_per_step: f64) -> Self {
        WorkProfile {
            app: app.to_string(),
            steps,
            flops_per_step,
            bytes_per_step: 0.0,
            working_set_bytes: 0.0,
            serial_secs: 0.0,
            serial_fraction: 0.0,
            halo: None,
            collective: None,
            arch_efficiency: flat_arch,
            bandwidth_sensitivity: 0.0,
        }
    }

    /// Total FLOPs across all steps.
    pub fn total_flops(&self) -> f64 {
        self.flops_per_step * self.steps as f64
    }

    /// Required memory in GiB (working set plus 20% overhead).
    pub fn required_memory_gib(&self) -> f64 {
        self.working_set_bytes * 1.2 / (1024.0 * 1024.0 * 1024.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compute_only_profile() {
        let w = WorkProfile::compute_only("toy", 10, 1e12);
        assert_eq!(w.total_flops(), 1e13);
        assert_eq!(w.required_memory_gib(), 0.0);
        assert!(w.halo.is_none() && w.collective.is_none());
    }

    #[test]
    fn memory_requirement_includes_overhead() {
        let mut w = WorkProfile::compute_only("toy", 1, 1.0);
        w.working_set_bytes = 10.0 * 1024.0 * 1024.0 * 1024.0;
        assert!((w.required_memory_gib() - 12.0).abs() < 1e-9);
    }
}
