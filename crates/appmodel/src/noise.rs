//! Deterministic run-to-run noise.
//!
//! Real cloud runs never repeat exactly: placement, network traffic and OS
//! jitter perturb wall-clock times by a few percent. The models reproduce
//! that with a log-normal multiplier whose seed is a hash of the full
//! scenario identity plus an experiment seed — so a sweep is realistic *and*
//! replayable.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hash::{Hash, Hasher};

/// Relative standard deviation of the noise multiplier.
const SIGMA: f64 = 0.018;

/// Derives a 64-bit seed from the scenario identity.
pub fn scenario_seed(
    app: &str,
    sku: &str,
    nodes: u32,
    ppn: u32,
    inputs: &crate::Inputs,
    experiment_seed: u64,
) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    app.hash(&mut h);
    sku.to_ascii_lowercase().hash(&mut h);
    nodes.hash(&mut h);
    ppn.hash(&mut h);
    for (k, v) in inputs {
        k.hash(&mut h);
        v.hash(&mut h);
    }
    experiment_seed.hash(&mut h);
    h.finish()
}

/// A multiplicative noise factor, log-normal with median 1.
///
/// Uses the Box–Muller transform on two uniform draws; `exp(σZ)` for
/// standard normal `Z` gives the log-normal multiplier.
pub fn noise_factor(seed: u64) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    (SIGMA * z).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inputs;

    #[test]
    fn deterministic_for_same_scenario() {
        let i = inputs(&[("BOXFACTOR", "30")]);
        let s1 = scenario_seed("lammps", "Standard_HB120rs_v3", 8, 120, &i, 42);
        let s2 = scenario_seed("lammps", "standard_hb120rs_v3", 8, 120, &i, 42);
        assert_eq!(s1, s2, "sku case must not change the seed");
        assert_eq!(noise_factor(s1), noise_factor(s2));
    }

    #[test]
    fn different_scenarios_differ() {
        let i = inputs(&[("BOXFACTOR", "30")]);
        let a = scenario_seed("lammps", "HB120rs_v3", 8, 120, &i, 42);
        let b = scenario_seed("lammps", "HB120rs_v3", 16, 120, &i, 42);
        let c = scenario_seed("lammps", "HB120rs_v3", 8, 120, &i, 43);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn noise_is_small_and_centred() {
        let mut product = 1.0f64;
        let mut count = 0;
        for seed in 0..2000u64 {
            let f = noise_factor(seed);
            assert!(f > 0.85 && f < 1.15, "noise {f} out of envelope");
            product *= f;
            count += 1;
        }
        let geo_mean = product.powf(1.0 / count as f64);
        assert!((geo_mean - 1.0).abs() < 0.01, "geometric mean {geo_mean}");
    }
}
