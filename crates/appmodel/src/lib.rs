//! Analytic performance models of the HPC applications the paper evaluates.
//!
//! The HPCAdvisor tool treats applications as black boxes: it runs them on a
//! (SKU, node-count, processes-per-node, input-parameters) point and observes
//! wall-clock time plus whatever metrics the run script scrapes from the
//! application log. This crate is the simulation-side stand-in for the real
//! codes: given the same point it produces a deterministic, physically
//! plausible wall-clock time and a synthetic application log.
//!
//! The models are built on a shared execution engine ([`engine`]):
//!
//! * **Roofline compute** — per-step time is the max of FLOP time and memory
//!   traffic time across the allocated cores/sockets.
//! * **Cache model** — when the per-node working set falls inside the node's
//!   L3 (HBv3's 1.5 GiB 3D V-Cache!), effective memory bandwidth rises and
//!   strong scaling turns **superlinear**, reproducing the paper's Fig. 5
//!   "efficiency > 1" observation.
//! * **Hockney communication** — halo exchanges (surface-to-volume) and
//!   tree all-reduce collectives over the SKU's interconnect; Ethernet SKUs
//!   pay ~20× the latency of InfiniBand ones and fall apart at scale.
//! * **Load imbalance** — a slowly growing multiplier with rank count.
//! * **Deterministic noise** — seeded log-normal run-to-run variation, so
//!   two scenarios never tie exactly (just like real clouds) yet every
//!   experiment replays bit-for-bit.
//!
//! Per-application models ([`apps`]) translate user-facing input parameters
//! (the paper's `appinputs`) into engine work profiles:
//!
//! | App | Inputs | Character |
//! |-----|--------|-----------|
//! | LAMMPS (LJ benchmark) | `BOXFACTOR` | compute-bound, near-linear scaling |
//! | OpenFOAM (motorBike) | `mesh` (blockMesh dims) | memory/collective-bound, flattens |
//! | WRF | `resolution_km`, `hours` | halo-bound, moderate scaling |
//! | GROMACS | `atoms`, `steps` | PME all-reduce limited |
//! | NAMD | `atoms`, `steps` | good scaling |
//! | matmul | `n` | the paper's toy example |

pub mod apps;
pub mod engine;
pub mod error;
pub mod machine;
pub mod noise;
pub mod work;

/// Version of the analytic application models. Bump this whenever a change
/// to the engine or a per-application model alters the numbers a scenario
/// produces for the same inputs — downstream result caches fold it into
/// their fingerprints, so stale cached data points invalidate automatically.
pub const MODEL_VERSION: u32 = 1;

pub use apps::{AppModel, AppRegistry, AppRun};
pub use engine::{execute_profile, Bottleneck, EngineOutput};
pub use error::ModelError;
pub use machine::MachineProfile;
pub use work::{CollectiveSpec, HaloSpec, WorkProfile};

/// Convenience: inputs are string key-value pairs, exactly as they arrive
/// from the tool's `appinputs` section and the run script's environment.
pub type Inputs = std::collections::BTreeMap<String, String>;

/// Builds an [`Inputs`] map from `(key, value)` pairs.
pub fn inputs(pairs: &[(&str, &str)]) -> Inputs {
    pairs
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect()
}

#[cfg(test)]
mod proptests {
    use super::*;
    use cloudsim::SkuCatalog;
    use proptest::prelude::*;

    fn machine(name: &str) -> MachineProfile {
        MachineProfile::from_sku(SkuCatalog::azure_hpc().get(name).unwrap())
    }

    proptest! {
        /// More total work never runs faster (same machine/layout).
        #[test]
        fn monotone_in_work(boxf in 2u32..20, extra in 1u32..8) {
            let reg = AppRegistry::standard();
            let m = machine("HB120rs_v3");
            let small = reg.run("lammps", &m, 2, 120,
                &inputs(&[("BOXFACTOR", &boxf.to_string())]), 7).unwrap();
            let big = reg.run("lammps", &m, 2, 120,
                &inputs(&[("BOXFACTOR", &(boxf + extra).to_string())]), 7).unwrap();
            prop_assert!(big.wall_time > small.wall_time);
        }

        /// Scaling out on InfiniBand never increases time by more than the
        /// noise envelope for a compute-bound app at fixed (large) input.
        #[test]
        fn lammps_strong_scaling_sane(n1 in 1u32..5) {
            let reg = AppRegistry::standard();
            let m = machine("HB120rs_v3");
            let n2 = n1 * 2;
            let input = inputs(&[("BOXFACTOR", "24")]);
            let t1 = reg.run("lammps", &m, n1, 120, &input, 3).unwrap().wall_time;
            let t2 = reg.run("lammps", &m, n2, 120, &input, 3).unwrap().wall_time;
            // Doubling nodes should help substantially (at least 1.4×).
            prop_assert!(t2.as_secs_f64() < t1.as_secs_f64() / 1.4,
                "t({n1})={t1}, t({n2})={t2}");
        }

        /// Determinism: identical scenario + seed ⇒ identical run.
        #[test]
        fn deterministic(nodes in 1u32..17, seed in 0u64..1000) {
            let reg = AppRegistry::standard();
            let m = machine("HB120rs_v2");
            let input = inputs(&[("mesh", "40 16 16")]);
            let a = reg.run("openfoam", &m, nodes, 120, &input, seed).unwrap();
            let b = reg.run("openfoam", &m, nodes, 120, &input, seed).unwrap();
            prop_assert_eq!(a.wall_time, b.wall_time);
            prop_assert_eq!(a.log, b.log);
        }
    }
}
