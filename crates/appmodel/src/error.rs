use std::fmt;

/// Errors produced by the application performance models.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// No model registered under the requested name.
    UnknownApp(String),
    /// A required input parameter is missing.
    MissingInput { app: String, key: String },
    /// An input parameter failed to parse or is out of range.
    BadInput {
        app: String,
        key: String,
        value: String,
        reason: String,
    },
    /// The problem does not fit in the allocated nodes' memory — the
    /// simulated equivalent of an OOM-killed MPI job.
    OutOfMemory {
        app: String,
        required_gib: f64,
        available_gib: f64,
    },
    /// The process layout is invalid (zero nodes/ppn, ppn > cores, …).
    BadLayout(String),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::UnknownApp(a) => write!(f, "unknown application '{a}'"),
            ModelError::MissingInput { app, key } => {
                write!(f, "{app}: missing required input '{key}'")
            }
            ModelError::BadInput {
                app,
                key,
                value,
                reason,
            } => write!(f, "{app}: bad input {key}='{value}': {reason}"),
            ModelError::OutOfMemory {
                app,
                required_gib,
                available_gib,
            } => write!(
                f,
                "{app}: out of memory: needs {required_gib:.1} GiB, nodes provide {available_gib:.1} GiB"
            ),
            ModelError::BadLayout(msg) => write!(f, "bad process layout: {msg}"),
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_app() {
        let e = ModelError::MissingInput {
            app: "lammps".into(),
            key: "BOXFACTOR".into(),
        };
        assert!(e.to_string().contains("lammps") && e.to_string().contains("BOXFACTOR"));
        let oom = ModelError::OutOfMemory {
            app: "wrf".into(),
            required_gib: 512.0,
            available_gib: 448.0,
        };
        assert!(oom.to_string().contains("512.0"));
    }
}
