//! The shared execution engine: prices a [`WorkProfile`] on a machine.
//!
//! Model structure (per step, then summed over steps plus serial time):
//!
//! ```text
//! comp  = max( flop_time · stall_blend , mem_time ) · imbalance
//! comm  = halo(nodes, ppn) + collectives(nodes)
//! wall  = serial_secs + steps · (comp + comm)      [× log-normal noise]
//! ```
//!
//! * `flop_time` follows Amdahl: a `serial_fraction` of each step runs on
//!   one core, the rest on all ranks.
//! * `mem_time` is streamed bytes over aggregate node memory bandwidth,
//!   *boosted* when the per-node working set fits in L3 (the HBv3 3D
//!   V-Cache effect that makes efficiency exceed 1 in the paper's Fig. 5).
//! * `stall_blend` applies the same cache boost to the compute rate of
//!   bandwidth-sensitive codes: `(1-b) + b/boost` for sensitivity `b`.
//! * Communication uses the Hockney model `α + m/β` with tree collectives
//!   (`2⌈log₂ nodes⌉` stages) and surface-to-volume halo scaling.

use crate::machine::MachineProfile;
use crate::work::WorkProfile;

/// Which resource dominated the run — exposed to the smart-sampling
/// "infrastructure bottleneck" optimizer (paper §III-F).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bottleneck {
    /// Floating-point throughput bound.
    Compute,
    /// Memory-bandwidth bound.
    MemoryBandwidth,
    /// Interconnect bound.
    Network,
    /// Dominated by non-parallel work.
    Serial,
}

impl Bottleneck {
    /// Short label used in metrics/logs.
    pub fn label(&self) -> &'static str {
        match self {
            Bottleneck::Compute => "compute",
            Bottleneck::MemoryBandwidth => "membw",
            Bottleneck::Network => "network",
            Bottleneck::Serial => "serial",
        }
    }
}

/// Detailed engine result (noise-free; the caller applies noise).
#[derive(Debug, Clone, PartialEq)]
pub struct EngineOutput {
    /// Total wall-clock seconds (noise-free).
    pub wall_secs: f64,
    /// Seconds per step after warm-up — the quantity partial-execution
    /// predictors (Yang et al. \[6]; Brunetta & Borin \[13]) extrapolate.
    pub per_step_secs: f64,
    /// Compute portion of one step.
    pub comp_secs: f64,
    /// Communication portion of one step.
    pub comm_secs: f64,
    /// Serial (non-step) seconds.
    pub serial_secs: f64,
    /// Cache bandwidth boost factor applied (1 = none).
    pub cache_boost: f64,
    /// Dominant resource.
    pub bottleneck: Bottleneck,
    /// Approximate utilizations in [0, 1] — the "infrastructure metrics"
    /// the paper's monitoring hint would collect.
    pub cpu_utilization: f64,
    /// Memory-bandwidth utilization estimate.
    pub membw_utilization: f64,
    /// Network utilization estimate.
    pub network_utilization: f64,
}

/// Maximum bandwidth boost when the working set fully fits in L3.
const CACHE_BOOST_MAX: f64 = 2.8;
/// Load-imbalance growth per log₂(ranks).
const IMBALANCE_PER_LOG2: f64 = 0.012;
/// Maximum slowdown from memory pressure (resident set near RAM capacity).
const MEM_PRESSURE_MAX: f64 = 0.32;

/// Memory-pressure slowdown: ≥1, rising steeply once the per-node resident
/// set (with allocator overhead) exceeds ~60% of node RAM. This is the
/// paging/fragmentation/NUMA-imbalance tax that makes barely-fitting runs
/// disproportionately slow — and is why the paper's 864M-atom LAMMPS front
/// starts at 3 nodes even though 2 nodes technically fit.
pub fn memory_pressure(working_set_per_node: f64, memory_bytes: f64) -> f64 {
    if working_set_per_node <= 0.0 || memory_bytes <= 0.0 {
        return 1.0;
    }
    let utilization = working_set_per_node * 1.2 / memory_bytes;
    let x = (utilization - 0.60) * 25.0;
    let sigmoid = 1.0 / (1.0 + (-x).exp());
    1.0 + MEM_PRESSURE_MAX * sigmoid
}

/// Smooth cache boost: ≥1, approaching `CACHE_BOOST_MAX` as the per-node
/// working set drops below the L3 capacity.
pub fn cache_boost(working_set_per_node: f64, l3_bytes: f64) -> f64 {
    if working_set_per_node <= 0.0 || l3_bytes <= 0.0 {
        return 1.0;
    }
    // Capacity ratio > 1 means the working set fits with room to spare.
    let ratio = l3_bytes / working_set_per_node;
    // Logistic transition centred where L3 ≈ 80% of the working set.
    // The slope is steep: a working set 2–3× larger than L3 sees almost no
    // boost (calibrated against the paper's LAMMPS cost column, which rises
    // monotonically with node count).
    let x = (ratio - 0.8) * 10.0;
    let sigmoid = 1.0 / (1.0 + (-x).exp());
    1.0 + (CACHE_BOOST_MAX - 1.0) * sigmoid
}

/// Executes a work profile on `nodes` × `ppn` ranks of `machine`.
///
/// The caller is responsible for validating layout and memory (see
/// [`crate::apps::AppRegistry::run`]); this function assumes a sane layout.
pub fn execute_profile(
    work: &WorkProfile,
    machine: &MachineProfile,
    nodes: u32,
    ppn: u32,
) -> EngineOutput {
    let ranks = (nodes as u64) * (ppn as u64);
    let eff = (work.arch_efficiency)(machine.arch) * machine.clock_factor();
    let core_rate = machine.flops_per_core * eff;

    // -- Cache model ------------------------------------------------------
    let ws_per_node = work.working_set_bytes / nodes as f64;
    let boost = cache_boost(ws_per_node, machine.l3_bytes);
    let b = work.bandwidth_sensitivity.clamp(0.0, 1.0);
    // Bandwidth-sensitive compute stalls less when in cache.
    let stall_blend = (1.0 - b) + b / boost;

    // -- Compute (Amdahl + roofline) ---------------------------------------
    let sf = work.serial_fraction.clamp(0.0, 1.0);
    let flop_time = if work.flops_per_step > 0.0 {
        let serial = work.flops_per_step * sf / core_rate;
        let parallel = work.flops_per_step * (1.0 - sf) / (core_rate * ranks as f64);
        (serial + parallel) * stall_blend
    } else {
        0.0
    };
    let agg_bw = machine.mem_bw_bytes * nodes as f64 * boost;
    let mem_time = if work.bytes_per_step > 0.0 {
        work.bytes_per_step * b / agg_bw
    } else {
        0.0
    };
    let imbalance = 1.0 + IMBALANCE_PER_LOG2 * (ranks as f64).log2().max(0.0);
    let pressure = memory_pressure(ws_per_node, machine.memory_gib * 1024.0 * 1024.0 * 1024.0);
    let comp = flop_time.max(mem_time) * imbalance * pressure;

    // -- Communication (inter-node only) -----------------------------------
    let alpha = machine.interconnect.latency_secs();
    let beta = machine.interconnect.bandwidth_bytes_per_sec();
    let mut halo_time = 0.0;
    let mut coll_time = 0.0;
    if nodes > 1 {
        if let Some(h) = &work.halo {
            // Surface-to-volume: per-rank halo shrinks as ranks^((d-1)/d).
            let d = h.decomp_dims.max(1) as f64;
            let shrink = (ranks as f64).powf((d - 1.0) / d);
            let bytes_per_rank = h.bytes_per_rank / shrink.max(1.0);
            // Ranks on one node share the NIC; only off-node traffic counts.
            // With ppn ranks per node, roughly all halo surface crosses the
            // NIC once domains are node-sized or smaller.
            let bytes_per_node = bytes_per_rank * ppn as f64;
            halo_time = h.messages_per_rank as f64 * alpha + bytes_per_node / beta;
        }
        if let Some(c) = &work.collective {
            let stages = 2.0 * (nodes as f64).log2().ceil().max(1.0);
            coll_time = c.count_per_step * stages * (alpha + c.bytes / beta);
        }
    }
    let comm = halo_time + coll_time;

    // -- Totals -------------------------------------------------------------
    let per_step = comp + comm;
    let wall = work.serial_secs + work.steps as f64 * per_step;

    // -- Bottleneck & utilizations -------------------------------------------
    let serial_step_equiv = work.serial_secs / work.steps.max(1) as f64;
    let contributions = [
        (Bottleneck::Compute, flop_time * imbalance * pressure),
        (Bottleneck::MemoryBandwidth, mem_time * imbalance * pressure),
        (Bottleneck::Network, comm),
        (Bottleneck::Serial, serial_step_equiv),
    ];
    let bottleneck = contributions
        .iter()
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .expect("non-empty")
        .0;

    let cpu_utilization = if per_step > 0.0 {
        (flop_time * imbalance * pressure / per_step).clamp(0.0, 1.0)
    } else {
        0.0
    };
    let membw_utilization = if per_step > 0.0 && agg_bw > 0.0 {
        (work.bytes_per_step / per_step / agg_bw).clamp(0.0, 1.0)
    } else {
        0.0
    };
    let network_utilization = if per_step > 0.0 {
        (comm / per_step).clamp(0.0, 1.0)
    } else {
        0.0
    };

    EngineOutput {
        wall_secs: wall,
        per_step_secs: per_step,
        comp_secs: comp,
        comm_secs: comm,
        serial_secs: work.serial_secs,
        cache_boost: boost,
        bottleneck,
        cpu_utilization,
        membw_utilization,
        network_utilization,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::work::{CollectiveSpec, HaloSpec};
    use cloudsim::SkuCatalog;

    fn machine(name: &str) -> MachineProfile {
        MachineProfile::from_sku(SkuCatalog::azure_hpc().get(name).unwrap())
    }

    fn flop_profile() -> WorkProfile {
        WorkProfile::compute_only("toy", 100, 1e12)
    }

    #[test]
    fn pure_compute_scales_linearly() {
        let m = machine("HB120rs_v3");
        let w = flop_profile();
        let t1 = execute_profile(&w, &m, 1, 120).wall_secs;
        let t4 = execute_profile(&w, &m, 4, 120).wall_secs;
        // Within the imbalance factor, 4 nodes ≈ 4× faster.
        let speedup = t1 / t4;
        assert!(speedup > 3.6 && speedup < 4.2, "speedup {speedup}");
    }

    #[test]
    fn amdahl_limits_scaling() {
        let m = machine("HB120rs_v3");
        let mut w = flop_profile();
        w.serial_fraction = 0.01;
        let t1 = execute_profile(&w, &m, 1, 120).wall_secs;
        let t16 = execute_profile(&w, &m, 16, 120).wall_secs;
        let speedup = t1 / t16;
        // 1% serial work: the 120-rank baseline already spends ~55% of each
        // step in the serial part, so 16× more nodes yield well under 2.5×.
        assert!(speedup < 2.5, "speedup {speedup}");
        assert!(speedup > 1.3, "speedup {speedup}");
    }

    #[test]
    fn cache_boost_shape() {
        let l3 = 1.5e9;
        assert!(
            (cache_boost(100.0e9, l3) - 1.0).abs() < 0.05,
            "far out of cache"
        );
        assert!(cache_boost(0.1e9, l3) > 2.5, "deep in cache");
        let mid = cache_boost(1.8e9, l3);
        assert!(mid > 1.0 && mid < 2.8, "transition {mid}");
        assert_eq!(cache_boost(0.0, l3), 1.0);
    }

    #[test]
    fn superlinear_speedup_when_ws_drops_into_cache() {
        let m = machine("HB120rs_v3");
        let mut w = flop_profile();
        // 6 GiB working set: 1 node → far over L3; 8 nodes → 0.75 GiB/node,
        // comfortably inside the 1.5 GiB V-Cache.
        w.working_set_bytes = 6.0e9;
        w.bandwidth_sensitivity = 0.5;
        let t1 = execute_profile(&w, &m, 1, 120).wall_secs;
        let t8 = execute_profile(&w, &m, 8, 120).wall_secs;
        let speedup = t1 / t8;
        let efficiency = speedup / 8.0;
        assert!(
            efficiency > 1.0,
            "efficiency {efficiency} must be superlinear"
        );
    }

    #[test]
    fn no_superlinear_without_vcache() {
        // HC44rs has only 66 MiB L3 — the same profile stays out of cache.
        let m = machine("HC44rs");
        let mut w = flop_profile();
        w.working_set_bytes = 6.0e9;
        w.bandwidth_sensitivity = 0.5;
        let t1 = execute_profile(&w, &m, 1, 44).wall_secs;
        let t8 = execute_profile(&w, &m, 8, 44).wall_secs;
        let efficiency = t1 / t8 / 8.0;
        assert!(efficiency <= 1.0, "efficiency {efficiency}");
    }

    #[test]
    fn collectives_penalize_ethernet() {
        let mut w = flop_profile();
        w.collective = Some(CollectiveSpec {
            bytes: 8.0,
            count_per_step: 300.0,
        });
        let ib = machine("HB120rs_v2");
        let eth = machine("F72s_v2");
        let t_ib = execute_profile(&w, &ib, 8, 1);
        let t_eth = execute_profile(&w, &eth, 8, 1);
        assert!(t_eth.comm_secs > 10.0 * t_ib.comm_secs);
    }

    #[test]
    fn single_node_has_no_comm() {
        let mut w = flop_profile();
        w.halo = Some(HaloSpec {
            bytes_per_rank: 1e6,
            messages_per_rank: 6,
            decomp_dims: 3,
        });
        w.collective = Some(CollectiveSpec {
            bytes: 64.0,
            count_per_step: 10.0,
        });
        let m = machine("HB120rs_v3");
        let out = execute_profile(&w, &m, 1, 120);
        assert_eq!(out.comm_secs, 0.0);
        assert_eq!(out.network_utilization, 0.0);
    }

    #[test]
    fn halo_shrinks_with_surface_to_volume() {
        let mut w = flop_profile();
        w.halo = Some(HaloSpec {
            bytes_per_rank: 1e9,
            messages_per_rank: 6,
            decomp_dims: 3,
        });
        let m = machine("HB120rs_v3");
        let c2 = execute_profile(&w, &m, 2, 120).comm_secs;
        let c16 = execute_profile(&w, &m, 16, 120).comm_secs;
        assert!(c16 < c2, "halo per node must shrink as ranks grow");
    }

    #[test]
    fn bottleneck_classification() {
        let m = machine("HB120rs_v3");
        // Pure flops ⇒ compute-bound.
        assert_eq!(
            execute_profile(&flop_profile(), &m, 1, 120).bottleneck,
            Bottleneck::Compute
        );
        // Huge streamed bytes ⇒ memory-bound.
        let mut w = flop_profile();
        w.flops_per_step = 1e9;
        w.bytes_per_step = 1e12;
        w.working_set_bytes = 400e9;
        w.bandwidth_sensitivity = 1.0;
        assert_eq!(
            execute_profile(&w, &m, 1, 120).bottleneck,
            Bottleneck::MemoryBandwidth
        );
        // Latency-dominated collectives on Ethernet ⇒ network-bound.
        let mut w = WorkProfile::compute_only("toy", 100, 1e6);
        w.collective = Some(CollectiveSpec {
            bytes: 8.0,
            count_per_step: 1000.0,
        });
        let eth = machine("F72s_v2");
        assert_eq!(
            execute_profile(&w, &eth, 8, 36).bottleneck,
            Bottleneck::Network
        );
        // Serial-dominated.
        let mut w = WorkProfile::compute_only("toy", 1, 1e6);
        w.serial_secs = 100.0;
        assert_eq!(
            execute_profile(&w, &m, 4, 120).bottleneck,
            Bottleneck::Serial
        );
    }

    #[test]
    fn utilizations_in_unit_range() {
        let m = machine("HB60rs");
        let mut w = flop_profile();
        w.bytes_per_step = 1e10;
        w.working_set_bytes = 1e10;
        w.bandwidth_sensitivity = 0.7;
        w.collective = Some(CollectiveSpec {
            bytes: 1024.0,
            count_per_step: 50.0,
        });
        for nodes in [1, 2, 8] {
            let out = execute_profile(&w, &m, nodes, 60);
            for u in [
                out.cpu_utilization,
                out.membw_utilization,
                out.network_utilization,
            ] {
                assert!((0.0..=1.0).contains(&u), "utilization {u}");
            }
        }
    }

    #[test]
    fn per_step_consistent_with_wall() {
        let m = machine("HB120rs_v3");
        let mut w = flop_profile();
        w.serial_secs = 7.0;
        let out = execute_profile(&w, &m, 2, 120);
        let expected = 7.0 + 100.0 * out.per_step_secs;
        assert!((out.wall_secs - expected).abs() < 1e-9);
    }
}
