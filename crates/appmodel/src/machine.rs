//! Machine profiles: the hardware view the execution engine consumes.

use cloudsim::{CpuArch, Interconnect, VmSku};

/// Hardware characteristics of one node type, derived from a [`VmSku`].
#[derive(Debug, Clone, PartialEq)]
pub struct MachineProfile {
    /// SKU name (kept for logs/metrics).
    pub sku_name: String,
    /// Physical cores per node.
    pub cores: u32,
    /// Memory per node in GiB.
    pub memory_gib: f64,
    /// Streaming memory bandwidth per node in bytes/s.
    pub mem_bw_bytes: f64,
    /// Total L3 cache per node in bytes.
    pub l3_bytes: f64,
    /// Sustained double-precision throughput per core in FLOP/s.
    ///
    /// Derived from the SKU's nominal per-core GFLOP/s derated to a
    /// sustained fraction; per-app efficiency factors then scale this.
    pub flops_per_core: f64,
    /// CPU microarchitecture.
    pub arch: CpuArch,
    /// Interconnect between nodes.
    pub interconnect: Interconnect,
}

impl MachineProfile {
    /// Sustained fraction of nominal peak the engine assumes.
    const SUSTAINED_FRACTION: f64 = 0.55;

    /// Builds a profile from a catalog SKU.
    pub fn from_sku(sku: &VmSku) -> Self {
        MachineProfile {
            sku_name: sku.name.clone(),
            cores: sku.cores,
            memory_gib: sku.memory_gib,
            mem_bw_bytes: sku.mem_bw_gbs * 1e9,
            l3_bytes: sku.l3_cache_mib * 1024.0 * 1024.0,
            flops_per_core: sku.gflops_per_core * 1e9 * Self::SUSTAINED_FRACTION,
            arch: sku.arch,
            interconnect: sku.interconnect,
        }
    }

    /// Aggregate sustained FLOP/s for `ranks` ranks spread over this node
    /// type (ranks may use fewer than all cores).
    pub fn flops_for_ranks(&self, ranks: u64) -> f64 {
        self.flops_per_core * ranks as f64
    }

    /// Per-core clock-speed flavour: cache-stacked parts run slightly lower
    /// clocks, which matters in regimes where their cache doesn't help.
    pub fn clock_factor(&self) -> f64 {
        match self.arch {
            CpuArch::MilanX => 0.96,
            CpuArch::GenoaX => 0.97,
            _ => 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudsim::SkuCatalog;

    #[test]
    fn derives_from_sku() {
        let catalog = SkuCatalog::azure_hpc();
        let sku = catalog.get("HB120rs_v3").unwrap();
        let m = MachineProfile::from_sku(sku);
        assert_eq!(m.cores, 120);
        assert!((m.l3_bytes - 1536.0 * 1024.0 * 1024.0).abs() < 1.0);
        assert!(m.flops_per_core < sku.gflops_per_core * 1e9);
        assert!(m.interconnect.is_infiniband());
    }

    #[test]
    fn flops_scale_with_ranks() {
        let catalog = SkuCatalog::azure_hpc();
        let m = MachineProfile::from_sku(catalog.get("HC44rs").unwrap());
        assert!((m.flops_for_ranks(88) / m.flops_for_ranks(44) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn vcache_parts_have_clock_penalty() {
        let catalog = SkuCatalog::azure_hpc();
        let v3 = MachineProfile::from_sku(catalog.get("HB120rs_v3").unwrap());
        let v2 = MachineProfile::from_sku(catalog.get("HB120rs_v2").unwrap());
        assert!(v3.clock_factor() < v2.clock_factor());
    }
}
