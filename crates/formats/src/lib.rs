//! File formats used by the HPCAdvisor reproduction, implemented from
//! scratch so the workspace has no external parser dependencies.
//!
//! The paper's tool reads a YAML configuration file (its Listing 1), stores
//! the scenario list and collected dataset as JSON, and exports tabular data.
//! This crate provides exactly that surface:
//!
//! * [`Value`] — a dynamically-typed document value shared by both formats,
//!   with an insertion-order-preserving map (so emitted config files keep the
//!   author's field order).
//! * [`yaml`] — a parser for the YAML subset the tool's config files use:
//!   block mappings, block sequences, flow sequences (`[1, 2, 3]`), scalars
//!   with int/float/bool inference, quoted strings, and `#` comments.
//! * [`json`] — a full JSON parser and a pretty/compact serializer.
//! * [`csv`] — a minimal CSV writer/reader for exported tables.
//!
//! # Example
//!
//! ```
//! let doc = hpcadvisor_formats::yaml::parse(
//!     "appname: lammps\nnnodes: [1, 2, 4]\nppr: 100\n").unwrap();
//! assert_eq!(doc.get("appname").and_then(|v| v.as_str()), Some("lammps"));
//! assert_eq!(doc.get("nnodes").unwrap().as_seq().unwrap().len(), 3);
//!
//! let json = hpcadvisor_formats::json::to_string_pretty(&doc);
//! let back = hpcadvisor_formats::json::parse(&json).unwrap();
//! assert_eq!(doc, back);
//! ```

pub mod csv;
pub mod error;
pub mod json;
pub mod value;
pub mod wire;
pub mod yaml;

pub use error::FormatError;
pub use value::{OrderedMap, Value};
pub use wire::{ErrorCode, Frame, MonotonicId, WireError, MAX_FRAME_BYTES, WIRE_VERSION};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Strategy producing arbitrary JSON-representable values of bounded depth.
    fn arb_value() -> impl Strategy<Value = Value> {
        let leaf = prop_oneof![
            Just(Value::Null),
            any::<bool>().prop_map(Value::Bool),
            any::<i64>().prop_map(Value::Int),
            // Finite floats only: NaN breaks equality, infinities are not JSON.
            (-1e12f64..1e12f64).prop_map(Value::Float),
            "[a-zA-Z0-9 _./:-]{0,20}".prop_map(Value::Str),
        ];
        leaf.prop_recursive(3, 32, 8, |inner| {
            prop_oneof![
                proptest::collection::vec(inner.clone(), 0..6).prop_map(Value::Seq),
                proptest::collection::vec(("[a-z][a-z0-9_]{0,10}", inner), 0..6).prop_map(
                    |pairs| {
                        let mut m = OrderedMap::new();
                        for (k, v) in pairs {
                            m.insert(k, v);
                        }
                        Value::Map(m)
                    }
                ),
            ]
        })
    }

    proptest! {
        /// Any value serialized to JSON parses back to an equal value.
        #[test]
        fn json_roundtrip(v in arb_value()) {
            let s = json::to_string_pretty(&v);
            let back = json::parse(&s).unwrap();
            prop_assert_eq!(&v, &back);
            let compact = json::to_string(&v);
            let back2 = json::parse(&compact).unwrap();
            prop_assert_eq!(&v, &back2);
        }

        /// CSV writer/reader round-trips arbitrary cell content, including
        /// commas, quotes and newlines.
        #[test]
        fn csv_roundtrip(rows in proptest::collection::vec(
            proptest::collection::vec("[ -~\n\"]{0,12}", 1..5), 1..8)) {
            // All rows must share a width for a rectangular table.
            let width = rows[0].len();
            let rect: Vec<Vec<String>> =
                rows.into_iter().map(|mut r| { r.resize(width, String::new()); r }).collect();
            let text = csv::write(&rect);
            let back = csv::read(&text).unwrap();
            prop_assert_eq!(rect, back);
        }
    }
}
