//! Minimal RFC 4180 CSV writer/reader for exported result tables.
//!
//! Cells containing commas, quotes or newlines are quoted; embedded quotes
//! are doubled. The reader accepts both `\n` and `\r\n` row terminators.

use crate::error::FormatError;

/// Writes rows as CSV text. Every row is terminated with `\n`.
pub fn write(rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_cell(&mut out, cell);
        }
        out.push('\n');
    }
    out
}

fn write_cell(out: &mut String, cell: &str) {
    let needs_quote = cell.contains([',', '"', '\n', '\r']);
    if needs_quote {
        out.push('"');
        for c in cell.chars() {
            if c == '"' {
                out.push('"');
            }
            out.push(c);
        }
        out.push('"');
    } else {
        out.push_str(cell);
    }
}

/// Parses CSV text into rows of cells.
pub fn read(text: &str) -> Result<Vec<Vec<String>>, FormatError> {
    let mut rows = Vec::new();
    let mut row: Vec<String> = Vec::new();
    let mut cell = String::new();
    let mut chars = text.chars().peekable();
    let mut in_quotes = false;
    let mut line = 1usize;
    let mut any_content = false;

    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        cell.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                '\n' => {
                    line += 1;
                    cell.push(c);
                }
                _ => cell.push(c),
            }
            continue;
        }
        match c {
            '"' => {
                if cell.is_empty() {
                    in_quotes = true;
                    any_content = true;
                } else {
                    return Err(FormatError::on_line(line, "quote inside unquoted cell"));
                }
            }
            ',' => {
                row.push(std::mem::take(&mut cell));
                any_content = true;
            }
            '\r' => {
                // Consumed as part of \r\n; a bare \r is treated the same.
                if chars.peek() == Some(&'\n') {
                    chars.next();
                }
                row.push(std::mem::take(&mut cell));
                rows.push(std::mem::take(&mut row));
                line += 1;
                any_content = false;
            }
            '\n' => {
                row.push(std::mem::take(&mut cell));
                rows.push(std::mem::take(&mut row));
                line += 1;
                any_content = false;
            }
            _ => {
                cell.push(c);
                any_content = true;
            }
        }
    }
    if in_quotes {
        return Err(FormatError::on_line(line, "unterminated quoted cell"));
    }
    if any_content || !cell.is_empty() || !row.is_empty() {
        row.push(cell);
        rows.push(row);
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(cells: &[&str]) -> Vec<String> {
        cells.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn simple_roundtrip() {
        let rows = vec![row(&["a", "b", "c"]), row(&["1", "2", "3"])];
        let text = write(&rows);
        assert_eq!(text, "a,b,c\n1,2,3\n");
        assert_eq!(read(&text).unwrap(), rows);
    }

    #[test]
    fn quoting_special_cells() {
        let rows = vec![row(&["has,comma", "has\"quote", "has\nnewline", "plain"])];
        let text = write(&rows);
        assert_eq!(read(&text).unwrap(), rows);
        assert!(text.starts_with("\"has,comma\",\"has\"\"quote\""));
    }

    #[test]
    fn reads_crlf() {
        let rows = read("a,b\r\nc,d\r\n").unwrap();
        assert_eq!(rows, vec![row(&["a", "b"]), row(&["c", "d"])]);
    }

    #[test]
    fn empty_cells_preserved() {
        let rows = vec![row(&["", "x", ""])];
        let text = write(&rows);
        assert_eq!(read(&text).unwrap(), rows);
    }

    #[test]
    fn empty_input_is_no_rows() {
        assert!(read("").unwrap().is_empty());
    }

    #[test]
    fn final_row_without_newline() {
        let rows = read("a,b\nc,d").unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1], row(&["c", "d"]));
    }

    #[test]
    fn rejects_unterminated_quote() {
        assert!(read("\"abc").is_err());
    }

    #[test]
    fn rejects_quote_mid_cell() {
        assert!(read("ab\"c,d").is_err());
    }
}
