//! JSON parser and serializer for [`Value`].
//!
//! The parser accepts the full JSON grammar (RFC 8259) including unicode
//! escapes; the serializer emits either compact or pretty (2-space indented)
//! text. The tool's scenario list and dataset files are stored with the
//! pretty form so users can diff them.

use crate::error::FormatError;
use crate::value::{format_float, OrderedMap, Value};

/// Parses a JSON document.
pub fn parse(input: &str) -> Result<Value, FormatError> {
    let mut p = Parser::new(input);
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if !p.at_end() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

/// Serializes a value to compact JSON.
pub fn to_string(v: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, v, None, 0);
    out
}

/// Serializes a value to pretty JSON with 2-space indentation.
pub fn to_string_pretty(v: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, v, Some(2), 0);
    out.push('\n');
    out
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => out.push_str(&format_float(*f)),
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => write_seq(out, items, indent, depth),
        Value::Map(m) => write_map(out, m, indent, depth),
    }
}

fn write_seq(out: &mut String, items: &[Value], indent: Option<usize>, depth: usize) {
    if items.is_empty() {
        out.push_str("[]");
        return;
    }
    out.push('[');
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        newline_indent(out, indent, depth + 1);
        write_value(out, item, indent, depth + 1);
    }
    newline_indent(out, indent, depth);
    out.push(']');
}

fn write_map(out: &mut String, m: &OrderedMap, indent: Option<usize>, depth: usize) {
    if m.is_empty() {
        out.push_str("{}");
        return;
    }
    out.push('{');
    for (i, (k, v)) in m.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        newline_indent(out, indent, depth + 1);
        write_string(out, k);
        out.push(':');
        if indent.is_some() {
            out.push(' ');
        }
        write_value(out, v, indent, depth + 1);
    }
    newline_indent(out, indent, depth);
    out.push('}');
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Maximum container nesting depth — a stack-overflow guard for crafted
/// documents (the recursive-descent parser uses the native stack).
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: usize,
    line_start: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Parser {
            bytes: input.as_bytes(),
            pos: 0,
            line: 1,
            line_start: 0,
            depth: 0,
        }
    }

    fn err(&self, msg: impl Into<String>) -> FormatError {
        FormatError::at(self.line, self.pos - self.line_start + 1, msg)
    }

    fn at_end(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.line_start = self.pos;
        }
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.bump();
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), FormatError> {
        if self.peek() == Some(b) {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!(
                "expected '{}', found {}",
                b as char,
                self.peek()
                    .map(|c| format!("'{}'", c as char))
                    .unwrap_or_else(|| "end of input".into())
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, FormatError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            Some(c) => Err(self.err(format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Value) -> Result<Value, FormatError> {
        for expected in word.bytes() {
            if self.bump() != Some(expected) {
                return Err(self.err(format!("invalid literal, expected '{word}'")));
            }
        }
        Ok(value)
    }

    fn enter(&mut self) -> Result<(), FormatError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.err(format!("nesting deeper than {MAX_DEPTH} levels")));
        }
        Ok(())
    }

    fn parse_object(&mut self) -> Result<Value, FormatError> {
        self.enter()?;
        self.expect(b'{')?;
        let mut map = OrderedMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.bump();
            self.depth -= 1;
            return Ok(Value::Map(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => {
                    self.depth -= 1;
                    return Ok(Value::Map(map));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, FormatError> {
        self.enter()?;
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.bump();
            self.depth -= 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => {
                    self.depth -= 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, FormatError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(s),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => s.push('"'),
                    Some(b'\\') => s.push('\\'),
                    Some(b'/') => s.push('/'),
                    Some(b'b') => s.push('\u{8}'),
                    Some(b'f') => s.push('\u{c}'),
                    Some(b'n') => s.push('\n'),
                    Some(b'r') => s.push('\r'),
                    Some(b't') => s.push('\t'),
                    Some(b'u') => {
                        let cp = self.parse_hex4()?;
                        // Surrogate pair handling for non-BMP characters.
                        let c = if (0xD800..0xDC00).contains(&cp) {
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err(self.err("unpaired high surrogate"));
                            }
                            let low = self.parse_hex4()?;
                            if !(0xDC00..0xE000).contains(&low) {
                                return Err(self.err("invalid low surrogate"));
                            }
                            let combined = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                            char::from_u32(combined)
                        } else {
                            char::from_u32(cp)
                        };
                        match c {
                            Some(c) => s.push(c),
                            None => return Err(self.err("invalid unicode escape")),
                        }
                    }
                    _ => return Err(self.err("invalid escape sequence")),
                },
                Some(b) if b < 0x80 => s.push(b as char),
                Some(b) => {
                    // Re-decode a UTF-8 multibyte sequence starting at b.
                    let len = utf8_len(b).ok_or_else(|| self.err("invalid UTF-8"))?;
                    let start = self.pos - 1;
                    for _ in 1..len {
                        self.bump().ok_or_else(|| self.err("truncated UTF-8"))?;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    s.push_str(chunk);
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, FormatError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self
                .bump()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.err("invalid hex digit in \\u escape"))?;
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value, FormatError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.bump();
        }
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.bump();
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.bump();
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.bump();
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.bump();
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.bump();
            }
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.bump();
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| self.err(format!("invalid number '{text}'")))
        } else {
            // Integers that overflow i64 fall back to f64, like most readers.
            text.parse::<i64>().map(Value::Int).or_else(|_| {
                text.parse::<f64>()
                    .map(Value::Float)
                    .map_err(|_| self.err(format!("invalid number '{text}'")))
            })
        }
    }
}

fn utf8_len(first: u8) -> Option<usize> {
    match first {
        0xC0..=0xDF => Some(2),
        0xE0..=0xEF => Some(3),
        0xF0..=0xF7 => Some(4),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse("false").unwrap(), Value::Bool(false));
        assert_eq!(parse("42").unwrap(), Value::Int(42));
        assert_eq!(parse("-17").unwrap(), Value::Int(-17));
        assert_eq!(parse("2.5").unwrap(), Value::Float(2.5));
        assert_eq!(parse("1e3").unwrap(), Value::Float(1000.0));
        assert_eq!(parse("\"hi\"").unwrap(), Value::str("hi"));
    }

    #[test]
    fn parses_nested_structure() {
        let v = parse(r#"{"a": [1, {"b": null}], "c": "d"}"#).unwrap();
        assert_eq!(v.get("c").unwrap().as_str(), Some("d"));
        let seq = v.get("a").unwrap().as_seq().unwrap();
        assert_eq!(seq[0], Value::Int(1));
        assert!(seq[1].get("b").unwrap().is_null());
    }

    #[test]
    fn string_escapes_roundtrip() {
        let original = Value::str("line1\nline2\t\"quoted\" \\slash\u{1F680}");
        let s = to_string(&original);
        assert_eq!(parse(&s).unwrap(), original);
    }

    #[test]
    fn unicode_escape_parsing() {
        assert_eq!(parse(r#""A""#).unwrap(), Value::str("A"));
        // Surrogate pair: rocket emoji.
        assert_eq!(parse(r#""🚀""#).unwrap(), Value::str("🚀"));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("tru").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("1 2").is_err());
        assert!(
            parse(r#""\ud83d""#).is_err(),
            "unpaired surrogate must fail"
        );
    }

    #[test]
    fn error_carries_position() {
        let err = parse("{\n  \"a\": @\n}").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("unexpected character"));
    }

    #[test]
    fn pretty_output_shape() {
        let mut m = OrderedMap::new();
        m.insert("sku", Value::str("HB120rs_v3"));
        m.insert("nnodes", Value::Seq(vec![Value::Int(1), Value::Int(2)]));
        let s = to_string_pretty(&Value::Map(m));
        let expected = "{\n  \"sku\": \"HB120rs_v3\",\n  \"nnodes\": [\n    1,\n    2\n  ]\n}\n";
        assert_eq!(s, expected);
    }

    #[test]
    fn empty_containers() {
        assert_eq!(to_string(&Value::Seq(vec![])), "[]");
        assert_eq!(to_string(&Value::Map(OrderedMap::new())), "{}");
        assert_eq!(parse("[]").unwrap(), Value::Seq(vec![]));
        assert_eq!(parse("{}").unwrap(), Value::Map(OrderedMap::new()));
    }

    #[test]
    fn depth_guard_rejects_pathological_nesting() {
        // A 100k-deep array must fail cleanly, not overflow the stack.
        let deep = "[".repeat(100_000) + &"]".repeat(100_000);
        let err = parse(&deep).unwrap_err();
        assert!(err.message.contains("nesting"), "{err}");
        // Moderate nesting still parses.
        let ok = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn huge_integer_falls_back_to_float() {
        let v = parse("99999999999999999999999").unwrap();
        assert!(matches!(v, Value::Float(_)));
    }
}
