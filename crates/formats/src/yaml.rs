//! Parser for the YAML subset used by HPCAdvisor configuration files.
//!
//! Supported constructs (everything the paper's Listing 1 and the bundled
//! examples use, plus a little headroom):
//!
//! * block mappings with arbitrary nesting (indentation-based);
//! * block sequences (`- item`), including `- key: value` map items;
//! * flow sequences (`[1, 2, 3]`) and flow scalars inside them;
//! * single- and double-quoted strings;
//! * scalar type inference: `true`/`false`, `null`/`~`, integers, floats,
//!   otherwise strings;
//! * `#` comments (outside quotes) and blank lines;
//! * a leading `---` document marker.
//!
//! One deliberate divergence from strict YAML: **duplicate mapping keys are
//! coalesced into a sequence** instead of being an error. The paper's
//! Listing 1 writes a parameter sweep as
//!
//! ```yaml
//! appinputs:
//!   mesh: "80 24 24"
//!   mesh: "60 16 16"
//! ```
//!
//! and the tool treats the duplicate `mesh` keys as the list of values to
//! sweep; this parser reproduces that behaviour.

use crate::error::FormatError;
use crate::value::{OrderedMap, Value};

/// Maximum block nesting depth — a stack-overflow guard for crafted
/// documents (nesting is indentation-driven, so an attacker-controlled
/// file could otherwise recurse arbitrarily).
const MAX_DEPTH: usize = 128;

/// Parses a YAML document into a [`Value`].
pub fn parse(input: &str) -> Result<Value, FormatError> {
    let lines = preprocess(input);
    if lines.is_empty() {
        return Ok(Value::Null);
    }
    let mut pos = 0;
    let v = parse_block(&lines, &mut pos, lines[0].indent, 0)?;
    if pos < lines.len() {
        return Err(FormatError::on_line(
            lines[pos].number,
            "content at unexpected indentation after block",
        ));
    }
    Ok(v)
}

#[derive(Debug)]
struct Line {
    number: usize,
    indent: usize,
    text: String,
}

/// Strips comments/blank lines and records indentation.
fn preprocess(input: &str) -> Vec<Line> {
    let mut out = Vec::new();
    for (i, raw) in input.lines().enumerate() {
        let number = i + 1;
        let stripped = strip_comment(raw);
        let trimmed_end = stripped.trim_end();
        if trimmed_end.trim().is_empty() {
            continue;
        }
        if number == 1 && trimmed_end.trim() == "---" {
            continue;
        }
        let indent = trimmed_end.len() - trimmed_end.trim_start().len();
        out.push(Line {
            number,
            indent,
            text: trimmed_end.trim_start().to_string(),
        });
    }
    out
}

/// Removes a trailing `#` comment, respecting quoted strings.
fn strip_comment(line: &str) -> &str {
    let bytes = line.as_bytes();
    let mut in_single = false;
    let mut in_double = false;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\'' if !in_double => in_single = !in_single,
            b'"' if !in_single => in_double = !in_double,
            b'\\' if in_double => i += 1,
            b'#' if !in_single && !in_double
                // YAML requires a space (or line start) before the '#'.
                && (i == 0 || bytes[i - 1] == b' ' || bytes[i - 1] == b'\t') =>
            {
                return &line[..i];
            }
            _ => {}
        }
        i += 1;
    }
    line
}

fn parse_block(
    lines: &[Line],
    pos: &mut usize,
    indent: usize,
    depth: usize,
) -> Result<Value, FormatError> {
    if *pos >= lines.len() {
        return Ok(Value::Null);
    }
    if depth > MAX_DEPTH {
        return Err(FormatError::on_line(
            lines[*pos].number,
            format!("nesting deeper than {MAX_DEPTH} levels"),
        ));
    }
    if lines[*pos].text.starts_with("- ") || lines[*pos].text == "-" {
        parse_sequence(lines, pos, indent, depth)
    } else {
        parse_mapping(lines, pos, indent, depth)
    }
}

fn parse_sequence(
    lines: &[Line],
    pos: &mut usize,
    indent: usize,
    depth: usize,
) -> Result<Value, FormatError> {
    let mut items = Vec::new();
    while *pos < lines.len() {
        let line = &lines[*pos];
        if line.indent < indent {
            break;
        }
        if line.indent > indent {
            return Err(FormatError::on_line(line.number, "unexpected indentation"));
        }
        if !(line.text.starts_with("- ") || line.text == "-") {
            break;
        }
        let number = line.number;
        let rest = line.text[1..].trim_start().to_string();
        *pos += 1;
        if rest.is_empty() {
            // `-` alone: nested block on following, deeper-indented lines.
            if *pos < lines.len() && lines[*pos].indent > indent {
                let child_indent = lines[*pos].indent;
                items.push(parse_block(lines, pos, child_indent, depth + 1)?);
            } else {
                items.push(Value::Null);
            }
        } else if let Some((key, val)) = split_key_value(&rest) {
            // `- key: value` starts an inline map item; subsequent deeper
            // lines extend that map.
            let mut map = OrderedMap::new();
            insert_pair(&mut map, key, val, lines, pos, indent + 2, number, depth)?;
            while *pos < lines.len() && lines[*pos].indent > indent {
                let child = &lines[*pos];
                let Some((k, v)) = split_key_value(&child.text) else {
                    return Err(FormatError::on_line(
                        child.number,
                        "expected 'key: value' inside sequence map item",
                    ));
                };
                let child_indent = child.indent;
                let child_number = child.number;
                *pos += 1;
                insert_pair(
                    &mut map,
                    k,
                    v,
                    lines,
                    pos,
                    child_indent,
                    child_number,
                    depth,
                )?;
            }
            items.push(Value::Map(map));
        } else {
            items.push(parse_scalar(&rest, number)?);
        }
    }
    Ok(Value::Seq(items))
}

fn parse_mapping(
    lines: &[Line],
    pos: &mut usize,
    indent: usize,
    depth: usize,
) -> Result<Value, FormatError> {
    let mut map = OrderedMap::new();
    while *pos < lines.len() {
        let line = &lines[*pos];
        if line.indent < indent {
            break;
        }
        if line.indent > indent {
            return Err(FormatError::on_line(line.number, "unexpected indentation"));
        }
        if line.text.starts_with("- ") || line.text == "-" {
            break;
        }
        let Some((key, val)) = split_key_value(&line.text) else {
            return Err(FormatError::on_line(
                line.number,
                format!("expected 'key: value', found '{}'", line.text),
            ));
        };
        let number = line.number;
        *pos += 1;
        insert_pair(&mut map, key, val, lines, pos, indent, number, depth)?;
    }
    Ok(Value::Map(map))
}

/// Inserts a parsed `key: value` pair, resolving empty values to nested
/// blocks and coalescing duplicate keys into sequences (see module docs).
#[allow(clippy::too_many_arguments)]
fn insert_pair(
    map: &mut OrderedMap,
    key: String,
    val: String,
    lines: &[Line],
    pos: &mut usize,
    indent: usize,
    number: usize,
    depth: usize,
) -> Result<(), FormatError> {
    let value = if val.is_empty() {
        if *pos < lines.len() && lines[*pos].indent > indent {
            let child_indent = lines[*pos].indent;
            parse_block(lines, pos, child_indent, depth + 1)?
        } else if *pos < lines.len()
            && lines[*pos].indent == indent
            && (lines[*pos].text.starts_with("- ") || lines[*pos].text == "-")
        {
            // Sequences are commonly written at the same indent as their key.
            parse_sequence(lines, pos, indent, depth + 1)?
        } else {
            Value::Null
        }
    } else {
        parse_scalar(&val, number)?
    };
    match map.get_mut(&key) {
        None => {
            map.insert(key, value);
        }
        Some(Value::Seq(existing)) => existing.push(value),
        Some(slot) => {
            let first = std::mem::replace(slot, Value::Null);
            *slot = Value::Seq(vec![first, value]);
        }
    }
    Ok(())
}

/// Splits `key: value` at the first unquoted colon-space (or trailing colon).
fn split_key_value(text: &str) -> Option<(String, String)> {
    let bytes = text.as_bytes();
    let mut in_single = false;
    let mut in_double = false;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\'' if !in_double => in_single = !in_single,
            b'"' if !in_single => in_double = !in_double,
            b'\\' if in_double => i += 1,
            b':' if !in_single && !in_double => {
                let is_sep = i + 1 == bytes.len() || bytes[i + 1] == b' ';
                if is_sep {
                    let key = unquote(text[..i].trim());
                    let val = text[i + 1..].trim().to_string();
                    return Some((key, val));
                }
            }
            _ => {}
        }
        i += 1;
    }
    None
}

fn unquote(s: &str) -> String {
    let b = s.as_bytes();
    if b.len() >= 2
        && ((b[0] == b'"' && b[b.len() - 1] == b'"') || (b[0] == b'\'' && b[b.len() - 1] == b'\''))
    {
        s[1..s.len() - 1].to_string()
    } else {
        s.to_string()
    }
}

/// Parses a scalar or flow sequence with YAML type inference.
fn parse_scalar(text: &str, line: usize) -> Result<Value, FormatError> {
    let t = text.trim();
    if t.starts_with('[') {
        return parse_flow_seq(t, line);
    }
    if t.starts_with('"') || t.starts_with('\'') {
        return Ok(Value::Str(unquote(t)));
    }
    Ok(infer_scalar(t))
}

fn infer_scalar(t: &str) -> Value {
    match t {
        "" | "~" | "null" | "Null" | "NULL" => Value::Null,
        "true" | "True" | "TRUE" => Value::Bool(true),
        "false" | "False" | "FALSE" => Value::Bool(false),
        _ => {
            if let Ok(i) = t.parse::<i64>() {
                Value::Int(i)
            } else if is_float_like(t) {
                match t.parse::<f64>() {
                    Ok(f) => Value::Float(f),
                    Err(_) => Value::str(t),
                }
            } else {
                Value::str(t)
            }
        }
    }
}

/// Restricts float inference to things that look like numbers, so that
/// strings like `v1.2.3` or `1e` stay strings.
fn is_float_like(t: &str) -> bool {
    let mut chars = t.chars().peekable();
    if matches!(chars.peek(), Some('+' | '-')) {
        chars.next();
    }
    let mut digits = 0;
    let mut dots = 0;
    let mut exps = 0;
    for c in chars {
        match c {
            '0'..='9' => digits += 1,
            '.' => dots += 1,
            'e' | 'E' => exps += 1,
            '+' | '-' if exps == 1 => {}
            _ => return false,
        }
    }
    digits > 0 && dots <= 1 && exps <= 1 && (dots == 1 || exps == 1)
}

fn parse_flow_seq(t: &str, line: usize) -> Result<Value, FormatError> {
    if !t.ends_with(']') {
        return Err(FormatError::on_line(line, "unterminated flow sequence"));
    }
    let inner = &t[1..t.len() - 1];
    let mut items = Vec::new();
    for part in split_flow_items(inner) {
        let p = part.trim();
        if p.is_empty() {
            continue;
        }
        items.push(parse_scalar(p, line)?);
    }
    Ok(Value::Seq(items))
}

/// Splits flow-sequence items on commas outside quotes/brackets.
fn split_flow_items(inner: &str) -> Vec<String> {
    let mut parts = Vec::new();
    let mut depth = 0usize;
    let mut in_single = false;
    let mut in_double = false;
    let mut current = String::new();
    for c in inner.chars() {
        match c {
            '\'' if !in_double => {
                in_single = !in_single;
                current.push(c);
            }
            '"' if !in_single => {
                in_double = !in_double;
                current.push(c);
            }
            '[' if !in_single && !in_double => {
                depth += 1;
                current.push(c);
            }
            ']' if !in_single && !in_double => {
                depth = depth.saturating_sub(1);
                current.push(c);
            }
            ',' if depth == 0 && !in_single && !in_double => {
                parts.push(std::mem::take(&mut current));
            }
            _ => current.push(c),
        }
    }
    if !current.trim().is_empty() {
        parts.push(current);
    }
    parts
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Listing 1, essentially verbatim.
    const LISTING1: &str = r#"# Example of main configuration file

subscription: mysubscription
skus:
- Standard_HC44rs
- Standard_HB120rs_v2
- Standard_HB120rs_v3
rgprefix: hpcadvisortest1
appsetupurl: https://example.com/openfoam.sh
nnodes: [1, 2, 3, 4, 8, 16]
appname: openfoam
tags:
  version: v1
region: southcentralus
createjumpbox: true
ppr: 100
appinputs:
  mesh: "80 24 24"
  mesh: "60 16 16"
"#;

    #[test]
    fn parses_listing1() {
        let doc = parse(LISTING1).unwrap();
        assert_eq!(
            doc.get("subscription").unwrap().as_str(),
            Some("mysubscription")
        );
        let skus = doc.get("skus").unwrap().as_seq().unwrap();
        assert_eq!(skus.len(), 3);
        assert_eq!(skus[0].as_str(), Some("Standard_HC44rs"));
        let nnodes = doc.get("nnodes").unwrap().as_seq().unwrap();
        assert_eq!(
            nnodes
                .iter()
                .map(|v| v.as_int().unwrap())
                .collect::<Vec<_>>(),
            vec![1, 2, 3, 4, 8, 16]
        );
        assert_eq!(doc.get("ppr").unwrap().as_int(), Some(100));
        assert_eq!(doc.get("createjumpbox").unwrap().as_bool(), Some(true));
        assert_eq!(
            doc.get("tags").unwrap().get("version").unwrap().as_str(),
            Some("v1")
        );
        // Duplicate `mesh:` keys coalesce into the sweep list.
        let mesh = doc.get("appinputs").unwrap().get("mesh").unwrap();
        let values: Vec<_> = mesh
            .as_seq()
            .unwrap()
            .iter()
            .map(|v| v.as_str().unwrap())
            .collect();
        assert_eq!(values, vec!["80 24 24", "60 16 16"]);
    }

    #[test]
    fn scalar_inference() {
        assert_eq!(infer_scalar("42"), Value::Int(42));
        assert_eq!(infer_scalar("-3"), Value::Int(-3));
        assert_eq!(infer_scalar("2.5"), Value::Float(2.5));
        assert_eq!(infer_scalar("1e3"), Value::Float(1000.0));
        assert_eq!(infer_scalar("true"), Value::Bool(true));
        assert_eq!(infer_scalar("~"), Value::Null);
        assert_eq!(infer_scalar("v1.2.3"), Value::str("v1.2.3"));
        assert_eq!(infer_scalar("80 24 24"), Value::str("80 24 24"));
        assert_eq!(infer_scalar("1e"), Value::str("1e"));
    }

    #[test]
    fn quoted_strings_suppress_inference() {
        let doc = parse("a: \"100\"\nb: 'true'\n").unwrap();
        assert_eq!(doc.get("a").unwrap(), &Value::str("100"));
        assert_eq!(doc.get("b").unwrap(), &Value::str("true"));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let doc = parse("# header\n\na: 1 # trailing\n\n# another\nb: 2\n").unwrap();
        assert_eq!(doc.get("a").unwrap().as_int(), Some(1));
        assert_eq!(doc.get("b").unwrap().as_int(), Some(2));
    }

    #[test]
    fn hash_inside_quotes_is_not_comment() {
        let doc = parse("url: \"http://x/#anchor\"\n").unwrap();
        assert_eq!(doc.get("url").unwrap().as_str(), Some("http://x/#anchor"));
    }

    #[test]
    fn nested_mappings() {
        let doc = parse("outer:\n  inner:\n    leaf: 7\n").unwrap();
        assert_eq!(
            doc.get("outer")
                .unwrap()
                .get("inner")
                .unwrap()
                .get("leaf")
                .unwrap()
                .as_int(),
            Some(7)
        );
    }

    #[test]
    fn sequence_of_maps() {
        let doc = parse("jobs:\n- name: a\n  size: 1\n- name: b\n  size: 2\n").unwrap();
        let jobs = doc.get("jobs").unwrap().as_seq().unwrap();
        assert_eq!(jobs.len(), 2);
        assert_eq!(jobs[0].get("name").unwrap().as_str(), Some("a"));
        assert_eq!(jobs[1].get("size").unwrap().as_int(), Some(2));
    }

    #[test]
    fn indented_sequence_under_key() {
        let doc = parse("skus:\n  - A\n  - B\n").unwrap();
        let skus = doc.get("skus").unwrap().as_seq().unwrap();
        assert_eq!(skus.len(), 2);
    }

    #[test]
    fn flow_sequence_with_strings() {
        let doc = parse("xs: [a, \"b, c\", 3]\n").unwrap();
        let xs = doc.get("xs").unwrap().as_seq().unwrap();
        assert_eq!(xs[0], Value::str("a"));
        assert_eq!(xs[1], Value::str("b, c"));
        assert_eq!(xs[2], Value::Int(3));
    }

    #[test]
    fn empty_flow_sequence() {
        let doc = parse("xs: []\n").unwrap();
        assert_eq!(doc.get("xs").unwrap().as_seq().unwrap().len(), 0);
    }

    #[test]
    fn document_marker_skipped() {
        let doc = parse("---\na: 1\n").unwrap();
        assert_eq!(doc.get("a").unwrap().as_int(), Some(1));
    }

    #[test]
    fn empty_document_is_null() {
        assert_eq!(parse("").unwrap(), Value::Null);
        assert_eq!(parse("# only a comment\n").unwrap(), Value::Null);
    }

    #[test]
    fn key_with_url_value() {
        // Colons inside values (no space after) must not split.
        let doc = parse("appsetupurl: https://host:8080/x.sh\n").unwrap();
        assert_eq!(
            doc.get("appsetupurl").unwrap().as_str(),
            Some("https://host:8080/x.sh")
        );
    }

    #[test]
    fn errors_on_garbage() {
        assert!(parse("just a bare scalar line\nanother\n").is_err());
        assert!(parse("a: [1, 2\n").is_err());
    }

    #[test]
    fn error_reports_line_number() {
        let err = parse("a: 1\nnot-a-kv\n").unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn depth_guard_rejects_pathological_nesting() {
        // 2,000 nested mappings (enough to blow the native stack without a
        // guard) must fail cleanly. Indentation grows per level, so keep
        // the document size quadratic-but-small: ~2M characters.
        let mut doc = String::new();
        for d in 0..2_000 {
            doc.push_str(&" ".repeat(d));
            doc.push_str("k:\n");
        }
        let err = parse(&doc).unwrap_err();
        assert!(err.message.contains("nesting"), "{err}");
        // Moderate nesting still parses.
        let mut ok = String::new();
        for d in 0..50 {
            ok.push_str(&" ".repeat(d));
            ok.push_str("k:\n");
        }
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn null_valued_key() {
        let doc = parse("a:\nb: 2\n").unwrap();
        assert!(doc.get("a").unwrap().is_null());
        assert_eq!(doc.get("b").unwrap().as_int(), Some(2));
    }
}
