//! The dynamically-typed document value shared by the YAML and JSON codecs.

use std::fmt;

/// An insertion-order-preserving string-keyed map.
///
/// Config files and datasets are small (tens of keys), so a `Vec` of pairs
/// with linear lookup beats a hash map on both memory and iteration order
/// guarantees. Duplicate inserts replace the existing value in place,
/// preserving the original position.
#[derive(Clone, PartialEq, Default)]
pub struct OrderedMap {
    entries: Vec<(String, Value)>,
}

impl OrderedMap {
    /// Creates an empty map.
    pub fn new() -> Self {
        OrderedMap {
            entries: Vec::new(),
        }
    }

    /// Inserts or replaces `key`, returning the previous value if any.
    pub fn insert(&mut self, key: impl Into<String>, value: Value) -> Option<Value> {
        let key = key.into();
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    /// Looks up a key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries
            .iter()
            .find_map(|(k, v)| (k == key).then_some(v))
    }

    /// Mutable lookup.
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Value> {
        self.entries
            .iter_mut()
            .find_map(|(k, v)| (k == key).then_some(v))
    }

    /// Removes a key, returning its value.
    pub fn remove(&mut self, key: &str) -> Option<Value> {
        let idx = self.entries.iter().position(|(k, _)| k == key)?;
        Some(self.entries.remove(idx).1)
    }

    /// True if the key is present.
    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the map has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Iterates keys in insertion order.
    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.entries.iter().map(|(k, _)| k.as_str())
    }
}

impl fmt::Debug for OrderedMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

impl FromIterator<(String, Value)> for OrderedMap {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Self {
        let mut m = OrderedMap::new();
        for (k, v) in iter {
            m.insert(k, v);
        }
        m
    }
}

/// A YAML/JSON document value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null` / `~` / empty scalar.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A 64-bit signed integer.
    Int(i64),
    /// A finite 64-bit float.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered mapping.
    Map(OrderedMap),
}

impl Value {
    /// A convenience constructor for string values.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// Returns the string if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the integer if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns a float if this is numeric (`Int` widens losslessly enough
    /// for config-scale numbers).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Returns the boolean if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the sequence if this is a `Seq`.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the map if this is a `Map`.
    pub fn as_map(&self) -> Option<&OrderedMap> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Map lookup shorthand: `doc.get("key")` on a `Map`, else `None`.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_map().and_then(|m| m.get(key))
    }

    /// True for `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Renders the value as the plain string the tool's dataset uses for
    /// scenario parameters: scalars verbatim, composites in compact JSON.
    pub fn to_plain_string(&self) -> String {
        match self {
            Value::Null => String::new(),
            Value::Bool(b) => b.to_string(),
            Value::Int(i) => i.to_string(),
            Value::Float(f) => format_float(*f),
            Value::Str(s) => s.clone(),
            other => crate::json::to_string(other),
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::Str(s.to_string())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::Str(s)
    }
}
impl From<i64> for Value {
    fn from(i: i64) -> Value {
        Value::Int(i)
    }
}
impl From<u32> for Value {
    fn from(i: u32) -> Value {
        Value::Int(i as i64)
    }
}
impl From<f64> for Value {
    fn from(f: f64) -> Value {
        Value::Float(f)
    }
}
impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}
impl From<Vec<Value>> for Value {
    fn from(v: Vec<Value>) -> Value {
        Value::Seq(v)
    }
}
impl From<OrderedMap> for Value {
    fn from(m: OrderedMap) -> Value {
        Value::Map(m)
    }
}

/// Formats a float so that it round-trips and integral floats keep a `.0`
/// marker (distinguishing them from `Int` on re-parse is not required, but
/// keeps the dataset human-readable).
pub(crate) fn format_float(f: f64) -> String {
    if f == f.trunc() && f.abs() < 1e15 {
        format!("{f:.1}")
    } else {
        let mut s = format!("{f}");
        if !s.contains('.') && !s.contains('e') && !s.contains("inf") && !s.contains("NaN") {
            s.push_str(".0");
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordered_map_preserves_insertion_order() {
        let mut m = OrderedMap::new();
        m.insert("z", Value::Int(1));
        m.insert("a", Value::Int(2));
        m.insert("m", Value::Int(3));
        let keys: Vec<_> = m.keys().collect();
        assert_eq!(keys, vec!["z", "a", "m"]);
    }

    #[test]
    fn insert_replaces_in_place() {
        let mut m = OrderedMap::new();
        m.insert("a", Value::Int(1));
        m.insert("b", Value::Int(2));
        let old = m.insert("a", Value::Int(10));
        assert_eq!(old, Some(Value::Int(1)));
        assert_eq!(m.keys().collect::<Vec<_>>(), vec!["a", "b"]);
        assert_eq!(m.get("a"), Some(&Value::Int(10)));
    }

    #[test]
    fn remove_returns_value() {
        let mut m = OrderedMap::new();
        m.insert("a", Value::Int(1));
        assert_eq!(m.remove("a"), Some(Value::Int(1)));
        assert_eq!(m.remove("a"), None);
        assert!(m.is_empty());
    }

    #[test]
    fn value_accessors() {
        assert_eq!(Value::Int(3).as_f64(), Some(3.0));
        assert_eq!(Value::Float(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::str("x").as_str(), Some("x"));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert!(Value::Null.is_null());
        assert_eq!(Value::str("x").as_int(), None);
    }

    #[test]
    fn nested_get() {
        let mut inner = OrderedMap::new();
        inner.insert("mesh", Value::str("80 24 24"));
        let mut outer = OrderedMap::new();
        outer.insert("appinputs", Value::Map(inner));
        let doc = Value::Map(outer);
        assert_eq!(
            doc.get("appinputs")
                .and_then(|v| v.get("mesh"))
                .and_then(|v| v.as_str()),
            Some("80 24 24")
        );
    }

    #[test]
    fn plain_string_rendering() {
        assert_eq!(Value::Int(8).to_plain_string(), "8");
        assert_eq!(Value::Float(2.0).to_plain_string(), "2.0");
        assert_eq!(Value::str("a b").to_plain_string(), "a b");
        assert_eq!(Value::Bool(false).to_plain_string(), "false");
        assert_eq!(Value::Null.to_plain_string(), "");
        assert_eq!(
            Value::Seq(vec![Value::Int(1), Value::Int(2)]).to_plain_string(),
            "[1,2]"
        );
    }

    #[test]
    fn from_impls() {
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from("s"), Value::str("s"));
        assert_eq!(Value::from(1.5), Value::Float(1.5));
    }
}
