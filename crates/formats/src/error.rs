use std::fmt;

/// Error produced while parsing a YAML, JSON or CSV document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FormatError {
    /// 1-based line where the error was detected.
    pub line: usize,
    /// 1-based column where the error was detected (0 if unknown).
    pub col: usize,
    /// Human-readable description of the problem.
    pub message: String,
}

impl FormatError {
    /// Creates an error at a known line/column.
    pub fn at(line: usize, col: usize, message: impl Into<String>) -> Self {
        FormatError {
            line,
            col,
            message: message.into(),
        }
    }

    /// Creates an error at a known line, with no column information.
    pub fn on_line(line: usize, message: impl Into<String>) -> Self {
        FormatError::at(line, 0, message)
    }
}

impl fmt::Display for FormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.col > 0 {
            write!(f, "line {}, col {}: {}", self.line, self.col, self.message)
        } else {
            write!(f, "line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for FormatError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_with_and_without_column() {
        assert_eq!(
            FormatError::at(3, 7, "bad token").to_string(),
            "line 3, col 7: bad token"
        );
        assert_eq!(
            FormatError::on_line(12, "unexpected indent").to_string(),
            "line 12: unexpected indent"
        );
    }
}
