//! Versioned newline-delimited JSON envelope for the advisor daemon.
//!
//! `hpcadvisor serve` speaks a line protocol: each direction is a stream
//! of frames, one compact JSON object per line. A frame is an envelope —
//! version, correlation id, kind — around an opaque [`Value`] body; the
//! service layer defines what bodies mean for each kind, this module only
//! guarantees the envelope shape:
//!
//! ```json
//! {"v": 1, "id": 3, "kind": "collect", "body": {"tenant": "acme"}}
//! ```
//!
//! * `v` — protocol version ([`WIRE_VERSION`]). A peer speaking a
//!   different version is rejected up front with a clear error instead of
//!   a confusing body-level failure.
//! * `id` — client-chosen correlation id; every response frame for a
//!   request echoes it, so one connection can multiplex requests. Clients
//!   draw ids from a [`MonotonicId`] so a resubmitted request is
//!   distinguishable from its original on the wire, while the body-level
//!   `request_key` stays the same for idempotent resubmission.
//! * `kind` — frame discriminator (`collect`, `progress`, `result`,
//!   `error`, [`KIND_HEARTBEAT`], ...).
//! * `body` — kind-specific payload, `null` when absent.
//!
//! Frames encode compactly (never pretty) so one frame is always exactly
//! one line; [`Frame::decode`] rejects embedded newlines for the same
//! reason, rejects lines over [`MAX_FRAME_BYTES`], and returns a typed
//! [`WireError`] — never a panic — for any adversarial input.
//!
//! Error frames are themselves typed: the body carries a machine-readable
//! [`ErrorCode`] alongside the human-readable message, plus an optional
//! `retry_after_ms` hint so clients can back off intelligently instead of
//! pattern-matching on prose.

use crate::error::FormatError;
use crate::json;
use crate::value::{OrderedMap, Value};
use std::fmt;
use std::sync::atomic::{AtomicI64, Ordering};

/// Version of the wire envelope. Bump on any incompatible change to the
/// envelope shape or to the meaning of a standard frame kind.
pub const WIRE_VERSION: i64 = 1;

/// Hard ceiling on one encoded frame line (bytes, without the trailing
/// newline). Readers must stop buffering past this and fail the frame;
/// writers must refuse to emit bigger frames. Large enough for a
/// several-thousand-scenario dataset embedded as a JSON string, small
/// enough that a hostile peer cannot balloon the daemon's memory with one
/// endless line.
pub const MAX_FRAME_BYTES: usize = 16 * 1024 * 1024;

/// Frame kind of the keep-alive heartbeat the daemon emits while a
/// long-running job produces no other traffic. Carries no body; clients
/// reset their read deadline and otherwise ignore it.
pub const KIND_HEARTBEAT: &str = "hb";

/// Typed decode failure. Every adversarial input maps to one of these —
/// truncated JSON, oversized lines, version skew, random bytes — so the
/// daemon can answer with a precise [`ErrorCode`] instead of crashing or
/// guessing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The line exceeds [`MAX_FRAME_BYTES`].
    TooLarge {
        /// Observed length in bytes.
        len: usize,
        /// The enforced ceiling.
        max: usize,
    },
    /// The input contains an embedded newline (frames are one line each).
    MultiLine,
    /// The line is not valid JSON, not an object, or missing/mistyping an
    /// envelope field. The reason says which.
    Malformed(String),
    /// The envelope is well-formed but speaks a different protocol
    /// version.
    VersionSkew {
        /// The version the peer sent.
        got: i64,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::TooLarge { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max}-byte limit")
            }
            WireError::MultiLine => write!(f, "frame must be a single line"),
            WireError::Malformed(reason) => write!(f, "malformed frame: {reason}"),
            WireError::VersionSkew { got } => {
                write!(f, "wire version {got} != {WIRE_VERSION}")
            }
        }
    }
}

impl std::error::Error for WireError {}

impl From<WireError> for FormatError {
    fn from(e: WireError) -> FormatError {
        FormatError::on_line(1, e.to_string())
    }
}

/// Machine-readable reason on an `error` frame. The daemon maps every
/// service refusal (`ServiceError` in `hpcadvisor-core`) onto one of
/// these through an exhaustive match, plus the connection-level codes that
/// never reach the service (framing, shedding, reaping).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ErrorCode {
    /// The peer's bytes did not decode into a frame.
    BadFrame,
    /// The frame decoded but its body is invalid for its kind.
    BadRequest,
    /// The frame kind is not one the daemon serves.
    UnknownKind,
    /// The daemon's bounded job queue is full; retry after the hint.
    QueueFull,
    /// The tenant is at its in-flight job ceiling.
    OverQuota,
    /// The tenant's cumulative budget is exhausted.
    BudgetExhausted,
    /// The request's scenario grid exceeds the per-request ceiling.
    GridTooLarge,
    /// The daemon is shutting down and accepts no new work.
    ShuttingDown,
    /// The job was admitted but failed while running.
    JobFailed,
    /// The daemon is shedding load at the connection level; retry after
    /// the hint.
    Overloaded,
    /// The connection sat idle past the daemon's deadline and was reaped.
    IdleTimeout,
    /// Unexpected server-side failure.
    Internal,
}

impl ErrorCode {
    /// Stable wire spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::BadFrame => "bad_frame",
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::UnknownKind => "unknown_kind",
            ErrorCode::QueueFull => "queue_full",
            ErrorCode::OverQuota => "over_quota",
            ErrorCode::BudgetExhausted => "budget_exhausted",
            ErrorCode::GridTooLarge => "grid_too_large",
            ErrorCode::ShuttingDown => "shutting_down",
            ErrorCode::JobFailed => "job_failed",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::IdleTimeout => "idle_timeout",
            ErrorCode::Internal => "internal",
        }
    }

    /// Parses the wire spelling back.
    pub fn parse(s: &str) -> Option<ErrorCode> {
        Some(match s {
            "bad_frame" => ErrorCode::BadFrame,
            "bad_request" => ErrorCode::BadRequest,
            "unknown_kind" => ErrorCode::UnknownKind,
            "queue_full" => ErrorCode::QueueFull,
            "over_quota" => ErrorCode::OverQuota,
            "budget_exhausted" => ErrorCode::BudgetExhausted,
            "grid_too_large" => ErrorCode::GridTooLarge,
            "shutting_down" => ErrorCode::ShuttingDown,
            "job_failed" => ErrorCode::JobFailed,
            "overloaded" => ErrorCode::Overloaded,
            "idle_timeout" => ErrorCode::IdleTimeout,
            "internal" => ErrorCode::Internal,
            _ => return None,
        })
    }

    /// Whether a client resubmitting the identical request (same
    /// `request_key`) can reasonably expect a different answer later.
    /// Admission pressure clears as jobs finish; malformed input never
    /// does.
    pub fn retryable(self) -> bool {
        matches!(
            self,
            ErrorCode::QueueFull
                | ErrorCode::OverQuota
                | ErrorCode::ShuttingDown
                | ErrorCode::Overloaded
                | ErrorCode::IdleTimeout
        )
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Monotonic correlation-id source for clients: every attempt — including
/// an idempotent resubmission of the same request after a dropped
/// connection — gets a strictly increasing id, so daemon logs can order
/// attempts while the body-level `request_key` ties them together.
#[derive(Debug, Default)]
pub struct MonotonicId(AtomicI64);

impl MonotonicId {
    /// Starts counting from 1.
    pub fn new() -> MonotonicId {
        MonotonicId(AtomicI64::new(1))
    }

    /// The next id (strictly greater than every id handed out before).
    pub fn next(&self) -> i64 {
        self.0.fetch_add(1, Ordering::SeqCst)
    }
}

/// One protocol frame: a versioned, correlated, typed envelope.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// Correlation id echoed on every response to this request.
    pub id: i64,
    /// Frame discriminator.
    pub kind: String,
    /// Kind-specific payload (`Value::Null` when absent).
    pub body: Value,
}

impl Frame {
    /// Builds a frame with the current [`WIRE_VERSION`].
    pub fn new(id: i64, kind: impl Into<String>, body: Value) -> Frame {
        Frame {
            id,
            kind: kind.into(),
            body,
        }
    }

    /// A keep-alive heartbeat for the given request.
    pub fn heartbeat(id: i64) -> Frame {
        Frame::new(id, KIND_HEARTBEAT, Value::Null)
    }

    /// A typed error frame: machine-readable `code`, human-readable
    /// `message`, and an optional `retry_after_ms` backoff hint.
    pub fn error(id: i64, code: ErrorCode, message: &str, retry_after_ms: Option<u64>) -> Frame {
        let mut body = OrderedMap::new();
        body.insert("code", Value::str(code.as_str()));
        body.insert("message", Value::str(message));
        if let Some(ms) = retry_after_ms {
            body.insert("retry_after_ms", Value::Int(ms as i64));
        }
        Frame::new(id, "error", Value::Map(body))
    }

    /// The typed code of an `error` frame. `None` for other kinds, or for
    /// error frames from peers speaking an unknown code (treated by
    /// callers as [`ErrorCode::Internal`]-like: not retryable).
    pub fn error_code(&self) -> Option<ErrorCode> {
        if self.kind != "error" {
            return None;
        }
        self.body
            .as_map()
            .and_then(|m| m.get("code"))
            .and_then(Value::as_str)
            .and_then(ErrorCode::parse)
    }

    /// The human-readable message of an `error` frame.
    pub fn error_message(&self) -> Option<&str> {
        if self.kind != "error" {
            return None;
        }
        self.body
            .as_map()
            .and_then(|m| m.get("message"))
            .and_then(Value::as_str)
    }

    /// The `retry_after_ms` backoff hint of an `error` frame.
    pub fn retry_after_ms(&self) -> Option<u64> {
        if self.kind != "error" {
            return None;
        }
        self.body
            .as_map()
            .and_then(|m| m.get("retry_after_ms"))
            .and_then(Value::as_int)
            .and_then(|ms| u64::try_from(ms).ok())
    }

    /// Serializes to one compact JSON line (no trailing newline).
    pub fn encode(&self) -> String {
        let mut map = OrderedMap::new();
        map.insert("v", Value::Int(WIRE_VERSION));
        map.insert("id", Value::Int(self.id));
        map.insert("kind", Value::str(self.kind.clone()));
        map.insert("body", self.body.clone());
        json::to_string(&Value::Map(map))
    }

    /// Serializes, refusing frames whose encoding exceeds
    /// [`MAX_FRAME_BYTES`] — the writer-side twin of the decode limit, so
    /// a daemon never emits a line its own readers would reject.
    pub fn encode_checked(&self) -> Result<String, WireError> {
        let line = self.encode();
        if line.len() > MAX_FRAME_BYTES {
            return Err(WireError::TooLarge {
                len: line.len(),
                max: MAX_FRAME_BYTES,
            });
        }
        Ok(line)
    }

    /// Parses one line back into a frame, enforcing the size limit, the
    /// envelope shape and the protocol version. Every failure is a typed
    /// [`WireError`]; no input panics.
    pub fn decode(line: &str) -> Result<Frame, WireError> {
        if line.len() > MAX_FRAME_BYTES {
            return Err(WireError::TooLarge {
                len: line.len(),
                max: MAX_FRAME_BYTES,
            });
        }
        if line.contains('\n') {
            return Err(WireError::MultiLine);
        }
        let doc = json::parse(line).map_err(|e| WireError::Malformed(e.to_string()))?;
        let map = doc
            .as_map()
            .ok_or_else(|| WireError::Malformed("frame must be a JSON object".into()))?;
        let version = map
            .get("v")
            .and_then(|v| v.as_int())
            .ok_or_else(|| WireError::Malformed("frame missing version field 'v'".into()))?;
        if version != WIRE_VERSION {
            return Err(WireError::VersionSkew { got: version });
        }
        let id = map
            .get("id")
            .and_then(|v| v.as_int())
            .ok_or_else(|| WireError::Malformed("frame missing integer 'id'".into()))?;
        let kind = map
            .get("kind")
            .and_then(|v| v.as_str())
            .ok_or_else(|| WireError::Malformed("frame missing string 'kind'".into()))?;
        if kind.is_empty() {
            return Err(WireError::Malformed(
                "frame 'kind' must be non-empty".into(),
            ));
        }
        let body = map.get("body").cloned().unwrap_or(Value::Null);
        Ok(Frame {
            id,
            kind: kind.to_string(),
            body,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_single_line() {
        let mut body = OrderedMap::new();
        body.insert("tenant", Value::str("acme"));
        body.insert("seed", Value::Int(42));
        let frame = Frame::new(7, "collect", Value::Map(body));
        let line = frame.encode();
        assert!(!line.contains('\n'), "compact encoding is one line");
        assert_eq!(Frame::decode(&line).unwrap(), frame);
    }

    #[test]
    fn null_body_is_implicit() {
        let frame = Frame::decode(r#"{"v": 1, "id": 0, "kind": "ping"}"#).unwrap();
        assert_eq!(frame.kind, "ping");
        assert_eq!(frame.body, Value::Null);
        assert_eq!(Frame::decode(&frame.encode()).unwrap(), frame);
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let err = Frame::decode(r#"{"v": 2, "id": 0, "kind": "ping"}"#).unwrap_err();
        assert_eq!(err, WireError::VersionSkew { got: 2 });
        assert!(err.to_string().contains("wire version 2"), "{err}");
    }

    #[test]
    fn malformed_envelopes_are_rejected() {
        for (line, what) in [
            ("[]", "must be a JSON object"),
            (r#"{"id": 0, "kind": "x"}"#, "missing version"),
            (r#"{"v": 1, "kind": "x"}"#, "missing integer 'id'"),
            (r#"{"v": 1, "id": 0}"#, "missing string 'kind'"),
            (r#"{"v": 1, "id": 0, "kind": ""}"#, "non-empty"),
            ("not json", ""),
        ] {
            let err = Frame::decode(line).unwrap_err();
            assert!(matches!(err, WireError::Malformed(_)), "{line}: {err:?}");
            assert!(err.to_string().contains(what), "{line}: {err}");
        }
        assert_eq!(Frame::decode("{}\n{}"), Err(WireError::MultiLine));
    }

    #[test]
    fn oversized_lines_are_rejected_both_ways() {
        let huge = "x".repeat(MAX_FRAME_BYTES + 1);
        match Frame::decode(&huge).unwrap_err() {
            WireError::TooLarge { len, max } => {
                assert_eq!(len, MAX_FRAME_BYTES + 1);
                assert_eq!(max, MAX_FRAME_BYTES);
            }
            other => panic!("expected TooLarge, got {other:?}"),
        }
        let frame = Frame::new(1, "result", Value::str("y".repeat(MAX_FRAME_BYTES)));
        assert!(matches!(
            frame.encode_checked(),
            Err(WireError::TooLarge { .. })
        ));
        // Normal frames pass the checked encoder.
        assert!(Frame::new(1, "ping", Value::Null).encode_checked().is_ok());
    }

    #[test]
    fn typed_error_frames_roundtrip_code_message_and_hint() {
        let frame = Frame::error(9, ErrorCode::QueueFull, "job queue full", Some(250));
        let back = Frame::decode(&frame.encode()).unwrap();
        assert_eq!(back.error_code(), Some(ErrorCode::QueueFull));
        assert_eq!(back.error_message(), Some("job queue full"));
        assert_eq!(back.retry_after_ms(), Some(250));
        // Non-error frames expose none of the error accessors.
        let pong = Frame::new(9, "pong", Value::Null);
        assert_eq!(pong.error_code(), None);
        assert_eq!(pong.error_message(), None);
        assert_eq!(pong.retry_after_ms(), None);
        // Unknown codes parse as None (callers treat as not retryable).
        let odd = Frame::decode(
            r#"{"v":1,"id":1,"kind":"error","body":{"code":"whatever","message":"m"}}"#,
        )
        .unwrap();
        assert_eq!(odd.error_code(), None);
        assert_eq!(odd.error_message(), Some("m"));
    }

    #[test]
    fn error_codes_roundtrip_and_classify() {
        for code in [
            ErrorCode::BadFrame,
            ErrorCode::BadRequest,
            ErrorCode::UnknownKind,
            ErrorCode::QueueFull,
            ErrorCode::OverQuota,
            ErrorCode::BudgetExhausted,
            ErrorCode::GridTooLarge,
            ErrorCode::ShuttingDown,
            ErrorCode::JobFailed,
            ErrorCode::Overloaded,
            ErrorCode::IdleTimeout,
            ErrorCode::Internal,
        ] {
            assert_eq!(ErrorCode::parse(code.as_str()), Some(code));
        }
        assert_eq!(ErrorCode::parse("nope"), None);
        assert!(ErrorCode::QueueFull.retryable());
        assert!(ErrorCode::Overloaded.retryable());
        assert!(!ErrorCode::BadFrame.retryable());
        assert!(!ErrorCode::GridTooLarge.retryable());
    }

    #[test]
    fn monotonic_ids_strictly_increase() {
        let ids = MonotonicId::new();
        let a = ids.next();
        let b = ids.next();
        let c = ids.next();
        assert!(a < b && b < c, "{a} {b} {c}");
    }

    #[test]
    fn heartbeat_frames_are_tiny_and_typed() {
        let hb = Frame::heartbeat(3);
        assert_eq!(hb.kind, KIND_HEARTBEAT);
        let back = Frame::decode(&hb.encode()).unwrap();
        assert_eq!(back.id, 3);
        assert_eq!(back.body, Value::Null);
    }
}
