//! Versioned newline-delimited JSON envelope for the advisor daemon.
//!
//! `hpcadvisor serve` speaks a line protocol: each direction is a stream
//! of frames, one compact JSON object per line. A frame is an envelope —
//! version, correlation id, kind — around an opaque [`Value`] body; the
//! service layer defines what bodies mean for each kind, this module only
//! guarantees the envelope shape:
//!
//! ```json
//! {"v": 1, "id": 3, "kind": "collect", "body": {"tenant": "acme"}}
//! ```
//!
//! * `v` — protocol version ([`WIRE_VERSION`]). A peer speaking a
//!   different version is rejected up front with a clear error instead of
//!   a confusing body-level failure.
//! * `id` — client-chosen correlation id; every response frame for a
//!   request echoes it, so one connection can multiplex requests.
//! * `kind` — frame discriminator (`collect`, `progress`, `result`,
//!   `error`, ...).
//! * `body` — kind-specific payload, `null` when absent.
//!
//! Frames encode compactly (never pretty) so one frame is always exactly
//! one line; [`Frame::decode`] rejects embedded newlines for the same
//! reason.

use crate::error::FormatError;
use crate::json;
use crate::value::{OrderedMap, Value};

/// Version of the wire envelope. Bump on any incompatible change to the
/// envelope shape or to the meaning of a standard frame kind.
pub const WIRE_VERSION: i64 = 1;

/// One protocol frame: a versioned, correlated, typed envelope.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// Correlation id echoed on every response to this request.
    pub id: i64,
    /// Frame discriminator.
    pub kind: String,
    /// Kind-specific payload (`Value::Null` when absent).
    pub body: Value,
}

impl Frame {
    /// Builds a frame with the current [`WIRE_VERSION`].
    pub fn new(id: i64, kind: impl Into<String>, body: Value) -> Frame {
        Frame {
            id,
            kind: kind.into(),
            body,
        }
    }

    /// Serializes to one compact JSON line (no trailing newline).
    pub fn encode(&self) -> String {
        let mut map = OrderedMap::new();
        map.insert("v", Value::Int(WIRE_VERSION));
        map.insert("id", Value::Int(self.id));
        map.insert("kind", Value::str(self.kind.clone()));
        map.insert("body", self.body.clone());
        json::to_string(&Value::Map(map))
    }

    /// Parses one line back into a frame, enforcing the envelope shape
    /// and version.
    pub fn decode(line: &str) -> Result<Frame, FormatError> {
        if line.contains('\n') {
            return Err(FormatError::on_line(1, "frame must be a single line"));
        }
        let doc = json::parse(line)?;
        let map = doc
            .as_map()
            .ok_or_else(|| FormatError::on_line(1, "frame must be a JSON object"))?;
        let version = map
            .get("v")
            .and_then(|v| v.as_int())
            .ok_or_else(|| FormatError::on_line(1, "frame missing version field 'v'"))?;
        if version != WIRE_VERSION {
            return Err(FormatError::on_line(
                1,
                format!("wire version {version} != {WIRE_VERSION}"),
            ));
        }
        let id = map
            .get("id")
            .and_then(|v| v.as_int())
            .ok_or_else(|| FormatError::on_line(1, "frame missing integer 'id'"))?;
        let kind = map
            .get("kind")
            .and_then(|v| v.as_str())
            .ok_or_else(|| FormatError::on_line(1, "frame missing string 'kind'"))?;
        if kind.is_empty() {
            return Err(FormatError::on_line(1, "frame 'kind' must be non-empty"));
        }
        let body = map.get("body").cloned().unwrap_or(Value::Null);
        Ok(Frame {
            id,
            kind: kind.to_string(),
            body,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_single_line() {
        let mut body = OrderedMap::new();
        body.insert("tenant", Value::str("acme"));
        body.insert("seed", Value::Int(42));
        let frame = Frame::new(7, "collect", Value::Map(body));
        let line = frame.encode();
        assert!(!line.contains('\n'), "compact encoding is one line");
        assert_eq!(Frame::decode(&line).unwrap(), frame);
    }

    #[test]
    fn null_body_is_implicit() {
        let frame = Frame::decode(r#"{"v": 1, "id": 0, "kind": "ping"}"#).unwrap();
        assert_eq!(frame.kind, "ping");
        assert_eq!(frame.body, Value::Null);
        assert_eq!(Frame::decode(&frame.encode()).unwrap(), frame);
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let err = Frame::decode(r#"{"v": 2, "id": 0, "kind": "ping"}"#).unwrap_err();
        assert!(err.message.contains("wire version 2"), "{err}");
    }

    #[test]
    fn malformed_envelopes_are_rejected() {
        for (line, what) in [
            ("[]", "must be a JSON object"),
            (r#"{"id": 0, "kind": "x"}"#, "missing version"),
            (r#"{"v": 1, "kind": "x"}"#, "missing integer 'id'"),
            (r#"{"v": 1, "id": 0}"#, "missing string 'kind'"),
            (r#"{"v": 1, "id": 0, "kind": ""}"#, "non-empty"),
            ("not json", ""),
        ] {
            let err = Frame::decode(line).unwrap_err();
            assert!(err.message.contains(what), "{line}: {err}");
        }
        assert!(Frame::decode("{}\n{}").is_err(), "embedded newline");
    }
}
