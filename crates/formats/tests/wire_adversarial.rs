//! Property tests hammering [`Frame::decode`] with adversarial input.
//!
//! The daemon feeds every line a peer sends straight into the decoder, so
//! the decoder's contract — a typed [`WireError`] for every bad input,
//! never a panic — is load-bearing for daemon survival. These properties
//! attack it from four directions: random bytes, truncated valid frames,
//! version skew, and structure-preserving mutations of real envelopes.

use hpcadvisor_formats::{Frame, OrderedMap, Value, WireError, MAX_FRAME_BYTES, WIRE_VERSION};
use proptest::prelude::*;

/// A strategy for syntactically valid frames with varied ids, kinds and
/// scalar bodies.
fn arb_frame() -> impl Strategy<Value = Frame> {
    (
        any::<i64>(),
        "[a-z_]{1,12}",
        prop_oneof![
            Just(Value::Null),
            any::<bool>().prop_map(Value::Bool),
            any::<i64>().prop_map(Value::Int),
            "[ -~]{0,40}".prop_map(Value::Str),
        ],
    )
        .prop_map(|(id, kind, body)| Frame::new(id, kind, body))
}

proptest! {
    /// Arbitrary printable garbage never panics the decoder; it either
    /// decodes (the garbage happened to be a frame) or yields a typed
    /// error whose Display never panics either.
    #[test]
    fn random_text_never_panics(line in "[ -~]{0,200}") {
        match Frame::decode(&line) {
            Ok(frame) => {
                // Whatever decoded must re-encode and decode to itself.
                prop_assert_eq!(Frame::decode(&frame.encode()).unwrap(), frame);
            }
            Err(e) => {
                prop_assert!(!e.to_string().is_empty());
            }
        }
    }

    /// Arbitrary bytes (run through lossy UTF-8, as the daemon's reader
    /// does) never panic the decoder.
    #[test]
    fn random_bytes_never_panic(
        bytes in proptest::collection::vec((0u16..256).prop_map(|b| b as u8), 0..200),
    ) {
        let line = String::from_utf8_lossy(&bytes);
        let _ = Frame::decode(&line);
    }

    /// Every strict prefix of a valid encoded frame is rejected with a
    /// typed error — a connection cut mid-frame can never smuggle in a
    /// half frame that decodes to something else.
    #[test]
    fn truncated_frames_are_typed_errors(frame in arb_frame(), cut in 0usize..100) {
        let line = frame.encode();
        if cut < line.len() {
            // Truncate at the nearest char boundary at or below `cut`.
            let mut at = cut;
            while !line.is_char_boundary(at) {
                at -= 1;
            }
            if at == 0 {
                // The empty prefix must also fail, just with a different
                // reason (empty input, not truncated JSON).
                prop_assert!(Frame::decode("").is_err());
            } else {
                let err = Frame::decode(&line[..at]).unwrap_err();
                prop_assert!(
                    matches!(err, WireError::Malformed(_)),
                    "prefix {:?} gave {:?}", &line[..at], err
                );
            }
        } else {
            // cut beyond the line: full frame round-trips.
            prop_assert_eq!(Frame::decode(&line).unwrap(), frame);
        }
    }

    /// Any version other than WIRE_VERSION is VersionSkew, no matter what
    /// the rest of the envelope says.
    #[test]
    fn version_skew_is_always_flagged(v in any::<i64>(), frame in arb_frame()) {
        let mut map = OrderedMap::new();
        map.insert("v", Value::Int(v));
        map.insert("id", Value::Int(frame.id));
        map.insert("kind", Value::str(frame.kind.clone()));
        map.insert("body", frame.body.clone());
        let line = hpcadvisor_formats::json::to_string(&Value::Map(map));
        match Frame::decode(&line) {
            Ok(decoded) => {
                prop_assert_eq!(v, WIRE_VERSION);
                prop_assert_eq!(decoded, frame);
            }
            Err(err) => {
                prop_assert_ne!(v, WIRE_VERSION);
                prop_assert_eq!(err, WireError::VersionSkew { got: v });
            }
        }
    }

    /// Valid frames always round-trip, and their compact encoding is one
    /// line under the size limit (so encode_checked accepts it).
    #[test]
    fn valid_frames_roundtrip(frame in arb_frame()) {
        let line = frame.encode_checked().unwrap();
        prop_assert!(!line.contains('\n'));
        prop_assert!(line.len() <= MAX_FRAME_BYTES);
        prop_assert_eq!(Frame::decode(&line).unwrap(), frame);
    }

    /// Dropping any one envelope field from a valid frame is Malformed
    /// (or, for the optional body, still fine) — never a panic, never a
    /// silently different frame.
    #[test]
    fn missing_fields_are_malformed(frame in arb_frame(), drop in 0usize..3) {
        let mut map = OrderedMap::new();
        if drop != 0 {
            map.insert("v", Value::Int(WIRE_VERSION));
        }
        if drop != 1 {
            map.insert("id", Value::Int(frame.id));
        }
        if drop != 2 {
            map.insert("kind", Value::str(frame.kind.clone()));
        }
        map.insert("body", frame.body.clone());
        let line = hpcadvisor_formats::json::to_string(&Value::Map(map));
        let err = Frame::decode(&line).unwrap_err();
        prop_assert!(matches!(err, WireError::Malformed(_)), "{err:?}");
    }
}

/// Oversized input is a deterministic property, but belongs with the rest
/// of the adversarial suite: one byte over the limit trips TooLarge before
/// the JSON parser ever runs.
#[test]
fn oversized_input_fails_fast() {
    let line = "z".repeat(MAX_FRAME_BYTES + 1);
    assert_eq!(
        Frame::decode(&line),
        Err(WireError::TooLarge {
            len: MAX_FRAME_BYTES + 1,
            max: MAX_FRAME_BYTES,
        })
    );
}

/// Embedded newlines are rejected even when both halves are valid JSON.
#[test]
fn embedded_newlines_are_rejected() {
    let a = Frame::new(1, "ping", Value::Null).encode();
    let b = Frame::new(2, "ping", Value::Null).encode();
    assert_eq!(
        Frame::decode(&format!("{a}\n{b}")),
        Err(WireError::MultiLine)
    );
}
