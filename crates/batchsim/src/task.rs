//! Task records and the execution context handed to task runners.

use cloudsim::{FaultKind, VmSku};
use simtime::{SimDuration, SimInstant};

/// Unique task identifier within one batch service.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub u64);

/// What a task is for — mirrors the paper's Algorithm 1, which runs one
/// setup task per pool and one compute task per scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskKind {
    /// Prepares the application (download data, install software) on the
    /// pool's shared filesystem.
    Setup,
    /// Runs one scenario.
    Compute,
}

/// Lifecycle state of a task. These are exactly the states the paper's
/// scenario list records: pending, (running,) completed, failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskState {
    /// Submitted, waiting for nodes.
    Pending,
    /// Occupying nodes.
    Running,
    /// Finished with exit code 0.
    Completed,
    /// Finished with non-zero exit code or infrastructure failure.
    Failed,
}

/// Everything a task runner can see about where it executes. The fields map
/// one-to-one onto the environment variables of the paper's Table I.
#[derive(Debug, Clone)]
pub struct TaskContext {
    /// The task being run.
    pub task_id: TaskId,
    /// VM type of the pool (Table I: `SKU`, `VMTYPE`).
    pub sku: VmSku,
    /// Hostnames assigned to this task (Table I: `HOSTLIST_PPN` is derived
    /// from this plus `ppn`).
    pub hosts: Vec<String>,
    /// Processes per node (Table I: `PPN`).
    pub ppn: u32,
    /// Per-task working directory (Table I: `TASKRUN_DIR`).
    pub task_dir: String,
    /// Pool name the task runs in.
    pub pool: String,
}

impl TaskContext {
    /// Number of nodes (Table I: `NNODES`).
    pub fn nnodes(&self) -> u32 {
        self.hosts.len() as u32
    }

    /// The `host:ppn,host:ppn,...` list the paper passes to `mpirun`
    /// (Table I: `HOSTLIST_PPN`).
    pub fn hostlist_ppn(&self) -> String {
        self.hosts
            .iter()
            .map(|h| format!("{h}:{}", self.ppn))
            .collect::<Vec<_>>()
            .join(",")
    }

    /// Contents of a plain MPI hostfile (one host per line, `slots=` form).
    pub fn hostfile(&self) -> String {
        self.hosts
            .iter()
            .map(|h| format!("{h} slots={}\n", self.ppn))
            .collect()
    }
}

/// What a task runner returns: how long the task took in virtual time and
/// what it printed.
#[derive(Debug, Clone)]
pub struct TaskResult {
    /// Virtual duration of the task.
    pub duration: SimDuration,
    /// Captured stdout (scraped for `HPCADVISORVAR` lines by the tool).
    pub stdout: String,
    /// Process exit code; non-zero marks the task failed.
    pub exit_code: i32,
}

impl TaskResult {
    /// A successful result.
    pub fn ok(duration: SimDuration, stdout: impl Into<String>) -> Self {
        TaskResult {
            duration,
            stdout: stdout.into(),
            exit_code: 0,
        }
    }

    /// A failed result.
    pub fn failed(duration: SimDuration, stdout: impl Into<String>, exit_code: i32) -> Self {
        TaskResult {
            duration,
            stdout: stdout.into(),
            exit_code: if exit_code == 0 { 1 } else { exit_code },
        }
    }
}

/// The service's record of one task.
#[derive(Debug, Clone)]
pub struct TaskRecord {
    /// Task id.
    pub id: TaskId,
    /// Human-readable name (scenario id in the tool).
    pub name: String,
    /// Setup or compute.
    pub kind: TaskKind,
    /// Pool the task was submitted to.
    pub pool: String,
    /// Nodes the task requires.
    pub nodes_required: u32,
    /// Processes per node.
    pub ppn: u32,
    /// Current state.
    pub state: TaskState,
    /// Submission time.
    pub submitted_at: SimInstant,
    /// Start time, once running.
    pub started_at: Option<SimInstant>,
    /// Completion time, once finished.
    pub completed_at: Option<SimInstant>,
    /// Captured stdout, once finished.
    pub stdout: String,
    /// Exit code, once finished (infrastructure failures use -1).
    pub exit_code: Option<i32>,
    /// Time the task itself took, as reported by its runner. Unlike
    /// [`TaskRecord::duration`] this does not depend on the shared clock,
    /// which other pools may advance concurrently.
    pub run_duration: Option<SimDuration>,
    /// Set when the failure was injected by the fault plan (task-start fault
    /// or mid-task node death); `None` for genuine application failures.
    /// Retry logic uses this to tell transient infrastructure loss apart
    /// from deterministic application errors.
    pub fault: Option<FaultKind>,
    /// True when the task failed because its spot nodes were reclaimed
    /// mid-run. Evicted tasks also carry a transient `fault` tag; the
    /// separate flag lets the collector count evictions and escalate to
    /// dedicated capacity after repeated reclaims.
    pub evicted: bool,
}

impl TaskRecord {
    /// Wall-clock duration, once finished.
    pub fn duration(&self) -> Option<SimDuration> {
        Some(self.completed_at? - self.started_at?)
    }

    /// The task's own execution time: the runner-reported duration when
    /// available (always, for tasks that ran), else the wall-clock span.
    /// Identical to [`TaskRecord::duration`] under serial execution.
    pub fn execution_duration(&self) -> Option<SimDuration> {
        self.run_duration.or_else(|| self.duration())
    }

    /// True once the task reached a terminal state.
    pub fn is_finished(&self) -> bool {
        matches!(self.state, TaskState::Completed | TaskState::Failed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudsim::SkuCatalog;

    fn ctx() -> TaskContext {
        TaskContext {
            task_id: TaskId(1),
            sku: SkuCatalog::azure_hpc().get("HC44rs").unwrap().clone(),
            hosts: vec!["node-0".into(), "node-1".into(), "node-2".into()],
            ppn: 44,
            task_dir: "/share/tasks/1".into(),
            pool: "pool-hc44rs".into(),
        }
    }

    #[test]
    fn hostlist_ppn_format() {
        assert_eq!(ctx().hostlist_ppn(), "node-0:44,node-1:44,node-2:44");
        assert_eq!(ctx().nnodes(), 3);
    }

    #[test]
    fn hostfile_format() {
        let hf = ctx().hostfile();
        assert_eq!(hf.lines().count(), 3);
        assert!(hf.starts_with("node-0 slots=44\n"));
    }

    #[test]
    fn failed_result_never_has_zero_exit() {
        let r = TaskResult::failed(SimDuration::from_secs(1), "boom", 0);
        assert_eq!(r.exit_code, 1);
        let r = TaskResult::failed(SimDuration::from_secs(1), "boom", 7);
        assert_eq!(r.exit_code, 7);
    }

    #[test]
    fn record_duration() {
        let mut rec = TaskRecord {
            id: TaskId(1),
            name: "t".into(),
            kind: TaskKind::Compute,
            pool: "p".into(),
            nodes_required: 2,
            ppn: 4,
            state: TaskState::Pending,
            submitted_at: SimInstant::EPOCH,
            started_at: None,
            completed_at: None,
            stdout: String::new(),
            exit_code: None,
            run_duration: None,
            fault: None,
            evicted: false,
        };
        assert_eq!(rec.duration(), None);
        assert!(!rec.is_finished());
        rec.started_at = Some(SimInstant::EPOCH + SimDuration::from_secs(10));
        rec.completed_at = Some(SimInstant::EPOCH + SimDuration::from_secs(25));
        rec.state = TaskState::Completed;
        assert_eq!(rec.duration(), Some(SimDuration::from_secs(15)));
        // Without a runner report, execution time falls back to wall clock.
        assert_eq!(rec.execution_duration(), Some(SimDuration::from_secs(15)));
        rec.run_duration = Some(SimDuration::from_secs(12));
        assert_eq!(rec.execution_duration(), Some(SimDuration::from_secs(12)));
        assert!(rec.is_finished());
    }
}
