//! Typed errors for the batch orchestrator.
//!
//! Before this module existed the service surfaced raw
//! [`cloudsim::CloudError`]s, forcing callers to string-format batch-level
//! failures (`format!("pool resize: {e}")`). `BatchError` distinguishes the
//! batch-layer failure modes — a missing/deleted pool, a busy pool, an
//! invalid task layout — from genuine cloud control-plane errors, and
//! carries the cloud error as a typed `source()` instead of flattened text.

use cloudsim::CloudError;
use std::fmt;

/// An error from the batch service.
#[derive(Debug, Clone, PartialEq)]
pub enum BatchError {
    /// The underlying cloud provider rejected an operation (quota, faults,
    /// unknown SKU, …).
    Cloud(CloudError),
    /// The named pool does not exist or is deleted.
    PoolUnavailable {
        /// Pool name as requested.
        pool: String,
    },
    /// The pool has running tasks and cannot be resized.
    PoolBusy {
        /// Pool name as requested.
        pool: String,
    },
    /// A task layout that can never run (zero nodes, zero ppn, or more
    /// processes per node than the SKU has cores).
    InvalidLayout {
        /// Nodes requested by the task.
        nodes: u32,
        /// Processes per node requested.
        ppn: u32,
        /// Cores available per node on the pool's SKU.
        cores: u32,
    },
}

impl fmt::Display for BatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BatchError::Cloud(e) => write!(f, "{e}"),
            BatchError::PoolUnavailable { pool } => {
                write!(f, "pool '{pool}' does not exist or is deleted")
            }
            BatchError::PoolBusy { pool } => {
                write!(f, "pool '{pool}' has running tasks")
            }
            BatchError::InvalidLayout { nodes, ppn, cores } => write!(
                f,
                "invalid layout: nodes={nodes}, ppn={ppn} (sku has {cores} cores)"
            ),
        }
    }
}

impl std::error::Error for BatchError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BatchError::Cloud(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CloudError> for BatchError {
    fn from(e: CloudError) -> Self {
        BatchError::Cloud(e)
    }
}

impl BatchError {
    /// Whether this error is a quota/capacity rejection — the recoverable
    /// class Algorithm 1 turns into a failed scenario rather than an abort.
    pub fn is_capacity(&self) -> bool {
        matches!(
            self,
            BatchError::Cloud(CloudError::QuotaExceeded { .. })
                | BatchError::Cloud(CloudError::ProvisioningFailed { .. })
        )
    }

    /// Whether the underlying cloud failure is marked transient — an
    /// injected fault a retry can be expected to clear. Quota exhaustion
    /// and hard provider rejections return `false`.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            BatchError::Cloud(CloudError::ProvisioningFailed {
                transient: true,
                ..
            })
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn cloud_errors_keep_their_source() {
        let e = BatchError::from(CloudError::UnknownSku("X".into()));
        assert!(e.source().is_some());
        assert!(e.to_string().contains('X'));
    }

    #[test]
    fn layout_error_renders_all_fields() {
        let e = BatchError::InvalidLayout {
            nodes: 2,
            ppn: 200,
            cores: 120,
        };
        let msg = e.to_string();
        assert!(msg.contains("nodes=2") && msg.contains("ppn=200") && msg.contains("120"));
        assert!(e.source().is_none());
    }
}
