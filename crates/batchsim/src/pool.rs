//! Pools: groups of identical nodes backing task execution.

use cloudsim::{AllocationId, Capacity};

/// Lifecycle state of a pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolState {
    /// Exists (possibly with zero nodes).
    Active,
    /// Deleted; kept for audit.
    Deleted,
}

/// A pool of identical VMs.
#[derive(Debug, Clone)]
pub struct Pool {
    /// Pool name (unique within the service).
    pub name: String,
    /// SKU of every node in the pool.
    pub sku: String,
    /// Current node count.
    pub nodes: u32,
    /// Busy flag per node index (`true` = running a task).
    pub busy: Vec<bool>,
    /// Backing allocation in the cloud provider, if nodes > 0.
    pub allocation: Option<AllocationId>,
    /// Lifecycle state.
    pub state: PoolState,
    /// True once the pool's setup task completed successfully.
    pub setup_done: bool,
    /// Pricing/eviction class of the pool's nodes. Dedicated by default;
    /// spot pools bill at a discount but can lose all nodes to eviction.
    pub capacity: Capacity,
    /// Placement region for the pool's nodes; `None` keeps the provider's
    /// home region and the pre-placement behavior (no regional quota pool,
    /// provisioning profile, or spot-pressure scaling beyond the home
    /// region's own neutral profile).
    pub region: Option<String>,
}

impl Pool {
    /// Creates an empty, active pool.
    pub fn new(name: &str, sku: &str) -> Self {
        Pool {
            name: name.to_string(),
            sku: sku.to_string(),
            nodes: 0,
            busy: Vec::new(),
            allocation: None,
            state: PoolState::Active,
            setup_done: false,
            capacity: Capacity::Dedicated,
            region: None,
        }
    }

    /// Number of idle nodes.
    pub fn idle_nodes(&self) -> u32 {
        self.busy.iter().filter(|b| !**b).count() as u32
    }

    /// Whether no task occupies any node (a zero-node pool is idle).
    pub fn is_idle(&self) -> bool {
        self.idle_nodes() == self.nodes
    }

    /// Claims `count` idle nodes, returning their indices, or `None` if not
    /// enough are idle.
    pub fn claim(&mut self, count: u32) -> Option<Vec<u32>> {
        if self.idle_nodes() < count {
            return None;
        }
        let mut taken = Vec::with_capacity(count as usize);
        for (i, b) in self.busy.iter_mut().enumerate() {
            if taken.len() == count as usize {
                break;
            }
            if !*b {
                *b = true;
                taken.push(i as u32);
            }
        }
        Some(taken)
    }

    /// Releases previously claimed node indices.
    pub fn release(&mut self, indices: &[u32]) {
        for &i in indices {
            if let Some(b) = self.busy.get_mut(i as usize) {
                *b = false;
            }
        }
    }

    /// Hostname of node `i` in this pool.
    pub fn hostname(&self, i: u32) -> String {
        format!("{}-{:04}", self.name, i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool_with_nodes(n: u32) -> Pool {
        let mut p = Pool::new("pool-hb", "Standard_HB120rs_v3");
        p.nodes = n;
        p.busy = vec![false; n as usize];
        p
    }

    #[test]
    fn claim_and_release() {
        let mut p = pool_with_nodes(4);
        assert_eq!(p.idle_nodes(), 4);
        let a = p.claim(3).unwrap();
        assert_eq!(a.len(), 3);
        assert_eq!(p.idle_nodes(), 1);
        assert!(p.claim(2).is_none(), "only one node idle");
        let b = p.claim(1).unwrap();
        assert_eq!(p.idle_nodes(), 0);
        p.release(&a);
        p.release(&b);
        assert_eq!(p.idle_nodes(), 4);
    }

    #[test]
    fn claim_zero_nodes_is_trivially_ok() {
        let mut p = pool_with_nodes(0);
        assert_eq!(p.claim(0), Some(vec![]));
        assert!(p.claim(1).is_none());
    }

    #[test]
    fn hostnames_are_stable() {
        let p = pool_with_nodes(2);
        assert_eq!(p.hostname(0), "pool-hb-0000");
        assert_eq!(p.hostname(1), "pool-hb-0001");
    }

    #[test]
    fn release_out_of_range_is_ignored() {
        let mut p = pool_with_nodes(2);
        p.release(&[5]);
        assert_eq!(p.idle_nodes(), 2);
    }
}
